//! # HybridTier
//!
//! A full reproduction of **"HybridTier: an Adaptive and Lightweight
//! CXL-Memory Tiering System"** (ASPLOS 2025) as a Rust workspace: the
//! HybridTier algorithm itself (dual counting-Bloom-filter hotness
//! trackers, Table-1 migration policy, blocked-CBF metadata), the five
//! baseline tiering systems it is evaluated against, the twelve evaluation
//! workloads, and a discrete-event tiered-memory simulator standing in for
//! the paper's emulated-CXL testbed.
//!
//! This crate is a facade: it re-exports the workspace crates and offers a
//! [`prelude`] for one-line imports.
//!
//! ## Quickstart
//!
//! ```
//! use hybridtier::prelude::*;
//!
//! // A skewed workload over 2 000 pages with a 1:8 fast:slow split.
//! let mut workload = ZipfPageWorkload::new(2_000, 0.99, 100_000, 42);
//! let pages = workload.footprint_pages(PageSize::Base4K);
//! let tier_cfg = TierConfig::for_footprint(pages, TierRatio::OneTo8, PageSize::Base4K);
//! let mut policy = build_policy(PolicyKind::HybridTier, &tier_cfg);
//!
//! let report = Engine::new(SimConfig::default()).run(
//!     &mut workload,
//!     policy.as_mut(),
//!     tier_cfg,
//! );
//! assert!(report.fast_hit_frac > 0.5, "hot set should migrate to the fast tier");
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`cbf`] | counting Bloom filters (standard + blocked), sizing formulas |
//! | [`cache`] | set-associative L1/LLC simulator with per-source attribution |
//! | [`mem`] | tiers and N-tier ladder topologies, page table, latency model, migration accounting |
//! | [`trace`] | access/op abstractions, op/access batches, PEBS-like sampler |
//! | [`workloads`] | the 12 evaluation workloads (Table 2) |
//! | [`policies`] | HybridTier + Memtis, AutoNUMA, TPP, ARC, TwoQ, NeoMem — all with batched ingestion hooks and N-tier demotion chains |
//! | [`sim`] | the batched-pipeline simulation engine, reports, adaptation measurement |
//! | [`runner`] | `Scenario` abstraction + parallel sweep driver (many simulations per run) |
//!
//! The benchmark harness regenerating every paper figure/table lives in the
//! `hybridtier-bench` crate (`cargo run -p hybridtier-bench --release --bin
//! repro -- all`); its `bench` binary times the parallel sweep driver and
//! emits machine-readable `BENCH_*.json`.

/// Doc-tests the repository README: every Rust snippet in it must keep
/// compiling and passing under `cargo test`.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
struct ReadmeDoctests;

pub use cache_sim as cache;
pub use hybridtier_cbf as cbf;
pub use tiering_mem as mem;
pub use tiering_policies as policies;
pub use tiering_sim as sim;
pub use tiering_trace as trace;
pub use tiering_workloads as workloads;

/// `Scenario` abstraction, parallel sweep driver, and distributed
/// execution (re-export of [`tiering_runner`], plus [`runner::remote`]).
pub mod runner {
    pub use tiering_runner::*;

    /// Elastic fleet executor: fault-tolerant fan-out of sharded sweeps
    /// over local and subprocess workers (re-export of [`fleet_exec`]).
    pub mod remote {
        pub use fleet_exec::*;
    }
}

/// Everything needed to define and run a tiering experiment.
pub mod prelude {
    pub use crate::cache::{CacheConfig, CacheHierarchy, Source};
    pub use crate::cbf::{
        AccessCounter, BlockedCbf, CbfParams, CounterWidth, GroundTruthCounter, StandardCbf,
    };
    pub use crate::mem::{
        LadderKind, LatencyModel, MigrationError, PageId, PageSize, Tier, TierConfig, TierRatio,
        TierTopology, TieredMemory,
    };
    pub use crate::policies::{
        build_policy, ArcPolicy, AutoNumaPolicy, GlobalController, HybridTierConfig,
        HybridTierPolicy, MemtisPolicy, MigrationDecision, NeoMemPolicy, PolicyCtx, PolicyKind,
        RebalanceEvent, TieringPolicy, TppPolicy, TwoQPolicy,
    };
    pub use crate::runner::{
        BudgetSpec, ChurnSpec, CoLocationMatrix, CoLocationSpec, FleetMatrix, FleetSpec,
        PolicySpec, Scenario, ScenarioKind, ScenarioMatrix, ScenarioResult, ShardReport, ShardSpec,
        ShardedSweep, SweepReport, SweepRunner, TenantSpec, TierSpec, WorkloadSpec,
    };
    pub use crate::sim::{
        adaptation_time_ns, run_suite_experiment, Engine, MultiTenantConfig, MultiTenantEngine,
        MultiTenantReport, SimConfig, SimReport, TenantReport, TenantRun,
    };
    pub use crate::trace::{
        Access, AccessBatch, Op, Sample, Sampler, TraceError, TraceReader, TraceWriter, Workload,
    };
    pub use crate::workloads::{
        build_workload, record_workload, BfsWorkload, CacheLibConfig, CacheLibWorkload, Graph,
        GraphKind, PhasedWorkload, PulseWorkload, SequentialScanWorkload, TraceReplayWorkload,
        WorkloadId, ZipfDistribution, ZipfPageWorkload,
    };
}
