//! Distributed sweeps, simulated in-process: shard a matrix across three
//! "hosts", merge the shard reports, and prove the merge is identical to
//! the unsharded run.
//!
//! ```text
//! cargo run --release --example sharded_sweep
//! ```
//!
//! On a real fleet each shard would be one invocation of
//! `bench --shard i/N --json shard_i.json` on its own host, and the merge
//! one `bench --merge shard_*.json` anywhere (see `docs/BENCH_FORMAT.md`);
//! the library calls below are exactly what those commands run.

use hybridtier::mem::TierRatio;
use hybridtier::policies::PolicyKind;
use hybridtier::runner::{ScenarioMatrix, ShardSpec, ShardedSweep, SweepReport, SweepRunner};
use hybridtier::sim::SimConfig;
use hybridtier::workloads::WorkloadId;

fn main() {
    const HOSTS: usize = 3;
    let matrix = ScenarioMatrix::new(SimConfig::default().with_max_ops(40_000), 0xD157)
        .workloads([WorkloadId::CdnCacheLib, WorkloadId::SocialCacheLib])
        .policies([
            PolicyKind::HybridTier,
            PolicyKind::Memtis,
            PolicyKind::FirstTouch,
        ])
        .ratios([TierRatio::OneTo8, TierRatio::OneTo4]);
    let full = matrix.build();
    println!(
        "matrix: {} scenarios (2 workloads x 3 policies x 2 ratios), {HOSTS} simulated hosts\n",
        full.len()
    );

    // Each "host" builds the same canonical matrix and runs only its
    // round-robin slice — no coordination needed, just (i, N).
    let shards: Vec<_> = ShardSpec::all(HOSTS)
        .map(|spec| {
            let report = ShardedSweep::new(spec, SweepRunner::new(0)).run(matrix.build());
            println!(
                "host {spec}: ran {:>2} scenarios in {:.2}s",
                report.sweep.results.len(),
                report.sweep.wall.as_secs_f64(),
            );
            report
        })
        .collect();

    // Merge is order-invariant and validates the union; feed it shuffled.
    let mut shuffled = shards;
    shuffled.rotate_left(1);
    let merged = SweepReport::merge(shuffled).expect("complete shard set merges");

    println!(
        "\n{:<28} {:>9} {:>10} {:>9}",
        "scenario", "p50 ns", "fast-hit", "promos"
    );
    for r in &merged.results {
        println!(
            "{:<28} {:>9} {:>10.3} {:>9}",
            r.label,
            r.report.latency.p50_ns,
            r.report.fast_hit_frac,
            r.report.migrations.promotions
        );
    }

    // The distributed-sweep contract, checked live: the merged report is
    // identical (in every deterministic field) to running everything here.
    let unsharded = SweepRunner::new(0).run(matrix.build());
    assert!(
        merged.same_outcomes(&unsharded),
        "union of shards diverged from the unsharded run"
    );
    for (m, u) in merged.results.iter().zip(&unsharded.results) {
        assert_eq!(m.fingerprint(), u.fingerprint(), "{} diverged", m.label);
    }
    println!(
        "\nunion of {HOSTS} shards == unsharded run: identical results, \
         {} scenarios, fingerprints match",
        merged.results.len()
    );
}
