//! Probabilistic vs exact tracking: memory and accuracy trade-off.
//!
//! Demonstrates the paper's key metadata claims directly against the public
//! CBF API: a counting Bloom filter tracks page hotness in a fraction of the
//! memory of an exact table (Table 4) while agreeing with it on >99% of
//! migration decisions (Table 5), and the blocked layout touches exactly one
//! cache line per update (Figure 14).
//!
//! Usage: `cargo run --release --example metadata_overhead`

use hybridtier::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let fast_pages = 100_000;
    let params = CbfParams::for_capacity(fast_pages, 4, 0.001, CounterWidth::W4);
    let mut blocked = BlockedCbf::new(params.clone());
    let mut standard = StandardCbf::new(params);
    let mut exact = GroundTruthCounter::new(CounterWidth::W4);

    // Replay a skewed page stream through all three trackers.
    let zipf = hybridtier::workloads::ZipfDistribution::new(400_000, 0.99);
    let mut rng = SmallRng::seed_from_u64(9);
    let threshold = 4;
    let mut agree = 0u64;
    let samples = 2_000_000u64;
    for _ in 0..samples {
        let page = zipf.sample_rank(&mut rng) as u64;
        let noise: u64 = rng.gen_range(0..3); // slight spatial jitter
        let key = page ^ noise;
        let b = blocked.increment(key);
        standard.increment(key);
        let e = exact.increment(key);
        if (b >= threshold) == (e >= threshold) {
            agree += 1;
        }
    }

    println!("{samples} sampled accesses over ~400k pages, hotness threshold {threshold}\n");
    println!(
        "{:<22} {:>12} {:>18}",
        "tracker", "memory", "lines touched/op"
    );
    let mut lines = Vec::new();
    blocked.touched_lines(1, &mut lines);
    let blocked_lines = lines.len();
    lines.clear();
    standard.touched_lines(1, &mut lines);
    let standard_lines = lines.len();
    println!(
        "{:<22} {:>9} KiB {:>18}",
        "blocked CBF (4-bit)",
        blocked.metadata_bytes() / 1024,
        blocked_lines
    );
    println!(
        "{:<22} {:>9} KiB {:>18}",
        "standard CBF (4-bit)",
        standard.metadata_bytes() / 1024,
        standard_lines
    );
    println!(
        "{:<22} {:>9} KiB {:>18}",
        "exact hash table",
        exact.metadata_bytes() / 1024,
        2
    );
    println!(
        "\nblocked CBF uses {:.1}x less memory than the exact table",
        exact.metadata_bytes() as f64 / blocked.metadata_bytes() as f64
    );
    println!(
        "and agrees with it on {:.2}% of migration decisions",
        agree as f64 / samples as f64 * 100.0
    );
}
