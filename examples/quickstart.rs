//! Quickstart: tier a skewed workload with HybridTier.
//!
//! Builds a Zipf-distributed page workload, gives it a fast tier an eighth
//! of its footprint, runs HybridTier, and shows what tiering bought compared
//! to static first-touch placement.
//!
//! Usage: `cargo run --release --example quickstart`

use hybridtier::prelude::*;

fn main() {
    // 8 000 pages (32 MiB), Zipf(0.99) popularity, 1.2M single-page ops,
    // with the hot set relocating mid-run — the regime static placement
    // cannot follow but an adaptive tiering system can.
    let make_workload = || {
        ZipfPageWorkload::new(8_000, 0.99, 1_200_000, 42).with_shift(100_000_000, 0.9)
    };

    let pages = make_workload().footprint_pages(PageSize::Base4K);
    let tier_cfg = TierConfig::for_footprint(pages, TierRatio::OneTo8, PageSize::Base4K);
    println!(
        "footprint {pages} pages, fast tier {} pages ({})",
        tier_cfg.fast_capacity_pages,
        TierRatio::OneTo8
    );

    let engine = Engine::new(SimConfig::default());

    // Static first-touch placement: whatever touched the fast tier first
    // stays there.
    let mut workload = make_workload();
    let mut first_touch = build_policy(PolicyKind::FirstTouch, &tier_cfg);
    let baseline = engine.run(&mut workload, first_touch.as_mut(), tier_cfg);

    // HybridTier: dual CBF trackers + Table-1 migration policy.
    let mut workload = make_workload();
    let mut hybridtier = build_policy(PolicyKind::HybridTier, &tier_cfg);
    let tiered = engine.run(&mut workload, hybridtier.as_mut(), tier_cfg);

    println!("\n{:<12} {:>10} {:>10} {:>12}", "policy", "p50 (ns)", "fast-hit", "runtime (s)");
    for r in [&baseline, &tiered] {
        println!(
            "{:<12} {:>10} {:>9.1}% {:>12.3}",
            r.policy,
            r.latency.p50_ns,
            r.fast_hit_frac * 100.0,
            r.runtime_s()
        );
    }
    println!(
        "\nHybridTier speedup over first-touch: {:.2}x \
         ({} promotions, {} demotions, {} KiB metadata)",
        tiered.relative_performance(&baseline),
        tiered.migrations.promotions,
        tiered.migrations.demotions,
        tiered.metadata_bytes / 1024,
    );
}
