//! Quickstart: tier a skewed workload with HybridTier.
//!
//! Builds a Zipf-distributed page workload, gives it a fast tier an eighth
//! of its footprint, runs HybridTier next to static first-touch placement
//! (both scenarios execute in parallel through the sweep runner), and shows
//! what tiering bought.
//!
//! Usage: `cargo run --release --example quickstart`

use hybridtier::prelude::*;

fn main() {
    // 8 000 pages (32 MiB), Zipf(0.99) popularity, 1.2M single-page ops,
    // with the hot set relocating mid-run — the regime static placement
    // cannot follow but an adaptive tiering system can.
    let workload = WorkloadSpec::custom("zipf-shift", |seed| {
        Box::new(ZipfPageWorkload::new(8_000, 0.99, 1_200_000, seed).with_shift(100_000_000, 0.9))
    });
    let pages = ZipfPageWorkload::new(8_000, 0.99, 1, 42).footprint_pages(PageSize::Base4K);
    let tier_cfg = TierConfig::for_footprint(pages, TierRatio::OneTo8, PageSize::Base4K);
    println!(
        "footprint {pages} pages, fast tier {} pages ({})",
        tier_cfg.fast_capacity_pages,
        TierRatio::OneTo8
    );

    let config = SimConfig::default();
    let scenarios = vec![
        Scenario::new(
            "first-touch",
            workload.clone(),
            PolicySpec::Kind(PolicyKind::FirstTouch),
            TierSpec::Ratio(TierRatio::OneTo8),
            &config,
            42,
        ),
        Scenario::new(
            "hybridtier",
            workload,
            PolicySpec::Kind(PolicyKind::HybridTier),
            TierSpec::Ratio(TierRatio::OneTo8),
            &config,
            42,
        ),
    ];
    let sweep = SweepRunner::new(0).run(scenarios);
    let baseline = &sweep.results[0].report;
    let tiered = &sweep.results[1].report;

    println!(
        "\n{:<12} {:>10} {:>10} {:>12}",
        "policy", "p50 (ns)", "fast-hit", "runtime (s)"
    );
    for r in [baseline, tiered] {
        println!(
            "{:<12} {:>10} {:>9.1}% {:>12.3}",
            r.policy,
            r.latency.p50_ns,
            r.fast_hit_frac * 100.0,
            r.runtime_s()
        );
    }
    println!(
        "\nHybridTier speedup over first-touch: {:.2}x \
         ({} promotions, {} demotions, {} KiB metadata)",
        tiered.relative_performance(baseline),
        tiered.migrations.promotions,
        tiered.migrations.demotions,
        tiered.metadata_bytes / 1024,
    );
}
