//! Tiered-memory graph analytics: BFS over a Kronecker graph.
//!
//! The GAP kernels are the paper's throughput-oriented workloads (Table 2).
//! BFS is the interesting one for tiering: every trial starts from a new
//! random source, so the hot frontier moves — exactly the "shifting hot
//! set" regime where HybridTier's momentum tracker earns its keep
//! (paper §6.1: largest GAP speedups on BFS).
//!
//! Usage: `cargo run --release --example graph_analytics [scale]`

use hybridtier::prelude::*;

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);
    println!("generating Kronecker graph: 2^{scale} nodes, 16 edges/node...");
    let graph = Graph::kronecker(scale, 16, 1);
    println!(
        "{} nodes, {} edges, CSR {} MiB",
        graph.num_nodes(),
        graph.num_edges(),
        graph.csr_bytes() >> 20
    );

    let make = || BfsWorkload::new(Graph::kronecker(scale, 16, 1), 4, 99);
    let pages = make().footprint_pages(PageSize::Base4K);

    println!("\nBFS, 4 random-source trials, fast:slow = 1:8");
    println!("{:<12} {:>12} {:>10} {:>12}", "policy", "runtime (s)", "fast-hit", "migrations");
    let tier_cfg = TierConfig::for_footprint(pages, TierRatio::OneTo8, PageSize::Base4K);
    let mut baseline_runtime = None;
    for kind in [
        PolicyKind::FirstTouch,
        PolicyKind::Tpp,
        PolicyKind::Memtis,
        PolicyKind::HybridTier,
    ] {
        let mut workload = make();
        let mut policy = build_policy(kind, &tier_cfg);
        let report = Engine::new(SimConfig::default()).run(&mut workload, policy.as_mut(), tier_cfg);
        let speedup = match baseline_runtime {
            None => {
                baseline_runtime = Some(report.sim_ns);
                String::new()
            }
            Some(base) => format!("  ({:.2}x vs first-touch)", base as f64 / report.sim_ns as f64),
        };
        println!(
            "{:<12} {:>12.3} {:>9.1}% {:>12}{speedup}",
            report.policy,
            report.runtime_s(),
            report.fast_hit_frac * 100.0,
            report.migrations.promotions + report.migrations.demotions,
        );
    }
}
