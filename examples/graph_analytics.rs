//! Tiered-memory graph analytics: BFS over a Kronecker graph.
//!
//! The GAP kernels are the paper's throughput-oriented workloads (Table 2).
//! BFS is the interesting one for tiering: every trial starts from a new
//! random source, so the hot frontier moves — exactly the "shifting hot
//! set" regime where HybridTier's momentum tracker earns its keep
//! (paper §6.1: largest GAP speedups on BFS). The four systems simulate
//! concurrently through the sweep runner.
//!
//! Usage: `cargo run --release --example graph_analytics [scale]`

use hybridtier::prelude::*;

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);
    println!("generating Kronecker graph: 2^{scale} nodes, 16 edges/node...");
    let graph = Graph::kronecker(scale, 16, 1);
    println!(
        "{} nodes, {} edges, CSR {} MiB",
        graph.num_nodes(),
        graph.num_edges(),
        graph.csr_bytes() >> 20
    );

    let workload = WorkloadSpec::custom("bfs-K", move |seed| {
        Box::new(BfsWorkload::new(Graph::kronecker(scale, 16, 1), 4, seed))
    });
    let kinds = [
        PolicyKind::FirstTouch,
        PolicyKind::Tpp,
        PolicyKind::Memtis,
        PolicyKind::HybridTier,
    ];
    let sweep = SweepRunner::new(0).run(
        kinds
            .iter()
            .map(|&kind| {
                Scenario::new(
                    kind.label(),
                    workload.clone(),
                    PolicySpec::Kind(kind),
                    TierSpec::Ratio(TierRatio::OneTo8),
                    &SimConfig::default(),
                    99,
                )
            })
            .collect(),
    );

    println!(
        "\nBFS, 4 random-source trials, fast:slow = 1:8 \
         ({} runs in {:.2}s on {} threads)",
        sweep.results.len(),
        sweep.wall.as_secs_f64(),
        sweep.threads
    );
    println!(
        "{:<12} {:>12} {:>10} {:>12}",
        "policy", "runtime (s)", "fast-hit", "migrations"
    );
    let baseline_runtime = sweep.results[0].report.sim_ns;
    for (i, result) in sweep.results.iter().enumerate() {
        let report = &result.report;
        let speedup = if i == 0 {
            String::new()
        } else {
            format!(
                "  ({:.2}x vs first-touch)",
                baseline_runtime as f64 / report.sim_ns as f64
            )
        };
        println!(
            "{:<12} {:>12.3} {:>9.1}% {:>12}{speedup}",
            report.policy,
            report.runtime_s(),
            report.fast_hit_frac * 100.0,
            report.migrations.promotions + report.migrations.demotions,
        );
    }
}
