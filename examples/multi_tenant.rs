//! Global tiering across co-located tenants (paper §7).
//!
//! Two applications share one physical fast tier through the central
//! controller: a hot in-memory-cache-style tenant and a mostly idle one.
//! Midway, the idle tenant wakes up; the controller re-partitions the fast
//! budget to follow demand.
//!
//! Usage: `cargo run --release --example multi_tenant`

use hybridtier::policies::GlobalController;
use hybridtier::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Drives `ops` Zipf-distributed sampled accesses into a tenant.
fn drive(
    controller: &mut GlobalController,
    idx: usize,
    zipf: &ZipfDistribution,
    ops: u64,
    t0: u64,
    rng: &mut SmallRng,
) {
    let mut ctx = PolicyCtx::new();
    let tenant = controller.tenant_mut(idx);
    for i in 0..ops {
        let page = zipf.sample_rank(rng) as u64;
        let tier = tenant.mem.ensure_mapped(PageId(page), Tier::Slow);
        tenant.policy.on_sample(
            Sample {
                page: PageId(page),
                addr: page << 12,
                tier,
                at_ns: t0 + i * 500,
                is_write: false,
            },
            &mut tenant.mem,
            &mut ctx,
        );
        if i % 1_000 == 0 {
            tenant
                .policy
                .on_tick(t0 + i * 500, &mut tenant.mem, &mut ctx);
        }
        ctx.drain();
    }
}

fn main() {
    let fast_budget = 4_000; // pages of physical fast memory
    let mut controller = GlobalController::new(fast_budget, 0.1);
    let cache = controller.add_tenant("cache", 40_000);
    let batch = controller.add_tenant("batch", 40_000);

    let hot_zipf = ZipfDistribution::new(8_000, 0.99);
    let idle_zipf = ZipfDistribution::new(40_000, 0.3);
    let mut rng = SmallRng::seed_from_u64(17);

    println!("fast budget: {fast_budget} pages shared by 2 tenants\n");
    println!("{:>6} {:>14} {:>14}", "phase", "cache quota", "batch quota");
    for phase in 0..6 {
        // Phase 0-2: cache hot, batch idle. Phase 3+: batch wakes up with a
        // hot set twice the size of the cache tenant's.
        let t0 = phase * 400_000_000;
        drive(&mut controller, cache, &hot_zipf, 60_000, t0, &mut rng);
        if phase >= 3 {
            let woke = ZipfDistribution::new(6_000, 1.2);
            drive(&mut controller, batch, &woke, 120_000, t0, &mut rng);
        } else {
            drive(&mut controller, batch, &idle_zipf, 2_000, t0, &mut rng);
        }
        let quotas = controller.rebalance();
        println!("{:>6} {:>14} {:>14}", phase, quotas[cache], quotas[batch]);
    }
    println!(
        "\nfast-tier residency: cache {} pages, batch {} pages",
        controller.tenant(cache).mem.fast_used(),
        controller.tenant(batch).mem.fast_used()
    );
    println!(
        "(the controller follows demand; each tenant's watermark demotion drains over-quota pages)"
    );
}
