//! Global tiering across co-located tenants (paper §7).
//!
//! Two applications share one physical fast tier through the central
//! controller: a hot in-memory-cache-style tenant and a mostly idle batch
//! tenant. At 40 simulated ms the idle tenant wakes up with a hot set of
//! its own; the controller re-partitions the fast budget to follow demand.
//!
//! This runs the *same* co-location scenario as the `sec7` bench experiment
//! and the runner's golden suite (`Scenario::wakeup_demo`), so the quota
//! trajectory printed here is the one those pin.
//!
//! Usage: `cargo run --release --example multi_tenant`

use hybridtier::prelude::*;
use hybridtier::runner::Scenario;

fn main() {
    let config = SimConfig::default().with_max_sim_ns(100_000_000);
    let result = Scenario::wakeup_demo(&config, 0xA5F0_5EED).run();
    let multi = result.multi.expect("wakeup demo is a co-location scenario");

    println!(
        "fast budget: {} pages shared by {} tenants, rebalanced every 10 ms\n",
        multi.fast_budget_pages,
        multi.tenants.len()
    );
    print!("{}", multi.summary());
    println!(
        "\n(the controller follows demand; each tenant's watermark demotion \
         drains over-quota pages)"
    );
}
