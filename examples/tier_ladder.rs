//! N-tier memory ladders: the same workload on deeper hierarchies.
//!
//! Runs the CacheLib CDN workload on the emulated-CXL two-tier testbed
//! (1:8), the 3-tier DRAM→CXL→NVMe ladder, and the 4-tier archive ladder,
//! for three policy families — the watermark design (HybridTier), the
//! frequency design (Memtis), and the device-counter design (NeoMem). The
//! fixed seed means every cell sees identical traffic, so the latency
//! spread is entirely placement quality: deeper ladders punish a policy
//! that lets the hot set slip below the top rung, and the demotion chains
//! keep middle rungs drained so promotions never wedge against a full rung.
//!
//! Usage: `cargo run --release --example tier_ladder`

use hybridtier::prelude::*;

fn main() {
    let config = SimConfig::default().with_max_ops(400_000);
    let policies = [
        PolicyKind::HybridTier,
        PolicyKind::Memtis,
        PolicyKind::NeoMem,
    ];

    // The two-tier plane comes first, then the ladder planes — the same
    // canonical order the bench harness's "tiers" section uses.
    let scenarios = ScenarioMatrix::new(config, 7)
        .workloads([WorkloadId::CdnCacheLib])
        .ratios([TierRatio::OneTo8])
        .ladders(LadderKind::ALL)
        .policies(policies)
        .fixed_seed()
        .build();
    let sweep = SweepRunner::new(0).run(scenarios);

    println!(
        "CacheLib CDN, 400k ops per cell, identical traffic everywhere \
         ({} runs in {:.2}s on {} threads)",
        sweep.results.len(),
        sweep.wall.as_secs_f64(),
        sweep.threads
    );
    println!(
        "{:<16} {:<12} {:>9} {:>10} {:>9} {:>11} {:>11}",
        "tiers", "policy", "p50 (ns)", "mean (ns)", "top-hit", "promotions", "demotions"
    );
    for r in &sweep.results {
        let m = &r.report;
        println!(
            "{:<16} {:<12} {:>9} {:>10.1} {:>8.1}% {:>11} {:>11}",
            r.tier,
            r.policy,
            m.latency.p50_ns,
            m.latency.mean_ns,
            m.fast_hit_frac * 100.0,
            m.migrations.promotions,
            m.migrations.demotions,
        );
    }
    println!("\ntopologies: 1:8 = two-tier emulated CXL");
    for kind in LadderKind::ALL {
        println!("            {} = {} tiers", kind.label(), kind.n_tiers());
    }
}
