//! Elastic fleet execution with a worker loss, simulated in-process: three
//! workers share a sharded sweep, one is killed mid-shard, and the
//! coordinator retries/reassigns until the merged report is identical to
//! the unsharded run — then prints the scheduling event log.
//!
//! ```text
//! cargo run --release --example fleet_executor
//! ```
//!
//! The kill here is a deterministic `FaultPlan` injection (the same layer
//! the chaos tests drive); on a real fleet the workers would be
//! `ProcessWorker`s spawning `bench --shard i/N --json …` on other hosts,
//! and loss would be a dead connection. Either way the coordinator's
//! behaviour — detect, retry with backoff, reassign to survivors — is the
//! one pinned by `crates/fleet-exec`'s test suite.

use hybridtier::mem::TierRatio;
use hybridtier::policies::PolicyKind;
use hybridtier::runner::remote::{sweep_coordinator, FaultKind, FaultPlan, FleetConfig};
use hybridtier::runner::{ScenarioMatrix, SweepRunner};
use hybridtier::sim::SimConfig;
use hybridtier::workloads::WorkloadId;

fn main() {
    const WORKERS: usize = 3;
    const SHARDS: usize = 6;
    let matrix = || {
        ScenarioMatrix::new(SimConfig::default().with_max_ops(40_000), 0xF1EE7)
            .workloads([WorkloadId::CdnCacheLib, WorkloadId::SocialCacheLib])
            .policies([
                PolicyKind::HybridTier,
                PolicyKind::Memtis,
                PolicyKind::FirstTouch,
            ])
            .ratios([TierRatio::OneTo8])
            .build()
    };
    println!(
        "matrix: {} scenarios, {WORKERS} workers, {SHARDS} shards; worker w1 dies mid-shard\n",
        matrix().len()
    );

    // The fault plan kills w1 while it is running its first shard — the
    // coordinator sees the channel drop, requeues the shard, and a
    // survivor picks it up.
    let fleet = sweep_coordinator(matrix, WORKERS, FleetConfig::default())
        .with_faults(FaultPlan::new(vec![FaultKind::KillMid.on(1)]))
        .run_sweep(SHARDS)
        .expect("one loss out of three workers is recoverable");

    println!("scheduling log (logical timestamps):");
    print!("{}", fleet.exec.event_log());
    println!(
        "\nsummary: {} retries, {} reassignments, {} worker(s) lost",
        fleet.exec.retries, fleet.exec.reassignments, fleet.exec.workers_lost
    );
    for w in &fleet.exec.workers {
        println!(
            "  {:<4} weight {} completed {} shard(s){}",
            w.label,
            w.weight,
            w.completed,
            if w.lost { "  [lost]" } else { "" }
        );
    }

    // The loss was invisible to the results: identical to a plain
    // unsharded sweep in every deterministic field.
    let reference = SweepRunner::serial().run(matrix());
    assert!(fleet.report.same_outcomes(&reference));
    assert!(fleet
        .report
        .results
        .iter()
        .zip(&reference.results)
        .all(|(f, r)| f.label == r.label && f.fingerprint() == r.fingerprint()));
    println!(
        "\nmerged report identical to the unsharded run: yes ({} scenarios)",
        fleet.report.results.len()
    );
}
