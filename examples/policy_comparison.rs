//! Compare all six tiering systems on one workload — in parallel.
//!
//! Runs the paper's six-system comparison (Figure 9/10 style) on the
//! CacheLib CDN workload at a chosen fast:slow ratio through the parallel
//! scenario runner: all simulations execute concurrently across the
//! machine's cores and the table prints from the merged sweep report.
//!
//! Usage: `cargo run --release --example policy_comparison [1:16|1:8|1:4]`

use hybridtier::prelude::*;

fn main() {
    let ratio = match std::env::args().nth(1).as_deref() {
        Some("1:16") => TierRatio::OneTo16,
        Some("1:4") => TierRatio::OneTo4,
        _ => TierRatio::OneTo8,
    };
    let config = SimConfig::default().with_max_ops(400_000);

    // One scenario per system, plus the all-fast upper bound; the fixed
    // seed means every system sees identical traffic.
    let mut scenarios = ScenarioMatrix::new(config.clone(), 7)
        .workloads([WorkloadId::CdnCacheLib])
        .ratios([ratio])
        .policies(PolicyKind::COMPARED)
        .fixed_seed()
        .build();
    scenarios.push(Scenario::suite(
        WorkloadId::CdnCacheLib,
        PolicyKind::AllFast,
        ratio,
        &config,
        7,
    ));
    let sweep = SweepRunner::new(0).run(scenarios);

    println!(
        "CacheLib CDN @ {ratio} fast:slow — 400k ops, sampled 1/19 \
         ({} runs in {:.2}s on {} threads)",
        sweep.results.len(),
        sweep.wall.as_secs_f64(),
        sweep.threads
    );
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>12} {:>12}",
        "policy", "p50 (ns)", "Mop/s", "fast-hit", "promotions", "demotions"
    );
    for kind in PolicyKind::COMPARED {
        let report = &sweep
            .cell(WorkloadId::CdnCacheLib, ratio, kind)
            .expect("cell in sweep")
            .report;
        println!(
            "{:<12} {:>10} {:>12.3} {:>9.1}% {:>12} {:>12}",
            report.policy,
            report.latency.p50_ns,
            report.throughput_mops(),
            report.fast_hit_frac * 100.0,
            report.migrations.promotions,
            report.migrations.demotions,
        );
    }
    let upper = &sweep
        .cell(WorkloadId::CdnCacheLib, ratio, PolicyKind::AllFast)
        .expect("upper bound in sweep")
        .report;
    println!(
        "{:<12} {:>10} {:>12.3} {:>9.1}%          (upper bound)",
        "AllFast",
        upper.latency.p50_ns,
        upper.throughput_mops(),
        upper.fast_hit_frac * 100.0,
    );
}
