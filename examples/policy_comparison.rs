//! Compare all six tiering systems on one workload.
//!
//! Runs the paper's six-system comparison (Figure 9/10 style) on the
//! CacheLib CDN workload at a chosen fast:slow ratio and prints a table of
//! median latency, throughput, fast-tier hit rate, and migration volume.
//!
//! Usage: `cargo run --release --example policy_comparison [1:16|1:8|1:4]`

use hybridtier::prelude::*;

fn main() {
    let ratio = match std::env::args().nth(1).as_deref() {
        Some("1:16") => TierRatio::OneTo16,
        Some("1:4") => TierRatio::OneTo4,
        _ => TierRatio::OneTo8,
    };
    let config = SimConfig::default().with_max_ops(400_000);

    println!("CacheLib CDN @ {ratio} fast:slow — 400k ops, sampled 1/19");
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>12} {:>12}",
        "policy", "p50 (ns)", "Mop/s", "fast-hit", "promotions", "demotions"
    );
    for kind in PolicyKind::COMPARED {
        let report = run_suite_experiment(WorkloadId::CdnCacheLib, kind, ratio, &config, 7);
        println!(
            "{:<12} {:>10} {:>12.3} {:>9.1}% {:>12} {:>12}",
            report.policy,
            report.latency.p50_ns,
            report.throughput_mops(),
            report.fast_hit_frac * 100.0,
            report.migrations.promotions,
            report.migrations.demotions,
        );
    }
    let upper = run_suite_experiment(
        WorkloadId::CdnCacheLib,
        PolicyKind::AllFast,
        ratio,
        &config,
        7,
    );
    println!(
        "{:<12} {:>10} {:>12.3} {:>9.1}%          (upper bound)",
        "AllFast",
        upper.latency.p50_ns,
        upper.throughput_mops(),
        upper.fast_hit_frac * 100.0,
    );
}
