//! Dynamic fleets: tenant churn under pluggable quota objectives.
//!
//! Three tenants share one physical fast tier: a hot cache-style tenant, a
//! wide lukewarm analytics tenant, and a `burst` tenant that departs a
//! third of the way in (its fast pages are reclaimed into the live budget
//! immediately) and arrives again — a fresh slot, same name — two thirds
//! in, admitted under the controller's min-one guarantee. The same churn
//! trajectory runs under each built-in quota objective (proportional,
//! max-min, SLO-utility), so the printed trajectories show how the
//! *objective* — not the workload — shapes who gets fast memory.
//!
//! This runs the *same* fleet scenario as the bench `"fleet"` sweep and
//! the runner's golden suite (`Scenario::fleet_churn_demo`), so the quota
//! trajectories printed here are the ones those pin.
//!
//! Usage: `cargo run --release --example fleet_churn`

use hybridtier::policies::ObjectiveKind;
use hybridtier::prelude::*;
use hybridtier::runner::Scenario;

fn main() {
    let config = SimConfig::default().with_max_sim_ns(60_000_000);
    for objective in ObjectiveKind::ALL {
        let result = Scenario::fleet_churn_demo(objective, &config, 0xA5F0_5EED).run();
        let multi = result.multi.expect("fleet scenario has multi detail");

        println!(
            "=== objective: {} ({} pages shared, rebalanced every 5 ms) ===\n",
            objective.label(),
            multi.fast_budget_pages,
        );
        print!("{}", multi.summary());
        println!();
    }
    println!(
        "(departures reclaim fast pages into the live budget immediately; \
         arrivals start from the min-one share and earn their real share at \
         the next rebalance)"
    );
}
