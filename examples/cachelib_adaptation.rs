//! Watch tiering systems adapt to a hotness distribution change.
//!
//! Reproduces the paper's Figure 4 scenario interactively: a CacheLib CDN
//! workload runs in steady state until, at t = 2 s, two thirds of the hot
//! objects turn cold and a new hot set emerges. All three systems simulate
//! concurrently through the sweep runner; the example prints each system's
//! windowed mean latency so the recovery (or failure to recover) is visible
//! directly in the terminal.
//!
//! Usage: `cargo run --release --example cachelib_adaptation`

use hybridtier::prelude::*;

const SHIFT_NS: u64 = 2_000_000_000;

fn main() {
    let workload = WorkloadSpec::custom("CDN-shift", |seed| {
        Box::new(CacheLibWorkload::new(
            CacheLibConfig::cdn()
                .with_uniform_size(16 << 10)
                .without_churn()
                .with_seed(seed)
                .with_shift(SHIFT_NS, 2.0 / 3.0),
        ))
    });
    let cfg = SimConfig {
        window_ns: 200_000_000,
        max_sim_ns: 7_000_000_000,
        ..SimConfig::default()
    };

    let systems = [
        PolicyKind::AutoNuma,
        PolicyKind::Memtis,
        PolicyKind::HybridTier,
    ];
    let sweep = SweepRunner::new(0).run(
        systems
            .iter()
            .map(|&kind| {
                Scenario::new(
                    kind.label(),
                    workload.clone(),
                    PolicySpec::Kind(kind),
                    TierSpec::Ratio(TierRatio::OneTo16),
                    &cfg,
                    7,
                )
            })
            .collect(),
    );
    let reports: Vec<&SimReport> = sweep.results.iter().map(|r| &r.report).collect();

    println!(
        "windowed mean op latency (ns); hotness shift at t = 2.0 s \
         ({} runs in {:.2}s on {} threads)\n",
        sweep.results.len(),
        sweep.wall.as_secs_f64(),
        sweep.threads
    );
    print!("{:>6}", "t(s)");
    for r in &reports {
        print!(" {:>11}", r.policy);
    }
    println!();
    let windows = reports.iter().map(|r| r.timeline.len()).min().unwrap_or(0);
    for w in 0..windows {
        let t = reports[0].timeline[w].t_ns as f64 / 1e9;
        print!("{t:>6.1}");
        for r in &reports {
            print!(" {:>11}", r.timeline[w].mean_ns);
        }
        let marker = if (reports[0].timeline[w].t_ns) == SHIFT_NS {
            "  <- distribution change"
        } else {
            ""
        };
        println!("{marker}");
    }

    println!();
    for r in &reports {
        match adaptation_time_ns(&r.timeline, SHIFT_NS, 0.01, 3) {
            Some(ns) => println!(
                "{:<12} re-converged {:.1} s after the shift",
                r.policy,
                ns as f64 / 1e9
            ),
            None => println!("{:<12} did not re-converge within the run", r.policy),
        }
    }
}
