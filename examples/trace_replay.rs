//! Record a workload to an on-disk trace, then replay it — bit-identically.
//!
//! Demonstrates the streaming trace pipeline end to end: the CacheLib CDN
//! generator is captured to a chunked, checksummed trace file
//! (format: `docs/TRACE_FORMAT.md`), the file is replayed through
//! `WorkloadSpec::Trace` under every compared policy, and each replayed
//! `SimReport` fingerprint is checked against the direct generator run.
//! Replay streams one chunk at a time, so the peak resident trace memory
//! (printed below) stays a small fraction of the file size no matter how
//! long the trace is.
//!
//! Usage: `cargo run --release --example trace_replay [ops]`

use hybridtier::prelude::*;

fn main() {
    let ops: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let seed = 0xA5F0_5EED;
    let path = std::env::temp_dir().join("hybridtier-trace-replay-example.trace");

    // Record: capture the generator's exact op stream to disk.
    let mut source = build_workload(WorkloadId::CdnCacheLib, seed);
    let summary = record_workload(source.as_mut(), ops, &path, 4096).expect("record trace");
    let file_len = std::fs::metadata(&path).expect("trace metadata").len();
    println!(
        "recorded {} ops / {} accesses into {} chunks ({} KiB at {})",
        summary.ops,
        summary.accesses,
        summary.chunks,
        file_len / 1024,
        path.display()
    );

    // Replay the file and the generator side by side under each policy.
    let config = SimConfig::default().with_max_ops(ops);
    println!(
        "\n{:<12} {:>10} {:>9} {:>14} {:>12}",
        "policy", "p50 (ns)", "fast-hit", "fingerprint", "replay==live"
    );
    for kind in PolicyKind::COMPARED {
        let live = Scenario::suite(
            WorkloadId::CdnCacheLib,
            kind,
            TierRatio::OneTo8,
            &config,
            seed,
        )
        .run();
        let replayed = Scenario::new(
            format!("replay/{}", kind.label()),
            WorkloadSpec::Trace(path.clone()),
            PolicySpec::Kind(kind),
            TierSpec::Ratio(TierRatio::OneTo8),
            &config,
            seed,
        )
        .run();
        let identical = live.report.fingerprint() == replayed.report.fingerprint();
        println!(
            "{:<12} {:>10} {:>8.1}% {:>14x} {:>12}",
            kind.label(),
            replayed.report.latency.p50_ns,
            replayed.report.fast_hit_frac * 100.0,
            replayed.report.fingerprint(),
            if identical { "yes" } else { "NO" }
        );
        assert!(identical, "replay must be bit-identical to the live run");
    }

    // The O(chunk) guarantee, measured on this very file.
    let mut replay = TraceReplayWorkload::open(&path).expect("open trace");
    let mut batch = AccessBatch::with_capacity(64, 256);
    while replay.fill_batch(0, 64, &mut batch) > 0 {
        batch.clear();
    }
    println!(
        "\npeak resident trace memory: {} KiB of a {} KiB file ({:.1}%)",
        replay.max_resident_bytes() / 1024,
        file_len / 1024,
        replay.max_resident_bytes() as f64 * 100.0 / file_len as f64
    );

    std::fs::remove_file(&path).ok();
}
