//! Offline stand-in for the `rand` crate.
//!
//! The simulation workspace needs deterministic, seedable pseudo-randomness
//! but builds in environments with no crates.io access, so this vendored
//! shim provides the (small) `rand` 0.8 API surface the workspace uses:
//!
//! * [`rngs::SmallRng`] — a xoshiro256\*\* generator (same family the real
//!   `SmallRng` uses on 64-bit targets), seeded via SplitMix64.
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`].
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`] over the primitive
//!   integer/float types.
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Streams are deterministic in the seed but are **not** bit-compatible
//! with the upstream crate — everything downstream treats the generator as
//! an opaque deterministic source, so only self-consistency matters.

#![warn(missing_docs)]

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander (public for tests; stateless otherwise).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types a uniform range can be sampled over.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                low.wrapping_add((uniform_u64(rng, span)) as $t)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add((uniform_u64(rng, span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + unit_f64(rng) * (high - low)
    }
    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_half_open(rng, low, high + f64::EPSILON * high.abs().max(1.0))
    }
}

/// Uniform value in `[0, span)` without modulo bias (Lemire-style rejection).
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types `Rng::gen` can produce (the `Standard` distribution equivalent).
pub trait StandardSample {
    /// Draws one value from the generator's standard distribution.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`
    /// (`[0, 1)` for floats, full range for integers, fair coin for bool).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a uniform value from `range`.
    #[inline]
    fn gen_range<T: SampleUniform, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator: xoshiro256\*\*.
    ///
    /// Matches the role (not the bit stream) of `rand::rngs::SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (the subset of `rand::seq::SliceRandom` used here).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0usize..=5);
            assert!(w <= 5);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }

    #[test]
    fn works_through_dyn_and_generic_bounds() {
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut r = SmallRng::seed_from_u64(11);
        let v = takes_generic(&mut r);
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = SmallRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits));
    }
}
