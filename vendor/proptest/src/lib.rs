//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, [`strategy::Just`], `any::<T>()`, range strategies, tuple
//! strategies, and `prop::collection::vec`. Cases are generated from a
//! deterministic per-test RNG (seeded from the test name and case index) so
//! failures are reproducible; there is **no shrinking** — a failing case
//! reports its inputs via the assertion message instead.

#![warn(missing_docs)]

/// Strategies: composable random-value generators.
pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// The RNG handed to strategies (concrete, so strategies stay
    /// object-safe and unions can box them).
    pub type TestRng = SmallRng;

    /// A generator of random values of type `Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Uniform choice among boxed strategies (what `prop_oneof!` builds).
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> std::fmt::Debug for Union<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} options)", self.options.len())
        }
    }

    impl<V> Union<V> {
        /// Builds a union over the given options.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].sample(rng)
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen::<$t>()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AnyStrategy<A>(std::marker::PhantomData<A>);

    impl<A: Arbitrary> Strategy for AnyStrategy<A> {
        type Value = A;
        fn sample(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// A strategy for any value of `A` (integers full-range, fair bools).
    pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
        AnyStrategy(std::marker::PhantomData)
    }
}

/// Collection strategies (`prop::collection` in real proptest).
pub mod collection {
    use rand::Rng;

    use crate::strategy::{Strategy, TestRng};

    /// Size specifications accepted by [`vec`].
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

/// Test-runner configuration and per-case RNG derivation.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Deterministic RNG for one (test, case) pair.
    pub fn case_rng(test_name: &str, case: u32) -> SmallRng {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        SmallRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case)))
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced strategy modules (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each function runs `config.cases` times with
/// inputs drawn from its strategies. No shrinking is performed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfgd $cfg; $($rest)*);
    };
    // Attributes (doc comments and `#[test]` itself) are captured wholesale
    // and re-emitted: matching the literal `#[test]` separately would be
    // ambiguous with the `meta` fragment.
    (@cfgd $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut proptest_case_rng =
                        $crate::test_runner::case_rng(stringify!($name), case);
                    $(
                        let $arg = $crate::strategy::Strategy::sample(
                            &($strat),
                            &mut proptest_case_rng,
                        );
                    )+
                    let result: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            msg
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfgd $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (with
/// its inputs reproducible from the deterministic seed) instead of
/// panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(format!(
                "{} (left: {:?}, right: {:?})",
                format!($($fmt)+),
                lhs,
                rhs
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($strat)),+];
        $crate::strategy::Union::new(options)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Color {
        Red,
        Blue,
    }

    fn colors() -> impl Strategy<Value = Color> {
        prop_oneof![Just(Color::Red), Just(Color::Blue)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds; vec lengths respect the size range.
        #[test]
        fn ranges_and_vecs(xs in prop::collection::vec((0u64..256, any::<bool>()), 1..50), n in 1usize..64) {
            prop_assert!((1..50).contains(&xs.len()));
            prop_assert!((1..64).contains(&n));
            for &(x, _) in &xs {
                prop_assert!(x < 256, "out of range: {}", x);
            }
        }

        /// Unions draw from every arm eventually (statistically certain in
        /// 32 cases x 20 draws).
        #[test]
        fn oneof_draws_both(seed in 0u32..1000) {
            let _ = seed;
            let mut rng = crate::test_runner::case_rng("oneof_draws_both_inner", seed);
            let strat = colors();
            let mut saw = (false, false);
            for _ in 0..64 {
                match crate::strategy::Strategy::sample(&strat, &mut rng) {
                    Color::Red => saw.0 = true,
                    Color::Blue => saw.1 = true,
                }
            }
            prop_assert!(saw.0 && saw.1);
        }

        /// prop_assert_eq works with and without custom messages.
        #[test]
        fn eq_macros(a in 0u64..10) {
            prop_assert_eq!(a, a);
            prop_assert_eq!(a + 1, a + 1, "custom {:?}", a);
            prop_assert_ne!(a, a + 1);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::case_rng("t", 3);
        let mut b = crate::test_runner::case_rng("t", 3);
        let s = 0u64..1000;
        for _ in 0..10 {
            assert_eq!(
                crate::strategy::Strategy::sample(&s, &mut a),
                crate::strategy::Strategy::sample(&s, &mut b)
            );
        }
    }
}
