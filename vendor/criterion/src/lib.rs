//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Provides the API surface the workspace's `benches/` use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — backed
//! by a simple median-of-samples wall-clock harness. Output is one line per
//! benchmark (`name ... median time/iter over N samples`); there is no HTML
//! report, statistical analysis, or baseline comparison.
//!
//! Benchmarks are compiled with `harness = false`, exactly as with the real
//! crate, so `cargo bench` runs them and `cargo test --benches` type-checks
//! them.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(self, id, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self.clone(),
            name: name.to_string(),
            _parent: std::marker::PhantomData,
        }
    }

    /// Finalizes the run (flush point; kept for API compatibility).
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix and configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: Criterion,
    name: String,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&self.criterion, &full, |b| f(b));
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&self.criterion, &full, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    /// Duration of the timed section recorded by the last `iter` call.
    elapsed: Duration,
    /// Iterations the harness asks the routine to run.
    iters: u64,
}

impl Bencher {
    /// Times `routine`, running it enough times to fill the sample budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(config: &Criterion, id: &str, mut f: impl FnMut(&mut Bencher)) {
    // Warm-up and iteration-count calibration: run single iterations until
    // the warm-up budget is spent, tracking the observed cost per call.
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 1,
    };
    let warm_start = Instant::now();
    let mut calls = 0u64;
    while warm_start.elapsed() < config.warm_up_time || calls == 0 {
        f(&mut b);
        calls += 1;
        if calls >= 1_000 {
            break;
        }
    }
    let per_call = warm_start.elapsed().as_secs_f64() / calls as f64;

    // Choose iters so each sample is big enough to time reliably, and the
    // whole measurement stays near the configured budget.
    let sample_budget = config.measurement_time.as_secs_f64() / config.sample_size as f64;
    b.iters = ((sample_budget / per_call.max(1e-9)) as u64).clamp(1, 10_000_000);

    let mut samples: Vec<f64> = Vec::with_capacity(config.sample_size);
    let run_start = Instant::now();
    for _ in 0..config.sample_size {
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
        // Keep badly calibrated benchmarks from overshooting 3x the budget.
        if run_start.elapsed() > config.measurement_time * 3 {
            break;
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    println!(
        "bench {id:<48} {:>14}/iter (median of {} samples, {} iters each)",
        format_time(median),
        samples.len(),
        b.iters
    );
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group: both the `name/config/targets` form and the
/// positional form of the real crate are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut count = 0u64;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::from_parameter("x"), &21u64, |b, &v| {
            b.iter(|| v * 2)
        });
        g.bench_function(BenchmarkId::new("f", 3), |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
