//! Timing guard: injected failures must use short deterministic budgets.
//!
//! `cargo test -p fleet-exec` is in the CI matrix; this test keeps it
//! honest by running the most timeout-heavy recovery path end to end and
//! bounding its wall time. If someone reintroduces multi-second sleeps
//! into the fault plumbing (a long default delay, an uncapped backoff, a
//! blocking `recv` without a deadline), this fails before CI slows to a
//! crawl.

use std::time::{Duration, Instant};

use fleet_exec::{sweep_coordinator, FaultKind, FaultPlan, FleetConfig};
use tiering_mem::TierRatio;
use tiering_policies::PolicyKind;
use tiering_runner::{Scenario, ScenarioMatrix, SweepRunner};
use tiering_sim::SimConfig;
use tiering_workloads::WorkloadId;

fn matrix() -> Vec<Scenario> {
    ScenarioMatrix::new(SimConfig::default().with_max_ops(1_000), 0x7131)
        .workloads([WorkloadId::CdnCacheLib])
        .policies([PolicyKind::HybridTier, PolicyKind::FirstTouch])
        .ratios([TierRatio::OneTo8])
        .build()
}

#[test]
fn fault_heavy_recovery_stays_inside_the_time_budget() {
    let config = FleetConfig {
        shard_timeout: Duration::from_millis(100),
        lag_grace: Duration::from_millis(500),
        max_attempts: 4,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(4),
    };
    // Every slow path at once: a straggler past the timeout, a corrupt
    // artifact, and two dead workers out of four.
    let plan = FaultPlan::new(vec![
        FaultKind::Delay(Duration::from_millis(250)).on_shard(0, 0),
        FaultKind::Corrupt.on(1),
        FaultKind::KillMid.on(2),
        FaultKind::KillBefore.on(3),
    ]);
    let started = Instant::now();
    let fleet = sweep_coordinator(matrix, 4, config)
        .with_faults(plan)
        .run_sweep(6)
        .expect("all injected failures are recoverable");
    let elapsed = started.elapsed();

    let reference = SweepRunner::serial().run(matrix());
    assert!(fleet.report.same_outcomes(&reference));
    assert_eq!(fleet.exec.workers_lost, 2);
    assert!(fleet.exec.timeouts >= 1);
    assert!(fleet.exec.rejected >= 1);

    // Generous for slow CI hosts, but far below what any multi-second
    // sleep in the recovery plumbing could survive: the injected delay is
    // 250 ms, the timeout 100 ms, the grace 500 ms, backoffs single-digit
    // milliseconds.
    assert!(
        elapsed < Duration::from_secs(5),
        "fault-heavy recovery took {elapsed:?} — injected timeouts must use \
         short deterministic budgets, not multi-second sleeps"
    );
}
