//! Exhaustive failure-path coverage: every recovery path of the
//! coordinator exercised one at a time by targeted fault plans —
//! kill at each phase of a shard attempt, timeout → retry → success,
//! retry-budget exhaustion (typed error, never a hang), corrupt and
//! truncated artifacts rejected and reassigned, duplicate results
//! ignored deterministically, and a fully-dead fleet failing in bounded
//! time.

use std::time::{Duration, Instant};

use fleet_exec::{
    sweep_coordinator, FaultKind, FaultPlan, FleetConfig, FleetCoordinator, FleetError,
    FleetEventKind, ShardWorker, WorkerFailure,
};
use tiering_mem::TierRatio;
use tiering_policies::PolicyKind;
use tiering_runner::{Scenario, ScenarioMatrix, ShardSpec, SweepRunner};
use tiering_sim::SimConfig;
use tiering_workloads::WorkloadId;

/// The 4-scenario single-kind matrix the shard-equivalence suite uses.
fn matrix() -> Vec<Scenario> {
    ScenarioMatrix::new(SimConfig::default().with_max_ops(2_000), 0xD15C_0FEE)
        .workloads([WorkloadId::CdnCacheLib, WorkloadId::Silo])
        .policies([PolicyKind::HybridTier, PolicyKind::FirstTouch])
        .ratios([TierRatio::OneTo8])
        .build()
}

fn assert_matches_unsharded(fleet: &tiering_runner::SweepReport) {
    let reference = SweepRunner::serial().run(matrix());
    assert!(fleet.same_outcomes(&reference), "fleet run diverged");
    for (f, r) in fleet.results.iter().zip(&reference.results) {
        assert_eq!(f.label, r.label, "order diverged");
        assert_eq!(f.seed, r.seed, "seed drifted");
        assert_eq!(f.fingerprint(), r.fingerprint(), "outcome drifted");
    }
}

/// Asserts `wanted` appears as an ordered (not necessarily contiguous)
/// subsequence of the event log, matching on `(kind name, shard)`.
fn assert_event_subsequence(events: &[fleet_exec::FleetEvent], wanted: &[(&str, usize)]) {
    let mut it = wanted.iter().peekable();
    for e in events {
        let Some(&&(name, shard)) = it.peek() else {
            return;
        };
        let got_shard = match &e.kind {
            FleetEventKind::Assigned { shard, .. }
            | FleetEventKind::Completed { shard, .. }
            | FleetEventKind::TimedOut { shard, .. }
            | FleetEventKind::Rejected { shard, .. }
            | FleetEventKind::Retried { shard, .. }
            | FleetEventKind::Reassigned { shard, .. }
            | FleetEventKind::StaleResult { shard, .. } => Some(*shard),
            _ => None,
        };
        if e.kind.name() == name && got_shard == Some(shard) {
            it.next();
        }
    }
    assert!(
        it.peek().is_none(),
        "event log is missing {:?}; log was:\n{}",
        it.collect::<Vec<_>>(),
        events
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn kill_at_each_phase_recovers_and_matches_unsharded() {
    for kind in [
        FaultKind::KillBefore,
        FaultKind::KillMid,
        FaultKind::KillAfter,
    ] {
        let fleet = sweep_coordinator(matrix, 3, FleetConfig::snappy())
            .with_faults(FaultPlan::new(vec![kind.clone().on(1)]))
            .run_sweep(6)
            .unwrap_or_else(|e| panic!("{kind:?}: fleet failed: {e}"));
        assert_matches_unsharded(&fleet.report);
        assert_eq!(fleet.exec.workers_lost, 1, "{kind:?}");
        assert!(fleet.exec.workers[1].lost, "{kind:?}: wrong worker lost");
        assert!(
            !fleet.exec.workers[0].lost && !fleet.exec.workers[2].lost,
            "{kind:?}: survivors marked lost"
        );
        let completed: u64 = fleet.exec.workers.iter().map(|w| w.completed).sum();
        assert_eq!(completed, 6, "{kind:?}: every shard completes exactly once");
        // KillBefore/KillMid lose the in-flight shard: it must be
        // reassigned to a survivor. KillAfter loses nothing in flight.
        if matches!(kind, FaultKind::KillBefore | FaultKind::KillMid) {
            assert!(
                fleet.exec.reassignments >= 1,
                "{kind:?}: lost shard was not reassigned:\n{}",
                fleet.exec.event_log()
            );
            assert_eq!(fleet.exec.workers[1].completed, 0, "{kind:?}");
        } else {
            assert_eq!(
                fleet.exec.workers[1].completed, 1,
                "KillAfter: the result that arrived before death counts"
            );
        }
    }
}

#[test]
fn timeout_then_retry_then_success() {
    let config = FleetConfig {
        shard_timeout: Duration::from_millis(120),
        lag_grace: Duration::from_millis(1_000),
        max_attempts: 3,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(4),
    };
    let fleet = sweep_coordinator(matrix, 2, config)
        .with_faults(FaultPlan::new(vec![FaultKind::Delay(
            Duration::from_millis(300),
        )
        .on_shard(0, 0)]))
        .run_sweep(2)
        .expect("a delayed shard retries and completes");
    assert_matches_unsharded(&fleet.report);
    assert_eq!(fleet.exec.timeouts, 1);
    assert_eq!(fleet.exec.retries, 1);
    assert_eq!(fleet.exec.stale_results, 1, "the late result is discarded");
    assert_eq!(
        fleet.exec.workers_lost, 0,
        "a slow worker is not a dead one"
    );
    assert_event_subsequence(
        &fleet.exec.events,
        &[
            ("assigned", 0),
            ("timed_out", 0),
            ("stale_result", 0),
            ("retried", 0),
            ("assigned", 0),
            ("completed", 0),
        ],
    );
}

#[test]
fn retry_budget_exhausted_is_a_typed_error_not_a_hang() {
    let started = Instant::now();
    let err = sweep_coordinator(matrix, 1, FleetConfig::snappy().with_max_attempts(2))
        .with_faults(FaultPlan::new(vec![
            FaultKind::Corrupt.on_shard(0, 0),
            FaultKind::Corrupt.on_shard(0, 0),
        ]))
        .run_sweep(2)
        .expect_err("two corrupt attempts exhaust a budget of two");
    match err {
        FleetError::RetryBudgetExhausted {
            shard,
            attempts,
            last_error,
        } => {
            assert_eq!(shard, 0);
            assert_eq!(attempts, 2);
            assert!(
                last_error.contains("invalid artifact"),
                "unexpected last error: {last_error}"
            );
        }
        other => panic!("wrong error variant: {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "budget exhaustion must fail promptly"
    );
}

#[test]
fn corrupt_report_is_rejected_and_reassigned() {
    // w1 carries double weight so the deficit rule moves the retried
    // shard off the faulty w0.
    let mut coordinator = FleetCoordinator::new(FleetConfig::snappy())
        .with_faults(FaultPlan::new(vec![FaultKind::Corrupt.on_shard(0, 0)]));
    let matrix_len = matrix().len();
    coordinator = coordinator
        .with_worker("w0", fleet_exec::LocalWorker::new(matrix))
        .with_worker("w1", fleet_exec::LocalWorker::new(matrix).with_weight(2))
        .with_validator(
            move |spec: ShardSpec, report: &tiering_runner::ShardReport| {
                if report.matrix_len != matrix_len {
                    return Err(format!(
                        "matrix length {} != {matrix_len}",
                        report.matrix_len
                    ));
                }
                if report.sweep.results.len() != spec.count_of(matrix_len) {
                    return Err("wrong result count".into());
                }
                Ok(())
            },
        );
    let run = coordinator.run(2).expect("corruption is recoverable");
    let merged = tiering_runner::SweepReport::merge(run.artifacts).expect("clean union");
    assert_matches_unsharded(&merged);
    assert_eq!(run.exec.rejected, 1);
    assert!(run.exec.retries >= 1);
    assert_event_subsequence(
        &run.exec.events,
        &[("rejected", 0), ("reassigned", 0), ("completed", 0)],
    );
}

/// A String-artifact worker: the subprocess plane's shape without the
/// subprocess, for exercising text-level corruption handling.
struct TextWorker;
impl ShardWorker for TextWorker {
    type Artifact = String;
    fn run_shard(&mut self, shard: ShardSpec, _attempt: u32) -> Result<String, WorkerFailure> {
        Ok(format!("{{\"shard\":{}}}", shard.index()))
    }
}

#[test]
fn truncated_text_artifact_is_rejected_then_retried() {
    let coordinator = FleetCoordinator::new(FleetConfig::snappy())
        .with_worker("w0", TextWorker)
        .with_worker("w1", TextWorker)
        .with_validator(|spec: ShardSpec, text: &String| {
            if *text == format!("{{\"shard\":{}}}", spec.index()) {
                Ok(())
            } else {
                Err(format!("damaged artifact: {text:?}"))
            }
        })
        .with_faults(FaultPlan::new(vec![
            FaultKind::Truncate.on_shard(0, 0),
            FaultKind::Corrupt.on_shard(1, 1),
        ]));
    let run = coordinator.run(4).expect("both damages are recoverable");
    assert_eq!(run.artifacts.len(), 4);
    for (i, a) in run.artifacts.iter().enumerate() {
        assert_eq!(*a, format!("{{\"shard\":{i}}}"));
    }
    assert_eq!(run.exec.rejected, 2);
}

#[test]
fn duplicate_shard_result_is_ignored_deterministically() {
    let config = FleetConfig {
        shard_timeout: Duration::from_millis(120),
        lag_grace: Duration::from_millis(1_000),
        max_attempts: 3,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(4),
    };
    // w0's first attempt at shard 0 straggles past the timeout; the
    // retry completes the shard; w0's late duplicate must be discarded
    // at the next round boundary — exactly once, exactly there.
    let fleet = sweep_coordinator(matrix, 2, config)
        .with_faults(FaultPlan::new(vec![FaultKind::Delay(
            Duration::from_millis(300),
        )
        .on_shard(0, 0)]))
        .run_sweep(4)
        .expect("duplicate results are survivable");
    assert_matches_unsharded(&fleet.report);
    assert_eq!(fleet.exec.stale_results, 1, "one duplicate, one discard");
    let completions = fleet
        .exec
        .events
        .iter()
        .filter(|e| matches!(e.kind, FleetEventKind::Completed { shard: 0, .. }))
        .count();
    assert_eq!(completions, 1, "shard 0 must complete exactly once");
}

#[test]
fn fully_dead_fleet_is_a_typed_error_in_bounded_time() {
    let started = Instant::now();
    let err = sweep_coordinator(matrix, 3, FleetConfig::snappy())
        .with_faults(FaultPlan::new(vec![
            FaultKind::KillBefore.on(0),
            FaultKind::KillMid.on(1),
            FaultKind::KillBefore.on(2),
        ]))
        .run_sweep(6)
        .expect_err("no survivors, no sweep");
    match err {
        FleetError::AllWorkersLost { completed, shards } => {
            assert_eq!(shards, 6);
            assert!(completed < shards);
        }
        other => panic!("wrong error variant: {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "a dead fleet must fail in bounded time, not hang"
    );
}

#[test]
fn weighted_quota_sizing_is_exact_in_the_happy_path() {
    let mut coordinator = FleetCoordinator::new(FleetConfig::snappy());
    coordinator = coordinator
        .with_worker("fast", fleet_exec::LocalWorker::new(matrix).with_weight(3))
        .with_worker("slow", fleet_exec::LocalWorker::new(matrix));
    let fleet = coordinator.run_sweep(8).expect("no faults");
    assert_matches_unsharded(&fleet.report);
    assert_eq!(fleet.exec.workers[0].weight, 3);
    assert_eq!(
        (
            fleet.exec.workers[0].completed,
            fleet.exec.workers[1].completed
        ),
        (6, 2),
        "weight 3:1 over 8 shards apportions 6:2;\n{}",
        fleet.exec.event_log()
    );
}

#[test]
fn calibration_probe_produces_a_usable_weight() {
    let fleet = FleetCoordinator::new(FleetConfig::snappy())
        .with_worker(
            "probed",
            fleet_exec::LocalWorker::new(matrix).with_probe(true),
        )
        .with_worker("declared", fleet_exec::LocalWorker::new(matrix))
        .run_sweep(4)
        .expect("probing must not break execution");
    assert_matches_unsharded(&fleet.report);
    assert!(fleet.exec.workers[0].weight >= 1, "weights stay positive");
    assert!(matches!(
        fleet.exec.events[0].kind,
        FleetEventKind::Calibrated { weight } if weight == fleet.exec.workers[0].weight
    ));
}

#[test]
fn degenerate_fleets_are_typed_errors() {
    let empty: FleetCoordinator<tiering_runner::ShardReport> =
        FleetCoordinator::new(FleetConfig::snappy());
    assert!(matches!(empty.run(4), Err(FleetError::NoWorkers)));
    let no_shards = sweep_coordinator(matrix, 2, FleetConfig::snappy());
    assert!(matches!(no_shards.run(0), Err(FleetError::NoShards)));
}

#[test]
fn more_shards_than_scenarios_still_merges() {
    // Trailing shards own zero scenarios; the union must still be
    // index-complete and exact.
    let fleet = sweep_coordinator(matrix, 2, FleetConfig::snappy())
        .run_sweep(matrix().len() + 3)
        .expect("empty shards are legal");
    assert_matches_unsharded(&fleet.report);
}
