//! Deterministic fault injection: the chaos harness the executor ships
//! with.
//!
//! A [`FaultPlan`] is interpreted by the coordinator's worker shell (the
//! thread a [`ShardWorker`](crate::ShardWorker) runs on), not by the
//! worker itself — so the *real* failure-detection paths are exercised: a
//! kill is an actual thread exit (the coordinator sees a channel
//! disconnect, exactly like a dead host), a delay is a real sleep past the
//! response timeout, and corruption damages the real artifact before it
//! is sent. Plans are data: either hand-written for targeted tests or
//! generated from a seed ([`FaultPlan::seeded`]) with **no wall-clock
//! randomness**, so every chaotic run is replayable.

use std::time::Duration;

use tiering_runner::derive_seed;

/// What goes wrong, and when relative to the shard attempt it targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker dies *before* running the shard: its thread exits
    /// without producing anything, like a host lost between assignment
    /// and start. Detected as a channel disconnect.
    KillBefore,
    /// The worker dies *mid-shard*: the work runs (and is wasted) but no
    /// result is ever sent. Detected as a channel disconnect.
    KillMid,
    /// The worker dies *after* responding: the result arrives, then the
    /// worker is gone when the next shard is offered.
    KillAfter,
    /// The response is held back for the given duration — long enough
    /// (by the test's choice) to trip the coordinator's response timeout
    /// and exercise the retry/stale-result paths.
    Delay(Duration),
    /// The artifact is structurally damaged
    /// ([`ShardArtifact::corrupt`](crate::ShardArtifact::corrupt)) before
    /// sending; the validator must reject it.
    Corrupt,
    /// The artifact is cut short
    /// ([`ShardArtifact::truncate`](crate::ShardArtifact::truncate))
    /// before sending — a partially-written shard json.
    Truncate,
}

impl FaultKind {
    /// This fault, armed against `worker`'s next shard attempt.
    pub fn on(self, worker: usize) -> Fault {
        Fault {
            worker,
            shard: None,
            kind: self,
        }
    }

    /// This fault, armed against `worker`'s next attempt at shard
    /// index `shard` specifically.
    pub fn on_shard(self, worker: usize, shard: usize) -> Fault {
        Fault {
            worker,
            shard: Some(shard),
            kind: self,
        }
    }

    /// Whether this fault permanently removes the worker.
    pub fn is_kill(&self) -> bool {
        matches!(
            self,
            FaultKind::KillBefore | FaultKind::KillMid | FaultKind::KillAfter
        )
    }
}

/// One armed fault: a [`FaultKind`] bound to a worker (and optionally to
/// one shard index). Each fault fires **once**, on the first matching
/// attempt, then disarms — except that a kill is permanent by nature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// Index of the targeted worker (coordinator order).
    pub worker: usize,
    /// Shard index this fault waits for; `None` fires on the worker's
    /// next attempt at any shard.
    pub shard: Option<usize>,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of injected failures for one coordinator run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: nothing goes wrong.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan from an explicit fault list.
    pub fn new(faults: Vec<Fault>) -> Self {
        FaultPlan { faults }
    }

    /// Arms one more fault.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// The armed faults, in arming order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// How many distinct workers this plan kills.
    pub fn workers_killed(&self) -> usize {
        let mut killed: Vec<usize> = self
            .faults
            .iter()
            .filter(|f| f.kind.is_kill())
            .map(|f| f.worker)
            .collect();
        killed.sort_unstable();
        killed.dedup();
        killed.len()
    }

    /// Splits the plan into per-worker fault queues for `workers` workers
    /// (plan order preserved within each worker).
    pub(crate) fn per_worker(&self, workers: usize) -> Vec<Vec<Fault>> {
        let mut split = vec![Vec::new(); workers];
        for f in &self.faults {
            if f.worker < workers {
                split[f.worker].push(f.clone());
            }
        }
        split
    }

    /// A pseudo-random plan derived **only** from `seed` (via the sweep
    /// infrastructure's own [`derive_seed`] mixer — no wall clock, no
    /// global RNG): between 1 and `workers + 2` faults over `workers`
    /// workers and `shards` shard indices, guaranteed to leave **at least
    /// one worker unkilled** so the sweep can always complete. `delay` is
    /// the duration used for generated `Delay` faults; pass something
    /// comfortably past the coordinator's response timeout.
    pub fn seeded(seed: u64, workers: usize, shards: usize, delay: Duration) -> Self {
        assert!(workers > 0, "a fleet needs at least one worker");
        let mut state = seed;
        let mut next = |bound: u64| -> u64 {
            state = derive_seed(state, 0x5EED_FA07);
            if bound == 0 {
                0
            } else {
                state % bound
            }
        };
        let count = 1 + next(workers as u64 + 2) as usize;
        let mut plan = FaultPlan::none();
        let mut killed = vec![false; workers];
        for _ in 0..count {
            let worker = next(workers as u64) as usize;
            let shard = match next(3) {
                0 => None,
                _ => Some(next(shards.max(1) as u64) as usize),
            };
            let mut kind = match next(6) {
                0 => FaultKind::KillBefore,
                1 => FaultKind::KillMid,
                2 => FaultKind::KillAfter,
                3 => FaultKind::Delay(delay),
                4 => FaultKind::Corrupt,
                _ => FaultKind::Truncate,
            };
            if kind.is_kill() {
                let would_kill =
                    killed.iter().filter(|k| **k).count() + usize::from(!killed[worker]);
                if would_kill >= workers {
                    // Never kill the last survivor: downgrade to a
                    // recoverable fault instead.
                    kind = FaultKind::Corrupt;
                } else {
                    killed[worker] = true;
                }
            }
            plan.push(Fault {
                worker,
                shard,
                kind,
            });
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible_and_survivable() {
        for seed in 0..200u64 {
            for workers in 1..5usize {
                let a = FaultPlan::seeded(seed, workers, 7, Duration::from_millis(50));
                let b = FaultPlan::seeded(seed, workers, 7, Duration::from_millis(50));
                assert_eq!(a, b, "same seed must give the same plan");
                assert!(!a.is_empty(), "seeded plans always inject something");
                assert!(
                    a.workers_killed() < workers,
                    "seed {seed}: plan kills all {workers} workers: {a:?}"
                );
            }
        }
    }

    #[test]
    fn seeds_vary_plans() {
        let distinct: std::collections::HashSet<String> = (0..50u64)
            .map(|s| {
                format!(
                    "{:?}",
                    FaultPlan::seeded(s, 3, 6, Duration::from_millis(10))
                )
            })
            .collect();
        assert!(
            distinct.len() > 25,
            "seeded plans barely vary: {distinct:?}"
        );
    }

    #[test]
    fn per_worker_split_preserves_order_and_targets() {
        let plan = FaultPlan::new(vec![
            FaultKind::Corrupt.on(1),
            FaultKind::KillMid.on_shard(0, 3),
            FaultKind::Truncate.on(1),
        ]);
        let split = plan.per_worker(2);
        assert_eq!(split[0], vec![FaultKind::KillMid.on_shard(0, 3)]);
        assert_eq!(
            split[1],
            vec![FaultKind::Corrupt.on(1), FaultKind::Truncate.on(1)]
        );
        assert_eq!(plan.workers_killed(), 1);
    }
}
