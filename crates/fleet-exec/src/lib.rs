//! Elastic fleet executor: fault-tolerant fan-out of sharded sweeps.
//!
//! [`ShardSpec`](tiering_runner::ShardSpec) (PR 5) made distributed sweeps
//! *correct* — union-of-shards ≡ unsharded, merge rejects bad unions — but
//! left execution to the operator: run `bench --shard i/N` on every host by
//! hand and hope none of them dies. This crate is the missing operational
//! layer: a [`FleetCoordinator`] that partitions a sweep with the existing
//! shard machinery, fans the shards out to N workers, and survives worker
//! loss, hangs, and corrupted results while still producing the exact
//! unsharded answer.
//!
//! * [`ShardWorker`] — where a shard runs. [`LocalWorker`] executes in
//!   process (its artifact is a [`ShardReport`](tiering_runner::ShardReport),
//!   merged via
//!   [`SweepReport::merge`](tiering_runner::SweepReport::merge));
//!   [`ProcessWorker`] spawns a subprocess per shard — e.g.
//!   `bench --shard {index}/{total} --json {out}` — and reads the shard
//!   BENCH json back as a `String` (merged via `bench --merge` /
//!   `hybridtier_bench::merge`).
//! * [`FleetCoordinator`] — deterministic round-based scheduler:
//!   per-shard timeout/retry with capped exponential backoff, reassignment
//!   of a lost worker's shards to survivors (merge accepts any
//!   index-complete union, so *which* worker ran a shard never matters),
//!   and weighted shard sizing from a per-worker calibration probe.
//! * [`FleetEvent`] — a typed log of every scheduling decision
//!   (assigned / completed / timed-out / retried / reassigned / lost),
//!   with **logical** timestamps (monotone sequence numbers), sealed into
//!   the [`FleetExecReport`] and the `"fleet_exec"` BENCH json section.
//! * [`FaultPlan`] — the chaos harness this crate ships *first*: a
//!   deterministic injection layer (seeded from the sweep seed via
//!   [`derive_seed`](tiering_runner::derive_seed), no wall-clock
//!   randomness) that kills a worker before/mid/after a shard, delays a
//!   response past the timeout, or corrupts/truncates a shard artifact —
//!   so every recovery path is exercised by tests, not just claimed.
//!
//! # Determinism contract
//!
//! Everything the simulation produces — scenario results, seeds,
//! fingerprints, merge output — is bit-identical to the unsharded run for
//! *any* fault plan that leaves at least one worker alive (the chaos suite
//! pins this). The [`FleetEvent`] log is deterministic given the worker
//! set, shard count, config, and fault plan, **provided** no genuine
//! wall-clock timeout fires: scheduling is round-based and ordered by
//! worker index, timestamps are logical, and injected faults (not host
//! speed) decide outcomes. A `Delay` fault or a real straggler adds
//! `TimedOut`/`StaleResult` events whose *presence* is plan-determined but
//! whose interleaving with genuine work is host-timing dependent — golden
//! tests therefore use kill faults, which are detected by channel
//! disconnect and carry no timing dependence.
//!
//! # Example
//!
//! ```
//! use fleet_exec::{FaultKind, FaultPlan, FleetConfig, sweep_coordinator};
//! use tiering_policies::PolicyKind;
//! use tiering_runner::{ScenarioMatrix, SweepRunner};
//! use tiering_sim::SimConfig;
//! use tiering_workloads::WorkloadId;
//!
//! let matrix = || {
//!     ScenarioMatrix::new(SimConfig::default().with_max_ops(2_000), 42)
//!         .workloads([WorkloadId::CdnCacheLib, WorkloadId::Silo])
//!         .policies([PolicyKind::HybridTier, PolicyKind::FirstTouch])
//!         .build()
//! };
//! // 3 workers, one of which dies mid-shard — the sweep still completes
//! // and matches the unsharded run exactly.
//! let fleet = sweep_coordinator(matrix, 3, FleetConfig::default())
//!     .with_faults(FaultPlan::new(vec![FaultKind::KillMid.on(1)]))
//!     .run_sweep(6)
//!     .expect("two survivors finish the sweep");
//! assert!(fleet.exec.workers_lost == 1);
//! let reference = SweepRunner::serial().run(matrix());
//! assert!(fleet.report.same_outcomes(&reference));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod coordinator;
mod fault;
mod worker;

pub use coordinator::{
    sweep_coordinator, FleetConfig, FleetCoordinator, FleetError, FleetEvent, FleetEventKind,
    FleetExecReport, FleetRun, FleetSweep, WorkerStats,
};
pub use fault::{Fault, FaultKind, FaultPlan};
pub use worker::{LocalWorker, ProcessWorker, ShardArtifact, ShardWorker, WorkerFailure};
