//! Where a shard runs: the [`ShardWorker`] trait and its two shipped
//! implementations — in-process [`LocalWorker`] and subprocess
//! [`ProcessWorker`].

use std::fmt;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tiering_runner::{Scenario, ShardReport, ShardSpec, ShardedSweep, SweepRunner};

/// Why a worker failed to produce a shard artifact.
///
/// Failures here are *returned by the worker itself* — the coordinator
/// additionally detects workers that stop responding altogether (channel
/// disconnect / response timeout) and maps those to
/// [`FleetEventKind::WorkerLost`](crate::FleetEventKind::WorkerLost) /
/// [`FleetEventKind::TimedOut`](crate::FleetEventKind::TimedOut).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerFailure {
    /// The worker's subprocess could not be started at all. The
    /// coordinator treats this as fatal for the worker (its program is
    /// unusable), reassigning the shard to survivors.
    Spawn(String),
    /// The attempt ran but failed (non-zero exit, unreadable output, …).
    /// The worker stays in rotation; the shard is retried.
    Crashed(String),
    /// The worker enforced its own deadline ([`ProcessWorker::kill_after`])
    /// and killed the attempt. The worker stays in rotation; the shard is
    /// retried.
    TimedOut,
}

impl fmt::Display for WorkerFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerFailure::Spawn(e) => write!(f, "spawn failed: {e}"),
            WorkerFailure::Crashed(e) => write!(f, "attempt crashed: {e}"),
            WorkerFailure::TimedOut => write!(f, "attempt exceeded the worker deadline"),
        }
    }
}

impl std::error::Error for WorkerFailure {}

/// What a worker hands back for one shard.
///
/// The coordinator is generic over the artifact so both execution planes
/// share one scheduler: [`LocalWorker`] returns a typed
/// [`ShardReport`] (merged via `SweepReport::merge`), [`ProcessWorker`]
/// returns raw shard BENCH json text (merged via `bench --merge`).
///
/// The two mangling hooks exist for the fault-injection harness
/// ([`FaultPlan`](crate::FaultPlan)): they must damage the artifact in a
/// way the plane's validator *detects*, so the corrupt-result recovery
/// path (reject → retry/reassign) is exercised end to end.
pub trait ShardArtifact: Send + Sized + 'static {
    /// Returns a structurally damaged copy (a `Corrupt` fault fired).
    fn corrupt(self) -> Self;
    /// Returns a partially-written copy (a `Truncate` fault fired).
    fn truncate(self) -> Self;
}

impl ShardArtifact for ShardReport {
    /// Claims a different matrix length — every validator that checks the
    /// result count against `spec.count_of(matrix_len)` catches it, even
    /// for shards that own zero scenarios.
    fn corrupt(mut self) -> Self {
        self.matrix_len += self.spec.total();
        self
    }

    /// Drops the tail half of the results (rounding the survivor count
    /// down, so even a one-result shard loses something).
    fn truncate(mut self) -> Self {
        let keep = self.sweep.results.len() / 2;
        self.sweep.results.truncate(keep);
        self
    }
}

impl ShardArtifact for String {
    /// Flips the leading `{` so the document no longer parses.
    fn corrupt(self) -> Self {
        format!("!corrupt!{self}")
    }

    /// Keeps only the first half of the bytes — an interrupted write.
    fn truncate(mut self) -> Self {
        let mut keep = self.len() / 2;
        while keep > 0 && !self.is_char_boundary(keep) {
            keep -= 1;
        }
        String::truncate(&mut self, keep);
        self
    }
}

/// One executor in the fleet: something that can run a shard of a sweep
/// and hand back an artifact.
///
/// Implementations are moved onto a dedicated coordinator-owned thread, so
/// `run_shard` may block for as long as the work takes — the coordinator
/// enforces its own response timeout from the outside.
pub trait ShardWorker: Send {
    /// What this worker produces per shard.
    type Artifact: ShardArtifact;

    /// A one-shot probe of this worker's relative speed, run once before
    /// any shard is assigned. The returned weight sizes this worker's
    /// share of the shard queue (a weight-2 worker is offered twice the
    /// shards of a weight-1 worker). Defaults to 1 (a homogeneous fleet);
    /// a failed probe also falls back to 1.
    fn calibrate(&mut self) -> Result<u64, WorkerFailure> {
        Ok(1)
    }

    /// Runs one shard. `attempt` is 1-based and distinguishes retries of
    /// the same shard (e.g. for unique scratch-file names).
    fn run_shard(
        &mut self,
        shard: ShardSpec,
        attempt: u32,
    ) -> Result<Self::Artifact, WorkerFailure>;
}

/// An in-process worker: runs its shard slice of a scenario matrix on a
/// private [`SweepRunner`], exactly like one host of a `bench --shard`
/// fleet but without the process boundary.
///
/// The matrix is a *factory* (recipes are cheap): every worker builds the
/// same full matrix and executes only its slice, mirroring the multi-host
/// workflow where hosts coordinate on nothing but the matrix definition
/// and their shard index.
#[derive(Clone)]
pub struct LocalWorker {
    matrix: Arc<dyn Fn() -> Vec<Scenario> + Send + Sync>,
    threads: usize,
    weight: u64,
    probe: bool,
}

impl fmt::Debug for LocalWorker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocalWorker")
            .field("threads", &self.threads)
            .field("weight", &self.weight)
            .field("probe", &self.probe)
            .finish_non_exhaustive()
    }
}

impl LocalWorker {
    /// A serial in-process worker over `matrix` with declared weight 1.
    pub fn new(matrix: impl Fn() -> Vec<Scenario> + Send + Sync + 'static) -> Self {
        LocalWorker {
            matrix: Arc::new(matrix),
            threads: 1,
            weight: 1,
            probe: false,
        }
    }

    /// Sets the worker's private sweep-pool size (default 1 = serial; the
    /// coordinator's workers are the outer parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Declares a relative speed weight for shard sizing (default 1).
    /// Use this to model a known-heterogeneous fleet deterministically;
    /// see [`LocalWorker::with_probe`] for measured weights.
    pub fn with_weight(mut self, weight: u64) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Makes [`ShardWorker::calibrate`] *measure* instead of declare: the
    /// probe times the matrix's first scenario and scales the declared
    /// weight by observed throughput. Measured weights are host-timing
    /// dependent — leave this off (the default) when the
    /// [`FleetEvent`](crate::FleetEvent) log must be reproducible.
    pub fn with_probe(mut self, probe: bool) -> Self {
        self.probe = probe;
        self
    }
}

impl ShardWorker for LocalWorker {
    type Artifact = ShardReport;

    fn calibrate(&mut self) -> Result<u64, WorkerFailure> {
        if !self.probe {
            return Ok(self.weight);
        }
        let mut matrix = (self.matrix)();
        if matrix.is_empty() {
            return Ok(self.weight);
        }
        let probe = matrix.remove(0);
        let start = Instant::now();
        let result = probe.run();
        let wall = start.elapsed().as_secs_f64().max(1e-9);
        let ops = result.report.ops.max(1);
        // ops per millisecond, scaled by the declared weight and clamped
        // to a sane apportioning range.
        let kops_per_s = (ops as f64 / wall / 1_000.0).round() as u64;
        Ok((self.weight * kops_per_s.clamp(1, 1_000_000)).max(1))
    }

    fn run_shard(&mut self, shard: ShardSpec, _attempt: u32) -> Result<ShardReport, WorkerFailure> {
        let runner = if self.threads <= 1 {
            SweepRunner::serial()
        } else {
            SweepRunner::new(self.threads)
        };
        Ok(ShardedSweep::new(shard, runner).run((self.matrix)()))
    }
}

/// A subprocess worker: spawns one process per shard and reads the shard
/// artifact back from a file — the in-tree shape of "run `bench --shard
/// i/N --json out.json` on another host".
///
/// The argument list is a template: every occurrence of `{index}`,
/// `{total}`, and `{out}` in any argument is substituted per attempt
/// (`{out}` with a unique scratch path under [`ProcessWorker::out_dir`]).
/// When no argument mentions `{out}`, stdout is captured to the scratch
/// file instead — so plain shell commands work as workers in tests.
///
/// ```no_run
/// use fleet_exec::ProcessWorker;
/// let worker = ProcessWorker::new("target/release/bench")
///     .args(["--ops", "20000", "--serial-only",
///            "--shard", "{index}/{total}", "--json", "{out}"])
///     .out_dir(std::env::temp_dir());
/// ```
#[derive(Debug, Clone)]
pub struct ProcessWorker {
    program: PathBuf,
    args: Vec<String>,
    out_dir: PathBuf,
    kill_after: Duration,
    poll: Duration,
    weight: u64,
}

impl ProcessWorker {
    /// A worker that runs `program` once per shard.
    pub fn new(program: impl Into<PathBuf>) -> Self {
        ProcessWorker {
            program: program.into(),
            args: Vec::new(),
            out_dir: std::env::temp_dir(),
            kill_after: Duration::from_secs(600),
            poll: Duration::from_millis(2),
            weight: 1,
        }
    }

    /// Sets the argument template (`{index}` / `{total}` / `{out}`
    /// placeholders are substituted per attempt).
    pub fn args<I, S>(mut self, args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.args = args.into_iter().map(Into::into).collect();
        self
    }

    /// Directory for per-attempt scratch output files (default: the
    /// system temp dir).
    pub fn out_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.out_dir = dir.into();
        self
    }

    /// Hard per-attempt deadline: a subprocess still running after this
    /// long is killed and the attempt fails with
    /// [`WorkerFailure::TimedOut`]. Defaults to 600 s; tests use short
    /// budgets so an injected hang costs milliseconds, not minutes.
    pub fn kill_after(mut self, deadline: Duration) -> Self {
        self.kill_after = deadline;
        self
    }

    /// Declares a relative speed weight for shard sizing (default 1).
    pub fn with_weight(mut self, weight: u64) -> Self {
        self.weight = weight.max(1);
        self
    }

    fn substitute(&self, shard: ShardSpec, out: &str) -> Vec<String> {
        self.args
            .iter()
            .map(|a| {
                a.replace("{index}", &shard.index().to_string())
                    .replace("{total}", &shard.total().to_string())
                    .replace("{out}", out)
            })
            .collect()
    }
}

impl ShardWorker for ProcessWorker {
    type Artifact = String;

    fn calibrate(&mut self) -> Result<u64, WorkerFailure> {
        Ok(self.weight)
    }

    fn run_shard(&mut self, shard: ShardSpec, attempt: u32) -> Result<String, WorkerFailure> {
        let out = self.out_dir.join(format!(
            "fleet_shard_{}_of_{}_attempt{}_{}.json",
            shard.index(),
            shard.total(),
            attempt,
            std::process::id(),
        ));
        let out_str = out.to_string_lossy().into_owned();
        let uses_out = self.args.iter().any(|a| a.contains("{out}"));
        let mut cmd = Command::new(&self.program);
        cmd.args(self.substitute(shard, &out_str))
            .stdin(Stdio::null())
            .stderr(Stdio::null());
        if uses_out {
            cmd.stdout(Stdio::null());
        } else {
            let file = std::fs::File::create(&out)
                .map_err(|e| WorkerFailure::Spawn(format!("creating {out_str}: {e}")))?;
            cmd.stdout(Stdio::from(file));
        }
        let mut child = cmd
            .spawn()
            .map_err(|e| WorkerFailure::Spawn(format!("{}: {e}", self.program.display())))?;

        let started = Instant::now();
        let status = loop {
            match child.try_wait() {
                Ok(Some(status)) => break status,
                Ok(None) => {
                    if started.elapsed() >= self.kill_after {
                        let _ = child.kill();
                        let _ = child.wait();
                        let _ = std::fs::remove_file(&out);
                        return Err(WorkerFailure::TimedOut);
                    }
                    std::thread::sleep(self.poll);
                }
                Err(e) => return Err(WorkerFailure::Crashed(format!("wait failed: {e}"))),
            }
        };
        if !status.success() {
            let _ = std::fs::remove_file(&out);
            return Err(WorkerFailure::Crashed(format!("exit status {status}")));
        }
        let text = std::fs::read_to_string(&out)
            .map_err(|e| WorkerFailure::Crashed(format!("reading {out_str}: {e}")))?;
        let _ = std::fs::remove_file(&out);
        Ok(text)
    }
}
