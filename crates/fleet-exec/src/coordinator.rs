//! The fleet coordinator: deterministic round-based scheduling of shards
//! over workers, with timeout/retry, reassignment, weighted sizing, and a
//! typed event log.

use std::collections::VecDeque;
use std::fmt;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use tiering_runner::{MergeError, Scenario, ShardReport, ShardSpec, SweepReport};

use crate::fault::{Fault, FaultKind, FaultPlan};
use crate::worker::{LocalWorker, ShardArtifact, ShardWorker, WorkerFailure};

/// Scheduling budgets and retry policy for one coordinator run.
///
/// All durations are *host* time (the only wall-clock in the system);
/// everything they decide is logged with logical timestamps.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// How long the coordinator waits for a worker's response to one
    /// shard before declaring the attempt timed out and requeueing the
    /// shard (the worker is then *lagging*: its late result, if any, is
    /// reaped and discarded at the next round boundary).
    pub shard_timeout: Duration,
    /// Extra grace a lagging worker gets at the round boundary to flush
    /// its late result; a worker silent past this is declared lost.
    pub lag_grace: Duration,
    /// Maximum dispatches per shard (first attempt included). The run
    /// fails with [`FleetError::RetryBudgetExhausted`] — promptly, never
    /// a hang — when a shard would exceed it.
    pub max_attempts: u32,
    /// Backoff slept before re-dispatching attempt `n` (n ≥ 2):
    /// `backoff_base * 2^(n-2)`, capped at [`FleetConfig::backoff_cap`].
    pub backoff_base: Duration,
    /// Upper bound on one backoff sleep.
    pub backoff_cap: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shard_timeout: Duration::from_secs(30),
            lag_grace: Duration::from_secs(5),
            max_attempts: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
        }
    }
}

impl FleetConfig {
    /// Short deterministic budgets for tests and CI: injected timeouts
    /// cost tens of milliseconds instead of multi-second sleeps, while
    /// still being far above the runtime of the tiny matrices tests use.
    pub fn snappy() -> Self {
        FleetConfig {
            shard_timeout: Duration::from_millis(250),
            lag_grace: Duration::from_millis(250),
            max_attempts: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
        }
    }

    /// Same budgets with a different retry ceiling.
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }
}

/// What happened, in one entry of the coordinator's event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetEventKind {
    /// The worker's calibration probe resolved to this scheduling weight.
    Calibrated {
        /// Relative speed weight used for shard sizing.
        weight: u64,
    },
    /// A shard attempt was dispatched to the worker.
    Assigned {
        /// Shard index.
        shard: usize,
        /// 1-based dispatch count for this shard.
        attempt: u32,
    },
    /// The worker returned a valid artifact for the shard.
    Completed {
        /// Shard index.
        shard: usize,
        /// Attempt that succeeded.
        attempt: u32,
    },
    /// No response within [`FleetConfig::shard_timeout`]; the shard was
    /// requeued and the worker marked lagging.
    TimedOut {
        /// Shard index.
        shard: usize,
        /// Attempt that timed out.
        attempt: u32,
    },
    /// The worker responded but the artifact failed validation (or the
    /// attempt itself failed); the shard was requeued.
    Rejected {
        /// Shard index.
        shard: usize,
        /// Attempt that was rejected.
        attempt: u32,
        /// Why.
        reason: String,
    },
    /// A shard is being dispatched again after a failure (logged just
    /// before the corresponding `Assigned`).
    Retried {
        /// Shard index.
        shard: usize,
        /// The new attempt number.
        attempt: u32,
        /// Backoff slept before this dispatch, in milliseconds.
        backoff_ms: u64,
    },
    /// The retry moved the shard to a different worker than the one that
    /// last ran it.
    Reassigned {
        /// Shard index.
        shard: usize,
        /// Worker index that previously owned the shard.
        from: usize,
    },
    /// The worker was declared dead and removed from rotation.
    WorkerLost {
        /// Why.
        reason: String,
    },
    /// A late/duplicate result arrived for an attempt the coordinator had
    /// already given up on; it was ignored.
    StaleResult {
        /// Shard index.
        shard: usize,
        /// The superseded attempt.
        attempt: u32,
    },
}

impl FleetEventKind {
    /// Stable snake-case tag for machine-readable renderings.
    pub fn name(&self) -> &'static str {
        match self {
            FleetEventKind::Calibrated { .. } => "calibrated",
            FleetEventKind::Assigned { .. } => "assigned",
            FleetEventKind::Completed { .. } => "completed",
            FleetEventKind::TimedOut { .. } => "timed_out",
            FleetEventKind::Rejected { .. } => "rejected",
            FleetEventKind::Retried { .. } => "retried",
            FleetEventKind::Reassigned { .. } => "reassigned",
            FleetEventKind::WorkerLost { .. } => "worker_lost",
            FleetEventKind::StaleResult { .. } => "stale_result",
        }
    }
}

/// One entry of the typed event log.
///
/// `at` is a **logical timestamp** — the event's position in the single
/// coordinator-side sequence — not wall-clock: the log of a run with a
/// fixed worker set, config, and fault plan is reproducible on any host
/// (see the crate-level determinism contract).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetEvent {
    /// Logical timestamp (0-based, gapless).
    pub at: u64,
    /// Index of the worker the event concerns.
    pub worker: usize,
    /// What happened.
    pub kind: FleetEventKind,
}

impl fmt::Display for FleetEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>3} w{} ", self.at, self.worker)?;
        match &self.kind {
            FleetEventKind::Calibrated { weight } => write!(f, "calibrated weight={weight}"),
            FleetEventKind::Assigned { shard, attempt } => {
                write!(f, "assigned shard={shard} attempt={attempt}")
            }
            FleetEventKind::Completed { shard, attempt } => {
                write!(f, "completed shard={shard} attempt={attempt}")
            }
            FleetEventKind::TimedOut { shard, attempt } => {
                write!(f, "timed-out shard={shard} attempt={attempt}")
            }
            FleetEventKind::Rejected {
                shard,
                attempt,
                reason,
            } => write!(
                f,
                "rejected shard={shard} attempt={attempt} reason={reason}"
            ),
            FleetEventKind::Retried {
                shard,
                attempt,
                backoff_ms,
            } => write!(
                f,
                "retried shard={shard} attempt={attempt} backoff_ms={backoff_ms}"
            ),
            FleetEventKind::Reassigned { shard, from } => {
                write!(f, "reassigned shard={shard} from=w{from}")
            }
            FleetEventKind::WorkerLost { reason } => write!(f, "lost reason={reason}"),
            FleetEventKind::StaleResult { shard, attempt } => {
                write!(f, "stale shard={shard} attempt={attempt}")
            }
        }
    }
}

/// Per-worker outcome summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStats {
    /// The label the worker was registered under.
    pub label: String,
    /// Calibrated scheduling weight.
    pub weight: u64,
    /// Shards this worker completed (valid artifacts only).
    pub completed: u64,
    /// Whether the worker was declared lost during the run.
    pub lost: bool,
}

/// The coordinator's sealed account of a run: the typed event log plus
/// summary counters, carried alongside the merged results and emitted as
/// the `"fleet_exec"` BENCH json section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetExecReport {
    /// Per-worker stats, in registration order.
    pub workers: Vec<WorkerStats>,
    /// How many shards the sweep was split into.
    pub shards: usize,
    /// Every scheduling decision, in logical-timestamp order.
    pub events: Vec<FleetEvent>,
    /// Total re-dispatches (`Retried` events).
    pub retries: u64,
    /// Total response timeouts (`TimedOut` events).
    pub timeouts: u64,
    /// Total shard moves between workers (`Reassigned` events).
    pub reassignments: u64,
    /// Workers declared dead (`WorkerLost` events).
    pub workers_lost: u64,
    /// Invalid or failed attempts (`Rejected` events).
    pub rejected: u64,
    /// Late/duplicate results discarded (`StaleResult` events).
    pub stale_results: u64,
}

impl FleetExecReport {
    /// The event log as stable text, one event per line — the golden-test
    /// rendering.
    pub fn event_log(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

/// A completed coordinator run over artifacts of type `A`.
#[derive(Debug)]
pub struct FleetRun<A> {
    /// One artifact per shard, in shard-index order (index-complete).
    pub artifacts: Vec<A>,
    /// The sealed scheduling account.
    pub exec: FleetExecReport,
}

/// A completed in-process sweep: merged results plus the scheduling
/// account. Produced by [`FleetCoordinator::run_sweep`].
#[derive(Debug)]
pub struct FleetSweep {
    /// The merged sweep — identical in every deterministic field to an
    /// unsharded [`SweepRunner`](tiering_runner::SweepRunner) run.
    pub report: SweepReport,
    /// The sealed scheduling account.
    pub exec: FleetExecReport,
}

/// Why a coordinator run failed. Every variant is returned in bounded
/// time — the coordinator never hangs on a dead or silent fleet.
#[derive(Debug)]
pub enum FleetError {
    /// No workers were registered.
    NoWorkers,
    /// A zero shard count was requested.
    NoShards,
    /// Every worker died before the sweep completed.
    AllWorkersLost {
        /// Shards completed before the fleet died.
        completed: usize,
        /// Total shards requested.
        shards: usize,
    },
    /// One shard failed [`FleetConfig::max_attempts`] times.
    RetryBudgetExhausted {
        /// The shard that kept failing.
        shard: usize,
        /// Dispatches consumed.
        attempts: u32,
        /// The most recent failure reason.
        last_error: String,
    },
    /// The artifacts were index-complete but merging them failed (a
    /// validator let a damaged artifact through).
    Merge(MergeError),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::NoWorkers => write!(f, "fleet has no workers"),
            FleetError::NoShards => write!(f, "cannot run a sweep over zero shards"),
            FleetError::AllWorkersLost { completed, shards } => write!(
                f,
                "all workers lost after {completed}/{shards} shards completed"
            ),
            FleetError::RetryBudgetExhausted {
                shard,
                attempts,
                last_error,
            } => write!(
                f,
                "shard {shard} failed all {attempts} attempts (last error: {last_error})"
            ),
            FleetError::Merge(e) => write!(f, "merging fleet artifacts failed: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<MergeError> for FleetError {
    fn from(e: MergeError) -> Self {
        FleetError::Merge(e)
    }
}

/// Validates one artifact against the shard it was supposed to cover.
type Validator<A> = Box<dyn Fn(ShardSpec, &A) -> Result<(), String>>;

// ---------------------------------------------------------------------
// Worker shell: each registered worker is moved onto its own thread and
// spoken to over channels. The shell interprets the fault plan, so kills
// are real thread exits (the coordinator sees a disconnect, exactly like
// a dead host) and corruption damages the real artifact in flight.
// ---------------------------------------------------------------------

struct Cmd {
    spec: ShardSpec,
    attempt: u32,
}

struct Reply<A> {
    shard: usize,
    attempt: u32,
    outcome: Result<A, WorkerFailure>,
    /// The shell announces a `KillAfter` fault in-band (a graceful
    /// shutdown notice), so the coordinator learns of the death
    /// deterministically instead of racing the thread teardown.
    dying: bool,
}

fn shell<W: ShardWorker + 'static>(
    mut worker: W,
    mut faults: Vec<Option<Fault>>,
    cmd_rx: Receiver<Cmd>,
    res_tx: Sender<Reply<W::Artifact>>,
) {
    while let Ok(Cmd { spec, attempt }) = cmd_rx.recv() {
        let fault = faults
            .iter_mut()
            .find(|slot| {
                slot.as_ref()
                    .is_some_and(|f| f.shard.is_none_or(|s| s == spec.index()))
            })
            .and_then(Option::take)
            .map(|f| f.kind);
        if matches!(fault, Some(FaultKind::KillBefore)) {
            return; // channels drop: the coordinator sees a disconnect
        }
        let mut outcome = worker.run_shard(spec, attempt);
        match &fault {
            Some(FaultKind::KillMid) => return, // worked, died, never sent
            Some(FaultKind::Corrupt) => outcome = outcome.map(ShardArtifact::corrupt),
            Some(FaultKind::Truncate) => outcome = outcome.map(ShardArtifact::truncate),
            Some(FaultKind::Delay(d)) => std::thread::sleep(*d),
            _ => {}
        }
        let dying = matches!(fault, Some(FaultKind::KillAfter));
        if res_tx
            .send(Reply {
                shard: spec.index(),
                attempt,
                outcome,
                dying,
            })
            .is_err()
            || dying
        {
            return;
        }
    }
}

// ---------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------

/// Fans a sharded sweep out over registered workers and reassembles an
/// index-complete artifact set, surviving worker loss, hangs, and
/// corrupted results. See the crate docs for the full contract.
pub struct FleetCoordinator<A: ShardArtifact> {
    workers: Vec<(String, Box<dyn ShardWorker<Artifact = A>>)>,
    config: FleetConfig,
    faults: FaultPlan,
    validator: Validator<A>,
}

impl<A: ShardArtifact> fmt::Debug for FleetCoordinator<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FleetCoordinator")
            .field(
                "workers",
                &self.workers.iter().map(|(l, _)| l).collect::<Vec<_>>(),
            )
            .field("config", &self.config)
            .field("faults", &self.faults)
            .finish_non_exhaustive()
    }
}

impl<A: ShardArtifact> FleetCoordinator<A> {
    /// An empty coordinator with the given budgets. Register workers with
    /// [`FleetCoordinator::with_worker`].
    pub fn new(config: FleetConfig) -> Self {
        FleetCoordinator {
            workers: Vec::new(),
            config,
            faults: FaultPlan::none(),
            validator: Box::new(|_, _| Ok(())),
        }
    }

    /// Registers a worker under a label (labels appear in
    /// [`WorkerStats`] and BENCH json; indices in [`FleetEvent`]s follow
    /// registration order).
    pub fn with_worker(
        mut self,
        label: impl Into<String>,
        worker: impl ShardWorker<Artifact = A> + 'static,
    ) -> Self {
        self.workers.push((label.into(), Box::new(worker)));
        self
    }

    /// Arms a fault plan for this run (chaos testing).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Installs the artifact validator: a returned `Err(reason)` rejects
    /// the attempt (logged, requeued) exactly like a worker failure. The
    /// default accepts everything; both shipped planes install real
    /// validators ([`sweep_coordinator`] for `ShardReport`s, the bench
    /// crate's shard-json checker for subprocess output).
    pub fn with_validator(
        mut self,
        validator: impl Fn(ShardSpec, &A) -> Result<(), String> + 'static,
    ) -> Self {
        self.validator = Box::new(validator);
        self
    }

    /// How many workers are registered.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Runs the fleet over `shards` shards and returns the
    /// index-complete artifact set plus the sealed scheduling account.
    pub fn run(self, shards: usize) -> Result<FleetRun<A>, FleetError> {
        let FleetCoordinator {
            workers,
            config,
            faults,
            validator,
        } = self;
        if workers.is_empty() {
            return Err(FleetError::NoWorkers);
        }
        if shards == 0 {
            return Err(FleetError::NoShards);
        }
        let n = workers.len();
        let mut fault_queues: Vec<Vec<Option<Fault>>> = faults
            .per_worker(n)
            .into_iter()
            .map(|fs| fs.into_iter().map(Some).collect())
            .collect();

        let mut events: Vec<FleetEvent> = Vec::new();
        let mut report = FleetExecReport {
            workers: Vec::with_capacity(n),
            shards,
            events: Vec::new(),
            retries: 0,
            timeouts: 0,
            reassignments: 0,
            workers_lost: 0,
            rejected: 0,
            stale_results: 0,
        };
        let log = |report: &mut FleetExecReport,
                   events: &mut Vec<FleetEvent>,
                   worker: usize,
                   kind: FleetEventKind| {
            match kind {
                FleetEventKind::Retried { .. } => report.retries += 1,
                FleetEventKind::TimedOut { .. } => report.timeouts += 1,
                FleetEventKind::Reassigned { .. } => report.reassignments += 1,
                FleetEventKind::WorkerLost { .. } => {
                    report.workers_lost += 1;
                    report.workers[worker].lost = true;
                }
                FleetEventKind::Rejected { .. } => report.rejected += 1,
                FleetEventKind::StaleResult { .. } => report.stale_results += 1,
                FleetEventKind::Completed { .. } => report.workers[worker].completed += 1,
                _ => {}
            }
            events.push(FleetEvent {
                at: events.len() as u64,
                worker,
                kind,
            });
        };

        // Calibrate (before the workers move onto their threads), then
        // spawn one shell per worker.
        struct WState<A> {
            cmd: Sender<Cmd>,
            res: Receiver<Reply<A>>,
            alive: bool,
            lagging: bool,
            busy: Option<(usize, u32)>,
            dispatched: u64,
            weight: u64,
        }
        let mut state: Vec<WState<A>> = Vec::with_capacity(n);
        for (i, (label, mut worker)) in workers.into_iter().enumerate() {
            let weight = worker.calibrate().unwrap_or(1).max(1);
            report.workers.push(WorkerStats {
                label,
                weight,
                completed: 0,
                lost: false,
            });
            log(
                &mut report,
                &mut events,
                i,
                FleetEventKind::Calibrated { weight },
            );
            let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd>();
            let (res_tx, res_rx) = mpsc::channel::<Reply<A>>();
            let worker_faults = std::mem::take(&mut fault_queues[i]);
            std::thread::Builder::new()
                .name(format!("fleet-worker-{i}"))
                .spawn(move || shell_boxed(worker, worker_faults, cmd_rx, res_tx))
                .expect("spawning a worker shell thread");
            state.push(WState {
                cmd: cmd_tx,
                res: res_rx,
                alive: true,
                lagging: false,
                busy: None,
                dispatched: 0,
                weight,
            });
        }

        // Weighted shard sizing: apportion the shard budget over workers
        // by calibrated weight (largest-remainder method, ties to the
        // lower index), so a weight-2 worker is offered twice the shards
        // of a weight-1 peer. Quotas are a *sizing* preference, not a
        // cap: once every live worker's quota is spent (retries, lost
        // workers), assignment falls back to work conservation.
        let total_weight: u128 = state.iter().map(|w| w.weight as u128).sum();
        let mut quota: Vec<u64> = state
            .iter()
            .map(|w| ((shards as u128 * w.weight as u128) / total_weight) as u64)
            .collect();
        let mut leftover = shards as u64 - quota.iter().sum::<u64>();
        let mut by_remainder: Vec<usize> = (0..n).collect();
        by_remainder.sort_by_key(|&w| {
            let rem = (shards as u128 * state[w].weight as u128) % total_weight;
            (std::cmp::Reverse(rem), w)
        });
        for &w in &by_remainder {
            if leftover == 0 {
                break;
            }
            quota[w] += 1;
            leftover -= 1;
        }

        // Shard bookkeeping.
        let mut pending: VecDeque<usize> = (0..shards).collect();
        let mut attempts: Vec<u32> = vec![0; shards];
        let mut last_owner: Vec<Option<usize>> = vec![None; shards];
        let mut last_error: Vec<String> = vec![String::new(); shards];
        let mut done: Vec<Option<A>> = (0..shards).map(|_| None).collect();
        let mut completed = 0usize;

        // Requeues a failed shard or reports the budget exhausted.
        let requeue = |pending: &mut VecDeque<usize>,
                       attempts: &[u32],
                       last_error: &[String],
                       shard: usize,
                       max_attempts: u32|
         -> Result<(), FleetError> {
            if attempts[shard] >= max_attempts {
                return Err(FleetError::RetryBudgetExhausted {
                    shard,
                    attempts: attempts[shard],
                    last_error: last_error[shard].clone(),
                });
            }
            pending.push_back(shard);
            Ok(())
        };

        while completed < shards {
            if !state.iter().any(|w| w.alive) {
                return Err(FleetError::AllWorkersLost { completed, shards });
            }

            // Phase 1 — reap lagging workers at the round boundary: their
            // late result (a duplicate of a shard attempt we already gave
            // up on) is discarded here, at a fixed deterministic point.
            for (w, ws) in state.iter_mut().enumerate() {
                if !(ws.alive && ws.lagging) {
                    continue;
                }
                match ws.res.recv_timeout(config.lag_grace) {
                    Ok(reply) => {
                        ws.lagging = false;
                        log(
                            &mut report,
                            &mut events,
                            w,
                            FleetEventKind::StaleResult {
                                shard: reply.shard,
                                attempt: reply.attempt,
                            },
                        );
                        if reply.dying {
                            ws.alive = false;
                            log(
                                &mut report,
                                &mut events,
                                w,
                                FleetEventKind::WorkerLost {
                                    reason: "worker shut down after responding".into(),
                                },
                            );
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        ws.alive = false;
                        ws.lagging = false;
                        log(
                            &mut report,
                            &mut events,
                            w,
                            FleetEventKind::WorkerLost {
                                reason: "no response within the lag grace period".into(),
                            },
                        );
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        ws.alive = false;
                        ws.lagging = false;
                        log(
                            &mut report,
                            &mut events,
                            w,
                            FleetEventKind::WorkerLost {
                                reason: "worker channel disconnected".into(),
                            },
                        );
                    }
                }
            }

            // Phase 2 — assign pending shards to idle survivors. A worker
            // with remaining quota and the smallest dispatched/weight
            // deficit (ties to the lower index) is preferred; when no
            // live worker has quota left (retries, reassignment after a
            // loss), any idle survivor takes the shard instead — quotas
            // size the happy path, work conservation handles recovery.
            while !pending.is_empty() {
                let min_deficit_idle = |state: &[WState<A>], need_quota: bool| -> Option<usize> {
                    let mut pick: Option<usize> = None;
                    for (w, s) in state.iter().enumerate() {
                        if !s.alive || s.lagging || s.busy.is_some() {
                            continue;
                        }
                        if need_quota && s.dispatched >= quota[w] {
                            continue;
                        }
                        let better = match pick {
                            None => true,
                            Some(p) => {
                                (s.dispatched as u128) * (state[p].weight as u128)
                                    < (state[p].dispatched as u128) * (s.weight as u128)
                            }
                        };
                        if better {
                            pick = Some(w);
                        }
                    }
                    pick
                };
                let pick = match min_deficit_idle(&state, true) {
                    Some(w) => Some(w),
                    None => {
                        // No idle worker has quota left. If a busy or
                        // lagging survivor still has quota, hold the
                        // shard for it rather than overfill another
                        // worker; otherwise every live quota is spent —
                        // work-conserve.
                        let quota_pending_elsewhere = state
                            .iter()
                            .enumerate()
                            .any(|(w, s)| s.alive && s.dispatched < quota[w]);
                        if quota_pending_elsewhere {
                            None
                        } else {
                            min_deficit_idle(&state, false)
                        }
                    }
                };
                let Some(w) = pick else { break };
                let shard = pending.pop_front().expect("checked non-empty");
                let attempt = attempts[shard] + 1;
                if attempt > 1 {
                    let shift = (attempt - 2).min(16);
                    let backoff = config
                        .backoff_base
                        .saturating_mul(1u32 << shift)
                        .min(config.backoff_cap);
                    std::thread::sleep(backoff);
                    log(
                        &mut report,
                        &mut events,
                        w,
                        FleetEventKind::Retried {
                            shard,
                            attempt,
                            backoff_ms: backoff.as_millis() as u64,
                        },
                    );
                    if let Some(prev) = last_owner[shard] {
                        if prev != w {
                            log(
                                &mut report,
                                &mut events,
                                w,
                                FleetEventKind::Reassigned { shard, from: prev },
                            );
                        }
                    }
                }
                let spec = ShardSpec::new(shard, shards).expect("shard < shards");
                if state[w].cmd.send(Cmd { spec, attempt }).is_err() {
                    // The shell already exited (e.g. a KillAfter fault on
                    // the previous shard): the worker is gone.
                    state[w].alive = false;
                    log(
                        &mut report,
                        &mut events,
                        w,
                        FleetEventKind::WorkerLost {
                            reason: "worker channel disconnected".into(),
                        },
                    );
                    pending.push_front(shard);
                    if !state.iter().any(|s| s.alive) {
                        return Err(FleetError::AllWorkersLost { completed, shards });
                    }
                    continue;
                }
                attempts[shard] = attempt;
                last_owner[shard] = Some(w);
                state[w].busy = Some((shard, attempt));
                state[w].dispatched += 1;
                log(
                    &mut report,
                    &mut events,
                    w,
                    FleetEventKind::Assigned { shard, attempt },
                );
            }

            // Phase 3 — collect, in worker order. Responses queue in each
            // worker's channel, so slow-first ordering costs nothing.
            for (w, ws) in state.iter_mut().enumerate() {
                let Some((shard, attempt)) = ws.busy else {
                    continue;
                };
                if !ws.alive {
                    continue;
                }
                let deadline = Instant::now() + config.shard_timeout;
                loop {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    match ws.res.recv_timeout(remaining) {
                        Ok(reply) if reply.shard == shard && reply.attempt == attempt => {
                            ws.busy = None;
                            let dying = reply.dying;
                            match reply.outcome {
                                Ok(artifact) => {
                                    let spec =
                                        ShardSpec::new(shard, shards).expect("shard < shards");
                                    match (validator)(spec, &artifact) {
                                        Ok(()) => {
                                            done[shard] = Some(artifact);
                                            completed += 1;
                                            log(
                                                &mut report,
                                                &mut events,
                                                w,
                                                FleetEventKind::Completed { shard, attempt },
                                            );
                                        }
                                        Err(reason) => {
                                            last_error[shard] =
                                                format!("invalid artifact: {reason}");
                                            log(
                                                &mut report,
                                                &mut events,
                                                w,
                                                FleetEventKind::Rejected {
                                                    shard,
                                                    attempt,
                                                    reason,
                                                },
                                            );
                                            requeue(
                                                &mut pending,
                                                &attempts,
                                                &last_error,
                                                shard,
                                                config.max_attempts,
                                            )?;
                                        }
                                    }
                                }
                                Err(WorkerFailure::Spawn(e)) => {
                                    last_error[shard] = format!("spawn failed: {e}");
                                    ws.alive = false;
                                    log(
                                        &mut report,
                                        &mut events,
                                        w,
                                        FleetEventKind::WorkerLost {
                                            reason: format!("cannot spawn attempts: {e}"),
                                        },
                                    );
                                    requeue(
                                        &mut pending,
                                        &attempts,
                                        &last_error,
                                        shard,
                                        config.max_attempts,
                                    )?;
                                }
                                Err(failure) => {
                                    let reason = failure.to_string();
                                    last_error[shard] = reason.clone();
                                    log(
                                        &mut report,
                                        &mut events,
                                        w,
                                        FleetEventKind::Rejected {
                                            shard,
                                            attempt,
                                            reason,
                                        },
                                    );
                                    requeue(
                                        &mut pending,
                                        &attempts,
                                        &last_error,
                                        shard,
                                        config.max_attempts,
                                    )?;
                                }
                            }
                            if dying && ws.alive {
                                ws.alive = false;
                                log(
                                    &mut report,
                                    &mut events,
                                    w,
                                    FleetEventKind::WorkerLost {
                                        reason: "worker shut down after responding".into(),
                                    },
                                );
                            }
                            break;
                        }
                        Ok(stale) => {
                            // A leftover result from a superseded attempt.
                            log(
                                &mut report,
                                &mut events,
                                w,
                                FleetEventKind::StaleResult {
                                    shard: stale.shard,
                                    attempt: stale.attempt,
                                },
                            );
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            ws.busy = None;
                            ws.lagging = true;
                            last_error[shard] =
                                format!("no response within {:?}", config.shard_timeout);
                            log(
                                &mut report,
                                &mut events,
                                w,
                                FleetEventKind::TimedOut { shard, attempt },
                            );
                            requeue(
                                &mut pending,
                                &attempts,
                                &last_error,
                                shard,
                                config.max_attempts,
                            )?;
                            break;
                        }
                        Err(RecvTimeoutError::Disconnected) => {
                            ws.busy = None;
                            ws.alive = false;
                            last_error[shard] = "worker died mid-shard".into();
                            log(
                                &mut report,
                                &mut events,
                                w,
                                FleetEventKind::WorkerLost {
                                    reason: "worker channel disconnected".into(),
                                },
                            );
                            requeue(
                                &mut pending,
                                &attempts,
                                &last_error,
                                shard,
                                config.max_attempts,
                            )?;
                            break;
                        }
                    }
                }
            }
        }

        report.events = events;
        let artifacts: Vec<A> = done
            .into_iter()
            .map(|a| a.expect("completed == shards implies every slot is filled"))
            .collect();
        Ok(FleetRun {
            artifacts,
            exec: report,
        })
    }
}

/// Monomorphization helper: the shell is generic over the worker type,
/// but registered workers are boxed — this adapter runs a boxed worker.
fn shell_boxed<A: ShardArtifact>(
    worker: Box<dyn ShardWorker<Artifact = A>>,
    faults: Vec<Option<Fault>>,
    cmd_rx: Receiver<Cmd>,
    res_tx: Sender<Reply<A>>,
) {
    struct Boxed<A>(Box<dyn ShardWorker<Artifact = A>>);
    impl<A: ShardArtifact> ShardWorker for Boxed<A> {
        type Artifact = A;
        fn run_shard(&mut self, shard: ShardSpec, attempt: u32) -> Result<A, WorkerFailure> {
            self.0.run_shard(shard, attempt)
        }
    }
    shell(Boxed(worker), faults, cmd_rx, res_tx);
}

impl FleetCoordinator<ShardReport> {
    /// Runs the fleet and merges the shard reports through
    /// [`SweepReport::merge`] — the same path `bench --merge` trusts —
    /// into one report identical in every deterministic field to an
    /// unsharded run.
    pub fn run_sweep(self, shards: usize) -> Result<FleetSweep, FleetError> {
        let run = self.run(shards)?;
        let report = SweepReport::merge(run.artifacts)?;
        Ok(FleetSweep {
            report,
            exec: run.exec,
        })
    }
}

/// A ready-made in-process fleet over a scenario-matrix factory: `workers`
/// [`LocalWorker`]s labeled `w0..`, each building the same matrix, with
/// the `ShardReport` validator installed (shard identity, matrix length,
/// and slice size must all match — structural corruption is rejected
/// before it can reach the merge).
pub fn sweep_coordinator(
    matrix: impl Fn() -> Vec<Scenario> + Send + Sync + Clone + 'static,
    workers: usize,
    config: FleetConfig,
) -> FleetCoordinator<ShardReport> {
    let matrix_len = matrix().len();
    let mut coordinator =
        FleetCoordinator::new(config).with_validator(move |spec, report: &ShardReport| {
            if report.spec != spec {
                return Err(format!(
                    "shard identity mismatch: expected {spec}, artifact claims {}",
                    report.spec
                ));
            }
            if report.matrix_len != matrix_len {
                return Err(format!(
                    "matrix length mismatch: expected {matrix_len}, artifact claims {}",
                    report.matrix_len
                ));
            }
            let expected = spec.count_of(matrix_len);
            if report.sweep.results.len() != expected {
                return Err(format!(
                    "result count mismatch: expected {expected}, got {}",
                    report.sweep.results.len()
                ));
            }
            Ok(())
        });
    for i in 0..workers {
        coordinator = coordinator.with_worker(format!("w{i}"), LocalWorker::new(matrix.clone()));
    }
    coordinator
}
