//! Corruption tests: every way a trace file can be damaged — truncation at
//! any byte, foreign magic, unknown version, flipped payload bytes,
//! over-length chunk declarations, drifted totals — must surface as a typed
//! [`TraceError`], never a panic and never a silent short read.
//!
//! The damage shapes mirror the PR-7 fleet-executor fault vocabulary
//! (`FaultKind::Corrupt` / `FaultKind::Truncate`); the runner-level suite
//! drives those same shapes through `FaultPlan` against real files, while
//! this suite exercises the byte-exact cases in memory.

use std::io::Cursor;

use tiering_trace::{
    Access, Op, TraceError, TraceReader, TraceWriter, MAX_CHUNK_PAYLOAD_BYTES, TRACE_VERSION,
};

/// A small but multi-chunk valid trace (9 ops, chunked 4+4+1).
fn valid_trace() -> Vec<u8> {
    let mut w = TraceWriter::new(Cursor::new(Vec::new()), "corruption-victim", 1 << 20)
        .expect("writer")
        .with_chunk_ops(4);
    for i in 0..9u64 {
        let accs = [Access::read(i * 4096), Access::write(i * 4096 + 64)];
        w.push_op(Op::read(100 + i), &accs).expect("push");
    }
    let (_, cursor) = w.finish().expect("finish");
    cursor.into_inner()
}

/// Fixed header bytes before the name block (see `docs/TRACE_FORMAT.md`).
const HEADER_FIXED: usize = 48;
/// `"corruption-victim"` is 17 bytes.
const NAME_LEN: usize = 17;
/// Offset of the first chunk prologue.
const FIRST_CHUNK: usize = HEADER_FIXED + NAME_LEN;

/// Fully consumes `bytes` as a trace, returning the first error.
fn scan(bytes: &[u8]) -> Result<(), TraceError> {
    let mut r = TraceReader::new(Cursor::new(bytes))?;
    while r.advance()? {}
    Ok(())
}

#[test]
fn pristine_trace_scans_clean() {
    assert!(scan(&valid_trace()).is_ok());
}

/// Truncation sweep: EVERY proper prefix of the file must fail typed.
/// The header records exact totals and every chunk declares its length, so
/// no cut point can be mistaken for a shorter valid trace.
#[test]
fn every_proper_prefix_is_rejected() {
    let bytes = valid_trace();
    for cut in 0..bytes.len() {
        let err = scan(&bytes[..cut]).expect_err(&format!("prefix of {cut} bytes accepted"));
        assert!(
            matches!(
                err,
                TraceError::Truncated { .. }
                    | TraceError::BadMagic { .. }
                    | TraceError::CountMismatch { .. }
            ),
            "prefix of {cut} bytes gave unexpected error {err:?}"
        );
    }
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = valid_trace();
    bytes[0] ^= 0xFF;
    match scan(&bytes) {
        Err(TraceError::BadMagic { found }) => assert_ne!(found, *b"HTIERTRC"),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn future_version_is_rejected() {
    let mut bytes = valid_trace();
    bytes[8..12].copy_from_slice(&(TRACE_VERSION + 1).to_le_bytes());
    match scan(&bytes) {
        Err(TraceError::BadVersion { found }) => assert_eq!(found, TRACE_VERSION + 1),
        other => panic!("expected BadVersion, got {other:?}"),
    }
}

/// A single flipped bit anywhere in a chunk payload must trip that chunk's
/// checksum.
#[test]
fn flipped_payload_byte_is_rejected() {
    let bytes = valid_trace();
    // Flip one byte in the middle of the first chunk's payload.
    let mut damaged = bytes.clone();
    let target = FIRST_CHUNK + 16 + 10;
    damaged[target] ^= 0x01;
    match scan(&damaged) {
        Err(TraceError::ChecksumMismatch { chunk }) => assert_eq!(chunk, 0),
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
    // And one in the last chunk — earlier chunks must still decode.
    let mut damaged = bytes;
    let last = damaged.len() - 9; // inside the final chunk's payload
    damaged[last] ^= 0x80;
    match scan(&damaged) {
        Err(TraceError::ChecksumMismatch { chunk }) => assert_eq!(chunk, 2),
        other => panic!("expected ChecksumMismatch in last chunk, got {other:?}"),
    }
}

#[test]
fn flipped_stored_checksum_is_rejected() {
    let mut bytes = valid_trace();
    let last = bytes.len() - 1; // high byte of the final chunk's checksum
    bytes[last] ^= 0xFF;
    assert!(matches!(
        scan(&bytes),
        Err(TraceError::ChecksumMismatch { chunk: 2 })
    ));
}

/// A chunk prologue declaring counts beyond the payload cap must be
/// rejected *before* any allocation sized from those counts.
#[test]
fn overlength_chunk_is_rejected_without_allocating() {
    let mut bytes = valid_trace();
    // Declare u32::MAX ops in the first chunk prologue: the implied payload
    // far exceeds MAX_CHUNK_PAYLOAD_BYTES.
    bytes[FIRST_CHUNK..FIRST_CHUNK + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    match scan(&bytes) {
        Err(TraceError::OverlengthChunk {
            chunk, declared, ..
        }) => {
            assert_eq!(chunk, 0);
            // The implied size, not the stored payload_len, is what tripped.
            assert!(u64::from(u32::MAX) * 13 > MAX_CHUNK_PAYLOAD_BYTES || declared > 0);
        }
        other => panic!("expected OverlengthChunk, got {other:?}"),
    }
}

/// `payload_len` disagreeing with the count fields is also an over-length
/// (malformed-frame) rejection, even when both fit the cap.
#[test]
fn inconsistent_payload_len_is_rejected() {
    let mut bytes = valid_trace();
    let off = FIRST_CHUNK + 8; // payload_len field
    let declared = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
    bytes[off..off + 4].copy_from_slice(&(declared + 1).to_le_bytes());
    assert!(matches!(
        scan(&bytes),
        Err(TraceError::OverlengthChunk { chunk: 0, .. })
    ));
}

/// Header totals drifting from the data (here: one op shaved off) are
/// caught by the end-of-stream cross-check, not silently accepted.
#[test]
fn drifted_header_totals_are_rejected() {
    let mut bytes = valid_trace();
    bytes[24..32].copy_from_slice(&8u64.to_le_bytes()); // total_ops: 9 → 8
    match scan(&bytes) {
        Err(TraceError::CountMismatch {
            what,
            declared,
            found,
        }) => {
            assert_eq!(what, "total ops");
            assert_eq!(declared, 8);
            assert_eq!(found, 9);
        }
        other => panic!("expected CountMismatch, got {other:?}"),
    }
}

/// An unfinished writer (totals never back-patched) leaves zeroed counts;
/// the reader sees chunk_count = 0 and stops at the header — it must not
/// silently replay a partial stream as if complete.
#[test]
fn unfinished_trace_yields_no_ops() {
    let mut w = TraceWriter::new(Cursor::new(Vec::new()), "unfinished", 0)
        .expect("writer")
        .with_chunk_ops(1);
    w.push_op(Op::read(1), &[Access::read(0)]).expect("push");
    // Drop without finish(): the chunk was flushed but the header still
    // says zero chunks.
    let bytes = {
        // Writer has no public sink accessor without finish; rebuild the
        // same situation by finishing and then zeroing the totals.
        let (_, cursor) = w.finish().expect("finish");
        let mut b = cursor.into_inner();
        b[24..48].fill(0); // total_ops, total_accesses, chunk_count
        b
    };
    let mut r = TraceReader::new(Cursor::new(&bytes[..])).expect("reader");
    assert!(
        !r.advance().expect("advance"),
        "zero-chunk header must stop"
    );
    assert_eq!(r.chunk().len(), 0);
}

#[test]
fn garbage_op_kind_is_rejected() {
    let mut bytes = valid_trace();
    // First payload byte of chunk 0 is the first op's kind.
    let kind_off = FIRST_CHUNK + 16;
    bytes[kind_off] = 7;
    // The checksum seals the payload, so a naive flip trips the checksum
    // first; recompute it so the kind check itself is exercised.
    let ops = 4usize;
    let accesses = 8usize;
    let payload_len = 13 * ops + 9 * accesses;
    let frame_start = FIRST_CHUNK;
    let payload_start = frame_start + 16;
    let checksum = {
        const PRIME: u64 = 0x0100_0000_01b3;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &bytes[frame_start..payload_start + payload_len] {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        h
    };
    let ck_off = payload_start + payload_len;
    bytes[ck_off..ck_off + 8].copy_from_slice(&checksum.to_le_bytes());
    assert!(matches!(
        scan(&bytes),
        Err(TraceError::Malformed { what: "op kind" })
    ));
}
