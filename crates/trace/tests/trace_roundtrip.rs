//! Property test: trace write→read round-trip is identity on random op
//! streams — random lengths, chunk sizes, read/write mixes, and cpu_ns
//! values, including the degenerate empty and single-op traces.

use std::io::Cursor;

use proptest::prelude::*;
use tiering_trace::{Access, Op, OpKind, TraceReader, TraceWriter};

/// Writes `ops` through a [`TraceWriter`] at the given chunking and returns
/// the raw bytes.
fn encode(ops: &[(Op, Vec<Access>)], chunk_ops: usize, name: &str) -> Vec<u8> {
    let mut w = TraceWriter::new(Cursor::new(Vec::new()), name, 1 << 24)
        .expect("writer")
        .with_chunk_ops(chunk_ops);
    for (op, accs) in ops {
        w.push_op(*op, accs).expect("push_op");
    }
    let (summary, cursor) = w.finish().expect("finish");
    assert_eq!(summary.ops, ops.len() as u64);
    assert_eq!(
        summary.accesses,
        ops.iter().map(|(_, a)| a.len() as u64).sum::<u64>()
    );
    cursor.into_inner()
}

/// Streams every op back out of `bytes` chunk by chunk.
fn decode(bytes: &[u8]) -> Vec<(Op, Vec<Access>)> {
    let mut r = TraceReader::new(Cursor::new(bytes)).expect("reader");
    let mut out = Vec::new();
    while r.advance().expect("advance") {
        let c = r.chunk();
        for i in 0..c.len() {
            let (s, e) = c.op_access_range(i);
            out.push((c.op(i), (s..e).map(|j| c.access(j)).collect()));
        }
    }
    out
}

/// Raw op tuple: (kind selector, cpu_ns, accesses as (addr, is_write)).
/// The vendored proptest shim has no `prop_map`, so strategies yield plain
/// tuples and [`build_ops`] lifts them into `Op`/`Access` values.
type RawOp = (u8, u64, Vec<(u64, bool)>);

fn op_strategy() -> impl Strategy<Value = RawOp> {
    (
        0u8..3,
        0u64..10_000_000,
        prop::collection::vec((0u64..u64::MAX, any::<bool>()), 0..24),
    )
}

fn build_ops(raw: Vec<RawOp>) -> Vec<(Op, Vec<Access>)> {
    raw.into_iter()
        .map(|(kind, cpu_ns, accs)| {
            let kind = match kind {
                0 => OpKind::Read,
                1 => OpKind::Write,
                _ => OpKind::Compute,
            };
            let accs = accs
                .into_iter()
                .map(|(addr, is_write)| Access { addr, is_write })
                .collect();
            (Op { kind, cpu_ns }, accs)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn write_read_roundtrip_is_identity(
        raw in prop::collection::vec(op_strategy(), 0..120),
        chunk_ops in 1usize..128,
    ) {
        let ops = build_ops(raw);
        let bytes = encode(&ops, chunk_ops, "prop-trace");
        prop_assert_eq!(decode(&bytes), ops);
    }

    #[test]
    fn chunking_never_changes_the_stream(
        raw in prop::collection::vec(op_strategy(), 1..80),
        small in 1usize..8,
        large in 64usize..256,
    ) {
        let ops = build_ops(raw);
        let fine = encode(&ops, small, "prop-trace");
        let coarse = encode(&ops, large, "prop-trace");
        prop_assert_eq!(decode(&fine), decode(&coarse));
    }

    #[test]
    fn header_totals_match_stream(
        raw in prop::collection::vec(op_strategy(), 0..60),
        chunk_ops in 1usize..64,
    ) {
        let ops = build_ops(raw);
        let bytes = encode(&ops, chunk_ops, "prop-trace");
        let r = TraceReader::new(Cursor::new(&bytes[..])).expect("reader");
        prop_assert_eq!(r.header().total_ops, ops.len() as u64);
        prop_assert_eq!(
            r.header().total_accesses,
            ops.iter().map(|(_, a)| a.len() as u64).sum::<u64>()
        );
        let expected_chunks = ops.len().div_ceil(chunk_ops) as u64;
        prop_assert_eq!(r.header().chunk_count, expected_chunks);
    }
}

#[test]
fn empty_trace_roundtrips() {
    let bytes = encode(&[], 16, "empty");
    assert_eq!(decode(&bytes), Vec::new());
}

#[test]
fn single_op_trace_roundtrips() {
    let ops = vec![(Op::write(123), vec![Access::write(0xDEAD_BEEF)])];
    let bytes = encode(&ops, 16, "single");
    assert_eq!(decode(&bytes), ops);
}

#[test]
fn single_op_no_access_trace_roundtrips() {
    let ops = vec![(Op::compute(7), Vec::new())];
    let bytes = encode(&ops, 1, "single-compute");
    assert_eq!(decode(&bytes), ops);
}
