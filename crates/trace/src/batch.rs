//! Fixed-size operation/access batches, stored structure-of-arrays.
//!
//! The simulation engine's hot loop used to make one virtual call into the
//! workload generator per operation. [`AccessBatch`] lets a workload emit up
//! to a whole batch of operations — each with its burst of accesses — per
//! virtual call.
//!
//! Storage is **SoA**: flat [`addrs`](AccessBatch::addrs) /
//! [`writes`](AccessBatch::writes) columns plus a derived
//! [`pages`](AccessBatch::pages) column filled once per batch by
//! [`compute_pages`](AccessBatch::compute_pages). The engine's access stage
//! iterates plain `u64` slices — no 16-byte `Access` structs in the inner
//! loop, and no per-access `addr >> page_shift` recomputation.
//!
//! Batching never changes simulation results: a workload is batch-pulled
//! only while it reports [`batchable_now`](crate::Workload::batchable_now)
//! (its output does not depend on simulated time), so the operation stream
//! is byte-identical to per-op pulls.

use tiering_mem::PageSize;

use crate::access::{Access, Op};

/// One operation's slot in a batch: its metadata plus the range of its
/// accesses within the batch's flat columns.
#[derive(Debug, Clone, Copy)]
pub struct OpRecord {
    /// Operation metadata (kind + compute time).
    pub op: Op,
    /// Start index of this op's accesses in the flat columns.
    start: u32,
    /// Number of accesses.
    len: u32,
}

/// A batch of operations with their accesses stored as flat columns.
///
/// Workloads fill a batch through [`begin_op`](AccessBatch::begin_op) /
/// [`commit_op`](AccessBatch::commit_op) (or
/// [`push_single`](AccessBatch::push_single) for one-access ops); the
/// engine drains it by op index via [`op_bounds`](AccessBatch::op_bounds)
/// over the [`addrs`](AccessBatch::addrs)/[`pages`](AccessBatch::pages)/
/// [`writes`](AccessBatch::writes) columns. Buffers are reused across
/// batches — a cleared batch keeps its capacity, so steady-state operation
/// emits no allocations.
#[derive(Debug, Default, Clone)]
pub struct AccessBatch {
    addrs: Vec<u64>,
    writes: Vec<bool>,
    /// Page number per access (`addr >> page_shift`); filled by
    /// [`compute_pages`](Self::compute_pages), empty until then.
    pages: Vec<u64>,
    ops: Vec<OpRecord>,
    /// Staging buffer for [`begin_op`](Self::begin_op)-style fills (the
    /// generic `next_op` adapter); drained into the columns on commit.
    scratch: Vec<Access>,
}

impl AccessBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch with pre-sized buffers.
    pub fn with_capacity(ops: usize, accesses: usize) -> Self {
        Self {
            addrs: Vec::with_capacity(accesses),
            writes: Vec::with_capacity(accesses),
            pages: Vec::with_capacity(accesses),
            ops: Vec::with_capacity(ops),
            scratch: Vec::new(),
        }
    }

    /// Clears the batch, keeping allocations.
    pub fn clear(&mut self) {
        self.addrs.clear();
        self.writes.clear();
        self.pages.clear();
        self.ops.clear();
        self.scratch.clear();
    }

    /// Opens a new operation and returns the staging buffer its accesses
    /// should be pushed into.
    ///
    /// Follow with [`commit_op`](Self::commit_op) to record the operation or
    /// [`abort_op`](Self::abort_op) to discard any pushed accesses (used
    /// when the workload turns out to be exhausted).
    #[inline]
    pub fn begin_op(&mut self) -> &mut Vec<Access> {
        self.scratch.clear();
        &mut self.scratch
    }

    /// Seals the currently open operation, draining the staging buffer into
    /// the flat columns.
    #[inline]
    pub fn commit_op(&mut self, op: Op) {
        let start = self.addrs.len() as u32;
        self.addrs.extend(self.scratch.iter().map(|a| a.addr));
        self.writes.extend(self.scratch.iter().map(|a| a.is_write));
        let len = self.scratch.len() as u32;
        self.scratch.clear();
        self.ops.push(OpRecord { op, start, len });
    }

    /// Discards accesses pushed since the last [`begin_op`](Self::begin_op).
    #[inline]
    pub fn abort_op(&mut self) {
        self.scratch.clear();
    }

    /// Pushes a complete single-access operation (the common case for
    /// pointer-chasing workloads; avoids the begin/commit round trip and
    /// the staging copy).
    #[inline]
    pub fn push_single(&mut self, op: Op, access: Access) {
        let start = self.addrs.len() as u32;
        self.addrs.push(access.addr);
        self.writes.push(access.is_write);
        self.ops.push(OpRecord { op, start, len: 1 });
    }

    /// Opens an operation that writes **directly** into the flat columns
    /// (no staging copy), returning its start cursor. Push the op's
    /// accesses with [`push_access`](Self::push_access), then seal with
    /// [`commit_open_op`](Self::commit_open_op) passing the cursor back.
    ///
    /// This is the zero-copy fill path for workloads with specialized
    /// [`fill_batch`](crate::Workload::fill_batch) overrides; the
    /// [`begin_op`](Self::begin_op) staging path remains for the generic
    /// `next_op` adapter. Do not interleave with `begin_op`/`commit_op`
    /// for the same operation.
    #[inline]
    pub fn open_op(&mut self) -> usize {
        self.addrs.len()
    }

    /// Appends one access of the operation opened by
    /// [`open_op`](Self::open_op) directly to the columns.
    #[inline]
    pub fn push_access(&mut self, access: Access) {
        self.addrs.push(access.addr);
        self.writes.push(access.is_write);
    }

    /// Seals an operation opened by [`open_op`](Self::open_op): records it
    /// as spanning every access pushed since `start`.
    #[inline]
    pub fn commit_open_op(&mut self, op: Op, start: usize) {
        self.ops.push(OpRecord {
            op,
            start: start as u32,
            len: (self.addrs.len() - start) as u32,
        });
    }

    /// Fills the [`pages`](Self::pages) column from the address column —
    /// one sequential pass per batch, so the engine's access stage never
    /// recomputes `addr >> shift` per access.
    pub fn compute_pages(&mut self, size: PageSize) {
        let shift = size.shift();
        self.pages.clear();
        self.pages.extend(self.addrs.iter().map(|&a| a >> shift));
    }

    /// Number of committed operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total accesses across all committed operations.
    pub fn total_accesses(&self) -> usize {
        self.addrs.len()
    }

    /// The flat byte-address column.
    #[inline]
    pub fn addrs(&self) -> &[u64] {
        &self.addrs
    }

    /// The flat is-write column (parallel to [`addrs`](Self::addrs)).
    #[inline]
    pub fn writes(&self) -> &[bool] {
        &self.writes
    }

    /// The derived page-number column (parallel to
    /// [`addrs`](Self::addrs)); empty until
    /// [`compute_pages`](Self::compute_pages) ran for this fill.
    #[inline]
    pub fn pages(&self) -> &[u64] {
        &self.pages
    }

    /// The `idx`-th committed operation and the `[start, end)` range of its
    /// accesses within the flat columns.
    ///
    /// Consumers that pause mid-batch (the multi-tenant engine suspends a
    /// tenant at rebalance boundaries with ops still buffered) resume by
    /// index instead of holding an iterator across the pause.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    #[inline]
    pub fn op_bounds(&self, idx: usize) -> (Op, usize, usize) {
        let r = &self.ops[idx];
        let s = r.start as usize;
        (r.op, s, s + r.len as usize)
    }

    /// Reconstructs the `i`-th access of the batch from the columns
    /// (convenience for tests and diagnostics; the hot path reads the
    /// columns directly).
    ///
    /// # Panics
    ///
    /// Panics if `i >= total_accesses()`.
    #[inline]
    pub fn access(&self, i: usize) -> Access {
        Access {
            addr: self.addrs[i],
            is_write: self.writes[i],
        }
    }

    /// Iterates `(op, accesses)` pairs in emission order, materializing
    /// each op's accesses from the columns (test/diagnostic convenience).
    pub fn iter(&self) -> impl Iterator<Item = (Op, Vec<Access>)> + '_ {
        self.ops.iter().map(|r| {
            let s = r.start as usize;
            let e = s + r.len as usize;
            (r.op, (s..e).map(|i| self.access(i)).collect())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiering_mem::PageId;

    #[test]
    fn fill_and_iterate() {
        let mut b = AccessBatch::with_capacity(4, 8);
        let buf = b.begin_op();
        buf.push(Access::read(0x1000));
        buf.push(Access::write(0x2000));
        b.commit_op(Op::read(50));
        b.push_single(Op::compute(10), Access::read(0x3000));

        assert_eq!(b.len(), 2);
        assert_eq!(b.total_accesses(), 3);
        let ops: Vec<(Op, Vec<Access>)> = b.iter().collect();
        assert_eq!(ops[0].1.len(), 2);
        assert_eq!(ops[0].1[1], Access::write(0x2000));
        assert_eq!(ops[1].0, Op::compute(10));
        assert_eq!(ops[1].1, vec![Access::read(0x3000)]);
        let (op, s, e) = b.op_bounds(0);
        assert_eq!(op, Op::read(50));
        assert_eq!((s, e), (0, 2));
        assert_eq!(&b.addrs()[s..e], &[0x1000, 0x2000]);
        assert_eq!(&b.writes()[s..e], &[false, true]);
    }

    #[test]
    fn direct_fill_matches_staged_fill() {
        let mut staged = AccessBatch::new();
        let buf = staged.begin_op();
        buf.push(Access::read(0x10));
        buf.push(Access::write(0x20));
        staged.commit_op(Op::read(7));

        let mut direct = AccessBatch::new();
        let start = direct.open_op();
        direct.push_access(Access::read(0x10));
        direct.push_access(Access::write(0x20));
        direct.commit_open_op(Op::read(7), start);

        assert_eq!(staged.addrs(), direct.addrs());
        assert_eq!(staged.writes(), direct.writes());
        assert_eq!(staged.len(), direct.len());
        let (op_s, s0, s1) = staged.op_bounds(0);
        let (op_d, d0, d1) = direct.op_bounds(0);
        assert_eq!((op_s, s0, s1), (op_d, d0, d1));
    }

    #[test]
    fn abort_discards_partial_op() {
        let mut b = AccessBatch::new();
        b.push_single(Op::read(1), Access::read(0));
        let buf = b.begin_op();
        buf.push(Access::read(0x5000));
        b.abort_op();
        assert_eq!(b.len(), 1);
        assert_eq!(b.total_accesses(), 1);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut b = AccessBatch::with_capacity(2, 2);
        for i in 0..100u64 {
            b.push_single(Op::read(1), Access::read(i));
        }
        let cap = b.addrs.capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.total_accesses(), 0);
        assert_eq!(b.addrs.capacity(), cap);
    }

    #[test]
    fn pages_column_matches_per_access_mapping() {
        let mut b = AccessBatch::new();
        for addr in [0u64, 0xFFF, 0x1000, 0x5123, 0xDEAD_BEEF] {
            b.push_single(Op::read(1), Access::read(addr));
        }
        for size in [PageSize::Base4K, PageSize::Huge2M] {
            b.compute_pages(size);
            assert_eq!(b.pages().len(), b.total_accesses());
            for i in 0..b.total_accesses() {
                assert_eq!(
                    PageId(b.pages()[i]),
                    b.access(i).page(size),
                    "page column diverges from Access::page at {i} ({size})"
                );
            }
        }
        // Refilling after a clear recomputes from the new addresses.
        b.clear();
        b.push_single(Op::read(1), Access::read(0x2000));
        b.compute_pages(PageSize::Base4K);
        assert_eq!(b.pages(), &[2]);
    }
}
