//! Fixed-size operation/access batches.
//!
//! The simulation engine's hot loop used to make one virtual call into the
//! workload generator per operation. [`AccessBatch`] lets a workload emit up
//! to a whole batch of operations — each with its burst of accesses — per
//! virtual call, stored flat so the engine iterates plain slices.
//!
//! Batching never changes simulation results: a workload is batch-pulled
//! only while it reports [`batchable_now`](crate::Workload::batchable_now)
//! (its output does not depend on simulated time), so the operation stream
//! is byte-identical to per-op pulls.

use crate::access::{Access, Op};

/// One operation's slot in a batch: its metadata plus the range of its
/// accesses within the batch's flat access buffer.
#[derive(Debug, Clone, Copy)]
pub struct OpRecord {
    /// Operation metadata (kind + compute time).
    pub op: Op,
    /// Start index of this op's accesses in the flat buffer.
    start: u32,
    /// Number of accesses.
    len: u32,
}

/// A batch of operations with their accesses stored contiguously.
///
/// Workloads fill a batch through [`begin_op`](AccessBatch::begin_op) /
/// [`commit_op`](AccessBatch::commit_op); the engine drains it through
/// [`iter`](AccessBatch::iter). Buffers are reused across batches — a
/// cleared batch keeps its capacity, so steady-state operation emits no
/// allocations.
#[derive(Debug, Default, Clone)]
pub struct AccessBatch {
    accesses: Vec<Access>,
    ops: Vec<OpRecord>,
    pending_start: usize,
}

impl AccessBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch with pre-sized buffers.
    pub fn with_capacity(ops: usize, accesses: usize) -> Self {
        Self {
            accesses: Vec::with_capacity(accesses),
            ops: Vec::with_capacity(ops),
            pending_start: 0,
        }
    }

    /// Clears the batch, keeping allocations.
    pub fn clear(&mut self) {
        self.accesses.clear();
        self.ops.clear();
        self.pending_start = 0;
    }

    /// Opens a new operation and returns the buffer its accesses should be
    /// pushed into (the shared flat buffer; only push, never truncate).
    ///
    /// Follow with [`commit_op`](Self::commit_op) to record the operation or
    /// [`abort_op`](Self::abort_op) to discard any pushed accesses (used
    /// when the workload turns out to be exhausted).
    #[inline]
    pub fn begin_op(&mut self) -> &mut Vec<Access> {
        self.pending_start = self.accesses.len();
        &mut self.accesses
    }

    /// Seals the currently open operation.
    #[inline]
    pub fn commit_op(&mut self, op: Op) {
        let start = self.pending_start;
        self.ops.push(OpRecord {
            op,
            start: start as u32,
            len: (self.accesses.len() - start) as u32,
        });
    }

    /// Discards accesses pushed since the last [`begin_op`](Self::begin_op).
    #[inline]
    pub fn abort_op(&mut self) {
        self.accesses.truncate(self.pending_start);
    }

    /// Pushes a complete single-access operation (the common case for
    /// pointer-chasing workloads; avoids the begin/commit round trip).
    #[inline]
    pub fn push_single(&mut self, op: Op, access: Access) {
        let start = self.accesses.len() as u32;
        self.accesses.push(access);
        self.ops.push(OpRecord { op, start, len: 1 });
    }

    /// Number of committed operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total accesses across all committed operations.
    pub fn total_accesses(&self) -> usize {
        self.accesses.len()
    }

    /// The `idx`-th committed operation and its accesses.
    ///
    /// Consumers that pause mid-batch (the multi-tenant engine suspends a
    /// tenant at rebalance boundaries with ops still buffered) resume by
    /// index instead of holding an iterator across the pause.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    #[inline]
    pub fn get(&self, idx: usize) -> (Op, &[Access]) {
        let r = &self.ops[idx];
        let s = r.start as usize;
        (r.op, &self.accesses[s..s + r.len as usize])
    }

    /// Iterates `(op, accesses)` pairs in emission order.
    pub fn iter(&self) -> impl Iterator<Item = (Op, &[Access])> {
        self.ops.iter().map(|r| {
            let s = r.start as usize;
            (r.op, &self.accesses[s..s + r.len as usize])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_and_iterate() {
        let mut b = AccessBatch::with_capacity(4, 8);
        let buf = b.begin_op();
        buf.push(Access::read(0x1000));
        buf.push(Access::write(0x2000));
        b.commit_op(Op::read(50));
        b.push_single(Op::compute(10), Access::read(0x3000));

        assert_eq!(b.len(), 2);
        assert_eq!(b.total_accesses(), 3);
        let ops: Vec<(Op, Vec<Access>)> = b.iter().map(|(op, a)| (op, a.to_vec())).collect();
        assert_eq!(ops[0].1.len(), 2);
        assert_eq!(ops[0].1[1], Access::write(0x2000));
        assert_eq!(ops[1].0, Op::compute(10));
        assert_eq!(ops[1].1, vec![Access::read(0x3000)]);
    }

    #[test]
    fn abort_discards_partial_op() {
        let mut b = AccessBatch::new();
        b.push_single(Op::read(1), Access::read(0));
        let buf = b.begin_op();
        buf.push(Access::read(0x5000));
        b.abort_op();
        assert_eq!(b.len(), 1);
        assert_eq!(b.total_accesses(), 1);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut b = AccessBatch::with_capacity(2, 2);
        for i in 0..100u64 {
            b.push_single(Op::read(1), Access::read(i));
        }
        let cap = b.accesses.capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.total_accesses(), 0);
        assert_eq!(b.accesses.capacity(), cap);
    }
}
