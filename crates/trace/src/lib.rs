//! Memory-access traces, workload abstraction, and PEBS-like sampling.
//!
//! Tiering systems observe applications through *sampled* memory accesses:
//! Intel PEBS / AMD IBS deliver every Nth access with its virtual address and
//! serving tier (paper §2.3.3, §4.1). This crate defines:
//!
//! * [`Access`] / [`Op`] — the unit of workload execution: an operation (a
//!   cache GET, one vertex relaxation, one stencil point…) comprising a
//!   burst of memory accesses plus fixed compute time.
//! * [`Workload`] — the trait every workload generator implements; the
//!   simulation engine pulls operations from it lazily, so traces are never
//!   materialized.
//! * [`AccessBatch`] — fixed-size operation/access batches; workloads emit
//!   many ops per virtual call through [`Workload::fill_batch`], and the
//!   engine's pipeline stages iterate the flat access slices.
//! * [`Sampler`] + [`SampleBuffer`] — the PEBS model: periodic sampling into
//!   a bounded buffer that the tiering runtime drains (paper Algorithm 1).
//!   [`Sampler::due_in`]/[`Sampler::skip`] let batch consumers step over
//!   whole unsampled bursts in one operation.
//! * [`TraceWriter`] / [`TraceReader`] — a versioned, chunked, checksummed
//!   on-disk trace format (`docs/TRACE_FORMAT.md`) whose columnar chunk
//!   frames mirror the [`AccessBatch`] layout, so recorded access streams
//!   bigger than RAM replay through the same zero-copy direct-fill path
//!   with O(chunk) resident memory.
//!
//! # Example
//!
//! ```
//! use tiering_trace::{Access, Sampler};
//!
//! let mut sampler = Sampler::new(4); // every 4th access
//! let sampled: Vec<bool> = (0..8)
//!     .map(|i| sampler.observe(&Access::read(i * 64)).is_some())
//!     .collect();
//! assert_eq!(sampled.iter().filter(|&&s| s).count(), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod access;
mod batch;
mod file;
mod sampler;

pub use access::{fill_batch_via_next_op, Access, Op, OpKind, Workload};
pub use batch::{AccessBatch, OpRecord};
pub use file::{
    TraceChunk, TraceError, TraceHeader, TraceReader, TraceSummary, TraceWriter, DEFAULT_CHUNK_OPS,
    MAX_CHUNK_PAYLOAD_BYTES, TRACE_MAGIC, TRACE_VERSION,
};
pub use sampler::{Sample, SampleBuffer, Sampler};
