//! Access records, operations, and the workload trait.

use tiering_mem::{PageId, PageSize};

use crate::batch::AccessBatch;

/// One memory reference issued by the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Virtual byte address.
    pub addr: u64,
    /// Whether the reference is a store.
    pub is_write: bool,
}

impl Access {
    /// A load of `addr`.
    #[inline]
    pub fn read(addr: u64) -> Self {
        Self {
            addr,
            is_write: false,
        }
    }

    /// A store to `addr`.
    #[inline]
    pub fn write(addr: u64) -> Self {
        Self {
            addr,
            is_write: true,
        }
    }

    /// The page containing this access at the given granularity.
    #[inline]
    pub fn page(&self, size: PageSize) -> PageId {
        PageId::containing(self.addr, size)
    }
}

/// Coarse classification of an operation, used for per-class latency
/// reporting (e.g. CacheLib distinguishes GET latency from SET latency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OpKind {
    /// A read-mostly request (cache GET, key-value read, …).
    #[default]
    Read,
    /// A write-mostly request (cache SET, insert, …).
    Write,
    /// One unit of batch compute (a vertex relaxation, a stencil point, a
    /// boosting-histogram slice, …).
    Compute,
}

/// Metadata describing the operation whose accesses were just emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// Operation class.
    pub kind: OpKind,
    /// Fixed CPU time of the operation, excluding its memory accesses.
    pub cpu_ns: u64,
}

impl Op {
    /// A read op with the given compute cost.
    pub fn read(cpu_ns: u64) -> Self {
        Self {
            kind: OpKind::Read,
            cpu_ns,
        }
    }

    /// A write op with the given compute cost.
    pub fn write(cpu_ns: u64) -> Self {
        Self {
            kind: OpKind::Write,
            cpu_ns,
        }
    }

    /// A compute op with the given compute cost.
    pub fn compute(cpu_ns: u64) -> Self {
        Self {
            kind: OpKind::Compute,
            cpu_ns,
        }
    }
}

/// A lazily generated memory-access workload.
///
/// The engine repeatedly calls [`next_op`](Workload::next_op) with the
/// current simulated time; the workload appends the operation's accesses to
/// `out` (cleared by the engine beforehand) and returns the operation
/// metadata, or `None` when the workload is complete.
///
/// Passing simulated time into the generator lets time-dependent behaviours
/// — CacheLib's hotness-distribution shift events, TTL expiry — trigger at
/// the right simulated instants regardless of how fast the host runs.
pub trait Workload {
    /// Generates the next operation. Returns `None` when the workload ends.
    fn next_op(&mut self, now_ns: u64, out: &mut Vec<Access>) -> Option<Op>;

    /// Total bytes of the address space this workload touches.
    fn footprint_bytes(&self) -> u64;

    /// Human-readable workload name (used in reports).
    fn name(&self) -> &str;

    /// Footprint in pages at the given granularity.
    fn footprint_pages(&self, size: PageSize) -> u64 {
        self.footprint_bytes().div_ceil(size.bytes())
    }

    /// Whether the generator's upcoming output is independent of simulated
    /// time — the engine batch-pulls operations (one virtual call for many
    /// ops) only while this returns `true`, so batching can never perturb
    /// time-triggered behaviour (hotness shifts, TTL expiry).
    ///
    /// The conservative default is `false` (pull one op at a time, exactly
    /// the legacy behaviour). Generators that never consult `now_ns` —
    /// or whose remaining time triggers have all fired — should override
    /// this; all twelve suite workloads do.
    fn batchable_now(&self) -> bool {
        false
    }

    /// Emits up to `max_ops` operations into `batch` (appending), returning
    /// how many were emitted. `0` means the workload is exhausted.
    ///
    /// The default implementation loops [`next_op`](Workload::next_op) (via
    /// [`fill_batch_via_next_op`]); generators on hot sweep paths can
    /// override it to amortize per-op setup (RNG loads, bounds checks)
    /// across the whole batch. Overrides **must** emit exactly the
    /// operations `max_ops` successive `next_op` calls would — equivalence
    /// tests compare the two paths byte for byte.
    fn fill_batch(&mut self, now_ns: u64, max_ops: usize, batch: &mut AccessBatch) -> usize {
        fill_batch_via_next_op(self, now_ns, max_ops, batch)
    }
}

/// The canonical op-by-op batch fill: loops [`Workload::next_op`] up to
/// `max_ops` times. This is the [`Workload::fill_batch`] default; overrides
/// that specialize only *some* phases (e.g. a pending time trigger forces
/// the generic path) should fall back to this same function rather than
/// re-implementing the loop.
pub fn fill_batch_via_next_op<W: Workload + ?Sized>(
    w: &mut W,
    now_ns: u64,
    max_ops: usize,
    batch: &mut AccessBatch,
) -> usize {
    let mut emitted = 0;
    while emitted < max_ops {
        let buf = batch.begin_op();
        match w.next_op(now_ns, buf) {
            Some(op) => batch.commit_op(op),
            None => {
                batch.abort_op();
                break;
            }
        }
        emitted += 1;
    }
    emitted
}

impl<W: Workload + ?Sized> Workload for Box<W> {
    fn next_op(&mut self, now_ns: u64, out: &mut Vec<Access>) -> Option<Op> {
        (**self).next_op(now_ns, out)
    }

    fn footprint_bytes(&self) -> u64 {
        (**self).footprint_bytes()
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn batchable_now(&self) -> bool {
        (**self).batchable_now()
    }

    fn fill_batch(&mut self, now_ns: u64, max_ops: usize, batch: &mut AccessBatch) -> usize {
        (**self).fill_batch(now_ns, max_ops, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_constructors() {
        assert!(!Access::read(4).is_write);
        assert!(Access::write(4).is_write);
        assert_eq!(Access::read(0x5000).page(PageSize::Base4K), PageId(5));
    }

    #[test]
    fn footprint_pages_rounds_up() {
        struct W;
        impl Workload for W {
            fn next_op(&mut self, _: u64, _: &mut Vec<Access>) -> Option<Op> {
                None
            }
            fn footprint_bytes(&self) -> u64 {
                4097
            }
            fn name(&self) -> &str {
                "w"
            }
        }
        assert_eq!(W.footprint_pages(PageSize::Base4K), 2);
        assert_eq!(W.footprint_pages(PageSize::Huge2M), 1);
    }

    #[test]
    fn boxed_workload_delegates() {
        struct W(u32);
        impl Workload for W {
            fn next_op(&mut self, _: u64, out: &mut Vec<Access>) -> Option<Op> {
                if self.0 == 0 {
                    return None;
                }
                self.0 -= 1;
                out.push(Access::read(0));
                Some(Op::read(10))
            }
            fn footprint_bytes(&self) -> u64 {
                4096
            }
            fn name(&self) -> &str {
                "w"
            }
        }
        let mut b: Box<dyn Workload> = Box::new(W(2));
        let mut buf = Vec::new();
        assert!(b.next_op(0, &mut buf).is_some());
        assert!(b.next_op(0, &mut buf).is_some());
        assert!(b.next_op(0, &mut buf).is_none());
        assert_eq!(b.name(), "w");
        assert_eq!(buf.len(), 2);
    }
}
