//! PEBS-style periodic access sampling.

use std::collections::VecDeque;

use tiering_mem::{PageId, PageSize, Tier};

use crate::access::Access;

/// One hardware access sample, as delivered by PEBS/IBS: the virtual address
/// plus which tier served it (paper §2.3.3: "each sampled event contains the
/// exact virtual address accessed by the application and whether it was in
/// local DRAM or CXL memory").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Page containing the sampled access.
    pub page: PageId,
    /// Exact sampled byte address.
    pub addr: u64,
    /// Tier that served the access.
    pub tier: Tier,
    /// Simulated time the sample was taken.
    pub at_ns: u64,
    /// Whether the sampled access was a store.
    pub is_write: bool,
}

/// Deterministic every-Nth-access sampler.
///
/// Real PEBS counts events and fires on counter overflow, which for a fixed
/// reload value is exactly an every-Nth filter. Determinism keeps simulation
/// runs reproducible.
#[derive(Debug, Clone)]
pub struct Sampler {
    period: u32,
    countdown: u32,
}

impl Sampler {
    /// Samples every `period`-th access (`period = 1` observes everything,
    /// as fault-based policies effectively do for their fault window).
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(period: u32) -> Self {
        assert!(period > 0, "sampling period must be at least 1");
        Self {
            period,
            countdown: period,
        }
    }

    /// The configured sampling period.
    pub fn period(&self) -> u32 {
        self.period
    }

    /// How many more accesses until the next one is sampled (≥ 1).
    ///
    /// Lets the engine's batched pipeline decide in one comparison whether
    /// an operation's access burst contains any sample at all — the common
    /// case at realistic periods is that it does not, and the whole
    /// per-access sampling path is skipped via [`skip`](Self::skip).
    #[inline]
    pub fn due_in(&self) -> u32 {
        self.countdown
    }

    /// Advances the sampler past `n` unsampled accesses in one step.
    ///
    /// Equivalent to `n` calls to [`observe`](Self::observe) that all return
    /// `None`; callers must ensure `n < due_in()`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `n >= due_in()` — that would silently drop
    /// a due sample.
    #[inline]
    pub fn skip(&mut self, n: u32) {
        debug_assert!(n < self.countdown, "skip({n}) would cross a due sample");
        self.countdown -= n;
    }

    /// Advances the sampler by one access; returns whether that access is
    /// sampled. The raw primitive behind [`observe`](Self::observe), for
    /// callers (the SoA pipeline) that carry the address/page in columns and
    /// only need the selection decision.
    #[inline]
    pub fn tick(&mut self) -> bool {
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = self.period;
            true
        } else {
            false
        }
    }

    /// Observes one access; returns its address if this access is sampled.
    #[inline]
    pub fn observe(&mut self, access: &Access) -> Option<u64> {
        if self.tick() {
            Some(access.addr)
        } else {
            None
        }
    }

    /// Convenience: observe and build a full [`Sample`] when selected.
    #[inline]
    pub fn observe_full(
        &mut self,
        access: &Access,
        tier: Tier,
        now_ns: u64,
        page_size: PageSize,
    ) -> Option<Sample> {
        self.observe(access).map(|addr| Sample {
            page: PageId::containing(addr, page_size),
            addr,
            tier,
            at_ns: now_ns,
            is_write: access.is_write,
        })
    }
}

/// A bounded PEBS sample buffer (paper Algorithm 1: the tiering thread reads
/// from `SampleBuffer` when it is non-empty).
///
/// If the tiering thread falls behind, the hardware overwrites unread
/// records; [`dropped`](SampleBuffer::dropped) counts those losses.
#[derive(Debug, Clone)]
pub struct SampleBuffer {
    buf: VecDeque<Sample>,
    capacity: usize,
    dropped: u64,
}

impl SampleBuffer {
    /// Creates a buffer holding at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sample buffer capacity must be positive");
        Self {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Pushes a sample, dropping it (and counting the drop) if full.
    pub fn push(&mut self, sample: Sample) {
        if self.buf.len() == self.capacity {
            self.dropped += 1;
        } else {
            self.buf.push_back(sample);
        }
    }

    /// Pops the oldest sample.
    pub fn pop(&mut self) -> Option<Sample> {
        self.buf.pop_front()
    }

    /// Number of samples waiting.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Samples lost to buffer overflow so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_every_nth_exactly() {
        let mut s = Sampler::new(5);
        let hits: Vec<usize> = (0..20)
            .filter(|&i| s.observe(&Access::read(i as u64)).is_some())
            .collect();
        assert_eq!(hits, vec![4, 9, 14, 19]);
    }

    #[test]
    fn period_one_samples_everything() {
        let mut s = Sampler::new(1);
        for i in 0..10u64 {
            assert_eq!(s.observe(&Access::read(i)), Some(i));
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_period_rejected() {
        let _ = Sampler::new(0);
    }

    #[test]
    fn observe_full_builds_sample() {
        let mut s = Sampler::new(1);
        let sample = s
            .observe_full(&Access::write(0x5123), Tier::Slow, 77, PageSize::Base4K)
            .unwrap();
        assert_eq!(sample.page, PageId(5));
        assert_eq!(sample.addr, 0x5123);
        assert_eq!(sample.tier, Tier::Slow);
        assert_eq!(sample.at_ns, 77);
        assert!(sample.is_write);
    }

    #[test]
    fn buffer_fifo_and_drops() {
        let mut b = SampleBuffer::new(2);
        let mk = |i: u64| Sample {
            page: PageId(i),
            addr: i << 12,
            tier: Tier::Fast,
            at_ns: i,
            is_write: false,
        };
        b.push(mk(1));
        b.push(mk(2));
        b.push(mk(3)); // dropped
        assert_eq!(b.len(), 2);
        assert_eq!(b.dropped(), 1);
        assert_eq!(b.pop().unwrap().page, PageId(1));
        assert_eq!(b.pop().unwrap().page, PageId(2));
        assert!(b.pop().is_none());
        assert!(b.is_empty());
    }
}
