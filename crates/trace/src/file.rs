//! Versioned, chunked on-disk access-trace format.
//!
//! A trace file is a fixed little-endian header followed by a sequence of
//! self-verifying chunk frames. Each frame stores its operations
//! **columnar** — per-op `kind`/`cpu_ns`/`access-count` columns, per-access
//! `addrs`/`writes` columns — mirroring the structure-of-arrays layout of
//! [`AccessBatch`](crate::AccessBatch), so a decoded chunk feeds the batch
//! pipeline through the `open_op`/`push_access`/`commit_open_op`
//! direct-fill path without ever materializing per-op `Access` vectors.
//!
//! Layout (byte offsets; all integers little-endian; full specification in
//! `docs/TRACE_FORMAT.md`):
//!
//! ```text
//! header   0  magic            [u8; 8] = b"HTIERTRC"
//!          8  version          u32     = 1
//!         12  name_len         u32     (≤ 4096)
//!         16  footprint_bytes  u64
//!         24  total_ops        u64
//!         32  total_accesses   u64
//!         40  chunk_count      u64
//!         48  name             [u8; name_len]  (UTF-8 workload name)
//! chunk    0  ops              u32     \
//!          4  accesses         u32      | prologue (16 B)
//!          8  payload_len      u32      |
//!         12  reserved         u32 = 0 /
//!         16  kinds            [u8;  ops]       0=Read 1=Write 2=Compute
//!             cpu_ns           [u64; ops]
//!             acc_len          [u32; ops]       accesses per op
//!             addrs            [u64; accesses]
//!             writes           [u8;  accesses]  0=load 1=store
//!             checksum         u64              FNV-1a over prologue+payload
//! ```
//!
//! `payload_len` must equal `13·ops + 9·accesses` and is capped
//! ([`MAX_CHUNK_PAYLOAD_BYTES`]) so a corrupted count field can never make
//! the reader allocate unbounded memory. [`TraceWriter`] streams frames out
//! as ops arrive and back-patches the header totals on
//! [`finish`](TraceWriter::finish); [`TraceReader`] holds **one decoded
//! chunk at a time** (replay memory is O(chunk), never O(trace) — the
//! [`max_resident_bytes`](TraceReader::max_resident_bytes) meter is
//! asserted on by the replay-equivalence suite). Every structural defect —
//! foreign magic, unknown version, truncation, checksum mismatch,
//! over-length chunk, total drift — surfaces as a typed [`TraceError`],
//! never a panic and never a silent short read.

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::access::{Access, Op, OpKind};

/// Magic bytes opening every trace file.
pub const TRACE_MAGIC: [u8; 8] = *b"HTIERTRC";

/// Current format version (the only one this reader accepts).
pub const TRACE_VERSION: u32 = 1;

/// Default operations per chunk for [`TraceWriter`].
pub const DEFAULT_CHUNK_OPS: usize = 4096;

/// Hard cap on one chunk's payload (64 MiB): a corrupted count field is
/// rejected as [`TraceError::OverlengthChunk`] instead of driving an
/// unbounded allocation.
pub const MAX_CHUNK_PAYLOAD_BYTES: u64 = 1 << 26;

/// Hard cap on the header's workload-name length.
const MAX_NAME_BYTES: u32 = 4096;

/// Bytes one operation contributes to a payload (kind + cpu_ns + acc_len).
const OP_BYTES: u64 = 1 + 8 + 4;
/// Bytes one access contributes to a payload (addr + write flag).
const ACCESS_BYTES: u64 = 8 + 1;
/// Fixed header bytes before the name block.
const HEADER_FIXED_BYTES: usize = 48;
/// Chunk prologue bytes (ops, accesses, payload_len, reserved).
const PROLOGUE_BYTES: usize = 16;

/// Why a trace file could not be written or read.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure (disk full, permission, …).
    Io(io::Error),
    /// The file does not start with [`TRACE_MAGIC`].
    BadMagic {
        /// The bytes found where the magic was expected.
        found: [u8; 8],
    },
    /// The header declares a version this reader does not support.
    BadVersion {
        /// The declared version.
        found: u32,
    },
    /// The stream ended before the named structure was complete.
    Truncated {
        /// Which structure was cut short.
        what: &'static str,
    },
    /// A chunk's stored checksum disagrees with its contents.
    ChecksumMismatch {
        /// Zero-based index of the offending chunk.
        chunk: u64,
    },
    /// A chunk (or the header name block) declares a size that exceeds its
    /// cap or disagrees with its own count fields.
    OverlengthChunk {
        /// Zero-based index of the offending chunk (`u64::MAX` for the
        /// header name block).
        chunk: u64,
        /// The declared byte length.
        declared: u64,
        /// The byte length the counts (or the cap) admit.
        limit: u64,
    },
    /// A count in the file disagrees with what was actually read (header
    /// totals vs. chunk contents, per-chunk access totals, …).
    CountMismatch {
        /// Which count drifted.
        what: &'static str,
        /// The declared value.
        declared: u64,
        /// The value reconstructed from the data.
        found: u64,
    },
    /// A field holds a value outside its vocabulary (an op-kind byte that
    /// is not 0/1/2, a non-UTF-8 name, …).
    Malformed {
        /// Which field is out of vocabulary.
        what: &'static str,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic { found } => {
                write!(f, "not a trace file (magic {found:02x?})")
            }
            TraceError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported trace version {found} (expected {TRACE_VERSION})"
                )
            }
            TraceError::Truncated { what } => write!(f, "trace truncated in {what}"),
            TraceError::ChecksumMismatch { chunk } => {
                write!(f, "checksum mismatch in chunk {chunk}")
            }
            TraceError::OverlengthChunk {
                chunk,
                declared,
                limit,
            } => {
                if *chunk == u64::MAX {
                    write!(
                        f,
                        "over-length header name: {declared} bytes (limit {limit})"
                    )
                } else {
                    write!(
                        f,
                        "over-length chunk {chunk}: declares {declared} payload bytes (limit {limit})"
                    )
                }
            }
            TraceError::CountMismatch {
                what,
                declared,
                found,
            } => write!(f, "{what}: file declares {declared}, data holds {found}"),
            TraceError::Malformed { what } => write!(f, "malformed trace field: {what}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Maps `read_exact`'s EOF onto the typed truncation error, so a cut-short
/// file is reported as *truncated in \<structure\>*, never as a bare I/O
/// failure or a silent short read.
fn read_exact_or_truncated<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    what: &'static str,
) -> Result<(), TraceError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceError::Truncated { what }
        } else {
            TraceError::Io(e)
        }
    })
}

/// The FNV-1a accumulator sealing each chunk — the same fixed, documented
/// algorithm the report fingerprints use, so checksums are identical across
/// hosts and rustc versions.
fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0100_0000_01b3;
    let mut h = state;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// FNV-1a offset basis (the checksum's initial state).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The decoded trace header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Format version (currently always [`TRACE_VERSION`]).
    pub version: u32,
    /// Footprint of the recorded workload — replay sizes tiers from this,
    /// so a replayed scenario resolves the same tier configuration as the
    /// generator it was recorded from.
    pub footprint_bytes: u64,
    /// Total operations across all chunks.
    pub total_ops: u64,
    /// Total accesses across all chunks.
    pub total_accesses: u64,
    /// Number of chunk frames.
    pub chunk_count: u64,
    /// Recorded workload name — replay reports under this name, so a
    /// replayed run's `SimReport` fingerprint matches the direct run's.
    pub name: String,
}

impl TraceHeader {
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_FIXED_BYTES + self.name.len());
        out.extend_from_slice(&TRACE_MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&(self.name.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.footprint_bytes.to_le_bytes());
        out.extend_from_slice(&self.total_ops.to_le_bytes());
        out.extend_from_slice(&self.total_accesses.to_le_bytes());
        out.extend_from_slice(&self.chunk_count.to_le_bytes());
        out.extend_from_slice(self.name.as_bytes());
        out
    }

    fn read<R: Read>(r: &mut R) -> Result<Self, TraceError> {
        let mut fixed = [0u8; HEADER_FIXED_BYTES];
        read_exact_or_truncated(r, &mut fixed, "header")?;
        let mut magic = [0u8; 8];
        magic.copy_from_slice(&fixed[0..8]);
        if magic != TRACE_MAGIC {
            return Err(TraceError::BadMagic { found: magic });
        }
        let le32 = |b: &[u8]| u32::from_le_bytes(b.try_into().expect("4-byte slice"));
        let le64 = |b: &[u8]| u64::from_le_bytes(b.try_into().expect("8-byte slice"));
        let version = le32(&fixed[8..12]);
        if version != TRACE_VERSION {
            return Err(TraceError::BadVersion { found: version });
        }
        let name_len = le32(&fixed[12..16]);
        if name_len > MAX_NAME_BYTES {
            return Err(TraceError::OverlengthChunk {
                chunk: u64::MAX,
                declared: u64::from(name_len),
                limit: u64::from(MAX_NAME_BYTES),
            });
        }
        let mut name_bytes = vec![0u8; name_len as usize];
        read_exact_or_truncated(r, &mut name_bytes, "header name")?;
        let name = String::from_utf8(name_bytes).map_err(|_| TraceError::Malformed {
            what: "header name (not UTF-8)",
        })?;
        Ok(Self {
            version,
            footprint_bytes: le64(&fixed[16..24]),
            total_ops: le64(&fixed[24..32]),
            total_accesses: le64(&fixed[32..40]),
            chunk_count: le64(&fixed[40..48]),
            name,
        })
    }
}

/// Totals of a completed write or a full verification scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Operations in the trace.
    pub ops: u64,
    /// Accesses in the trace.
    pub accesses: u64,
    /// Chunk frames in the trace.
    pub chunks: u64,
}

/// Streaming trace writer: buffer one chunk's columns, seal it with its
/// checksum when full, back-patch the header totals on
/// [`finish`](TraceWriter::finish).
///
/// The writer holds at most one chunk's worth of columns — recording is
/// O(chunk) memory just like replay.
#[derive(Debug)]
pub struct TraceWriter<W: Write + Seek> {
    out: W,
    chunk_ops: usize,
    // Current chunk, columnar (mirrors the on-disk frame layout).
    kinds: Vec<u8>,
    cpu_ns: Vec<u64>,
    acc_len: Vec<u32>,
    addrs: Vec<u64>,
    writes: Vec<u8>,
    header: TraceHeader,
}

impl TraceWriter<BufWriter<File>> {
    /// Creates `path` (truncating any existing file) and writes the
    /// provisional header for a workload called `name` with the given
    /// footprint.
    pub fn create(
        path: impl AsRef<Path>,
        name: &str,
        footprint_bytes: u64,
    ) -> Result<Self, TraceError> {
        Self::new(BufWriter::new(File::create(path)?), name, footprint_bytes)
    }
}

impl<W: Write + Seek> TraceWriter<W> {
    /// Wraps any seekable sink (a file, an in-memory `Cursor`) and writes
    /// the provisional header; totals are back-patched by
    /// [`finish`](TraceWriter::finish).
    pub fn new(mut out: W, name: &str, footprint_bytes: u64) -> Result<Self, TraceError> {
        if name.len() > MAX_NAME_BYTES as usize {
            return Err(TraceError::OverlengthChunk {
                chunk: u64::MAX,
                declared: name.len() as u64,
                limit: u64::from(MAX_NAME_BYTES),
            });
        }
        let header = TraceHeader {
            version: TRACE_VERSION,
            footprint_bytes,
            total_ops: 0,
            total_accesses: 0,
            chunk_count: 0,
            name: name.to_string(),
        };
        out.write_all(&header.to_bytes())?;
        Ok(Self {
            out,
            chunk_ops: DEFAULT_CHUNK_OPS,
            kinds: Vec::new(),
            cpu_ns: Vec::new(),
            acc_len: Vec::new(),
            addrs: Vec::new(),
            writes: Vec::new(),
            header,
        })
    }

    /// Overrides the operations-per-chunk target (default
    /// [`DEFAULT_CHUNK_OPS`]). Smaller chunks mean lower replay memory and
    /// more checksums; the decoded stream is identical for any value.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_ops` is zero.
    #[must_use]
    pub fn with_chunk_ops(mut self, chunk_ops: usize) -> Self {
        assert!(chunk_ops > 0, "a chunk must hold at least one op");
        self.chunk_ops = chunk_ops;
        self
    }

    /// Appends one operation with its accesses to the current chunk,
    /// sealing and writing the chunk once it reaches the op target.
    pub fn push_op(&mut self, op: Op, accesses: &[Access]) -> Result<(), TraceError> {
        self.kinds.push(match op.kind {
            OpKind::Read => 0,
            OpKind::Write => 1,
            OpKind::Compute => 2,
        });
        self.cpu_ns.push(op.cpu_ns);
        self.acc_len.push(accesses.len() as u32);
        for a in accesses {
            self.addrs.push(a.addr);
            self.writes.push(u8::from(a.is_write));
        }
        self.header.total_ops += 1;
        self.header.total_accesses += accesses.len() as u64;
        if self.kinds.len() >= self.chunk_ops {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Seals and writes the buffered chunk (no-op when empty).
    fn flush_chunk(&mut self) -> Result<(), TraceError> {
        if self.kinds.is_empty() {
            return Ok(());
        }
        let ops = self.kinds.len();
        let accesses = self.addrs.len();
        let payload_len = ops as u64 * OP_BYTES + accesses as u64 * ACCESS_BYTES;

        let mut prologue = [0u8; PROLOGUE_BYTES];
        prologue[0..4].copy_from_slice(&(ops as u32).to_le_bytes());
        prologue[4..8].copy_from_slice(&(accesses as u32).to_le_bytes());
        prologue[8..12].copy_from_slice(&(payload_len as u32).to_le_bytes());

        let mut payload = Vec::with_capacity(payload_len as usize);
        payload.extend_from_slice(&self.kinds);
        for &v in &self.cpu_ns {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        for &v in &self.acc_len {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        for &v in &self.addrs {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        payload.extend_from_slice(&self.writes);
        debug_assert_eq!(payload.len() as u64, payload_len);

        let checksum = fnv1a(fnv1a(FNV_OFFSET, &prologue), &payload);
        self.out.write_all(&prologue)?;
        self.out.write_all(&payload)?;
        self.out.write_all(&checksum.to_le_bytes())?;

        self.header.chunk_count += 1;
        self.kinds.clear();
        self.cpu_ns.clear();
        self.acc_len.clear();
        self.addrs.clear();
        self.writes.clear();
        Ok(())
    }

    /// Seals any partial chunk, back-patches the header totals, flushes,
    /// and returns the totals plus the underlying sink. A trace that was
    /// not finished has zeroed totals and is rejected by the reader's
    /// count checks.
    pub fn finish(mut self) -> Result<(TraceSummary, W), TraceError> {
        self.flush_chunk()?;
        self.out.seek(SeekFrom::Start(0))?;
        self.out.write_all(&self.header.to_bytes())?;
        self.out.flush()?;
        Ok((
            TraceSummary {
                ops: self.header.total_ops,
                accesses: self.header.total_accesses,
                chunks: self.header.chunk_count,
            },
            self.out,
        ))
    }
}

/// One decoded chunk: the columnar frame, ready to feed
/// [`AccessBatch`](crate::AccessBatch) column-for-column. Buffers are
/// reused across [`TraceReader::advance`] calls.
#[derive(Debug, Default)]
pub struct TraceChunk {
    kinds: Vec<OpKind>,
    cpu_ns: Vec<u64>,
    /// Exclusive prefix sums of per-op access counts (`len() + 1` entries),
    /// so an op's access range is two lookups, mirroring
    /// [`AccessBatch::op_bounds`](crate::AccessBatch::op_bounds).
    acc_start: Vec<u32>,
    addrs: Vec<u64>,
    writes: Vec<bool>,
}

impl TraceChunk {
    /// Operations in this chunk.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the chunk holds no operations.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Total accesses in this chunk.
    pub fn total_accesses(&self) -> usize {
        self.addrs.len()
    }

    /// The `idx`-th operation's metadata.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    pub fn op(&self, idx: usize) -> Op {
        Op {
            kind: self.kinds[idx],
            cpu_ns: self.cpu_ns[idx],
        }
    }

    /// The `[start, end)` range of the `idx`-th operation's accesses within
    /// the flat columns.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    pub fn op_access_range(&self, idx: usize) -> (usize, usize) {
        (
            self.acc_start[idx] as usize,
            self.acc_start[idx + 1] as usize,
        )
    }

    /// The flat byte-address column.
    pub fn addrs(&self) -> &[u64] {
        &self.addrs
    }

    /// The flat is-write column (parallel to [`addrs`](Self::addrs)).
    pub fn writes(&self) -> &[bool] {
        &self.writes
    }

    /// Reconstructs the `i`-th access of the chunk from the columns.
    ///
    /// # Panics
    ///
    /// Panics if `i >= total_accesses()`.
    pub fn access(&self, i: usize) -> Access {
        Access {
            addr: self.addrs[i],
            is_write: self.writes[i],
        }
    }

    /// Bytes currently held by the decoded columns (capacity, not length —
    /// the honest measure of what stays resident across chunk reuse).
    fn resident_bytes(&self) -> usize {
        self.kinds.capacity()
            + self.cpu_ns.capacity() * 8
            + self.acc_start.capacity() * 4
            + self.addrs.capacity() * 8
            + self.writes.capacity()
    }
}

/// Streaming trace reader: validates the header on construction, then
/// decodes one chunk frame per [`advance`](TraceReader::advance) into a
/// reused [`TraceChunk`] — at no point is more than one chunk resident
/// ([`max_resident_bytes`](TraceReader::max_resident_bytes) meters it).
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    inner: R,
    header: TraceHeader,
    chunk: TraceChunk,
    payload_buf: Vec<u8>,
    chunks_read: u64,
    ops_seen: u64,
    accesses_seen: u64,
    max_resident: usize,
    done: bool,
}

impl TraceReader<BufReader<File>> {
    /// Opens `path` and validates its header.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        Self::new(BufReader::new(File::open(path)?))
    }

    /// Streams through every chunk of `path`, verifying checksums, layout,
    /// and totals, holding one chunk at a time. The cheap way to reject a
    /// damaged file *before* handing it to a replay that has no error
    /// channel.
    pub fn verify_file(path: impl AsRef<Path>) -> Result<TraceSummary, TraceError> {
        Self::open(path)?.verify()
    }
}

impl<R: Read> TraceReader<R> {
    /// Wraps any byte source and validates the header.
    pub fn new(mut inner: R) -> Result<Self, TraceError> {
        let header = TraceHeader::read(&mut inner)?;
        Ok(Self {
            inner,
            header,
            chunk: TraceChunk::default(),
            payload_buf: Vec::new(),
            chunks_read: 0,
            ops_seen: 0,
            accesses_seen: 0,
            max_resident: 0,
            done: false,
        })
    }

    /// The validated header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// The most recently decoded chunk (empty before the first
    /// [`advance`](Self::advance) and after the last).
    pub fn chunk(&self) -> &TraceChunk {
        &self.chunk
    }

    /// High-water mark of resident chunk bytes (raw payload buffer plus
    /// decoded columns): the O(chunk)-not-O(trace) guarantee, measured.
    pub fn max_resident_bytes(&self) -> usize {
        self.max_resident
    }

    /// Decodes the next chunk into [`chunk`](Self::chunk). Returns
    /// `Ok(false)` once every chunk has been read and the header totals
    /// have been cross-checked against the data.
    pub fn advance(&mut self) -> Result<bool, TraceError> {
        if self.done {
            return Ok(false);
        }
        if self.chunks_read == self.header.chunk_count {
            self.done = true;
            self.chunk = TraceChunk::default();
            if self.ops_seen != self.header.total_ops {
                return Err(TraceError::CountMismatch {
                    what: "total ops",
                    declared: self.header.total_ops,
                    found: self.ops_seen,
                });
            }
            if self.accesses_seen != self.header.total_accesses {
                return Err(TraceError::CountMismatch {
                    what: "total accesses",
                    declared: self.header.total_accesses,
                    found: self.accesses_seen,
                });
            }
            return Ok(false);
        }
        let idx = self.chunks_read;

        let mut prologue = [0u8; PROLOGUE_BYTES];
        read_exact_or_truncated(&mut self.inner, &mut prologue, "chunk prologue")?;
        let le32 = |b: &[u8]| u32::from_le_bytes(b.try_into().expect("4-byte slice"));
        let ops = u64::from(le32(&prologue[0..4]));
        let accesses = u64::from(le32(&prologue[4..8]));
        let payload_len = u64::from(le32(&prologue[8..12]));
        let expected = ops * OP_BYTES + accesses * ACCESS_BYTES;
        if expected > MAX_CHUNK_PAYLOAD_BYTES || payload_len != expected {
            return Err(TraceError::OverlengthChunk {
                chunk: idx,
                declared: payload_len,
                limit: expected.min(MAX_CHUNK_PAYLOAD_BYTES),
            });
        }

        self.payload_buf.resize(payload_len as usize, 0);
        read_exact_or_truncated(&mut self.inner, &mut self.payload_buf, "chunk payload")?;
        let mut stored = [0u8; 8];
        read_exact_or_truncated(&mut self.inner, &mut stored, "chunk checksum")?;
        let computed = fnv1a(fnv1a(FNV_OFFSET, &prologue), &self.payload_buf);
        if u64::from_le_bytes(stored) != computed {
            return Err(TraceError::ChecksumMismatch { chunk: idx });
        }

        self.decode_payload(idx, ops as usize, accesses as usize)?;
        self.chunks_read += 1;
        self.ops_seen += ops;
        self.accesses_seen += accesses;
        self.max_resident = self
            .max_resident
            .max(self.payload_buf.capacity() + self.chunk.resident_bytes());
        Ok(true)
    }

    /// Splits the verified payload into the reused column vectors.
    fn decode_payload(&mut self, idx: u64, ops: usize, accesses: usize) -> Result<(), TraceError> {
        let c = &mut self.chunk;
        c.kinds.clear();
        c.cpu_ns.clear();
        c.acc_start.clear();
        c.addrs.clear();
        c.writes.clear();

        let buf = &self.payload_buf;
        let (kind_bytes, rest) = buf.split_at(ops);
        let (cpu_bytes, rest) = rest.split_at(ops * 8);
        let (len_bytes, rest) = rest.split_at(ops * 4);
        let (addr_bytes, write_bytes) = rest.split_at(accesses * 8);

        for &k in kind_bytes {
            c.kinds.push(match k {
                0 => OpKind::Read,
                1 => OpKind::Write,
                2 => OpKind::Compute,
                _ => return Err(TraceError::Malformed { what: "op kind" }),
            });
        }
        c.cpu_ns.extend(
            cpu_bytes
                .chunks_exact(8)
                .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte chunk"))),
        );
        let mut cursor: u64 = 0;
        c.acc_start.push(0);
        for b in len_bytes.chunks_exact(4) {
            cursor += u64::from(u32::from_le_bytes(b.try_into().expect("4-byte chunk")));
            if cursor > accesses as u64 {
                return Err(TraceError::CountMismatch {
                    what: "chunk access total",
                    declared: accesses as u64,
                    found: cursor,
                });
            }
            c.acc_start.push(cursor as u32);
        }
        if cursor != accesses as u64 {
            return Err(TraceError::CountMismatch {
                what: "chunk access total",
                declared: accesses as u64,
                found: cursor,
            });
        }
        c.addrs.extend(
            addr_bytes
                .chunks_exact(8)
                .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte chunk"))),
        );
        for &w in write_bytes {
            c.writes.push(match w {
                0 => false,
                1 => true,
                _ => return Err(TraceError::Malformed { what: "write flag" }),
            });
        }
        let _ = idx;
        Ok(())
    }

    /// Streams through every remaining chunk, verifying as it goes, and
    /// returns the totals. Memory stays O(chunk).
    pub fn verify(mut self) -> Result<TraceSummary, TraceError> {
        while self.advance()? {}
        Ok(TraceSummary {
            ops: self.ops_seen,
            accesses: self.accesses_seen,
            chunks: self.chunks_read,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn write_ops(ops: &[(Op, Vec<Access>)], chunk_ops: usize) -> Vec<u8> {
        let mut w = TraceWriter::new(Cursor::new(Vec::new()), "test", 1 << 20)
            .expect("writer")
            .with_chunk_ops(chunk_ops);
        for (op, accs) in ops {
            w.push_op(*op, accs).expect("push");
        }
        let (_, cursor) = w.finish().expect("finish");
        cursor.into_inner()
    }

    fn read_ops(bytes: &[u8]) -> Vec<(Op, Vec<Access>)> {
        let mut r = TraceReader::new(Cursor::new(bytes)).expect("reader");
        let mut out = Vec::new();
        while r.advance().expect("advance") {
            let c = r.chunk();
            for i in 0..c.len() {
                let (s, e) = c.op_access_range(i);
                out.push((c.op(i), (s..e).map(|j| c.access(j)).collect()));
            }
        }
        out
    }

    fn sample_ops() -> Vec<(Op, Vec<Access>)> {
        vec![
            (
                Op::read(50),
                vec![Access::read(0x1000), Access::read(0x2000)],
            ),
            (Op::write(70), vec![Access::write(0x3000)]),
            (Op::compute(10), vec![]),
            (
                Op::read(90),
                vec![
                    Access::read(0xFFFF_FFFF_FFFF_0000),
                    Access::write(0),
                    Access::read(0x5000),
                ],
            ),
        ]
    }

    #[test]
    fn roundtrip_across_chunk_sizes() {
        let ops = sample_ops();
        for chunk_ops in [1, 2, 3, 4, 100] {
            let bytes = write_ops(&ops, chunk_ops);
            assert_eq!(read_ops(&bytes), ops, "chunk_ops={chunk_ops}");
        }
    }

    #[test]
    fn header_carries_identity() {
        let mut w =
            TraceWriter::new(Cursor::new(Vec::new()), "cachelib-cdn", 42_000).expect("writer");
        w.push_op(Op::read(1), &[Access::read(0)]).expect("push");
        let (summary, cursor) = w.finish().expect("finish");
        assert_eq!(summary.ops, 1);
        assert_eq!(summary.accesses, 1);
        assert_eq!(summary.chunks, 1);
        let r = TraceReader::new(Cursor::new(cursor.into_inner())).expect("reader");
        assert_eq!(r.header().name, "cachelib-cdn");
        assert_eq!(r.header().footprint_bytes, 42_000);
        assert_eq!(r.header().total_ops, 1);
        assert_eq!(r.header().version, TRACE_VERSION);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let bytes = write_ops(&[], 8);
        assert_eq!(read_ops(&bytes), Vec::new());
        let mut r = TraceReader::new(Cursor::new(bytes)).expect("reader");
        assert_eq!(r.header().chunk_count, 0);
        assert!(!r.advance().expect("advance"));
        assert!(!r.advance().expect("advance twice"));
    }

    #[test]
    fn chunk_boundaries_follow_chunk_ops() {
        let ops: Vec<(Op, Vec<Access>)> = (0..10)
            .map(|i| (Op::read(i), vec![Access::read(i)]))
            .collect();
        let bytes = write_ops(&ops, 4);
        let r = TraceReader::new(Cursor::new(bytes)).expect("reader");
        assert_eq!(r.header().chunk_count, 3, "10 ops at 4/chunk = 4+4+2");
    }

    #[test]
    fn resident_bytes_stay_per_chunk() {
        let ops: Vec<(Op, Vec<Access>)> = (0..4096u64)
            .map(|i| (Op::read(10), vec![Access::read(i * 64)]))
            .collect();
        let bytes = write_ops(&ops, 64);
        let total = bytes.len();
        let mut r = TraceReader::new(Cursor::new(bytes)).expect("reader");
        while r.advance().expect("advance") {}
        let resident = r.max_resident_bytes();
        assert!(resident > 0);
        assert!(
            resident < total / 8,
            "resident {resident} B vs file {total} B — reader is holding more than one chunk"
        );
    }

    #[test]
    fn verify_reports_totals() {
        let ops = sample_ops();
        let bytes = write_ops(&ops, 2);
        let summary = TraceReader::new(Cursor::new(bytes))
            .expect("reader")
            .verify()
            .expect("verify");
        assert_eq!(summary.ops, 4);
        assert_eq!(summary.accesses, 6);
        assert_eq!(summary.chunks, 2);
    }

    #[test]
    fn overlong_name_is_rejected() {
        let long = "x".repeat(MAX_NAME_BYTES as usize + 1);
        let err = TraceWriter::new(Cursor::new(Vec::new()), &long, 0).unwrap_err();
        assert!(matches!(
            err,
            TraceError::OverlengthChunk {
                chunk: u64::MAX,
                ..
            }
        ));
    }
}
