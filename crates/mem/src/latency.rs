//! Access and migration latency model.

use crate::page::{PageSize, Tier};

/// Latency parameters of the simulated memory system, in nanoseconds.
///
/// Defaults follow the paper's emulated testbed (§5.1): local DRAM ≈ 100 ns,
/// emulated CXL 124 ns idle but 2–5× under load (Figure 1); we default the
/// slow tier to 250 ns, the middle of the commercial-device band. Migration
/// cost covers the kernel page-copy plus bookkeeping (≈ 2 µs per 4 KiB page,
/// consistent with `move_pages` microbenchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Load serviced from the fast tier (local DRAM).
    pub fast_ns: u64,
    /// Load serviced from the slow tier (CXL memory).
    pub slow_ns: u64,
    /// Effective cost of a *streamed* (prefetched sequential) fast-tier
    /// line: bandwidth-bound, far below the random-access latency.
    pub fast_stream_ns: u64,
    /// Effective cost of a streamed slow-tier line. CXL sequential
    /// bandwidth is 20–70% of local DRAM (paper Figure 1), so the stream
    /// cost ratio sits in that band rather than at the latency ratio.
    pub slow_stream_ns: u64,
    /// Load serviced from L1 (used only when cache simulation is enabled).
    pub l1_hit_ns: u64,
    /// Load serviced from LLC (used only when cache simulation is enabled).
    pub llc_hit_ns: u64,
    /// Cost to migrate one 4 KiB base page between tiers.
    pub migrate_base_page_ns: u64,
    /// Fixed overhead per migration system call (HybridTier batches 100 000
    /// samples per call precisely to amortize this, §4.3).
    pub syscall_ns: u64,
    /// Extra cost charged to an access that triggers a NUMA hint fault
    /// (recency-based systems sample through these faults).
    pub hint_fault_ns: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::emulated_cxl()
    }
}

impl LatencyModel {
    /// The paper's emulated-CXL testbed parameters.
    pub fn emulated_cxl() -> Self {
        Self {
            fast_ns: 100,
            slow_ns: 250,
            fast_stream_ns: 30,
            slow_stream_ns: 80,
            l1_hit_ns: 2,
            llc_hit_ns: 14,
            migrate_base_page_ns: 2_000,
            syscall_ns: 1_500,
            hint_fault_ns: 1_200,
        }
    }

    /// A pessimistic CXL device at the top of Figure 1's band (5× local
    /// latency), for sensitivity studies.
    pub fn far_cxl() -> Self {
        Self {
            slow_ns: 500,
            ..Self::emulated_cxl()
        }
    }

    /// Latency of a memory access served by DRAM in the given tier.
    #[inline]
    pub fn access_ns(&self, tier: Tier) -> u64 {
        match tier {
            Tier::Fast => self.fast_ns,
            Tier::Slow => self.slow_ns,
        }
    }

    /// Effective cost of a streamed (hardware-prefetched) access.
    #[inline]
    pub fn stream_ns(&self, tier: Tier) -> u64 {
        match tier {
            Tier::Fast => self.fast_stream_ns,
            Tier::Slow => self.slow_stream_ns,
        }
    }

    /// Cost of migrating one page of the given size (linear in page bytes;
    /// a 2 MiB THP costs 512× a base page, matching kernel measurements of
    /// ~1 ms per huge-page move).
    #[inline]
    pub fn migrate_page_ns(&self, size: PageSize) -> u64 {
        self.migrate_base_page_ns * size.base_pages()
    }

    /// The model as a per-tier latency table — the 2-tier row of the
    /// N-tier generalization ([`crate::TierTopology::latency_table`]).
    pub fn tier_table(&self) -> [TierLatency; 2] {
        [
            TierLatency {
                access_ns: self.fast_ns,
                stream_ns: self.fast_stream_ns,
                migrate_base_page_ns: self.migrate_base_page_ns,
            },
            TierLatency {
                access_ns: self.slow_ns,
                stream_ns: self.slow_stream_ns,
                migrate_base_page_ns: self.migrate_base_page_ns,
            },
        ]
    }
}

/// One row of a per-tier latency table: the access/stream/migration costs
/// of a single rung of a [`crate::TierTopology`] ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierLatency {
    /// Random (DRAM-row) access latency of this rung.
    pub access_ns: u64,
    /// Effective cost of a streamed (hardware-prefetched) line.
    pub stream_ns: u64,
    /// Cost of migrating one 4 KiB base page into or out of this rung.
    pub migrate_base_page_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_emulated_cxl() {
        let m = LatencyModel::default();
        assert_eq!(m.fast_ns, 100);
        assert!(m.slow_ns > m.fast_ns, "slow tier must be slower");
        assert!(
            m.slow_ns >= 2 * m.fast_ns && m.slow_ns <= 5 * m.fast_ns,
            "slow tier within the paper's 2-5x band"
        );
    }

    #[test]
    fn access_latency_by_tier() {
        let m = LatencyModel::emulated_cxl();
        assert_eq!(m.access_ns(Tier::Fast), 100);
        assert_eq!(m.access_ns(Tier::Slow), 250);
    }

    #[test]
    fn huge_page_migration_is_512x() {
        let m = LatencyModel::emulated_cxl();
        assert_eq!(
            m.migrate_page_ns(PageSize::Huge2M),
            512 * m.migrate_page_ns(PageSize::Base4K)
        );
    }

    #[test]
    fn far_cxl_is_5x() {
        let m = LatencyModel::far_cxl();
        assert_eq!(m.slow_ns, 5 * m.fast_ns);
    }
}
