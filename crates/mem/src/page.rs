//! Page identifiers, page sizes, and memory tiers.

use std::fmt;

/// A page number in the simulated virtual address space.
///
/// A `PageId` is the byte address right-shifted by the page-size shift, so it
/// is stable for a given page size regardless of tier placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(pub u64);

impl PageId {
    /// The page containing `byte_addr` under the given page size.
    #[inline]
    pub fn containing(byte_addr: u64, size: PageSize) -> Self {
        PageId(byte_addr >> size.shift())
    }

    /// First byte address of this page.
    #[inline]
    pub fn base_addr(self, size: PageSize) -> u64 {
        self.0 << size.shift()
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

impl From<u64> for PageId {
    fn from(v: u64) -> Self {
        PageId(v)
    }
}

/// Page granularity at which tracking and migration operate.
///
/// HybridTier supports regular 4 KiB pages and 2 MiB transparent huge pages
/// (paper §4.4); in huge-page mode the trackers widen to 16-bit counters and
/// shrink 512× in element count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PageSize {
    /// Regular 4 KiB pages.
    #[default]
    Base4K,
    /// 2 MiB transparent huge pages.
    Huge2M,
}

impl PageSize {
    /// log2 of the page size in bytes.
    #[inline]
    pub const fn shift(self) -> u32 {
        match self {
            PageSize::Base4K => 12,
            PageSize::Huge2M => 21,
        }
    }

    /// Page size in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        1 << self.shift()
    }

    /// How many base (4 KiB) pages one page of this size spans.
    #[inline]
    pub const fn base_pages(self) -> u64 {
        self.bytes() / PageSize::Base4K.bytes()
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Base4K => write!(f, "4KiB"),
            PageSize::Huge2M => write!(f, "2MiB"),
        }
    }
}

/// A memory tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Local DRAM: low latency, limited capacity.
    Fast,
    /// CXL-attached memory: 2–5× latency, abundant capacity.
    Slow,
}

impl Tier {
    /// The other tier.
    #[inline]
    pub fn other(self) -> Tier {
        match self {
            Tier::Fast => Tier::Slow,
            Tier::Slow => Tier::Fast,
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tier::Fast => write!(f, "fast"),
            Tier::Slow => write!(f, "slow"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_id_round_trips() {
        let addr = 0x12_3456_7890u64;
        let p = PageId::containing(addr, PageSize::Base4K);
        assert_eq!(p.0, addr >> 12);
        assert_eq!(p.base_addr(PageSize::Base4K), addr & !0xFFF);
    }

    #[test]
    fn huge_pages_span_512_base_pages() {
        assert_eq!(PageSize::Huge2M.base_pages(), 512);
        assert_eq!(PageSize::Base4K.base_pages(), 1);
        assert_eq!(PageSize::Huge2M.bytes(), 2 << 20);
    }

    #[test]
    fn same_huge_page_for_nearby_addresses() {
        let a = PageId::containing(0x20_0000, PageSize::Huge2M);
        let b = PageId::containing(0x20_0000 + 1_000_000, PageSize::Huge2M);
        assert_eq!(a, b);
        let c = PageId::containing(0x40_0000, PageSize::Huge2M);
        assert_ne!(a, c);
    }

    #[test]
    fn tier_other_flips() {
        assert_eq!(Tier::Fast.other(), Tier::Slow);
        assert_eq!(Tier::Slow.other(), Tier::Fast);
    }

    #[test]
    fn display_impls() {
        assert_eq!(PageId(3).to_string(), "page#3");
        assert_eq!(PageSize::Huge2M.to_string(), "2MiB");
        assert_eq!(Tier::Fast.to_string(), "fast");
    }
}
