//! Tiered-memory substrate: the simulated fast (local DRAM) and slow
//! (CXL-attached) memory tiers that tiering policies manage.
//!
//! The paper's testbed emulates CXL with a remote NUMA node (local DRAM
//! ≈ 80–100 ns, emulated CXL ≈ 124 ns idle; commercial parts 2–5× local
//! latency, Figure 1). This crate models that environment:
//!
//! * [`TieredMemory`] — a page table mapping every application page to a
//!   tier, with capacity accounting, first-touch allocation, and
//!   promote/demote operations (the simulator's stand-in for
//!   `move_pages(2)`).
//! * [`LatencyModel`] — access and migration costs, parameterized so
//!   experiments can sweep the fast:slow latency gap.
//! * [`TierRatio`] — the 1:16 / 1:8 / 1:4 fast:slow capacity splits the
//!   paper evaluates.
//!
//! # Example
//!
//! ```
//! use tiering_mem::{PageId, PageSize, Tier, TierConfig, TieredMemory, TierRatio};
//!
//! let cfg = TierConfig::for_footprint(1_000, TierRatio::OneTo8, PageSize::Base4K);
//! let mut mem = TieredMemory::new(cfg);
//! let page = PageId(42);
//! mem.ensure_mapped(page, Tier::Slow);
//! assert_eq!(mem.tier_of(page), Some(Tier::Slow));
//! mem.promote(page)?;
//! assert_eq!(mem.tier_of(page), Some(Tier::Fast));
//! # Ok::<(), tiering_mem::MigrationError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod latency;
mod page;
mod tiered;
mod topology;

pub use latency::{LatencyModel, TierLatency};
pub use page::{PageId, PageSize, Tier};
pub use tiered::{frac_lt, MigrationError, MigrationStats, TierConfig, TierRatio, TieredMemory};
pub use topology::{LadderKind, TierParams, TierTopology, MAX_TIERS};
