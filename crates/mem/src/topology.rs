//! N-tier ladder topologies: ordered stacks of memory tiers with per-rung
//! capacity, latency, bandwidth, and migration-cost parameters.
//!
//! The paper's testbed is the binary DRAM/CXL split ([`TierConfig`] +
//! [`LatencyModel`]); production hierarchies add more rungs below it —
//! TPP-style multi-node CXL, NVMe, archival media. [`TierTopology`]
//! describes such a ladder (index 0 = fastest), [`LadderKind`] names the
//! built-in presets, and [`TieredMemory`](crate::TieredMemory) runs any of
//! them with the same promote/demote API: the 2-tier preset built from a
//! [`TierConfig`] reproduces the classic behavior bit-for-bit.

use std::fmt;

use crate::latency::{LatencyModel, TierLatency};
use crate::page::PageSize;
use crate::tiered::TierConfig;

/// One rung of an N-tier memory ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierParams {
    /// Short human label ("dram", "cxl", "nvme", "archive").
    pub label: &'static str,
    /// Pages this rung can hold.
    pub capacity_pages: u64,
    /// Random-access load latency from this rung (ns).
    pub access_ns: u64,
    /// Effective cost of a streamed (hardware-prefetched sequential) line
    /// from this rung (ns) — bandwidth-bound, below the random latency.
    pub stream_ns: u64,
    /// Cost to move one 4 KiB base page across the hop that ends (or
    /// starts) at this rung; a hop between adjacent rungs is charged at the
    /// slower rung's rate.
    pub migrate_base_page_ns: u64,
}

/// An ordered ladder of memory tiers, index 0 = fastest, last = coldest.
///
/// The bottom rung must be able to hold the whole footprint (the classic
/// "slow tier sized to the footprint" rule, generalized), which
/// [`TierTopology::new`] asserts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierTopology {
    tiers: Vec<TierParams>,
    page_size: PageSize,
    address_space_pages: u64,
}

/// Ladders may not exceed this many rungs (placement indices are stored in
/// one byte per page, and no modeled hierarchy is deeper).
pub const MAX_TIERS: usize = 8;

impl TierTopology {
    /// Builds a ladder from explicit per-rung parameters.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 or more than [`MAX_TIERS`] rungs are given,
    /// if any rung has zero capacity, or if the bottom rung cannot hold
    /// `address_space_pages`.
    pub fn new(tiers: Vec<TierParams>, page_size: PageSize, address_space_pages: u64) -> Self {
        assert!(
            (2..=MAX_TIERS).contains(&tiers.len()),
            "a ladder needs 2..={MAX_TIERS} tiers, got {}",
            tiers.len()
        );
        assert!(
            tiers.iter().all(|t| t.capacity_pages > 0),
            "every tier needs positive capacity"
        );
        assert!(
            tiers.last().expect("non-empty").capacity_pages >= address_space_pages,
            "the bottom tier must be sized to the footprint"
        );
        Self {
            tiers,
            page_size,
            address_space_pages,
        }
    }

    /// The classic 2-tier emulated-CXL testbed as a ladder: capacities from
    /// `config`, latencies from `latency`. A
    /// [`TieredMemory`](crate::TieredMemory) built on this topology behaves
    /// identically to one built with
    /// [`TieredMemory::new`](crate::TieredMemory::new).
    pub fn two_tier(config: TierConfig, latency: &LatencyModel) -> Self {
        Self {
            tiers: vec![
                TierParams {
                    label: "fast",
                    capacity_pages: config.fast_capacity_pages,
                    access_ns: latency.fast_ns,
                    stream_ns: latency.fast_stream_ns,
                    migrate_base_page_ns: latency.migrate_base_page_ns,
                },
                TierParams {
                    label: "slow",
                    capacity_pages: config.slow_capacity_pages,
                    access_ns: latency.slow_ns,
                    stream_ns: latency.slow_stream_ns,
                    migrate_base_page_ns: latency.migrate_base_page_ns,
                },
            ],
            page_size: config.page_size,
            address_space_pages: config.address_space_pages,
        }
    }

    /// 3-tier DRAM → CXL → NVMe ladder sized for `footprint_pages`:
    /// DRAM holds 1/8 of the footprint, CXL 1/2, NVMe all of it. NVMe
    /// numbers model a fast block device behind a DAX-style load path
    /// (~10 µs random loads, ~1 µs streamed, ~20 µs per page moved).
    ///
    /// # Panics
    ///
    /// Panics if `footprint_pages == 0`.
    pub fn three_tier_dram_cxl_nvme(footprint_pages: u64, page_size: PageSize) -> Self {
        assert!(footprint_pages > 0, "footprint must be non-empty");
        Self::new(
            vec![
                TierParams {
                    label: "dram",
                    capacity_pages: (footprint_pages / 8).max(1),
                    access_ns: 100,
                    stream_ns: 30,
                    migrate_base_page_ns: 2_000,
                },
                TierParams {
                    label: "cxl",
                    capacity_pages: (footprint_pages / 2).max(1),
                    access_ns: 250,
                    stream_ns: 80,
                    migrate_base_page_ns: 2_000,
                },
                TierParams {
                    label: "nvme",
                    capacity_pages: footprint_pages,
                    access_ns: 10_000,
                    stream_ns: 1_000,
                    migrate_base_page_ns: 20_000,
                },
            ],
            page_size,
            footprint_pages,
        )
    }

    /// 4-tier archive ladder sized for `footprint_pages`: DRAM at a 1:64
    /// capacity ratio against the footprint, then CXL (1/8), NVMe (1/2),
    /// and an archival bottom rung holding everything (~80 µs random,
    /// ~8 µs streamed, ~160 µs per page moved).
    ///
    /// # Panics
    ///
    /// Panics if `footprint_pages == 0`.
    pub fn four_tier_archive(footprint_pages: u64, page_size: PageSize) -> Self {
        assert!(footprint_pages > 0, "footprint must be non-empty");
        Self::new(
            vec![
                TierParams {
                    label: "dram",
                    capacity_pages: (footprint_pages / 64).max(1),
                    access_ns: 100,
                    stream_ns: 30,
                    migrate_base_page_ns: 2_000,
                },
                TierParams {
                    label: "cxl",
                    capacity_pages: (footprint_pages / 8).max(1),
                    access_ns: 250,
                    stream_ns: 80,
                    migrate_base_page_ns: 2_000,
                },
                TierParams {
                    label: "nvme",
                    capacity_pages: (footprint_pages / 2).max(1),
                    access_ns: 10_000,
                    stream_ns: 1_000,
                    migrate_base_page_ns: 20_000,
                },
                TierParams {
                    label: "archive",
                    capacity_pages: footprint_pages,
                    access_ns: 80_000,
                    stream_ns: 8_000,
                    migrate_base_page_ns: 160_000,
                },
            ],
            page_size,
            footprint_pages,
        )
    }

    /// Number of rungs.
    #[inline]
    pub fn n_tiers(&self) -> usize {
        self.tiers.len()
    }

    /// Index of the coldest rung.
    #[inline]
    pub fn bottom(&self) -> usize {
        self.tiers.len() - 1
    }

    /// One rung's parameters.
    #[inline]
    pub fn tier(&self, idx: usize) -> &TierParams {
        &self.tiers[idx]
    }

    /// All rungs, fastest first.
    #[inline]
    pub fn tiers(&self) -> &[TierParams] {
        &self.tiers
    }

    /// Page granularity.
    #[inline]
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// Pages in the application's address space.
    #[inline]
    pub fn address_space_pages(&self) -> u64 {
        self.address_space_pages
    }

    /// Re-sizes one rung (quota control on ladders, mirroring
    /// [`TieredMemory::set_fast_capacity`](crate::TieredMemory::set_fast_capacity)).
    ///
    /// # Panics
    ///
    /// Panics if `pages == 0` or when shrinking the bottom rung below the
    /// footprint.
    pub fn set_tier_capacity(&mut self, idx: usize, pages: u64) {
        assert!(pages > 0, "tier capacity must be positive");
        assert!(
            idx != self.bottom() || pages >= self.address_space_pages,
            "the bottom tier must be sized to the footprint"
        );
        self.tiers[idx].capacity_pages = pages;
    }

    /// The per-tier latency table of this ladder, fastest row first — the
    /// N-tier generalization of [`LatencyModel::tier_table`].
    pub fn latency_table(&self) -> Vec<TierLatency> {
        self.tiers
            .iter()
            .map(|t| TierLatency {
                access_ns: t.access_ns,
                stream_ns: t.stream_ns,
                migrate_base_page_ns: t.migrate_base_page_ns,
            })
            .collect()
    }

    /// This ladder's 2-tier facade: tier 0 is the "fast" tier, everything
    /// below it pools into "slow". Policies written against the binary
    /// API read capacities through this.
    pub fn as_tier_config(&self) -> TierConfig {
        TierConfig {
            fast_capacity_pages: self.tiers[0].capacity_pages,
            slow_capacity_pages: self.tiers[1..].iter().map(|t| t.capacity_pages).sum(),
            page_size: self.page_size,
            address_space_pages: self.address_space_pages,
        }
    }
}

impl fmt::Display for TierTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.tiers.iter().enumerate() {
            if i > 0 {
                write!(f, "->")?;
            }
            write!(f, "{}", t.label)?;
        }
        Ok(())
    }
}

/// The built-in ladder presets, as a `Copy` scenario axis (sweep recipes
/// must stay `Copy + Eq`, so they carry this tag instead of a full
/// [`TierTopology`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LadderKind {
    /// [`TierTopology::three_tier_dram_cxl_nvme`].
    DramCxlNvme,
    /// [`TierTopology::four_tier_archive`].
    Archive,
}

impl LadderKind {
    /// Both presets, shallowest first.
    pub const ALL: [LadderKind; 2] = [LadderKind::DramCxlNvme, LadderKind::Archive];

    /// Builds the preset's topology for a footprint.
    pub fn topology(self, footprint_pages: u64, page_size: PageSize) -> TierTopology {
        match self {
            LadderKind::DramCxlNvme => {
                TierTopology::three_tier_dram_cxl_nvme(footprint_pages, page_size)
            }
            LadderKind::Archive => TierTopology::four_tier_archive(footprint_pages, page_size),
        }
    }

    /// Stable scenario-label fragment (joins sweep labels like the
    /// `TierRatio` "1:8" form does).
    pub fn label(self) -> &'static str {
        match self {
            LadderKind::DramCxlNvme => "dram-cxl-nvme",
            LadderKind::Archive => "archive-1to64",
        }
    }

    /// Rung count of the preset.
    pub fn n_tiers(self) -> usize {
        match self {
            LadderKind::DramCxlNvme => 3,
            LadderKind::Archive => 4,
        }
    }
}

impl fmt::Display for LadderKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_tier_mirrors_config() {
        let cfg = TierConfig::for_footprint(1600, crate::TierRatio::OneTo8, PageSize::Base4K);
        let topo = TierTopology::two_tier(cfg, &LatencyModel::default());
        assert_eq!(topo.n_tiers(), 2);
        assert_eq!(topo.tier(0).capacity_pages, 200);
        assert_eq!(topo.tier(1).capacity_pages, 1600);
        assert_eq!(topo.tier(0).access_ns, 100);
        assert_eq!(topo.tier(1).access_ns, 250);
        assert_eq!(topo.as_tier_config(), cfg);
    }

    #[test]
    fn presets_are_monotonic_ladders() {
        for kind in LadderKind::ALL {
            let topo = kind.topology(10_000, PageSize::Base4K);
            assert_eq!(topo.n_tiers(), kind.n_tiers());
            for w in topo.tiers().windows(2) {
                assert!(
                    w[0].capacity_pages <= w[1].capacity_pages,
                    "{kind}: capacity grows down"
                );
                assert!(
                    w[0].access_ns < w[1].access_ns,
                    "{kind}: latency grows down"
                );
                assert!(
                    w[0].stream_ns < w[1].stream_ns,
                    "{kind}: stream cost grows down"
                );
                assert!(
                    w[0].migrate_base_page_ns <= w[1].migrate_base_page_ns,
                    "{kind}: migration cost grows down"
                );
            }
            assert_eq!(topo.tier(topo.bottom()).capacity_pages, 10_000);
        }
    }

    #[test]
    fn archive_ladder_is_at_least_1_to_64() {
        let topo = LadderKind::Archive.topology(64_000, PageSize::Base4K);
        assert!(topo.tier(topo.bottom()).capacity_pages / topo.tier(0).capacity_pages >= 64);
    }

    #[test]
    fn latency_table_rows_match_rungs() {
        let topo = LadderKind::DramCxlNvme.topology(800, PageSize::Base4K);
        let table = topo.latency_table();
        assert_eq!(table.len(), 3);
        assert_eq!(table[0].access_ns, 100);
        assert_eq!(table[2].access_ns, 10_000);
        assert_eq!(table[2].migrate_base_page_ns, 20_000);
    }

    #[test]
    fn display_and_labels() {
        let topo = LadderKind::DramCxlNvme.topology(80, PageSize::Base4K);
        assert_eq!(topo.to_string(), "dram->cxl->nvme");
        assert_eq!(LadderKind::Archive.to_string(), "archive-1to64");
    }

    #[test]
    #[should_panic(expected = "bottom tier must be sized")]
    fn undersized_bottom_rejected() {
        let mut tiers = TierTopology::three_tier_dram_cxl_nvme(100, PageSize::Base4K)
            .tiers()
            .to_vec();
        tiers[2].capacity_pages = 50;
        TierTopology::new(tiers, PageSize::Base4K, 100);
    }
}
