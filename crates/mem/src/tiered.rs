//! The tiered page table: placement, capacity accounting, and migration.

use std::error::Error;
use std::fmt;

use crate::latency::LatencyModel;
use crate::page::{PageId, PageSize, Tier};
use crate::topology::TierTopology;

/// Fast:slow capacity ratios evaluated in the paper (§6.1: "the x-axis
/// indicates the ratio between fast and slow-tier memory capacity").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TierRatio {
    /// Fast tier is 1/16 of the slow tier (scarce fast memory).
    OneTo16,
    /// Fast tier is 1/8 of the slow tier.
    OneTo8,
    /// Fast tier is 1/4 of the slow tier (abundant fast memory).
    OneTo4,
}

impl TierRatio {
    /// All three ratios, in the order the paper plots them.
    pub const ALL: [TierRatio; 3] = [TierRatio::OneTo16, TierRatio::OneTo8, TierRatio::OneTo4];

    /// The slow-tier multiple (16, 8, or 4).
    pub fn slow_multiple(self) -> u64 {
        match self {
            TierRatio::OneTo16 => 16,
            TierRatio::OneTo8 => 8,
            TierRatio::OneTo4 => 4,
        }
    }
}

impl fmt::Display for TierRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "1:{}", self.slow_multiple())
    }
}

/// Capacity configuration for the two tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierConfig {
    /// Pages the fast tier can hold.
    pub fast_capacity_pages: u64,
    /// Pages the slow tier can hold.
    pub slow_capacity_pages: u64,
    /// Page granularity.
    pub page_size: PageSize,
    /// Number of pages in the application's address space (page table span).
    pub address_space_pages: u64,
}

impl TierConfig {
    /// Sizes the tiers for a workload of `footprint_pages` at the given
    /// ratio, mirroring the paper's setup: the slow tier alone can hold the
    /// whole footprint (theirs is fixed at 512 GiB ≥ every workload), and
    /// the fast tier is `footprint / ratio` — e.g. 1:8 gives a fast tier
    /// holding 1/8 of the footprint.
    ///
    /// # Panics
    ///
    /// Panics if `footprint_pages == 0`.
    pub fn for_footprint(footprint_pages: u64, ratio: TierRatio, page_size: PageSize) -> Self {
        assert!(footprint_pages > 0, "footprint must be non-empty");
        let fast = (footprint_pages / ratio.slow_multiple()).max(1);
        Self {
            fast_capacity_pages: fast,
            slow_capacity_pages: footprint_pages,
            page_size,
            address_space_pages: footprint_pages,
        }
    }

    /// A configuration whose fast tier holds the entire footprint — the
    /// all-fast-tier upper bound of paper Figure 11.
    pub fn all_fast(footprint_pages: u64, page_size: PageSize) -> Self {
        Self {
            fast_capacity_pages: footprint_pages,
            slow_capacity_pages: footprint_pages,
            page_size,
            address_space_pages: footprint_pages,
        }
    }

    /// Total bytes across both tiers.
    pub fn total_bytes(&self) -> u64 {
        (self.fast_capacity_pages + self.slow_capacity_pages) * self.page_size.bytes()
    }
}

/// Why a migration could not be performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationError {
    /// The page has never been touched (no mapping exists).
    NotMapped(PageId),
    /// The page is already resident in the requested tier.
    AlreadyThere(PageId, Tier),
    /// The destination tier has no free capacity.
    TierFull(Tier),
}

impl fmt::Display for MigrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrationError::NotMapped(p) => write!(f, "{p} is not mapped"),
            MigrationError::AlreadyThere(p, t) => write!(f, "{p} is already in the {t} tier"),
            MigrationError::TierFull(t) => write!(f, "{t} tier is full"),
        }
    }
}

impl Error for MigrationError {}

/// Running migration/allocation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Page hops moved toward the fast end of the ladder (slow → fast in
    /// the 2-tier testbed).
    pub promotions: u64,
    /// Page hops moved toward the cold end (fast → slow in 2-tier).
    pub demotions: u64,
    /// First-touch allocations landing in the fast tier (tier 0).
    pub allocated_fast: u64,
    /// First-touch allocations landing below the fast tier.
    pub allocated_slow: u64,
    /// Promotions rejected because the destination tier was full.
    pub failed_promotions: u64,
}

/// Exactly compares the rational `num / den` against an `f64` threshold —
/// `num / den < threshold` — without a floating-point division.
///
/// The threshold decomposes exactly into `m · 2^e` (every finite `f64`
/// does), so the comparison reduces to integer arithmetic in `u128` with
/// shift-overflow guards. `fast_free_frac() < w` computed through `f64`
/// division agrees everywhere except ratios within one rounding error of
/// the threshold, where the division's round-to-nearest can flip the
/// verdict; this form is the exact one. NaN thresholds compare `false`
/// (matching `<` on `f64`); a zero denominator compares `false`.
pub fn frac_lt(num: u64, den: u64, threshold: f64) -> bool {
    if den == 0 || threshold.is_nan() || threshold <= 0.0 {
        // num/den >= 0, so it is only below a strictly positive threshold.
        return false;
    }
    if threshold == f64::INFINITY {
        return true;
    }
    // threshold = m * 2^e exactly.
    let bits = threshold.to_bits();
    let raw_exp = ((bits >> 52) & 0x7ff) as i64;
    let raw_man = bits & ((1u64 << 52) - 1);
    let (mut m, mut e) = if raw_exp == 0 {
        (raw_man, -1074i64)
    } else {
        (raw_man | (1u64 << 52), raw_exp - 1075)
    };
    let tz = m.trailing_zeros();
    m >>= tz;
    e += i64::from(tz);
    if e >= 0 {
        // num/den < m·2^e  ⟺  num < den·m·2^e. Overflow means the right
        // side exceeds u128 (and so any u64 numerator).
        if e >= 128 {
            return true;
        }
        let prod = (den as u128) * (m as u128); // den·m < 2^64 · 2^53, fits.
        if prod.leading_zeros() < e as u32 {
            // den·m·2^e ≥ 2^128: above any u64 numerator.
            return true;
        }
        (num as u128) < (prod << e)
    } else {
        // num/den < m·2^e  ⟺  num·2^s < den·m with s = -e. den·m < 2^117
        // always fits; a left-shift overflow means the left side ≥ 2^128.
        let s = (-e) as u32;
        if num == 0 {
            return true;
        }
        if s >= 128 || (num as u128).leading_zeros() < s {
            return false;
        }
        ((num as u128) << s) < (den as u128) * (m as u128)
    }
}

const UNMAPPED: u8 = u8::MAX;

/// The tiered page table.
///
/// Maps every page of the application address space to its current tier and
/// enforces tier capacities. This is the simulator's analogue of the kernel
/// page table plus NUMA placement; policies manipulate it through
/// [`promote`](TieredMemory::promote) / [`demote`](TieredMemory::demote)
/// (the stand-ins for `move_pages(2)`) and read it through
/// [`tier_of`](TieredMemory::tier_of) (the stand-in for
/// `/proc/PID/pagemap` scans, which is how HybridTier's demotion scan walks
/// the address space, §4.3).
///
/// Internally the table is an N-tier ladder ([`TierTopology`]): the classic
/// constructor [`new`](TieredMemory::new) builds the 2-tier testbed, while
/// [`with_topology`](TieredMemory::with_topology) runs deeper hierarchies.
/// The binary [`Tier`] API is a facade over the ladder — tier 0 reads as
/// [`Tier::Fast`], every rung below it as [`Tier::Slow`] — so policies
/// written for two tiers keep working; ladder-aware callers use
/// [`tier_index_of`](TieredMemory::tier_index_of) and the
/// [`promote_toward`](TieredMemory::promote_toward) /
/// [`demote_toward`](TieredMemory::demote_toward) adjacent-hop moves.
#[derive(Debug, Clone)]
pub struct TieredMemory {
    config: TierConfig,
    topology: TierTopology,
    /// Placement per page: tier index, or [`UNMAPPED`].
    table: Vec<u8>,
    /// Pages resident per rung.
    used: Vec<u64>,
    stats: MigrationStats,
    /// Accumulated per-hop migration cost (each hop charged at the slower
    /// rung's rate), drained by [`take_migration_ns`](Self::take_migration_ns).
    migration_ns: u64,
}

impl TieredMemory {
    /// Creates an empty 2-tier memory with the given configuration (the
    /// classic emulated-CXL testbed shape).
    pub fn new(config: TierConfig) -> Self {
        Self::with_topology(TierTopology::two_tier(config, &LatencyModel::default()))
    }

    /// Creates an empty memory over an arbitrary N-tier ladder.
    pub fn with_topology(topology: TierTopology) -> Self {
        Self {
            config: topology.as_tier_config(),
            table: vec![UNMAPPED; topology.address_space_pages() as usize],
            used: vec![0; topology.n_tiers()],
            topology,
            stats: MigrationStats::default(),
            migration_ns: 0,
        }
    }

    /// The 2-tier facade of this memory's configuration: `fast` is tier 0,
    /// `slow` pools every rung below it. Exactly the constructor argument
    /// for memories built with [`new`](Self::new).
    pub fn config(&self) -> TierConfig {
        self.config
    }

    /// The ladder this memory runs on.
    pub fn topology(&self) -> &TierTopology {
        &self.topology
    }

    /// Number of rungs in the ladder (2 for the classic testbed).
    #[inline]
    pub fn n_tiers(&self) -> usize {
        self.used.len()
    }

    #[inline]
    fn facade(idx: u8) -> Tier {
        if idx == 0 {
            Tier::Fast
        } else {
            Tier::Slow
        }
    }

    /// Current tier of `page` through the binary facade (`Fast` = tier 0,
    /// `Slow` = any rung below), or `None` if never touched.
    #[inline]
    pub fn tier_of(&self, page: PageId) -> Option<Tier> {
        match self.table.get(page.0 as usize) {
            Some(&idx) if idx != UNMAPPED => Some(Self::facade(idx)),
            _ => None,
        }
    }

    /// Current ladder index of `page` (0 = fastest), or `None` if never
    /// touched.
    #[inline]
    pub fn tier_index_of(&self, page: PageId) -> Option<usize> {
        match self.table.get(page.0 as usize) {
            Some(&idx) if idx != UNMAPPED => Some(idx as usize),
            _ => None,
        }
    }

    /// Ensures `page` is mapped, allocating it on first touch.
    ///
    /// Allocation tries `preferred` first and falls back to the nearest
    /// rung with room — colder rungs in ladder order, then warmer rungs
    /// nearest-first (Linux first-touch with fallback; in the 2-tier shape
    /// this is exactly "preferred, then the other tier"). Returns the tier
    /// the page resides in after the call.
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside the configured address space, or if every
    /// tier is full (the topology guarantees the bottom tier can hold the
    /// footprint, so this indicates a harness bug).
    #[inline]
    pub fn ensure_mapped(&mut self, page: PageId, preferred: Tier) -> Tier {
        Self::facade(self.ensure_mapped_indexed(page, preferred) as u8)
    }

    /// [`ensure_mapped`](Self::ensure_mapped), returning the page's ladder
    /// index instead of the binary facade — the form ladder-aware access
    /// accounting uses.
    #[inline]
    pub fn ensure_mapped_indexed(&mut self, page: PageId, preferred: Tier) -> usize {
        let idx = page.0 as usize;
        assert!(
            idx < self.table.len(),
            "{page} outside address space of {} pages",
            self.table.len()
        );
        if self.table[idx] != UNMAPPED {
            return self.table[idx] as usize;
        }
        let preferred = match preferred {
            Tier::Fast => 0,
            Tier::Slow => 1,
        };
        let dst = self.alloc_tier(preferred);
        self.table[idx] = dst as u8;
        self.used[dst] += 1;
        if dst == 0 {
            self.stats.allocated_fast += 1;
        } else {
            self.stats.allocated_slow += 1;
        }
        dst
    }

    /// First-touch placement order: `preferred`, then each colder rung down
    /// the ladder, then warmer rungs nearest-first.
    fn alloc_tier(&self, preferred: usize) -> usize {
        if self.has_free(preferred) {
            return preferred;
        }
        for t in preferred + 1..self.n_tiers() {
            if self.has_free(t) {
                return t;
            }
        }
        for t in (0..preferred).rev() {
            if self.has_free(t) {
                return t;
            }
        }
        if self.n_tiers() == 2 {
            panic!("both tiers full; slow tier must be sized to the footprint");
        }
        panic!("all tiers full; the bottom tier must be sized to the footprint");
    }

    #[inline]
    fn has_free(&self, tier: usize) -> bool {
        self.used[tier] < self.topology.tier(tier).capacity_pages
    }

    /// Moves a mapped page one adjacent hop, `from` → `to`, charging the
    /// hop at the slower rung's migration rate.
    fn hop(&mut self, page: PageId, from: usize, to: usize) -> Result<usize, MigrationError> {
        debug_assert!(from.abs_diff(to) == 1, "hops move one rung");
        if !self.has_free(to) {
            if to < from {
                self.stats.failed_promotions += 1;
            }
            return Err(MigrationError::TierFull(Self::facade(to as u8)));
        }
        self.table[page.0 as usize] = to as u8;
        self.used[from] -= 1;
        self.used[to] += 1;
        if to < from {
            self.stats.promotions += 1;
        } else {
            self.stats.demotions += 1;
        }
        let slower = from.max(to);
        self.migration_ns = self.migration_ns.saturating_add(
            self.topology.tier(slower).migrate_base_page_ns
                * self.topology.page_size().base_pages(),
        );
        Ok(to)
    }

    /// Moves `page` one rung toward the fast end (slow → fast in 2-tier).
    ///
    /// # Errors
    ///
    /// [`MigrationError::NotMapped`] if the page was never touched,
    /// [`MigrationError::AlreadyThere`] if it is already in tier 0, or
    /// [`MigrationError::TierFull`] if the destination rung has no free
    /// page (the caller must demote first; failed promotions are counted).
    pub fn promote(&mut self, page: PageId) -> Result<(), MigrationError> {
        match self.tier_index_of(page) {
            None => Err(MigrationError::NotMapped(page)),
            Some(0) => Err(MigrationError::AlreadyThere(page, Tier::Fast)),
            Some(idx) => self.hop(page, idx, idx - 1).map(|_| ()),
        }
    }

    /// Moves `page` one rung toward the cold end (fast → slow in 2-tier).
    ///
    /// # Errors
    ///
    /// Mirror image of [`promote`](TieredMemory::promote), except failed
    /// demotions are not counted.
    pub fn demote(&mut self, page: PageId) -> Result<(), MigrationError> {
        match self.tier_index_of(page) {
            None => Err(MigrationError::NotMapped(page)),
            Some(idx) if idx == self.topology.bottom() => {
                Err(MigrationError::AlreadyThere(page, Tier::Slow))
            }
            Some(idx) => self.hop(page, idx, idx + 1).map(|_| ()),
        }
    }

    /// One adjacent hop up-ladder toward the `target` rung; returns the
    /// page's index after the hop. Calling in a loop walks the page all the
    /// way to `target` (each hop is a separate `move_pages`-equivalent and
    /// is counted/charged individually).
    ///
    /// # Errors
    ///
    /// [`MigrationError::AlreadyThere`] when the page is already at or
    /// above `target`; otherwise as [`promote`](Self::promote).
    ///
    /// # Panics
    ///
    /// Panics if `target` is not a rung of the ladder.
    pub fn promote_toward(&mut self, page: PageId, target: usize) -> Result<usize, MigrationError> {
        assert!(target < self.n_tiers(), "tier {target} outside the ladder");
        match self.tier_index_of(page) {
            None => Err(MigrationError::NotMapped(page)),
            Some(idx) if idx <= target => {
                Err(MigrationError::AlreadyThere(page, Self::facade(idx as u8)))
            }
            Some(idx) => self.hop(page, idx, idx - 1),
        }
    }

    /// One adjacent hop down-ladder toward the `target` rung; returns the
    /// page's index after the hop — the demotion-chain primitive (cascading
    /// excess fast → slow → cold instead of stopping at "slow").
    ///
    /// # Errors
    ///
    /// [`MigrationError::AlreadyThere`] when the page is already at or
    /// below `target`; otherwise as [`demote`](Self::demote).
    ///
    /// # Panics
    ///
    /// Panics if `target` is not a rung of the ladder.
    pub fn demote_toward(&mut self, page: PageId, target: usize) -> Result<usize, MigrationError> {
        assert!(target < self.n_tiers(), "tier {target} outside the ladder");
        match self.tier_index_of(page) {
            None => Err(MigrationError::NotMapped(page)),
            Some(idx) if idx >= target => {
                Err(MigrationError::AlreadyThere(page, Self::facade(idx as u8)))
            }
            Some(idx) => self.hop(page, idx, idx + 1),
        }
    }

    /// Pages currently resident in the fast tier (tier 0).
    pub fn fast_used(&self) -> u64 {
        self.used[0]
    }

    /// Pages currently resident below the fast tier.
    pub fn slow_used(&self) -> u64 {
        self.used[1..].iter().sum()
    }

    /// Pages currently resident in one rung.
    pub fn tier_used(&self, tier: usize) -> u64 {
        self.used[tier]
    }

    /// One rung's current capacity.
    pub fn tier_capacity(&self, tier: usize) -> u64 {
        self.topology.tier(tier).capacity_pages
    }

    /// Free pages remaining in one rung (zero when over quota after a
    /// capacity shrink).
    pub fn tier_free(&self, tier: usize) -> u64 {
        self.tier_capacity(tier).saturating_sub(self.used[tier])
    }

    /// Free pages remaining in the fast tier (zero when over quota after a
    /// capacity shrink).
    pub fn fast_free(&self) -> u64 {
        self.config.fast_capacity_pages.saturating_sub(self.used[0])
    }

    /// Re-sizes the fast tier (the global-tiering controller of paper §7
    /// adjusts per-tenant quotas at runtime). Shrinking below the current
    /// occupancy is allowed: the tier reports zero free pages until the
    /// policy's watermark demotion drains the excess.
    ///
    /// # Panics
    ///
    /// Panics if `pages == 0`.
    pub fn set_fast_capacity(&mut self, pages: u64) {
        assert!(pages > 0, "fast capacity must be positive");
        self.config.fast_capacity_pages = pages;
        self.topology.set_tier_capacity(0, pages);
    }

    /// Free fast-tier fraction in `[0, 1]`.
    ///
    /// This is the *display* form; watermark checks should use the exact
    /// [`fast_free_below`](Self::fast_free_below) instead of comparing this
    /// rounded quotient.
    pub fn fast_free_frac(&self) -> f64 {
        self.fast_free() as f64 / self.config.fast_capacity_pages as f64
    }

    /// Exact watermark test: `fast_free() / fast_capacity < frac`, computed
    /// in integer arithmetic ([`frac_lt`]) rather than through a rounded
    /// `f64` division. `!fast_free_below(w)` is the exact form of
    /// `fast_free_frac() >= w` (for the non-NaN thresholds policies use).
    #[inline]
    pub fn fast_free_below(&self, frac: f64) -> bool {
        frac_lt(self.fast_free(), self.config.fast_capacity_pages, frac)
    }

    /// Exact watermark test for one rung: `tier_free(tier) / capacity <
    /// frac` — the per-rung form demotion chains cascade on.
    #[inline]
    pub fn tier_free_below(&self, tier: usize, frac: f64) -> bool {
        frac_lt(
            self.tier_free(tier),
            self.topology.tier(tier).capacity_pages,
            frac,
        )
    }

    /// Number of pages in the address space (mapped or not).
    pub fn address_space_pages(&self) -> u64 {
        self.config.address_space_pages
    }

    /// Number of currently mapped pages.
    pub fn mapped_pages(&self) -> u64 {
        self.used.iter().sum()
    }

    /// Migration statistics so far.
    pub fn stats(&self) -> MigrationStats {
        self.stats
    }

    /// Drains the accumulated per-hop migration cost (each hop charged at
    /// the slower rung's `migrate_base_page_ns` × page span). The 2-tier
    /// pipeline charges `moves × LatencyModel::migrate_page_ns` directly —
    /// identical by construction — so only ladder-aware accounting reads
    /// this.
    pub fn take_migration_ns(&mut self) -> u64 {
        std::mem::take(&mut self.migration_ns)
    }

    /// Iterates over all mapped pages and their facade tiers in address
    /// order — the simulator analogue of a linear `/proc/PID/pagemap` scan.
    pub fn iter_mapped(&self) -> impl Iterator<Item = (PageId, Tier)> + '_ {
        self.table
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t != UNMAPPED)
            .map(|(i, &t)| (PageId(i as u64), Self::facade(t)))
    }

    /// [`iter_mapped`](Self::iter_mapped) with ladder indices instead of
    /// the binary facade.
    pub fn iter_mapped_indexed(&self) -> impl Iterator<Item = (PageId, usize)> + '_ {
        self.table
            .iter()
            .enumerate()
            .filter_map(|(i, &t)| (t != UNMAPPED).then_some((PageId(i as u64), t as usize)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TieredMemory {
        TieredMemory::new(TierConfig {
            fast_capacity_pages: 4,
            slow_capacity_pages: 100,
            page_size: PageSize::Base4K,
            address_space_pages: 100,
        })
    }

    fn three_tier() -> TieredMemory {
        TieredMemory::with_topology(TierTopology::three_tier_dram_cxl_nvme(80, PageSize::Base4K))
    }

    #[test]
    fn ratio_configs() {
        let c = TierConfig::for_footprint(1600, TierRatio::OneTo16, PageSize::Base4K);
        assert_eq!(c.fast_capacity_pages, 100);
        assert_eq!(c.slow_capacity_pages, 1600);
        let c = TierConfig::for_footprint(1600, TierRatio::OneTo4, PageSize::Base4K);
        assert_eq!(c.fast_capacity_pages, 400);
        assert_eq!(TierRatio::OneTo8.to_string(), "1:8");
    }

    #[test]
    fn first_touch_allocates_preferred() {
        let mut m = small();
        assert_eq!(m.ensure_mapped(PageId(0), Tier::Fast), Tier::Fast);
        assert_eq!(m.ensure_mapped(PageId(1), Tier::Slow), Tier::Slow);
        // Idempotent: second touch does not move or re-allocate.
        assert_eq!(m.ensure_mapped(PageId(0), Tier::Slow), Tier::Fast);
        assert_eq!(m.stats().allocated_fast, 1);
        assert_eq!(m.stats().allocated_slow, 1);
    }

    #[test]
    fn fast_allocation_falls_back_when_full() {
        let mut m = small();
        for i in 0..4 {
            assert_eq!(m.ensure_mapped(PageId(i), Tier::Fast), Tier::Fast);
        }
        // Fifth fast-preferred touch spills to slow.
        assert_eq!(m.ensure_mapped(PageId(4), Tier::Fast), Tier::Slow);
        assert_eq!(m.fast_free(), 0);
    }

    #[test]
    fn promote_and_demote_move_pages() {
        let mut m = small();
        m.ensure_mapped(PageId(7), Tier::Slow);
        m.promote(PageId(7)).unwrap();
        assert_eq!(m.tier_of(PageId(7)), Some(Tier::Fast));
        assert_eq!(m.fast_used(), 1);
        assert_eq!(m.slow_used(), 0);
        m.demote(PageId(7)).unwrap();
        assert_eq!(m.tier_of(PageId(7)), Some(Tier::Slow));
        let s = m.stats();
        assert_eq!((s.promotions, s.demotions), (1, 1));
    }

    #[test]
    fn promote_errors() {
        let mut m = small();
        assert_eq!(
            m.promote(PageId(3)),
            Err(MigrationError::NotMapped(PageId(3)))
        );
        m.ensure_mapped(PageId(3), Tier::Fast);
        assert_eq!(
            m.promote(PageId(3)),
            Err(MigrationError::AlreadyThere(PageId(3), Tier::Fast))
        );
        // Fill the fast tier, then promotion of a slow page must fail.
        for i in 10..13 {
            m.ensure_mapped(PageId(i), Tier::Fast);
        }
        m.ensure_mapped(PageId(20), Tier::Slow);
        assert_eq!(
            m.promote(PageId(20)),
            Err(MigrationError::TierFull(Tier::Fast))
        );
        assert_eq!(m.stats().failed_promotions, 1);
    }

    #[test]
    fn capacity_accounting_is_conserved() {
        let mut m = small();
        for i in 0..50 {
            m.ensure_mapped(PageId(i), Tier::Slow);
        }
        for i in 0..4 {
            m.promote(PageId(i)).unwrap();
        }
        assert_eq!(m.mapped_pages(), 50);
        assert_eq!(m.fast_used() + m.slow_used(), 50);
        assert_eq!(m.fast_used(), 4);
        assert!((m.fast_free_frac() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn iter_mapped_in_address_order() {
        let mut m = small();
        m.ensure_mapped(PageId(9), Tier::Slow);
        m.ensure_mapped(PageId(2), Tier::Fast);
        let v: Vec<_> = m.iter_mapped().collect();
        assert_eq!(v, vec![(PageId(2), Tier::Fast), (PageId(9), Tier::Slow)]);
    }

    #[test]
    fn error_display() {
        let e = MigrationError::TierFull(Tier::Fast);
        assert_eq!(e.to_string(), "fast tier is full");
    }

    #[test]
    #[should_panic(expected = "outside address space")]
    fn out_of_range_page_panics() {
        let mut m = small();
        m.ensure_mapped(PageId(1000), Tier::Fast);
    }

    #[test]
    fn three_tier_slow_facade_spans_lower_rungs() {
        let mut m = three_tier();
        assert_eq!(m.n_tiers(), 3);
        // Slow-preferred first touch lands in tier 1 (cxl), not the bottom.
        assert_eq!(m.ensure_mapped(PageId(5), Tier::Slow), Tier::Slow);
        assert_eq!(m.tier_index_of(PageId(5)), Some(1));
        // The facade pools every lower rung into "slow".
        m.demote(PageId(5)).unwrap();
        assert_eq!(m.tier_index_of(PageId(5)), Some(2));
        assert_eq!(m.tier_of(PageId(5)), Some(Tier::Slow));
        assert_eq!(m.slow_used(), 1);
        // config() is the facade view: slow = cxl + nvme capacity.
        assert_eq!(m.config().slow_capacity_pages, 40 + 80);
    }

    #[test]
    fn toward_moves_are_single_hops() {
        let mut m = three_tier();
        m.ensure_mapped(PageId(3), Tier::Slow);
        m.demote_toward(PageId(3), 2).unwrap();
        assert_eq!(m.tier_index_of(PageId(3)), Some(2));
        assert_eq!(
            m.demote_toward(PageId(3), 2),
            Err(MigrationError::AlreadyThere(PageId(3), Tier::Slow))
        );
        // Two hops back to the top, one call per rung.
        assert_eq!(m.promote_toward(PageId(3), 0), Ok(1));
        assert_eq!(m.promote_toward(PageId(3), 0), Ok(0));
        assert_eq!(
            m.promote_toward(PageId(3), 0),
            Err(MigrationError::AlreadyThere(PageId(3), Tier::Fast))
        );
        let s = m.stats();
        assert_eq!((s.promotions, s.demotions), (2, 1));
    }

    #[test]
    fn hop_costs_charge_the_slower_rung() {
        let mut m = three_tier();
        m.ensure_mapped(PageId(0), Tier::Slow); // tier 1
        m.demote(PageId(0)).unwrap(); // 1 -> 2: nvme rate
        m.promote(PageId(0)).unwrap(); // 2 -> 1: nvme rate
        m.promote(PageId(0)).unwrap(); // 1 -> 0: cxl rate
        assert_eq!(m.take_migration_ns(), 20_000 + 20_000 + 2_000);
        assert_eq!(m.take_migration_ns(), 0, "drained");
    }

    #[test]
    fn two_tier_hop_cost_matches_latency_model() {
        let mut m = small();
        m.ensure_mapped(PageId(1), Tier::Slow);
        m.promote(PageId(1)).unwrap();
        m.demote(PageId(1)).unwrap();
        let per_hop = LatencyModel::default().migrate_page_ns(PageSize::Base4K);
        assert_eq!(m.take_migration_ns(), 2 * per_hop);
    }

    #[test]
    fn ensure_mapped_cascades_down_a_full_ladder() {
        let mut m = three_tier(); // dram 10, cxl 40, nvme 80
        for i in 0..10 {
            assert_eq!(m.ensure_mapped(PageId(i), Tier::Fast), Tier::Fast);
        }
        // Fast full: spills to cxl (nearest colder rung with room).
        assert_eq!(m.ensure_mapped(PageId(10), Tier::Fast), Tier::Slow);
        assert_eq!(m.tier_index_of(PageId(10)), Some(1));
        for i in 11..50 {
            m.ensure_mapped(PageId(i), Tier::Slow);
        }
        // cxl now full too: the next slow-preferred touch lands on nvme.
        assert_eq!(m.tier_used(1), 40);
        m.ensure_mapped(PageId(50), Tier::Slow);
        assert_eq!(m.tier_index_of(PageId(50)), Some(2));
    }

    #[test]
    fn frac_lt_matches_exact_rationals() {
        // Dyadic thresholds are exactly representable: the predicate must
        // equal the integer comparison num·2^j < den·k for frac = k/2^j.
        for (k, j) in [(1u64, 1u32), (3, 2), (5, 6), (1, 10), (13, 4)] {
            let frac = k as f64 / (1u64 << j) as f64;
            for num in 0..100u64 {
                for den in 1..40u64 {
                    let exact = (num as u128) << j < (den as u128) * (k as u128);
                    assert_eq!(
                        frac_lt(num, den, frac),
                        exact,
                        "num={num} den={den} frac={frac}"
                    );
                }
            }
        }
    }

    #[test]
    fn frac_lt_edge_cases() {
        assert!(!frac_lt(1, 10, f64::NAN));
        assert!(!frac_lt(0, 10, f64::NAN));
        assert!(!frac_lt(1, 10, -0.5));
        assert!(!frac_lt(0, 10, 0.0));
        assert!(!frac_lt(1, 0, 0.5), "zero denominator compares false");
        assert!(frac_lt(0, 10, f64::MIN_POSITIVE), "0 < any positive");
        assert!(frac_lt(u64::MAX, 1, f64::INFINITY));
        assert!(
            frac_lt(u64::MAX, 1, 1e300),
            "huge thresholds exceed any u64 ratio"
        );
        assert!(
            !frac_lt(u64::MAX, 1, 1e-300),
            "tiny thresholds below any positive ratio"
        );
        // Threshold 2^80: the shifted product den·m·2^e overflows u128's
        // value range (shift count itself is in range) — must still report
        // "below" for any u64 ratio.
        let big = (1u128 << 80) as f64;
        assert!(frac_lt(u64::MAX, u64::MAX, big));
        assert!(frac_lt(u64::MAX, 1, big));
        // Exactly-at-threshold is not below (strict <).
        assert!(!frac_lt(1, 2, 0.5));
        assert!(frac_lt(1, 2, 0.5000000000000001));
        // 0.1 as f64 is slightly above 1/10, so 1/10 IS below it.
        assert!(frac_lt(1, 10, 0.1));
        // 0.3 as f64 is slightly below 3/10, so 3/10 is NOT below it.
        assert!(!frac_lt(3, 10, 0.3));
    }

    #[test]
    fn frac_lt_agrees_with_f64_division_at_policy_watermarks() {
        // Deterministic sweep over the watermark constants the policies
        // use: away from one-ulp boundaries (which realistic free/capacity
        // ratios never hit) the exact form and the f64 division agree —
        // the empirical footing of the goldens-stay-identical claim.
        for w in [0.02f64, 0.03, 0.06, 0.08] {
            let mut state = 0x9E37_79B9u64;
            for _ in 0..50_000 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let den = (state >> 33) % 1_000_000 + 1;
                let num = (state >> 11) % (den + 1);
                assert_eq!(
                    frac_lt(num, den, w),
                    (num as f64 / den as f64) < w,
                    "num={num} den={den} w={w}"
                );
            }
        }
    }

    #[test]
    fn exact_watermark_methods_track_occupancy() {
        let mut m = three_tier();
        for i in 0..80 {
            m.ensure_mapped(PageId(i), Tier::Slow);
        }
        // cxl (tier 1) holds 40/40: zero free => below any positive mark.
        assert!(m.tier_free_below(1, 0.06));
        assert!(!m.tier_free_below(2, 0.06), "nvme is half free");
        assert!(m.fast_free_below(1.1), "fully free is still below 1.1");
        assert!(!m.fast_free_below(0.5), "fast tier is empty: frac 1.0");
    }

    #[test]
    fn shrink_below_occupancy_reports_zero_free() {
        let mut m = small();
        for i in 0..4 {
            m.ensure_mapped(PageId(i), Tier::Fast);
        }
        m.set_fast_capacity(2);
        assert_eq!(m.fast_free(), 0);
        assert_eq!(m.tier_capacity(0), 2);
        assert!(m.fast_free_below(0.08));
        assert_eq!(m.config().fast_capacity_pages, 2);
    }
}
