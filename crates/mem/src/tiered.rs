//! The tiered page table: placement, capacity accounting, and migration.

use std::error::Error;
use std::fmt;

use crate::page::{PageId, PageSize, Tier};

/// Fast:slow capacity ratios evaluated in the paper (§6.1: "the x-axis
/// indicates the ratio between fast and slow-tier memory capacity").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TierRatio {
    /// Fast tier is 1/16 of the slow tier (scarce fast memory).
    OneTo16,
    /// Fast tier is 1/8 of the slow tier.
    OneTo8,
    /// Fast tier is 1/4 of the slow tier (abundant fast memory).
    OneTo4,
}

impl TierRatio {
    /// All three ratios, in the order the paper plots them.
    pub const ALL: [TierRatio; 3] = [TierRatio::OneTo16, TierRatio::OneTo8, TierRatio::OneTo4];

    /// The slow-tier multiple (16, 8, or 4).
    pub fn slow_multiple(self) -> u64 {
        match self {
            TierRatio::OneTo16 => 16,
            TierRatio::OneTo8 => 8,
            TierRatio::OneTo4 => 4,
        }
    }
}

impl fmt::Display for TierRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "1:{}", self.slow_multiple())
    }
}

/// Capacity configuration for the two tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierConfig {
    /// Pages the fast tier can hold.
    pub fast_capacity_pages: u64,
    /// Pages the slow tier can hold.
    pub slow_capacity_pages: u64,
    /// Page granularity.
    pub page_size: PageSize,
    /// Number of pages in the application's address space (page table span).
    pub address_space_pages: u64,
}

impl TierConfig {
    /// Sizes the tiers for a workload of `footprint_pages` at the given
    /// ratio, mirroring the paper's setup: the slow tier alone can hold the
    /// whole footprint (theirs is fixed at 512 GiB ≥ every workload), and
    /// the fast tier is `footprint / ratio` — e.g. 1:8 gives a fast tier
    /// holding 1/8 of the footprint.
    ///
    /// # Panics
    ///
    /// Panics if `footprint_pages == 0`.
    pub fn for_footprint(footprint_pages: u64, ratio: TierRatio, page_size: PageSize) -> Self {
        assert!(footprint_pages > 0, "footprint must be non-empty");
        let fast = (footprint_pages / ratio.slow_multiple()).max(1);
        Self {
            fast_capacity_pages: fast,
            slow_capacity_pages: footprint_pages,
            page_size,
            address_space_pages: footprint_pages,
        }
    }

    /// A configuration whose fast tier holds the entire footprint — the
    /// all-fast-tier upper bound of paper Figure 11.
    pub fn all_fast(footprint_pages: u64, page_size: PageSize) -> Self {
        Self {
            fast_capacity_pages: footprint_pages,
            slow_capacity_pages: footprint_pages,
            page_size,
            address_space_pages: footprint_pages,
        }
    }

    /// Total bytes across both tiers.
    pub fn total_bytes(&self) -> u64 {
        (self.fast_capacity_pages + self.slow_capacity_pages) * self.page_size.bytes()
    }
}

/// Why a migration could not be performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationError {
    /// The page has never been touched (no mapping exists).
    NotMapped(PageId),
    /// The page is already resident in the requested tier.
    AlreadyThere(PageId, Tier),
    /// The destination tier has no free capacity.
    TierFull(Tier),
}

impl fmt::Display for MigrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrationError::NotMapped(p) => write!(f, "{p} is not mapped"),
            MigrationError::AlreadyThere(p, t) => write!(f, "{p} is already in the {t} tier"),
            MigrationError::TierFull(t) => write!(f, "{t} tier is full"),
        }
    }
}

impl Error for MigrationError {}

/// Running migration/allocation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Pages moved slow → fast.
    pub promotions: u64,
    /// Pages moved fast → slow.
    pub demotions: u64,
    /// First-touch allocations landing in the fast tier.
    pub allocated_fast: u64,
    /// First-touch allocations landing in the slow tier.
    pub allocated_slow: u64,
    /// Promotions rejected because the fast tier was full.
    pub failed_promotions: u64,
}

/// The tiered page table.
///
/// Maps every page of the application address space to its current tier and
/// enforces tier capacities. This is the simulator's analogue of the kernel
/// page table plus NUMA placement; policies manipulate it through
/// [`promote`](TieredMemory::promote) / [`demote`](TieredMemory::demote)
/// (the stand-ins for `move_pages(2)`) and read it through
/// [`tier_of`](TieredMemory::tier_of) (the stand-in for
/// `/proc/PID/pagemap` scans, which is how HybridTier's demotion scan walks
/// the address space, §4.3).
#[derive(Debug, Clone)]
pub struct TieredMemory {
    config: TierConfig,
    /// Placement per page: `None` = untouched, `Some(tier)` = resident.
    table: Vec<Option<Tier>>,
    fast_used: u64,
    slow_used: u64,
    stats: MigrationStats,
}

impl TieredMemory {
    /// Creates an empty tiered memory with the given configuration.
    pub fn new(config: TierConfig) -> Self {
        Self {
            table: vec![None; config.address_space_pages as usize],
            config,
            fast_used: 0,
            slow_used: 0,
            stats: MigrationStats::default(),
        }
    }

    /// The configuration this memory was built with.
    pub fn config(&self) -> TierConfig {
        self.config
    }

    /// Current tier of `page`, or `None` if never touched.
    #[inline]
    pub fn tier_of(&self, page: PageId) -> Option<Tier> {
        self.table.get(page.0 as usize).copied().flatten()
    }

    /// Ensures `page` is mapped, allocating it on first touch.
    ///
    /// Allocation tries `preferred` first and falls back to the other tier
    /// if full (Linux first-touch with fallback). Returns the tier the page
    /// resides in after the call.
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside the configured address space, or if both
    /// tiers are full (the configuration guarantees the slow tier can hold
    /// the footprint, so this indicates a harness bug).
    #[inline]
    pub fn ensure_mapped(&mut self, page: PageId, preferred: Tier) -> Tier {
        let idx = page.0 as usize;
        assert!(
            idx < self.table.len(),
            "{page} outside address space of {} pages",
            self.table.len()
        );
        if let Some(t) = self.table[idx] {
            return t;
        }
        let tier = if self.has_free(preferred) {
            preferred
        } else if self.has_free(preferred.other()) {
            preferred.other()
        } else {
            panic!("both tiers full; slow tier must be sized to the footprint");
        };
        self.table[idx] = Some(tier);
        match tier {
            Tier::Fast => {
                self.fast_used += 1;
                self.stats.allocated_fast += 1;
            }
            Tier::Slow => {
                self.slow_used += 1;
                self.stats.allocated_slow += 1;
            }
        }
        tier
    }

    #[inline]
    fn has_free(&self, tier: Tier) -> bool {
        match tier {
            Tier::Fast => self.fast_used < self.config.fast_capacity_pages,
            Tier::Slow => self.slow_used < self.config.slow_capacity_pages,
        }
    }

    /// Moves `page` slow → fast.
    ///
    /// # Errors
    ///
    /// [`MigrationError::NotMapped`] if the page was never touched,
    /// [`MigrationError::AlreadyThere`] if it is already fast, or
    /// [`MigrationError::TierFull`] if the fast tier has no free page (the
    /// caller must demote first; failed promotions are counted).
    pub fn promote(&mut self, page: PageId) -> Result<(), MigrationError> {
        match self.tier_of(page) {
            None => Err(MigrationError::NotMapped(page)),
            Some(Tier::Fast) => Err(MigrationError::AlreadyThere(page, Tier::Fast)),
            Some(Tier::Slow) => {
                if !self.has_free(Tier::Fast) {
                    self.stats.failed_promotions += 1;
                    return Err(MigrationError::TierFull(Tier::Fast));
                }
                self.table[page.0 as usize] = Some(Tier::Fast);
                self.slow_used -= 1;
                self.fast_used += 1;
                self.stats.promotions += 1;
                Ok(())
            }
        }
    }

    /// Moves `page` fast → slow.
    ///
    /// # Errors
    ///
    /// Mirror image of [`promote`](TieredMemory::promote).
    pub fn demote(&mut self, page: PageId) -> Result<(), MigrationError> {
        match self.tier_of(page) {
            None => Err(MigrationError::NotMapped(page)),
            Some(Tier::Slow) => Err(MigrationError::AlreadyThere(page, Tier::Slow)),
            Some(Tier::Fast) => {
                if !self.has_free(Tier::Slow) {
                    return Err(MigrationError::TierFull(Tier::Slow));
                }
                self.table[page.0 as usize] = Some(Tier::Slow);
                self.fast_used -= 1;
                self.slow_used += 1;
                self.stats.demotions += 1;
                Ok(())
            }
        }
    }

    /// Pages currently resident in the fast tier.
    pub fn fast_used(&self) -> u64 {
        self.fast_used
    }

    /// Pages currently resident in the slow tier.
    pub fn slow_used(&self) -> u64 {
        self.slow_used
    }

    /// Free pages remaining in the fast tier (zero when over quota after a
    /// capacity shrink).
    pub fn fast_free(&self) -> u64 {
        self.config
            .fast_capacity_pages
            .saturating_sub(self.fast_used)
    }

    /// Re-sizes the fast tier (the global-tiering controller of paper §7
    /// adjusts per-tenant quotas at runtime). Shrinking below the current
    /// occupancy is allowed: the tier reports zero free pages until the
    /// policy's watermark demotion drains the excess.
    ///
    /// # Panics
    ///
    /// Panics if `pages == 0`.
    pub fn set_fast_capacity(&mut self, pages: u64) {
        assert!(pages > 0, "fast capacity must be positive");
        self.config.fast_capacity_pages = pages;
    }

    /// Free fast-tier fraction in `[0, 1]` (watermark checks compare against
    /// this).
    pub fn fast_free_frac(&self) -> f64 {
        self.fast_free() as f64 / self.config.fast_capacity_pages as f64
    }

    /// Number of pages in the address space (mapped or not).
    pub fn address_space_pages(&self) -> u64 {
        self.config.address_space_pages
    }

    /// Number of currently mapped pages.
    pub fn mapped_pages(&self) -> u64 {
        self.fast_used + self.slow_used
    }

    /// Migration statistics so far.
    pub fn stats(&self) -> MigrationStats {
        self.stats
    }

    /// Iterates over all mapped pages and their tiers in address order —
    /// the simulator analogue of a linear `/proc/PID/pagemap` scan.
    pub fn iter_mapped(&self) -> impl Iterator<Item = (PageId, Tier)> + '_ {
        self.table
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.map(|t| (PageId(i as u64), t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TieredMemory {
        TieredMemory::new(TierConfig {
            fast_capacity_pages: 4,
            slow_capacity_pages: 100,
            page_size: PageSize::Base4K,
            address_space_pages: 100,
        })
    }

    #[test]
    fn ratio_configs() {
        let c = TierConfig::for_footprint(1600, TierRatio::OneTo16, PageSize::Base4K);
        assert_eq!(c.fast_capacity_pages, 100);
        assert_eq!(c.slow_capacity_pages, 1600);
        let c = TierConfig::for_footprint(1600, TierRatio::OneTo4, PageSize::Base4K);
        assert_eq!(c.fast_capacity_pages, 400);
        assert_eq!(TierRatio::OneTo8.to_string(), "1:8");
    }

    #[test]
    fn first_touch_allocates_preferred() {
        let mut m = small();
        assert_eq!(m.ensure_mapped(PageId(0), Tier::Fast), Tier::Fast);
        assert_eq!(m.ensure_mapped(PageId(1), Tier::Slow), Tier::Slow);
        // Idempotent: second touch does not move or re-allocate.
        assert_eq!(m.ensure_mapped(PageId(0), Tier::Slow), Tier::Fast);
        assert_eq!(m.stats().allocated_fast, 1);
        assert_eq!(m.stats().allocated_slow, 1);
    }

    #[test]
    fn fast_allocation_falls_back_when_full() {
        let mut m = small();
        for i in 0..4 {
            assert_eq!(m.ensure_mapped(PageId(i), Tier::Fast), Tier::Fast);
        }
        // Fifth fast-preferred touch spills to slow.
        assert_eq!(m.ensure_mapped(PageId(4), Tier::Fast), Tier::Slow);
        assert_eq!(m.fast_free(), 0);
    }

    #[test]
    fn promote_and_demote_move_pages() {
        let mut m = small();
        m.ensure_mapped(PageId(7), Tier::Slow);
        m.promote(PageId(7)).unwrap();
        assert_eq!(m.tier_of(PageId(7)), Some(Tier::Fast));
        assert_eq!(m.fast_used(), 1);
        assert_eq!(m.slow_used(), 0);
        m.demote(PageId(7)).unwrap();
        assert_eq!(m.tier_of(PageId(7)), Some(Tier::Slow));
        let s = m.stats();
        assert_eq!((s.promotions, s.demotions), (1, 1));
    }

    #[test]
    fn promote_errors() {
        let mut m = small();
        assert_eq!(
            m.promote(PageId(3)),
            Err(MigrationError::NotMapped(PageId(3)))
        );
        m.ensure_mapped(PageId(3), Tier::Fast);
        assert_eq!(
            m.promote(PageId(3)),
            Err(MigrationError::AlreadyThere(PageId(3), Tier::Fast))
        );
        // Fill the fast tier, then promotion of a slow page must fail.
        for i in 10..13 {
            m.ensure_mapped(PageId(i), Tier::Fast);
        }
        m.ensure_mapped(PageId(20), Tier::Slow);
        assert_eq!(
            m.promote(PageId(20)),
            Err(MigrationError::TierFull(Tier::Fast))
        );
        assert_eq!(m.stats().failed_promotions, 1);
    }

    #[test]
    fn capacity_accounting_is_conserved() {
        let mut m = small();
        for i in 0..50 {
            m.ensure_mapped(PageId(i), Tier::Slow);
        }
        for i in 0..4 {
            m.promote(PageId(i)).unwrap();
        }
        assert_eq!(m.mapped_pages(), 50);
        assert_eq!(m.fast_used() + m.slow_used(), 50);
        assert_eq!(m.fast_used(), 4);
        assert!((m.fast_free_frac() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn iter_mapped_in_address_order() {
        let mut m = small();
        m.ensure_mapped(PageId(9), Tier::Slow);
        m.ensure_mapped(PageId(2), Tier::Fast);
        let v: Vec<_> = m.iter_mapped().collect();
        assert_eq!(v, vec![(PageId(2), Tier::Fast), (PageId(9), Tier::Slow)]);
    }

    #[test]
    fn error_display() {
        let e = MigrationError::TierFull(Tier::Fast);
        assert_eq!(e.to_string(), "fast tier is full");
    }

    #[test]
    #[should_panic(expected = "outside address space")]
    fn out_of_range_page_panics() {
        let mut m = small();
        m.ensure_mapped(PageId(1000), Tier::Fast);
    }
}
