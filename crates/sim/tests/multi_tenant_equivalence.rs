//! The co-location analogue of `batch_equivalence`: for fixed seeds, a
//! multi-tenant run produces a **byte-identical** [`MultiTenantReport`] at
//! any batch size. This holds because tenants are only batch-pulled while
//! time-independent, a rebalance only resizes memory (never the workload),
//! and pulled-but-unconsumed ops suspended at a rebalance boundary resume
//! unchanged afterwards.

use tiering_policies::{build_policy, ObjectiveKind, PolicyKind};
use tiering_sim::{
    ChurnSchedule, MultiTenantConfig, MultiTenantEngine, MultiTenantReport, SimConfig, TenantRun,
};
use tiering_workloads::ZipfPageWorkload;

fn tenants(ops: u64) -> Vec<TenantRun> {
    vec![
        TenantRun::new(
            "cache",
            // The shift keeps this tenant time-sensitive (single-op pulls)
            // early on and batchable afterwards, covering both pull modes
            // across rebalance boundaries.
            Box::new(ZipfPageWorkload::new(2_000, 0.99, ops, 11).with_shift(6_000_000, 0.8)),
            |cfg| build_policy(PolicyKind::HybridTier, cfg),
        ),
        TenantRun::new(
            "batch",
            Box::new(
                ZipfPageWorkload::new(6_000, 0.2, ops, 13)
                    .with_cpu_ns(900)
                    .with_wakeup(9_000_000, 1.1, 50),
            ),
            |cfg| build_policy(PolicyKind::HybridTier, cfg),
        ),
        TenantRun::new(
            "faulty",
            // A fault-driven policy exercises the on_access batch path too.
            Box::new(ZipfPageWorkload::new(1_500, 0.8, ops, 17)),
            |cfg| build_policy(PolicyKind::Tpp, cfg),
        ),
    ]
}

fn run(batch_ops: usize, ops: u64) -> MultiTenantReport {
    let sim = SimConfig::default()
        .with_max_ops(ops)
        .with_batch_ops(batch_ops);
    MultiTenantEngine::new(
        sim,
        MultiTenantConfig::new(1_200)
            .with_floor_frac(0.1)
            .with_rebalance_interval_ns(2_000_000),
    )
    .run(tenants(ops))
}

/// Field-by-field assertion so a regression names the diverging tenant and
/// field instead of dumping two full reports.
fn assert_identical(a: &MultiTenantReport, b: &MultiTenantReport, what: &str) {
    assert_eq!(a.churn, b.churn, "{what}: churn trace");
    assert_eq!(a.rebalances, b.rebalances, "{what}: rebalance trace");
    assert_eq!(a.tenants.len(), b.tenants.len(), "{what}: tenant count");
    for (ta, tb) in a.tenants.iter().zip(&b.tenants) {
        let name = &ta.name;
        assert_eq!(ta.report.ops, tb.report.ops, "{what}/{name}: ops");
        assert_eq!(ta.report.sim_ns, tb.report.sim_ns, "{what}/{name}: sim_ns");
        assert_eq!(
            ta.report.migrations, tb.report.migrations,
            "{what}/{name}: migrations"
        );
        assert_eq!(ta, tb, "{what}/{name}: full tenant report");
    }
    assert_eq!(a.aggregate, b.aggregate, "{what}: aggregate");
    assert_eq!(a, b, "{what}: full report");
}

/// Batch size is purely a host-performance knob for co-located runs too:
/// scalar (1), odd, default, and huge batches all produce one report.
#[test]
fn colocated_run_is_batch_size_invariant() {
    let scalar = run(1, 60_000);
    assert!(
        !scalar.rebalances.is_empty(),
        "test must cross rebalance boundaries to be meaningful"
    );
    for batch_ops in [2, 7, 64, 1024] {
        let batched = run(batch_ops, 60_000);
        assert_identical(&scalar, &batched, &format!("batch_ops={batch_ops}"));
    }
}

/// Suspending a tenant mid-batch at a rebalance boundary must not lose or
/// duplicate operations: total ops equal the per-tenant caps exactly.
#[test]
fn no_ops_lost_across_rebalance_boundaries() {
    let r = run(64, 30_000);
    for t in &r.tenants {
        assert_eq!(
            t.report.ops, 30_000,
            "{}: ops dropped or duplicated",
            t.name
        );
    }
    assert_eq!(r.aggregate.ops, 90_000);
}

/// The churn analogue of `run`: the 3-tenant fleet plus an
/// arrive → depart → arrive-again schedule for the `batch` tenant, under a
/// non-default objective (so objective-specific quota paths are covered
/// too).
fn run_churn(batch_ops: usize, ops: u64) -> MultiTenantReport {
    let sim = SimConfig::default()
        .with_max_ops(ops)
        .with_batch_ops(batch_ops);
    let mk_late = || {
        TenantRun::new(
            "late",
            Box::new(ZipfPageWorkload::new(2_500, 0.9, ops, 29).with_cpu_ns(400)),
            |cfg| build_policy(PolicyKind::HybridTier, cfg),
        )
    };
    let schedule = ChurnSchedule::new()
        .arrive(15_000, mk_late())
        .depart(40_000, "late")
        .arrive(70_000, mk_late());
    MultiTenantEngine::new(
        sim,
        MultiTenantConfig::new(1_200)
            .with_floor_frac(0.1)
            .with_rebalance_interval_ns(2_000_000)
            .with_objective(ObjectiveKind::MaxMin),
    )
    .run_with_churn(tenants(ops), schedule)
}

/// Churn timing rides fleet op counts observed at round boundaries, which
/// are batch-size invariant — so an arrive/depart/arrive-again fleet run
/// produces one byte-identical report (churn records, rebalance trace,
/// per-tenant results) at every batch size.
#[test]
fn churn_fleet_run_is_batch_size_invariant() {
    let scalar = run_churn(1, 40_000);
    assert_eq!(
        scalar.churn.len(),
        3,
        "test must apply the whole arrive/depart/arrive-again schedule to be meaningful"
    );
    assert!(
        !scalar.rebalances.is_empty(),
        "test must cross rebalance boundaries to be meaningful"
    );
    assert_eq!(scalar.tenants.len(), 5, "3 initial + 2 arrival slots");
    for batch_ops in [2, 7, 64, 1024] {
        let batched = run_churn(batch_ops, 40_000);
        assert_identical(&scalar, &batched, &format!("churn batch_ops={batch_ops}"));
    }
}

/// Departure cuts a tenant short; the rest still complete their caps, and
/// every rebalance in the churned run assigns the whole budget over the
/// live fleet.
#[test]
fn churned_fleet_conserves_ops_and_budget() {
    let r = run_churn(64, 40_000);
    for t in &r.tenants {
        if t.departed_at_ns.is_some() {
            assert!(t.report.ops < 40_000, "{}: departed but ran to cap", t.name);
        }
    }
    for name in ["cache", "batch", "faulty"] {
        assert_eq!(r.find(name).expect(name).report.ops, 40_000, "{name}");
    }
    for e in &r.rebalances {
        assert_eq!(e.assigned(), 1_200, "budget leak at t={}", e.at_ns);
    }
}
