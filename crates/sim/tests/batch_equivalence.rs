//! The batched pipeline's defining contract: for a fixed seed, any batch
//! size produces a **byte-identical** `SimReport` to the scalar
//! (one-op-per-pull) reference path.
//!
//! This holds by construction — every pipeline stage is shared between the
//! two paths, and workloads are batch-pulled only while their output is
//! independent of simulated time — and these tests pin the construction.

use tiering_mem::{PageSize, TierConfig, TierRatio};
use tiering_policies::{build_policy, visit_policy, PolicyKind, PolicyVisitor, TieringPolicy};
use tiering_sim::{Engine, SimConfig, SimReport};
use tiering_trace::Workload;
use tiering_workloads::{
    build_workload, visit_workload, WorkloadId, WorkloadVisitor, ZipfPageWorkload,
};

/// Field-by-field assertion so a regression names the diverging field
/// instead of dumping two full reports.
fn assert_reports_identical(a: &SimReport, b: &SimReport, what: &str) {
    assert_eq!(a.ops, b.ops, "{what}: ops");
    assert_eq!(a.accesses, b.accesses, "{what}: accesses");
    assert_eq!(a.samples, b.samples, "{what}: samples");
    assert_eq!(a.sim_ns, b.sim_ns, "{what}: sim_ns");
    assert_eq!(a.latency, b.latency, "{what}: latency summary");
    assert_eq!(a.timeline, b.timeline, "{what}: timeline");
    assert_eq!(a.cache_timeline, b.cache_timeline, "{what}: cache timeline");
    assert_eq!(a.cache, b.cache, "{what}: cache stats");
    assert_eq!(a.migrations, b.migrations, "{what}: migrations");
    assert_eq!(a.fast_hit_frac, b.fast_hit_frac, "{what}: fast_hit_frac");
    assert_eq!(a.metadata_bytes, b.metadata_bytes, "{what}: metadata_bytes");
    assert_eq!(
        a.count_distribution, b.count_distribution,
        "{what}: count distribution"
    );
    assert_eq!(a.retention, b.retention, "{what}: retention");
    assert_eq!(a, b, "{what}: full report");
}

fn run_zipf(config: &SimConfig, kind: PolicyKind, scalar: bool) -> SimReport {
    // The shift keeps the workload time-sensitive (single-op pulls) for the
    // first simulated 50 ms and batchable afterwards, covering both pull
    // modes and the transition between them.
    let mut w = ZipfPageWorkload::new(3_000, 0.99, 120_000, 11).with_shift(50_000_000, 0.8);
    let pages = w.footprint_pages(PageSize::Base4K);
    let tier_cfg = TierConfig::for_footprint(pages, TierRatio::OneTo8, PageSize::Base4K);
    let mut policy = build_policy(kind, &tier_cfg);
    let engine = Engine::new(config.clone());
    if scalar {
        engine.run_scalar(&mut w, policy.as_mut(), tier_cfg)
    } else {
        engine.run(&mut w, policy.as_mut(), tier_cfg)
    }
}

/// Every policy family (CBF-sampling, exact-counter, fault-driven, and the
/// caching-algorithm adaptations) through scalar vs default batch.
#[test]
fn batched_equals_scalar_across_policies() {
    for kind in [
        PolicyKind::HybridTier,
        PolicyKind::Memtis,
        PolicyKind::Tpp,
        PolicyKind::AutoNuma,
        PolicyKind::Arc,
        PolicyKind::TwoQ,
        PolicyKind::FirstTouch,
    ] {
        let config = SimConfig::default();
        let scalar = run_zipf(&config, kind, true);
        let batched = run_zipf(&config, kind, false);
        assert_reports_identical(&scalar, &batched, &format!("{kind:?}"));
    }
}

/// Batch size is purely a host-performance knob: odd, tiny, and huge batch
/// sizes all reproduce the scalar report.
#[test]
fn batch_size_is_result_invariant() {
    let scalar = run_zipf(&SimConfig::default(), PolicyKind::HybridTier, true);
    for batch_ops in [2, 7, 64, 1024] {
        let config = SimConfig::default().with_batch_ops(batch_ops);
        let batched = run_zipf(&config, PolicyKind::HybridTier, false);
        assert_reports_identical(&scalar, &batched, &format!("batch_ops={batch_ops}"));
    }
}

/// The full evaluation suite (multi-access ops, fused batch overrides in
/// the generators) through the cap-limited sweeps the harness runs.
#[test]
fn suite_workloads_equivalent_under_batching() {
    for id in [
        WorkloadId::CdnCacheLib,
        WorkloadId::BfsKron,
        WorkloadId::PrUniform,
        WorkloadId::Roms,
        WorkloadId::Silo,
        WorkloadId::Xgboost,
    ] {
        let run = |scalar: bool| {
            let mut w = build_workload(id, 0xA5F0_5EED);
            let pages = w.footprint_pages(PageSize::Base4K);
            let tier_cfg = TierConfig::for_footprint(pages, TierRatio::OneTo8, PageSize::Base4K);
            let mut policy = build_policy(PolicyKind::HybridTier, &tier_cfg);
            let engine = Engine::new(SimConfig::default().with_max_ops(30_000));
            if scalar {
                engine.run_scalar(w.as_mut(), policy.as_mut(), tier_cfg)
            } else {
                engine.run(w.as_mut(), policy.as_mut(), tier_cfg)
            }
        };
        assert_reports_identical(&run(true), &run(false), &format!("{id:?}"));
    }
}

/// Hides an inner workload's `fill_batch` override so every pull goes
/// through the generic staged `next_op` adapter (`begin_op`/`commit_op`
/// into the SoA columns) instead of the zero-copy direct column path.
struct StagedFill<W: Workload>(W);

impl<W: Workload> Workload for StagedFill<W> {
    fn next_op(
        &mut self,
        now_ns: u64,
        out: &mut Vec<tiering_trace::Access>,
    ) -> Option<tiering_trace::Op> {
        self.0.next_op(now_ns, out)
    }

    fn footprint_bytes(&self) -> u64 {
        self.0.footprint_bytes()
    }

    fn name(&self) -> &str {
        self.0.name()
    }

    fn batchable_now(&self) -> bool {
        self.0.batchable_now()
    }
    // Deliberately no fill_batch override: the trait default stages through
    // `begin_op`/`commit_op`.
}

/// SoA-fill equivalence: the zero-copy direct column fills (CacheLib, Silo,
/// the synthetic generators) must produce byte-identical reports to the
/// staged `next_op` adapter writing the same columns — the two ways an
/// `AccessBatch` can be populated.
#[test]
fn direct_soa_fill_equals_staged_fill() {
    for id in [
        WorkloadId::CdnCacheLib,
        WorkloadId::SocialCacheLib,
        WorkloadId::Silo,
    ] {
        let run = |staged: bool| {
            let mut direct = build_workload(id, 0xFEED);
            let mut forced;
            let w: &mut dyn Workload = if staged {
                forced = StagedFill(build_workload(id, 0xFEED));
                &mut forced
            } else {
                direct.as_mut()
            };
            let pages = w.footprint_pages(PageSize::Base4K);
            let tier_cfg = TierConfig::for_footprint(pages, TierRatio::OneTo8, PageSize::Base4K);
            let mut policy = build_policy(PolicyKind::HybridTier, &tier_cfg);
            Engine::new(SimConfig::default().with_max_ops(25_000)).run(w, policy.as_mut(), tier_cfg)
        };
        assert_reports_identical(&run(false), &run(true), &format!("{id:?} staged-vs-direct"));
    }
}

/// All ten buildable policies, typed-dispatch matrix order.
const ALL_POLICIES: [PolicyKind; 10] = [
    PolicyKind::HybridTier,
    PolicyKind::HybridTierFreqOnly,
    PolicyKind::HybridTierUnblocked,
    PolicyKind::Memtis,
    PolicyKind::AutoNuma,
    PolicyKind::Tpp,
    PolicyKind::Arc,
    PolicyKind::TwoQ,
    PolicyKind::AllFast,
    PolicyKind::FirstTouch,
];

/// Runs `(id, kind)` through `Engine::run_typed` with both the workload and
/// the policy resolved to their concrete types via the dispatch-once
/// visitors — exactly the route the sweep runner takes for suite scenarios.
fn run_fully_typed(id: WorkloadId, kind: PolicyKind, seed: u64, config: &SimConfig) -> SimReport {
    struct TypedRun<'a> {
        kind: PolicyKind,
        config: &'a SimConfig,
    }
    impl WorkloadVisitor for TypedRun<'_> {
        type Out = SimReport;
        fn visit<W: Workload + 'static>(self, mut w: W) -> SimReport {
            let pages = w.footprint_pages(PageSize::Base4K);
            let tier_cfg = TierConfig::for_footprint(pages, TierRatio::OneTo8, PageSize::Base4K);
            struct WithWorkload<'a, W: Workload> {
                config: &'a SimConfig,
                tier_cfg: TierConfig,
                w: &'a mut W,
            }
            impl<W: Workload> PolicyVisitor for WithWorkload<'_, W> {
                type Out = SimReport;
                fn visit<P: TieringPolicy + 'static>(self, mut p: P) -> SimReport {
                    Engine::new(self.config.clone()).run_typed(self.w, &mut p, self.tier_cfg)
                }
            }
            visit_policy(
                self.kind,
                &tier_cfg,
                WithWorkload {
                    config: self.config,
                    tier_cfg,
                    w: &mut w,
                },
            )
        }
    }
    visit_workload(id, seed, TypedRun { kind, config })
}

/// The monomorphized entry point against the dyn one, across the **full**
/// suite × policy matrix with identical seeds: `run_typed` with concrete
/// types and `run` with trait objects are instantiations of the same
/// generic pipeline, so every report must match byte for byte.
#[test]
fn typed_path_equals_dyn_across_full_matrix() {
    const SEED: u64 = 0xA5F0_5EED;
    for id in WorkloadId::ALL {
        for kind in ALL_POLICIES {
            let config = SimConfig::default().with_max_ops(2_000);
            let typed = run_fully_typed(id, kind, SEED, &config);
            let mut w = build_workload(id, SEED);
            let pages = w.footprint_pages(PageSize::Base4K);
            let tier_cfg = TierConfig::for_footprint(pages, TierRatio::OneTo8, PageSize::Base4K);
            let mut p = build_policy(kind, &tier_cfg);
            let dyn_report = Engine::new(config).run(w.as_mut(), p.as_mut(), tier_cfg);
            assert_reports_identical(
                &dyn_report,
                &typed,
                &format!("{id:?}/{kind:?} typed-vs-dyn"),
            );
        }
    }
}

/// Probes (count distribution, cache attribution) survive batching
/// unchanged too — they observe per-access state inside the access stage.
#[test]
fn probes_equivalent_under_batching() {
    let mut config = SimConfig::default().with_cache_sim().with_max_ops(60_000);
    config.count_probe = true;
    let scalar = run_zipf(&config, PolicyKind::Memtis, true);
    let batched = run_zipf(&config, PolicyKind::Memtis, false);
    assert_reports_identical(&scalar, &batched, "probes");
    assert!(scalar.count_distribution.is_some());
    assert!(scalar.cache.is_some());
}
