//! Order-preserving reduction of chunked runs.
//!
//! A *chunked* run splits one scenario's operation stream into contiguous
//! op-range chunks, executes each chunk in its own engine (its own workload
//! instance, policy instance, and tiered memory — so chunks can run on
//! different threads with zero sharing), and reduces the per-chunk results
//! back into one [`SimReport`] in chunk order. The chunk plan is part of
//! the recipe: a chunked run is a *different* (equally deterministic)
//! experiment than the unchunked run of the same scenario, but for a fixed
//! plan the merged report is byte-identical regardless of how many worker
//! threads executed the chunks — that is the guarantee the runner's
//! `chunk_equivalence` tests pin.
//!
//! The reduction needs more than a [`SimReport`] per chunk: exact merged
//! latency percentiles require the full log-bucketed histogram (percentiles
//! do not compose), and the merged fast-hit fraction needs the raw hit
//! count (fractions do not either). [`CapturedRun`] carries both alongside
//! the ordinary report; [`Engine::run_captured`](crate::Engine::run_captured)
//! and [`Engine::run_typed_captured`](crate::Engine::run_typed_captured)
//! produce it at no extra cost (the pipeline owns the histogram anyway).

use crate::histo::LogHistogram;
use crate::report::{CacheTimelinePoint, LatencySummary, SimReport, TimelinePoint};

/// One chunk's result plus the raw aggregates a lossless merge needs.
#[derive(Debug, Clone)]
pub struct CapturedRun {
    /// The chunk's ordinary simulation report.
    pub report: SimReport,
    /// The whole-run latency histogram (exact merged percentiles).
    pub(crate) hist: LogHistogram,
    /// Raw fast-tier hit count (exact merged fast-hit fraction).
    pub(crate) fast_hits: u64,
}

impl CapturedRun {
    pub(crate) fn new(report: SimReport, hist: LogHistogram, fast_hits: u64) -> Self {
        Self {
            report,
            hist,
            fast_hits,
        }
    }
}

/// Reduces chunk results (in chunk order) into one [`SimReport`].
///
/// The merge treats the chunks as consecutive segments of one run:
///
/// * `ops` / `accesses` / `samples` and every migration counter are summed;
/// * `sim_ns` is the sum of chunk times, and each chunk's timeline is
///   shifted by the simulated time of the chunks before it, so the merged
///   timeline spans the whole run with strictly increasing window ends;
/// * the latency summary is recomputed from the merged histograms — exact,
///   not an approximation from per-chunk percentiles;
/// * `fast_hit_frac` is recomputed from summed hit and access counts;
/// * `metadata_bytes` is the maximum across chunks (each chunk built its
///   own policy instance; one instance's footprint is the run's footprint,
///   summing would count the copies).
///
/// Workload and policy names are taken from the first chunk.
///
/// # Panics
///
/// Panics if `chunks` is empty, or if any chunk ran with cache simulation
/// or a hotness probe enabled — those observers are whole-run state that
/// cannot be split at an op boundary, so chunked execution is defined only
/// for probe-free configurations (the runner falls back to one piece
/// otherwise).
pub fn merge_captured(chunks: &[CapturedRun]) -> SimReport {
    assert!(
        !chunks.is_empty(),
        "merge_captured needs at least one chunk"
    );
    let mut hist = LogHistogram::new();
    let mut timeline: Vec<TimelinePoint> = Vec::new();
    let mut cache_timeline: Vec<CacheTimelinePoint> = Vec::new();
    let mut ops = 0u64;
    let mut accesses = 0u64;
    let mut samples = 0u64;
    let mut sim_ns = 0u64;
    let mut fast_hits = 0u64;
    let mut migrations = tiering_mem::MigrationStats::default();
    let mut metadata_bytes = 0usize;
    for c in chunks {
        let r = &c.report;
        assert!(
            r.cache.is_none() && r.count_distribution.is_none() && r.retention.is_none(),
            "chunked execution is defined for probe-free configs only"
        );
        hist.merge(&c.hist);
        timeline.extend(r.timeline.iter().map(|p| TimelinePoint {
            t_ns: p.t_ns + sim_ns,
            ..*p
        }));
        cache_timeline.extend(r.cache_timeline.iter().map(|p| CacheTimelinePoint {
            t_ns: p.t_ns + sim_ns,
            ..*p
        }));
        ops += r.ops;
        accesses += r.accesses;
        samples += r.samples;
        sim_ns += r.sim_ns;
        fast_hits += c.fast_hits;
        migrations.promotions += r.migrations.promotions;
        migrations.demotions += r.migrations.demotions;
        migrations.allocated_fast += r.migrations.allocated_fast;
        migrations.allocated_slow += r.migrations.allocated_slow;
        migrations.failed_promotions += r.migrations.failed_promotions;
        metadata_bytes = metadata_bytes.max(r.metadata_bytes);
    }
    SimReport {
        workload: chunks[0].report.workload.clone(),
        policy: chunks[0].report.policy.clone(),
        ops,
        accesses,
        samples,
        sim_ns,
        latency: LatencySummary::from_histogram(&hist),
        timeline,
        cache_timeline,
        cache: None,
        migrations,
        fast_hit_frac: if accesses == 0 {
            0.0
        } else {
            fast_hits as f64 / accesses as f64
        },
        metadata_bytes,
        count_distribution: None,
        retention: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, SimConfig};
    use tiering_mem::{PageSize, TierConfig, TierRatio};
    use tiering_policies::{build_policy, PolicyKind};
    use tiering_trace::Workload;
    use tiering_workloads::ZipfPageWorkload;

    fn captured(seed: u64, ops: u64) -> CapturedRun {
        let mut w = ZipfPageWorkload::new(2_000, 0.99, ops, seed);
        let pages = w.footprint_pages(PageSize::Base4K);
        let tier_cfg = TierConfig::for_footprint(pages, TierRatio::OneTo8, PageSize::Base4K);
        let mut policy = build_policy(PolicyKind::HybridTier, &tier_cfg);
        Engine::new(SimConfig::default()).run_captured(&mut w, policy.as_mut(), tier_cfg)
    }

    #[test]
    fn captured_report_matches_plain_run() {
        let c = captured(7, 20_000);
        let mut w = ZipfPageWorkload::new(2_000, 0.99, 20_000, 7);
        let pages = w.footprint_pages(PageSize::Base4K);
        let tier_cfg = TierConfig::for_footprint(pages, TierRatio::OneTo8, PageSize::Base4K);
        let mut policy = build_policy(PolicyKind::HybridTier, &tier_cfg);
        let plain = Engine::new(SimConfig::default()).run(&mut w, policy.as_mut(), tier_cfg);
        assert_eq!(c.report, plain, "capture must not perturb the run");
        assert_eq!(c.hist.count(), plain.ops, "one histogram entry per op");
    }

    #[test]
    fn merge_sums_counters_and_offsets_timeline() {
        let a = captured(1, 60_000);
        let b = captured(2, 40_000);
        let merged = merge_captured(&[a.clone(), b.clone()]);
        assert_eq!(merged.ops, a.report.ops + b.report.ops);
        assert_eq!(merged.accesses, a.report.accesses + b.report.accesses);
        assert_eq!(merged.samples, a.report.samples + b.report.samples);
        assert_eq!(merged.sim_ns, a.report.sim_ns + b.report.sim_ns);
        assert_eq!(
            merged.migrations.promotions,
            a.report.migrations.promotions + b.report.migrations.promotions
        );
        assert_eq!(
            merged.timeline.len(),
            a.report.timeline.len() + b.report.timeline.len()
        );
        // Chunk b's windows land after all of chunk a's simulated time.
        assert!(merged
            .timeline
            .windows(2)
            .all(|w| w[0].t_ns < w[1].t_ns || w[0].t_ns >= a.report.sim_ns));
        let window_ops: u64 = merged.timeline.iter().map(|p| p.ops).sum();
        assert_eq!(window_ops, merged.ops, "every op falls in some window");
        // Exact merged mean: the histograms carry full sums, so the merged
        // mean is the access-weighted mean of the chunks.
        let expect = (a.report.latency.mean_ns * a.report.ops as f64
            + b.report.latency.mean_ns * b.report.ops as f64)
            / merged.ops as f64;
        assert!((merged.latency.mean_ns - expect).abs() < 1e-6);
        // Exact merged fast-hit fraction (access-weighted, not averaged).
        let expect_fh = (a.report.fast_hit_frac * a.report.accesses as f64
            + b.report.fast_hit_frac * b.report.accesses as f64)
            / merged.accesses as f64;
        assert!((merged.fast_hit_frac - expect_fh).abs() < 1e-12);
    }

    #[test]
    fn merge_is_deterministic_and_order_sensitive() {
        let a = captured(1, 10_000);
        let b = captured(2, 10_000);
        let ab = merge_captured(&[a.clone(), b.clone()]);
        assert_eq!(ab, merge_captured(&[a.clone(), b.clone()]));
        // Chunk order is part of the plan: swapping it moves the timeline
        // boundary (counters still agree).
        let ba = merge_captured(&[b, a]);
        assert_eq!(ab.ops, ba.ops);
        assert_eq!(ab.sim_ns, ba.sim_ns);
        assert_eq!(ab.latency, ba.latency, "histogram merge commutes");
    }
}
