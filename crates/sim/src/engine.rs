//! The simulation engine core loop.

use cache_sim::CacheConfig;
use tiering_mem::{LatencyModel, PageSize, TierConfig, TierTopology};
use tiering_policies::TieringPolicy;
use tiering_trace::{AccessBatch, Workload};

use crate::chunk::CapturedRun;
use crate::hotness::RetentionConfig;
use crate::pipeline::Pipeline;
use crate::report::SimReport;

/// Cache-simulation options.
#[derive(Debug, Clone, Copy)]
pub struct CacheSimOptions {
    /// L1 geometry.
    pub l1: CacheConfig,
    /// LLC geometry.
    pub llc: CacheConfig,
}

impl Default for CacheSimOptions {
    fn default() -> Self {
        Self {
            l1: CacheConfig::l1d(),
            // 512 KiB: keeps the paper's metadata:LLC ratio (> 1) at this
            // repository's ~512x smaller footprints — Memtis's per-page
            // records must overflow the LLC for Figure 5 to be meaningful,
            // exactly as its 3.9 GB of records overflow a 24 MiB LLC at
            // full scale (paper §2.3.3).
            llc: CacheConfig {
                size_bytes: 512 << 10,
                ways: 16,
                line_bytes: 64,
            },
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Page granularity for tracking and migration.
    pub page_size: PageSize,
    /// PEBS sampling period (one sample per this many accesses). A prime
    /// default avoids phase-locking with workload strides.
    ///
    /// The default (19) is dense relative to real PEBS but matches the
    /// ~512× footprint scaling: per-page evidence rates (samples per page
    /// per cooling period) land in the paper's regime, where hot pages
    /// saturate their 4-bit counts within one cooling period (Figure 16).
    pub sample_period: u32,
    /// Policy maintenance tick interval (simulated).
    pub tick_interval_ns: u64,
    /// Latency model.
    pub latency: LatencyModel,
    /// Enable full cache simulation — application and metadata references
    /// share one hierarchy with per-source attribution (Figures 5/13/14);
    /// costs ~2× wall time.
    pub cache: Option<CacheSimOptions>,
    /// When full cache simulation is off, model metadata locality with a
    /// small dedicated cache (the tiering thread's L1 plus its share of the
    /// LLC) and charge interference per miss. This is what makes Memtis's
    /// scattered 16 B/page records cost more than HybridTier's compact CBF
    /// in the end-to-end sweeps.
    pub metadata_cache: bool,
    /// Fraction of page-migration cost charged to application time
    /// (bandwidth interference from migration copies).
    pub migration_charge: f64,
    /// Fraction of tiering-thread CPU time charged to application time
    /// (cache/memory contention from the co-located runtime thread).
    pub tiering_work_charge: f64,
    /// Stop after this many operations (`u64::MAX` = unbounded).
    pub max_ops: u64,
    /// Stop after this much simulated time (`u64::MAX` = unbounded).
    pub max_sim_ns: u64,
    /// Timeline window length.
    pub window_ns: u64,
    /// Record the per-page sampled-count distribution (Figure 16).
    pub count_probe: bool,
    /// Record hot-set retention (Figure 2).
    pub retention_probe: Option<RetentionConfig>,
    /// Operations pulled from the workload per batch (the pipeline's unit
    /// of work). `1` reproduces the legacy one-virtual-call-per-op loop.
    ///
    /// Results are **independent of this value** — workloads are
    /// batch-pulled only while time-insensitive, and every pipeline stage
    /// is shared between batch sizes — so it is purely a host-performance
    /// knob. Tuning guidance:
    ///
    /// * 32–128 amortizes workload/policy virtual dispatch without growing
    ///   the batch buffers past the L1 working set; 64 is the sweet spot in
    ///   the `end_to_end` bench across the suite workloads.
    /// * Larger values pay off for many-access ops (CacheLib large objects,
    ///   PageRank supersteps) where the flat access buffer already spans
    ///   multiple cache lines per op.
    /// * Time-sensitive phases (a pending hotness shift) force
    ///   single-op pulls internally regardless of this setting.
    pub batch_ops: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            page_size: PageSize::Base4K,
            sample_period: 19,
            tick_interval_ns: 1_000_000, // 1 ms
            latency: LatencyModel::default(),
            cache: None,
            metadata_cache: true,
            migration_charge: 0.35,
            tiering_work_charge: 0.25,
            max_ops: u64::MAX,
            max_sim_ns: u64::MAX,
            window_ns: 1_000_000_000, // 1 s
            count_probe: false,
            retention_probe: None,
            batch_ops: 64,
        }
    }
}

impl SimConfig {
    /// Caps the run at `ops` operations.
    #[must_use]
    pub fn with_max_ops(mut self, ops: u64) -> Self {
        self.max_ops = ops;
        self
    }

    /// Caps the run at `ns` simulated nanoseconds.
    #[must_use]
    pub fn with_max_sim_ns(mut self, ns: u64) -> Self {
        self.max_sim_ns = ns;
        self
    }

    /// Enables cache simulation with default geometries.
    #[must_use]
    pub fn with_cache_sim(mut self) -> Self {
        self.cache = Some(CacheSimOptions::default());
        self
    }

    /// Switches to 2 MiB huge pages (paper §4.4 / Figure 12).
    #[must_use]
    pub fn with_huge_pages(mut self) -> Self {
        self.page_size = PageSize::Huge2M;
        self
    }

    /// Overrides the pipeline batch size (see [`SimConfig::batch_ops`]).
    ///
    /// # Panics
    ///
    /// Panics if `ops == 0`.
    #[must_use]
    pub fn with_batch_ops(mut self, ops: usize) -> Self {
        assert!(ops > 0, "batch size must be at least 1");
        self.batch_ops = ops;
        self
    }
}

/// The simulation engine.
///
/// One engine instance runs one (workload, policy, tier-config) triple to
/// completion and produces a [`SimReport`]. Runs are deterministic: the same
/// inputs produce byte-identical reports.
#[derive(Debug, Clone)]
pub struct Engine {
    config: SimConfig,
}

impl Engine {
    /// Creates an engine with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Self { config }
    }

    /// Runs the simulation to completion through the batched pipeline,
    /// pulling up to [`SimConfig::batch_ops`] operations per workload call.
    ///
    /// Produces byte-identical reports to [`run_scalar`](Engine::run_scalar)
    /// for any batch size: time-sensitive workload phases degrade to
    /// single-op pulls, and every pipeline stage is shared between the two
    /// paths (see the [`pipeline`](crate::Engine) module docs).
    ///
    /// # Panics
    ///
    /// Panics if the workload emits addresses outside its declared footprint
    /// (that is a workload bug worth failing loudly on).
    pub fn run(
        &self,
        workload: &mut dyn Workload,
        policy: &mut dyn TieringPolicy,
        tier_cfg: TierConfig,
    ) -> SimReport {
        self.run_typed(workload, policy, tier_cfg)
    }

    /// [`run`](Engine::run), monomorphized for the concrete workload and
    /// policy types.
    ///
    /// Both entry points execute the *same* generic pipeline —
    /// [`run`](Engine::run) merely instantiates it with `W = dyn Workload, P = dyn
    /// TieringPolicy` — so for identical inputs the two produce
    /// byte-identical reports (asserted across the full suite×policy matrix
    /// by the `batch_equivalence` integration tests). The typed
    /// instantiation lets the compiler inline `fill_batch` into the pull
    /// stage and the batched policy callbacks into the policy stage, which
    /// is worth a double-digit percentage of sweep wall time. Sweep drivers
    /// resolve `(WorkloadId, PolicyKind)` to concrete types once per
    /// scenario via the `visit_workload`/`visit_policy` dispatchers in the
    /// workload and policy crates and then call this.
    pub fn run_typed<W, P>(
        &self,
        workload: &mut W,
        policy: &mut P,
        tier_cfg: TierConfig,
    ) -> SimReport
    where
        W: Workload + ?Sized,
        P: TieringPolicy + ?Sized,
    {
        self.run_with_batch(workload, policy, tier_cfg, self.config.batch_ops.max(1))
            .report
    }

    /// [`run`](Engine::run), also yielding the raw aggregates the chunked
    /// reduction needs ([`merge_captured`](crate::merge_captured)): the
    /// whole-run latency histogram and the exact fast-hit count. The report
    /// inside is byte-identical to what `run` returns; the capture costs
    /// nothing (the pipeline owns both anyway).
    pub fn run_captured(
        &self,
        workload: &mut dyn Workload,
        policy: &mut dyn TieringPolicy,
        tier_cfg: TierConfig,
    ) -> CapturedRun {
        self.run_typed_captured(workload, policy, tier_cfg)
    }

    /// [`run_captured`](Engine::run_captured), monomorphized for the
    /// concrete workload and policy types (see
    /// [`run_typed`](Engine::run_typed)).
    pub fn run_typed_captured<W, P>(
        &self,
        workload: &mut W,
        policy: &mut P,
        tier_cfg: TierConfig,
    ) -> CapturedRun
    where
        W: Workload + ?Sized,
        P: TieringPolicy + ?Sized,
    {
        self.run_with_batch(workload, policy, tier_cfg, self.config.batch_ops.max(1))
    }

    /// Runs with single-op pulls — the legacy loop shape, kept as the
    /// reference implementation the equivalence tests compare against.
    pub fn run_scalar(
        &self,
        workload: &mut dyn Workload,
        policy: &mut dyn TieringPolicy,
        tier_cfg: TierConfig,
    ) -> SimReport {
        self.run_with_batch(workload, policy, tier_cfg, 1).report
    }

    /// Runs over an explicit N-tier ladder ([`TierTopology`]) instead of
    /// the classic 2-tier [`TierConfig`]. The 2-tier ladder built by
    /// [`TierTopology::two_tier`] from this config's latency model
    /// reproduces [`run`](Engine::run) byte-identically; deeper ladders
    /// switch access and migration accounting to the topology's per-rung
    /// tables and let ladder-aware policies cascade demotions down it.
    pub fn run_ladder(
        &self,
        workload: &mut dyn Workload,
        policy: &mut dyn TieringPolicy,
        topology: TierTopology,
    ) -> SimReport {
        self.run_typed_ladder(workload, policy, topology)
    }

    /// [`run_ladder`](Engine::run_ladder), monomorphized for the concrete
    /// workload and policy types (see [`run_typed`](Engine::run_typed)).
    pub fn run_typed_ladder<W, P>(
        &self,
        workload: &mut W,
        policy: &mut P,
        topology: TierTopology,
    ) -> SimReport
    where
        W: Workload + ?Sized,
        P: TieringPolicy + ?Sized,
    {
        self.run_typed_ladder_captured(workload, policy, topology)
            .report
    }

    /// [`run_typed_ladder`](Engine::run_typed_ladder), also yielding the
    /// raw aggregates chunked reduction needs (see
    /// [`run_captured`](Engine::run_captured)).
    pub fn run_typed_ladder_captured<W, P>(
        &self,
        workload: &mut W,
        policy: &mut P,
        topology: TierTopology,
    ) -> CapturedRun
    where
        W: Workload + ?Sized,
        P: TieringPolicy + ?Sized,
    {
        let batch_ops = self.config.batch_ops.max(1);
        let pipeline = Pipeline::with_topology(&self.config, topology, policy);
        Self::drive(pipeline, workload, policy, batch_ops)
    }

    fn run_with_batch<W, P>(
        &self,
        workload: &mut W,
        policy: &mut P,
        tier_cfg: TierConfig,
        batch_ops: usize,
    ) -> CapturedRun
    where
        W: Workload + ?Sized,
        P: TieringPolicy + ?Sized,
    {
        let pipeline = Pipeline::new(&self.config, tier_cfg, policy);
        Self::drive(pipeline, workload, policy, batch_ops)
    }

    fn drive<W, P>(
        mut pipeline: Pipeline<'_>,
        workload: &mut W,
        policy: &mut P,
        batch_ops: usize,
    ) -> CapturedRun
    where
        W: Workload + ?Sized,
        P: TieringPolicy + ?Sized,
    {
        let mut batch = AccessBatch::with_capacity(batch_ops, batch_ops * 4);
        'run: while !pipeline.done() {
            if !pipeline.stage_pull(workload, &mut batch, batch_ops) {
                break;
            }
            for idx in 0..batch.len() {
                pipeline.stage_op(policy, &batch, idx);
                if pipeline.done() {
                    break 'run;
                }
            }
        }
        pipeline.finish_captured(workload.name(), policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::Source;
    use tiering_mem::TierRatio;
    use tiering_policies::{build_policy, PolicyKind};
    use tiering_workloads::ZipfPageWorkload;

    fn run_zipf(kind: PolicyKind, ratio: TierRatio, ops: u64) -> SimReport {
        let mut w = ZipfPageWorkload::new(2_000, 0.99, ops, 7);
        let pages = tiering_trace::Workload::footprint_pages(&w, PageSize::Base4K);
        let tier_cfg = if kind == PolicyKind::AllFast {
            TierConfig::all_fast(pages, PageSize::Base4K)
        } else {
            TierConfig::for_footprint(pages, ratio, PageSize::Base4K)
        };
        let mut policy = build_policy(kind, &tier_cfg);
        Engine::new(SimConfig::default()).run(&mut w, policy.as_mut(), tier_cfg)
    }

    #[test]
    fn all_fast_is_fastest() {
        let all_fast = run_zipf(PolicyKind::AllFast, TierRatio::OneTo8, 100_000);
        let first_touch = run_zipf(PolicyKind::FirstTouch, TierRatio::OneTo8, 100_000);
        assert!(all_fast.sim_ns < first_touch.sim_ns);
        assert!((all_fast.fast_hit_frac - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hybridtier_beats_first_touch_when_hotness_shifts() {
        // On a *static* Zipf, first-touch is a strong accidental baseline
        // (hot pages are touched first and land fast). Tiering earns its
        // keep when the hot set moves — so shift it mid-run.
        let run = |kind: PolicyKind| {
            let mut w =
                ZipfPageWorkload::new(8_000, 0.99, 1_200_000, 42).with_shift(100_000_000, 0.9);
            let pages = tiering_trace::Workload::footprint_pages(&w, PageSize::Base4K);
            let tier_cfg = TierConfig::for_footprint(pages, TierRatio::OneTo8, PageSize::Base4K);
            let mut policy = build_policy(kind, &tier_cfg);
            Engine::new(SimConfig::default()).run(&mut w, policy.as_mut(), tier_cfg)
        };
        let ht = run(PolicyKind::HybridTier);
        let ft = run(PolicyKind::FirstTouch);
        assert!(
            ht.sim_ns < ft.sim_ns,
            "HybridTier {} vs FirstTouch {}",
            ht.sim_ns,
            ft.sim_ns
        );
        assert!(ht.migrations.promotions > 0);
        assert!(ht.fast_hit_frac > ft.fast_hit_frac);
    }

    #[test]
    fn deterministic_runs() {
        let a = run_zipf(PolicyKind::HybridTier, TierRatio::OneTo16, 50_000);
        let b = run_zipf(PolicyKind::HybridTier, TierRatio::OneTo16, 50_000);
        assert_eq!(a.sim_ns, b.sim_ns);
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.latency.p50_ns, b.latency.p50_ns);
    }

    #[test]
    fn ops_cap_respected() {
        let r = run_zipf(PolicyKind::FirstTouch, TierRatio::OneTo8, 1_000);
        assert_eq!(r.ops, 1_000);
        assert_eq!(r.accesses, 1_000, "one access per zipf op");
    }

    #[test]
    fn timeline_covers_run() {
        let r = run_zipf(PolicyKind::Memtis, TierRatio::OneTo8, 200_000);
        assert!(!r.timeline.is_empty());
        let total_ops: u64 = r.timeline.iter().map(|p| p.ops).sum();
        assert_eq!(total_ops, r.ops, "every op falls in some window");
        assert!(r.timeline.windows(2).all(|w| w[0].t_ns < w[1].t_ns));
    }

    #[test]
    fn cache_sim_attributes_tiering_misses() {
        let mut w = ZipfPageWorkload::new(2_000, 0.99, 100_000, 7);
        let pages = tiering_trace::Workload::footprint_pages(&w, PageSize::Base4K);
        let tier_cfg = TierConfig::for_footprint(pages, TierRatio::OneTo8, PageSize::Base4K);
        let mut policy = build_policy(PolicyKind::Memtis, &tier_cfg);
        let r = Engine::new(SimConfig::default().with_cache_sim()).run(
            &mut w,
            policy.as_mut(),
            tier_cfg,
        );
        let stats = r.cache.expect("cache stats present");
        assert!(stats.l1.by(Source::App).accesses() > 0);
        assert!(
            stats.l1.by(Source::Tiering).accesses() > 0,
            "Memtis metadata must generate cache traffic"
        );
    }

    #[test]
    fn count_probe_distribution_sums_to_address_space() {
        let cfg = SimConfig {
            count_probe: true,
            ..SimConfig::default()
        };
        let mut w = ZipfPageWorkload::new(500, 0.99, 50_000, 3);
        let pages = tiering_trace::Workload::footprint_pages(&w, PageSize::Base4K);
        let tier_cfg = TierConfig::for_footprint(pages, TierRatio::OneTo8, PageSize::Base4K);
        let mut policy = build_policy(PolicyKind::FirstTouch, &tier_cfg);
        let r = Engine::new(cfg).run(&mut w, policy.as_mut(), tier_cfg);
        let d = r.count_distribution.expect("probe enabled");
        assert_eq!(d.total(), pages);
        assert!(d.buckets[6] > 0, "hottest zipf pages should saturate");
    }

    #[test]
    fn two_tier_ladder_matches_classic_run() {
        // The ladder entry point over the 2-tier topology must be
        // byte-identical to the classic TierConfig path — the same claim
        // the golden suite makes end-to-end.
        let cfg = SimConfig::default();
        let mk = || ZipfPageWorkload::new(2_000, 0.99, 120_000, 7);
        let mut w = mk();
        let pages = tiering_trace::Workload::footprint_pages(&w, PageSize::Base4K);
        let tier_cfg = TierConfig::for_footprint(pages, TierRatio::OneTo8, PageSize::Base4K);
        let mut policy = build_policy(PolicyKind::HybridTier, &tier_cfg);
        let classic = Engine::new(cfg.clone()).run(&mut w, policy.as_mut(), tier_cfg);

        let mut w = mk();
        let mut policy = build_policy(PolicyKind::HybridTier, &tier_cfg);
        let ladder = Engine::new(cfg.clone()).run_ladder(
            &mut w,
            policy.as_mut(),
            TierTopology::two_tier(tier_cfg, &cfg.latency),
        );
        assert_eq!(classic, ladder);
        assert_eq!(classic.fingerprint(), ladder.fingerprint());
    }

    #[test]
    fn three_tier_ladder_is_deterministic_and_populates_lower_rungs() {
        let run = || {
            let mut w = ZipfPageWorkload::new(2_000, 0.99, 150_000, 7);
            let pages = tiering_trace::Workload::footprint_pages(&w, PageSize::Base4K);
            let topo = TierTopology::three_tier_dram_cxl_nvme(pages, PageSize::Base4K);
            let tier_cfg = topo.as_tier_config();
            let mut policy = build_policy(PolicyKind::HybridTier, &tier_cfg);
            Engine::new(SimConfig::default()).run_ladder(&mut w, policy.as_mut(), topo)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.ops, 150_000);
        assert!(a.migrations.promotions > 0, "hot pages climb the ladder");
        assert!(
            a.fast_hit_frac > 0.0 && a.fast_hit_frac < 1.0,
            "fast hits are tier-0 residency, not the slow pool"
        );
    }

    #[test]
    fn huge_pages_reduce_tracked_pages() {
        let mut w = ZipfPageWorkload::new(2_000, 0.99, 20_000, 7);
        let pages4k = tiering_trace::Workload::footprint_pages(&w, PageSize::Base4K);
        let pages2m = tiering_trace::Workload::footprint_pages(&w, PageSize::Huge2M);
        assert!(pages2m * 256 <= pages4k);
        let tier_cfg = TierConfig::for_footprint(pages2m, TierRatio::OneTo4, PageSize::Huge2M);
        let mut policy = build_policy(PolicyKind::HybridTier, &tier_cfg);
        let r = Engine::new(SimConfig::default().with_huge_pages()).run(
            &mut w,
            policy.as_mut(),
            tier_cfg,
        );
        assert!(r.ops > 0);
    }
}
