//! The simulation engine core loop.

use cache_sim::{CacheConfig, CacheHierarchy, HitLevel, Source};
use tiering_mem::{LatencyModel, PageSize, TierConfig, Tier, TieredMemory};
use tiering_policies::{PolicyCtx, TieringPolicy};
use tiering_trace::{Access, Sampler, Workload};

use crate::histo::LogHistogram;
use crate::prefetch::StreamPrefetcher;
use crate::hotness::{CountDistribution, RetentionConfig, RetentionProbe};
use crate::report::{CacheTimelinePoint, LatencySummary, SimReport, TimelinePoint};

/// Cache-simulation options.
#[derive(Debug, Clone, Copy)]
pub struct CacheSimOptions {
    /// L1 geometry.
    pub l1: CacheConfig,
    /// LLC geometry.
    pub llc: CacheConfig,
}

impl Default for CacheSimOptions {
    fn default() -> Self {
        Self {
            l1: CacheConfig::l1d(),
            // 512 KiB: keeps the paper's metadata:LLC ratio (> 1) at this
            // repository's ~512x smaller footprints — Memtis's per-page
            // records must overflow the LLC for Figure 5 to be meaningful,
            // exactly as its 3.9 GB of records overflow a 24 MiB LLC at
            // full scale (paper §2.3.3).
            llc: CacheConfig {
                size_bytes: 512 << 10,
                ways: 16,
                line_bytes: 64,
            },
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Page granularity for tracking and migration.
    pub page_size: PageSize,
    /// PEBS sampling period (one sample per this many accesses). A prime
    /// default avoids phase-locking with workload strides.
    ///
    /// The default (19) is dense relative to real PEBS but matches the
    /// ~512× footprint scaling: per-page evidence rates (samples per page
    /// per cooling period) land in the paper's regime, where hot pages
    /// saturate their 4-bit counts within one cooling period (Figure 16).
    pub sample_period: u32,
    /// Policy maintenance tick interval (simulated).
    pub tick_interval_ns: u64,
    /// Latency model.
    pub latency: LatencyModel,
    /// Enable full cache simulation — application and metadata references
    /// share one hierarchy with per-source attribution (Figures 5/13/14);
    /// costs ~2× wall time.
    pub cache: Option<CacheSimOptions>,
    /// When full cache simulation is off, model metadata locality with a
    /// small dedicated cache (the tiering thread's L1 plus its share of the
    /// LLC) and charge interference per miss. This is what makes Memtis's
    /// scattered 16 B/page records cost more than HybridTier's compact CBF
    /// in the end-to-end sweeps.
    pub metadata_cache: bool,
    /// Fraction of page-migration cost charged to application time
    /// (bandwidth interference from migration copies).
    pub migration_charge: f64,
    /// Fraction of tiering-thread CPU time charged to application time
    /// (cache/memory contention from the co-located runtime thread).
    pub tiering_work_charge: f64,
    /// Stop after this many operations (`u64::MAX` = unbounded).
    pub max_ops: u64,
    /// Stop after this much simulated time (`u64::MAX` = unbounded).
    pub max_sim_ns: u64,
    /// Timeline window length.
    pub window_ns: u64,
    /// Record the per-page sampled-count distribution (Figure 16).
    pub count_probe: bool,
    /// Record hot-set retention (Figure 2).
    pub retention_probe: Option<RetentionConfig>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            page_size: PageSize::Base4K,
            sample_period: 19,
            tick_interval_ns: 1_000_000, // 1 ms
            latency: LatencyModel::default(),
            cache: None,
            metadata_cache: true,
            migration_charge: 0.35,
            tiering_work_charge: 0.25,
            max_ops: u64::MAX,
            max_sim_ns: u64::MAX,
            window_ns: 1_000_000_000, // 1 s
            count_probe: false,
            retention_probe: None,
        }
    }
}

impl SimConfig {
    /// Caps the run at `ops` operations.
    #[must_use]
    pub fn with_max_ops(mut self, ops: u64) -> Self {
        self.max_ops = ops;
        self
    }

    /// Caps the run at `ns` simulated nanoseconds.
    #[must_use]
    pub fn with_max_sim_ns(mut self, ns: u64) -> Self {
        self.max_sim_ns = ns;
        self
    }

    /// Enables cache simulation with default geometries.
    #[must_use]
    pub fn with_cache_sim(mut self) -> Self {
        self.cache = Some(CacheSimOptions::default());
        self
    }

    /// Switches to 2 MiB huge pages (paper §4.4 / Figure 12).
    #[must_use]
    pub fn with_huge_pages(mut self) -> Self {
        self.page_size = PageSize::Huge2M;
        self
    }
}

/// The simulation engine.
///
/// One engine instance runs one (workload, policy, tier-config) triple to
/// completion and produces a [`SimReport`]. Runs are deterministic: the same
/// inputs produce byte-identical reports.
#[derive(Debug, Clone)]
pub struct Engine {
    config: SimConfig,
}

impl Engine {
    /// Creates an engine with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Self { config }
    }

    /// Runs the simulation to completion.
    ///
    /// # Panics
    ///
    /// Panics if the workload emits addresses outside its declared footprint
    /// (that is a workload bug worth failing loudly on).
    pub fn run(
        &self,
        workload: &mut dyn Workload,
        policy: &mut dyn TieringPolicy,
        tier_cfg: TierConfig,
    ) -> SimReport {
        let cfg = &self.config;
        let mut mem = TieredMemory::new(tier_cfg);
        let mut sampler = Sampler::new(cfg.sample_period);
        let mut ctx = PolicyCtx::new();
        let mut hier = cfg.cache.map(|c| CacheHierarchy::new(c.l1, c.llc));
        // Dedicated metadata cache: the tiering thread's 32 KiB L1 plus a
        // 256 KiB LLC slice (its fair share of a contended LLC).
        let mut meta_hier = if hier.is_none() && cfg.metadata_cache {
            Some(CacheHierarchy::new(
                CacheConfig {
                    size_bytes: 32 << 10,
                    ways: 8,
                    line_bytes: 64,
                },
                CacheConfig {
                    size_bytes: 256 << 10,
                    ways: 8,
                    line_bytes: 64,
                },
            ))
        } else {
            None
        };

        let mut global_hist = LogHistogram::new();
        let mut window_hist = LogHistogram::new();
        let mut timeline = Vec::new();
        let mut cache_timeline = Vec::new();
        let mut window_end = cfg.window_ns;
        let mut last_cache_stats = cache_sim::HierarchyStats::default();

        let mut counts: Vec<u8> = if cfg.count_probe {
            vec![0; tier_cfg.address_space_pages as usize]
        } else {
            Vec::new()
        };
        let mut retention = cfg.retention_probe.map(RetentionProbe::new);

        let mut prefetcher = StreamPrefetcher::new();
        let mut recent_pages = [u64::MAX; 16];
        let mut recent_cursor = 0usize;
        let mut now_ns: u64 = 0;
        let mut next_tick = cfg.tick_interval_ns;
        let mut ops: u64 = 0;
        let mut accesses: u64 = 0;
        let mut samples: u64 = 0;
        let mut fast_hits: u64 = 0;
        let mut buf: Vec<Access> = Vec::with_capacity(64);
        let wants_hook = policy.wants_access_hook();
        let prefer = policy.preferred_alloc_tier();
        let mut mig_before = mem.stats();

        while ops < cfg.max_ops && now_ns < cfg.max_sim_ns {
            buf.clear();
            let Some(op) = workload.next_op(now_ns, &mut buf) else {
                break;
            };
            let mut op_ns = op.cpu_ns;

            for access in &buf {
                let page = access.page(cfg.page_size);
                let tier = mem.ensure_mapped(page, prefer);
                accesses += 1;
                if tier == Tier::Fast {
                    fast_hits += 1;
                }

                // Application access latency: through the cache if enabled;
                // memory-level accesses that continue a detected sequential
                // stream are charged the (bandwidth-bound) prefetched cost.
                let streamed = prefetcher.observe(access.addr);
                let memory_ns = if streamed {
                    cfg.latency.stream_ns(tier)
                } else {
                    cfg.latency.access_ns(tier)
                };
                op_ns += match &mut hier {
                    Some(h) => match h.access(access.addr, Source::App) {
                        HitLevel::L1 => cfg.latency.l1_hit_ns,
                        HitLevel::Llc => cfg.latency.llc_hit_ns,
                        HitLevel::Memory => memory_ns,
                    },
                    None => memory_ns,
                };

                // Fault hook (recency policies), charged synchronously.
                if wants_hook {
                    op_ns += policy.on_access(page, now_ns, &mut mem, &mut ctx);
                }

                // PEBS sampling.
                if let Some(sample) =
                    sampler.observe_full(access, tier, now_ns, cfg.page_size)
                {
                    // Burst filter: at real PEBS periods a sequential sweep
                    // yields at most one sample per page, because the period
                    // far exceeds a page's line count. Our scaled period is
                    // dense enough that a streamed page would register
                    // several times within microseconds; suppressing page
                    // repeats within a short sample window restores the
                    // hardware behaviour (momentum then measures sustained
                    // intensity, not one sweep's burst).
                    if recent_pages.contains(&sample.page.0) {
                        continue;
                    }
                    recent_pages[recent_cursor] = sample.page.0;
                    recent_cursor = (recent_cursor + 1) % recent_pages.len();
                    samples += 1;
                    if cfg.count_probe {
                        let c = &mut counts[sample.page.0 as usize];
                        *c = (*c + 1).min(15);
                    }
                    if let Some(r) = &mut retention {
                        r.record(sample.page, now_ns);
                    }
                    policy.on_sample(sample, &mut mem, &mut ctx);
                }
            }

            // Policy maintenance tick.
            if now_ns >= next_tick {
                policy.on_tick(now_ns, &mut mem, &mut ctx);
                next_tick = now_ns + cfg.tick_interval_ns;
            }

            // Charge asynchronous tiering costs to the application clock.
            let mig_now = mem.stats();
            let moved = (mig_now.promotions - mig_before.promotions)
                + (mig_now.demotions - mig_before.demotions);
            mig_before = mig_now;
            if moved > 0 {
                let mig_ns = moved * cfg.latency.migrate_page_ns(cfg.page_size);
                op_ns += (mig_ns as f64 * cfg.migration_charge) as u64;
            }
            if ctx.tiering_work_ns > 0 {
                op_ns += (ctx.tiering_work_ns as f64 * cfg.tiering_work_charge) as u64;
            }
            // Replay metadata traffic through the cache, attributed to the
            // tiering runtime.
            if let Some(h) = &mut hier {
                for &line in &ctx.metadata_lines {
                    h.access(line, Source::Tiering);
                }
            } else if let Some(h) = &mut meta_hier {
                let mut interference = 0u64;
                for &line in &ctx.metadata_lines {
                    interference += match h.access(line, Source::Tiering) {
                        HitLevel::L1 => 0,
                        HitLevel::Llc => 6,
                        HitLevel::Memory => 60,
                    };
                }
                op_ns += (interference as f64 * cfg.tiering_work_charge) as u64;
            }
            ctx.drain();

            now_ns += op_ns.max(1);
            ops += 1;
            global_hist.record(op_ns);
            window_hist.record(op_ns);

            // Roll timeline windows.
            while now_ns >= window_end {
                timeline.push(TimelinePoint {
                    t_ns: window_end,
                    p50_ns: window_hist.p50(),
                    mean_ns: window_hist.mean() as u64,
                    ops: window_hist.count(),
                });
                if let Some(h) = &hier {
                    let s = h.stats();
                    let dl1_t = s.l1.by(Source::Tiering).misses
                        - last_cache_stats.l1.by(Source::Tiering).misses;
                    let dl1 = s.l1.total_misses() - last_cache_stats.l1.total_misses();
                    let dllc_t = s.llc.by(Source::Tiering).misses
                        - last_cache_stats.llc.by(Source::Tiering).misses;
                    let dllc = s.llc.total_misses() - last_cache_stats.llc.total_misses();
                    cache_timeline.push(CacheTimelinePoint {
                        t_ns: window_end,
                        l1_tiering_frac: if dl1 == 0 { 0.0 } else { dl1_t as f64 / dl1 as f64 },
                        llc_tiering_frac: if dllc == 0 {
                            0.0
                        } else {
                            dllc_t as f64 / dllc as f64
                        },
                    });
                    last_cache_stats = s;
                }
                window_hist.clear();
                window_end += cfg.window_ns;
            }
        }

        // Final partial window.
        if window_hist.count() > 0 {
            timeline.push(TimelinePoint {
                t_ns: now_ns,
                p50_ns: window_hist.p50(),
                mean_ns: window_hist.mean() as u64,
                ops: window_hist.count(),
            });
        }

        let untouched = tier_cfg.address_space_pages - mem.mapped_pages();
        SimReport {
            workload: workload.name().to_string(),
            policy: policy.name().to_string(),
            ops,
            accesses,
            samples,
            sim_ns: now_ns,
            latency: LatencySummary::from_histogram(&global_hist),
            timeline,
            cache_timeline,
            cache: hier.map(|h| h.stats()),
            migrations: mem.stats(),
            fast_hit_frac: if accesses == 0 {
                0.0
            } else {
                fast_hits as f64 / accesses as f64
            },
            metadata_bytes: policy.metadata_bytes(),
            count_distribution: if cfg.count_probe {
                Some(CountDistribution::from_counts(&counts, untouched))
            } else {
                None
            },
            retention: retention.map(|r| r.finish(now_ns)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiering_mem::TierRatio;
    use tiering_policies::{build_policy, PolicyKind};
    use tiering_workloads::ZipfPageWorkload;

    fn run_zipf(kind: PolicyKind, ratio: TierRatio, ops: u64) -> SimReport {
        let mut w = ZipfPageWorkload::new(2_000, 0.99, ops, 7);
        let pages = tiering_trace::Workload::footprint_pages(&w, PageSize::Base4K);
        let tier_cfg = if kind == PolicyKind::AllFast {
            TierConfig::all_fast(pages, PageSize::Base4K)
        } else {
            TierConfig::for_footprint(pages, ratio, PageSize::Base4K)
        };
        let mut policy = build_policy(kind, &tier_cfg);
        Engine::new(SimConfig::default()).run(&mut w, policy.as_mut(), tier_cfg)
    }

    #[test]
    fn all_fast_is_fastest() {
        let all_fast = run_zipf(PolicyKind::AllFast, TierRatio::OneTo8, 100_000);
        let first_touch = run_zipf(PolicyKind::FirstTouch, TierRatio::OneTo8, 100_000);
        assert!(all_fast.sim_ns < first_touch.sim_ns);
        assert!((all_fast.fast_hit_frac - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hybridtier_beats_first_touch_when_hotness_shifts() {
        // On a *static* Zipf, first-touch is a strong accidental baseline
        // (hot pages are touched first and land fast). Tiering earns its
        // keep when the hot set moves — so shift it mid-run.
        let run = |kind: PolicyKind| {
            let mut w = ZipfPageWorkload::new(8_000, 0.99, 1_200_000, 42)
                .with_shift(100_000_000, 0.9);
            let pages = tiering_trace::Workload::footprint_pages(&w, PageSize::Base4K);
            let tier_cfg = TierConfig::for_footprint(pages, TierRatio::OneTo8, PageSize::Base4K);
            let mut policy = build_policy(kind, &tier_cfg);
            Engine::new(SimConfig::default()).run(&mut w, policy.as_mut(), tier_cfg)
        };
        let ht = run(PolicyKind::HybridTier);
        let ft = run(PolicyKind::FirstTouch);
        assert!(
            ht.sim_ns < ft.sim_ns,
            "HybridTier {} vs FirstTouch {}",
            ht.sim_ns,
            ft.sim_ns
        );
        assert!(ht.migrations.promotions > 0);
        assert!(ht.fast_hit_frac > ft.fast_hit_frac);
    }

    #[test]
    fn deterministic_runs() {
        let a = run_zipf(PolicyKind::HybridTier, TierRatio::OneTo16, 50_000);
        let b = run_zipf(PolicyKind::HybridTier, TierRatio::OneTo16, 50_000);
        assert_eq!(a.sim_ns, b.sim_ns);
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.latency.p50_ns, b.latency.p50_ns);
    }

    #[test]
    fn ops_cap_respected() {
        let r = run_zipf(PolicyKind::FirstTouch, TierRatio::OneTo8, 1_000);
        assert_eq!(r.ops, 1_000);
        assert_eq!(r.accesses, 1_000, "one access per zipf op");
    }

    #[test]
    fn timeline_covers_run() {
        let r = run_zipf(PolicyKind::Memtis, TierRatio::OneTo8, 200_000);
        assert!(!r.timeline.is_empty());
        let total_ops: u64 = r.timeline.iter().map(|p| p.ops).sum();
        assert_eq!(total_ops, r.ops, "every op falls in some window");
        assert!(r.timeline.windows(2).all(|w| w[0].t_ns < w[1].t_ns));
    }

    #[test]
    fn cache_sim_attributes_tiering_misses() {
        let mut w = ZipfPageWorkload::new(2_000, 0.99, 100_000, 7);
        let pages = tiering_trace::Workload::footprint_pages(&w, PageSize::Base4K);
        let tier_cfg = TierConfig::for_footprint(pages, TierRatio::OneTo8, PageSize::Base4K);
        let mut policy = build_policy(PolicyKind::Memtis, &tier_cfg);
        let r = Engine::new(SimConfig::default().with_cache_sim()).run(
            &mut w,
            policy.as_mut(),
            tier_cfg,
        );
        let stats = r.cache.expect("cache stats present");
        assert!(stats.l1.by(Source::App).accesses() > 0);
        assert!(
            stats.l1.by(Source::Tiering).accesses() > 0,
            "Memtis metadata must generate cache traffic"
        );
    }

    #[test]
    fn count_probe_distribution_sums_to_address_space() {
        let mut cfg = SimConfig::default();
        cfg.count_probe = true;
        let mut w = ZipfPageWorkload::new(500, 0.99, 50_000, 3);
        let pages = tiering_trace::Workload::footprint_pages(&w, PageSize::Base4K);
        let tier_cfg = TierConfig::for_footprint(pages, TierRatio::OneTo8, PageSize::Base4K);
        let mut policy = build_policy(PolicyKind::FirstTouch, &tier_cfg);
        let r = Engine::new(cfg).run(&mut w, policy.as_mut(), tier_cfg);
        let d = r.count_distribution.expect("probe enabled");
        assert_eq!(d.total(), pages);
        assert!(d.buckets[6] > 0, "hottest zipf pages should saturate");
    }

    #[test]
    fn huge_pages_reduce_tracked_pages() {
        let mut w = ZipfPageWorkload::new(2_000, 0.99, 20_000, 7);
        let pages4k = tiering_trace::Workload::footprint_pages(&w, PageSize::Base4K);
        let pages2m = tiering_trace::Workload::footprint_pages(&w, PageSize::Huge2M);
        assert!(pages2m * 256 <= pages4k);
        let tier_cfg = TierConfig::for_footprint(pages2m, TierRatio::OneTo4, PageSize::Huge2M);
        let mut policy = build_policy(PolicyKind::HybridTier, &tier_cfg);
        let r = Engine::new(SimConfig::default().with_huge_pages()).run(
            &mut w,
            policy.as_mut(),
            tier_cfg,
        );
        assert!(r.ops > 0);
    }
}
