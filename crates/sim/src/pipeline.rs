//! The batched simulation pipeline.
//!
//! [`Engine::run`](crate::Engine::run) used to be one ~400-line loop making
//! a virtual call into the workload per operation and a virtual call into
//! the policy per access/sample. It is now a pipeline over
//! [`AccessBatch`]es, split into stages:
//!
//! 1. **pull** — [`Workload::fill_batch`] emits up to
//!    [`SimConfig::batch_ops`](crate::SimConfig::batch_ops) operations per
//!    virtual call. A workload is batch-pulled only while its
//!    [`batchable_now`](Workload::batchable_now) reports independence from
//!    simulated time; otherwise the stage degrades to one op per pull, so
//!    batching can never perturb time-triggered behaviour.
//! 2. **access** — per access: page mapping, tier accounting, stream
//!    detection, cache/memory latency. The stage iterates the batch's flat
//!    SoA columns (`addrs`/`pages`/`writes` — the page column is derived
//!    once per batch in stage 1), with per-burst invariants hoisted out of
//!    the loop. Fault-hook pages and PEBS samples are *collected* here;
//!    [`Sampler::due_in`]/[`Sampler::skip`] step over whole unsampled
//!    bursts in one comparison.
//! 3. **policy** — the collected burst is delivered in two batched virtual
//!    calls: [`TieringPolicy::on_access_batch`] (hint faults, charged to the
//!    op) and [`TieringPolicy::on_sample_batch`]. This mirrors the real
//!    runtime, which drains the PEBS buffer in runs (paper Algorithm 1)
//!    rather than interrupting the application per record.
//! 4. **migrate** — the periodic policy tick (cooling, watermark demotion).
//! 5. **account** — migration-bandwidth and tiering-CPU interference
//!    charges, metadata cache replay, clock advance, and latency windows.
//!
//! Batched and scalar execution share every stage, so for a fixed seed the
//! two produce byte-identical [`SimReport`]s — asserted by the
//! `batch_equivalence` integration tests. The pipeline is the shared
//! execution substrate: [`Engine`](crate::Engine) drives one instance to
//! completion, while [`MultiTenantEngine`](crate::MultiTenantEngine)
//! suspends/resumes one per tenant at rebalance boundaries.
//!
//! Compared to the legacy loop, stage 3 delivers a burst's policy events at
//! burst end instead of interleaved between its accesses. Within one op the
//! simulated clock does not advance, so event timestamps are unchanged;
//! only intra-burst placement visibility shifts — the direction real
//! systems already behave (fault service and sample drain complete after
//! the touching instruction retires, not between two loads of one request).

use cache_sim::{CacheConfig, CacheHierarchy, HierarchyStats, HitLevel, Source};
use tiering_mem::{
    LatencyModel, MigrationStats, PageId, Tier, TierConfig, TierTopology, TieredMemory,
};
use tiering_policies::{PolicyCtx, TieringPolicy};
use tiering_trace::{AccessBatch, Sample, Sampler, Workload};

use crate::charge::charge_scaled;
use crate::histo::LogHistogram;
use crate::hotness::{CountDistribution, RetentionProbe};
use crate::prefetch::StreamPrefetcher;
use crate::report::{CacheTimelinePoint, LatencySummary, SimReport, TimelinePoint};
use crate::SimConfig;

/// All mutable state of one simulation run, advanced stage by stage.
pub(crate) struct Pipeline<'c> {
    cfg: &'c SimConfig,
    tier_cfg: TierConfig,
    mem: TieredMemory,
    sampler: Sampler,
    ctx: PolicyCtx,
    hier: Option<CacheHierarchy>,
    meta_hier: Option<CacheHierarchy>,
    latency: LatencyModel,
    /// Per-rung `[access_ns, stream_ns]` rows, indexed by ladder index —
    /// the N-tier generalization of the hoisted 2×2 `mem_ns` table (which
    /// the 2-tier hot loops keep using verbatim).
    tier_ns: Vec<[u64; 2]>,

    global_hist: LogHistogram,
    window_hist: LogHistogram,
    timeline: Vec<TimelinePoint>,
    cache_timeline: Vec<CacheTimelinePoint>,
    window_end: u64,
    last_cache_stats: HierarchyStats,

    counts: Vec<u8>,
    retention: Option<RetentionProbe>,

    prefetcher: StreamPrefetcher,
    recent_pages: [u64; 16],
    recent_cursor: usize,

    now_ns: u64,
    next_tick: u64,
    ops: u64,
    accesses: u64,
    samples: u64,
    fast_hits: u64,
    mig_before: MigrationStats,

    wants_hook: bool,
    prefer: Tier,

    /// Per-op collection buffers (reused; cleared each op).
    sample_buf: Vec<Sample>,
    fault_buf: Vec<PageId>,
}

impl<'c> Pipeline<'c> {
    pub(crate) fn new<P: TieringPolicy + ?Sized>(
        cfg: &'c SimConfig,
        tier_cfg: TierConfig,
        policy: &P,
    ) -> Self {
        Self::with_topology(cfg, TierTopology::two_tier(tier_cfg, &cfg.latency), policy)
    }

    /// [`new`](Pipeline::new) over an explicit tier ladder. The 2-tier
    /// ladder built from `cfg.latency` reproduces `new` exactly; deeper
    /// ladders switch the access and migration accounting to the per-rung
    /// tables.
    pub(crate) fn with_topology<P: TieringPolicy + ?Sized>(
        cfg: &'c SimConfig,
        topology: TierTopology,
        policy: &P,
    ) -> Self {
        let tier_cfg = topology.as_tier_config();
        let tier_ns = topology
            .latency_table()
            .iter()
            .map(|t| [t.access_ns, t.stream_ns])
            .collect();
        let hier = cfg.cache.map(|c| CacheHierarchy::new(c.l1, c.llc));
        // Dedicated metadata cache: the tiering thread's 32 KiB L1 plus a
        // 256 KiB LLC slice (its fair share of a contended LLC).
        let meta_hier = if hier.is_none() && cfg.metadata_cache {
            Some(CacheHierarchy::new(
                CacheConfig {
                    size_bytes: 32 << 10,
                    ways: 8,
                    line_bytes: 64,
                },
                CacheConfig {
                    size_bytes: 256 << 10,
                    ways: 8,
                    line_bytes: 64,
                },
            ))
        } else {
            None
        };
        Self {
            mem: TieredMemory::with_topology(topology),
            sampler: Sampler::new(cfg.sample_period),
            ctx: PolicyCtx::new(),
            hier,
            meta_hier,
            latency: cfg.latency,
            tier_ns,
            global_hist: LogHistogram::new(),
            window_hist: LogHistogram::new(),
            timeline: Vec::new(),
            cache_timeline: Vec::new(),
            window_end: cfg.window_ns,
            last_cache_stats: HierarchyStats::default(),
            counts: if cfg.count_probe {
                vec![0; tier_cfg.address_space_pages as usize]
            } else {
                Vec::new()
            },
            retention: cfg.retention_probe.map(RetentionProbe::new),
            prefetcher: StreamPrefetcher::new(),
            recent_pages: [u64::MAX; 16],
            recent_cursor: 0,
            now_ns: 0,
            next_tick: cfg.tick_interval_ns,
            ops: 0,
            accesses: 0,
            samples: 0,
            fast_hits: 0,
            mig_before: MigrationStats::default(),
            wants_hook: policy.wants_access_hook(),
            prefer: policy.preferred_alloc_tier(),
            sample_buf: Vec::with_capacity(16),
            fault_buf: Vec::with_capacity(64),
            cfg,
            tier_cfg,
        }
    }

    /// Whether the run has hit an op or simulated-time cap.
    pub(crate) fn done(&self) -> bool {
        self.ops >= self.cfg.max_ops || self.now_ns >= self.cfg.max_sim_ns
    }

    /// Current simulated time of this run (the multi-tenant engine
    /// interleaves several pipelines by their local clocks).
    pub(crate) fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Read access to the tiered memory (demand signals, diagnostics).
    pub(crate) fn mem(&self) -> &TieredMemory {
        &self.mem
    }

    /// Operations completed so far (the multi-tenant engine's churn
    /// schedule triggers on fleet-wide op counts).
    pub(crate) fn ops(&self) -> u64 {
        self.ops
    }

    /// Applies a controller-assigned fast-tier quota (paper §7). Shrinking
    /// below occupancy is fine — watermark demotion drains the excess.
    pub(crate) fn set_fast_capacity(&mut self, pages: u64) {
        self.mem.set_fast_capacity(pages);
    }

    /// The whole-run latency histogram accumulated so far (merged across
    /// tenants for the co-location aggregate report): the flushed windows
    /// plus the in-flight partial window. Bucket merge is commutative
    /// addition, so this equals what per-op recording into one histogram
    /// would hold.
    pub(crate) fn hist(&self) -> LogHistogram {
        let mut h = self.global_hist.clone();
        h.merge(&self.window_hist);
        h
    }

    /// Stage 1 — pull: refills `batch` from the workload and derives its
    /// page column (one sequential pass). Returns `false` when the workload
    /// is exhausted.
    ///
    /// `max_ops` is the configured batch size; the pull degrades to a single
    /// op whenever the workload's output may depend on the current clock.
    pub(crate) fn stage_pull<W: Workload + ?Sized>(
        &mut self,
        workload: &mut W,
        batch: &mut AccessBatch,
        max_ops: usize,
    ) -> bool {
        batch.clear();
        let budget = self.cfg.max_ops - self.ops; // done() guarantees > 0
        let n = if workload.batchable_now() {
            (max_ops as u64).min(budget).max(1) as usize
        } else {
            1
        };
        if workload.fill_batch(self.now_ns, n, batch) == 0 {
            return false;
        }
        batch.compute_pages(self.cfg.page_size);
        true
    }

    /// Stages 2–5 for operation `idx` of the current batch.
    ///
    /// # Panics
    ///
    /// Panics if the workload emitted an address outside its declared
    /// footprint (a workload bug worth failing loudly on).
    pub(crate) fn stage_op<P: TieringPolicy + ?Sized>(
        &mut self,
        policy: &mut P,
        batch: &AccessBatch,
        idx: usize,
    ) {
        let (op, start, end) = batch.op_bounds(idx);
        let mut op_ns = op.cpu_ns;
        op_ns += self.access_stage(
            &batch.addrs()[start..end],
            &batch.pages()[start..end],
            &batch.writes()[start..end],
        );
        op_ns += self.policy_stage(policy);
        self.migrate_stage(policy);
        op_ns += self.account_stage();
        self.advance(op_ns);
    }

    /// Stage 2 — access: replay the burst through mapping, stream
    /// detection, and the cache/latency model; collect fault pages and PEBS
    /// samples for the policy stage. Returns the nanoseconds charged.
    ///
    /// Consumes the batch's SoA columns directly (`addrs`/`pages`/`writes`
    /// are parallel slices for this op's burst). Per-burst invariants — the
    /// latency-model costs, allocation preference, hook flag, cache-sim
    /// presence — are hoisted out of the loop, and the common
    /// no-cache-sim/no-sample/no-hook burst runs a minimal
    /// map→stream→latency loop.
    fn access_stage(&mut self, addrs: &[u64], pages: &[u64], writes: &[bool]) -> u64 {
        self.fault_buf.clear();
        self.sample_buf.clear();

        // Whole-burst sampler fast path: if no sample can fall inside this
        // burst, retire it with one counter adjustment.
        let burst_len = addrs.len() as u64;
        let mut sampling = true;
        if u64::from(self.sampler.due_in()) > burst_len {
            self.sampler.skip(burst_len as u32);
            sampling = false;
        }
        self.accesses += burst_len;

        // Hoisted per-burst invariants: direct-to-memory cost indexed by
        // [tier == Fast][streamed], allocation preference, hook flag.
        let mem_ns = [
            [self.latency.slow_ns, self.latency.slow_stream_ns],
            [self.latency.fast_ns, self.latency.fast_stream_ns],
        ];
        let prefer = self.prefer;
        let wants_hook = self.wants_hook;
        let mut burst_ns = 0u64;
        let mut fast_hits = 0u64;

        if self.mem.n_tiers() > 2 {
            // Ladder loop: per-rung access costs indexed by the page's
            // ladder position; the fast-hit statistic remains "resident in
            // tier 0". Runs on its own branch so the 2-tier hot paths below
            // stay byte-for-byte what the goldens were recorded against.
            for i in 0..addrs.len() {
                let page = PageId(pages[i]);
                let idx = self.mem.ensure_mapped_indexed(page, prefer);
                fast_hits += (idx == 0) as u64;
                let streamed = self.prefetcher.observe(addrs[i]) as usize;
                let memory_ns = self.tier_ns[idx][streamed];
                burst_ns += match &mut self.hier {
                    Some(h) => match h.access(addrs[i], Source::App) {
                        HitLevel::L1 => self.latency.l1_hit_ns,
                        HitLevel::Llc => self.latency.llc_hit_ns,
                        HitLevel::Memory => memory_ns,
                    },
                    None => memory_ns,
                };
                if wants_hook {
                    self.fault_buf.push(page);
                }
                if sampling && self.sampler.tick() {
                    let tier = if idx == 0 { Tier::Fast } else { Tier::Slow };
                    self.collect_sample(addrs[i], writes[i], page, tier);
                }
            }
        } else if self.hier.is_none() && !sampling && !wants_hook {
            // The dominant burst shape in sweep runs: no cache simulation,
            // no sample due, no fault hook — pure map → stream → latency.
            for i in 0..addrs.len() {
                let tier = self.mem.ensure_mapped(PageId(pages[i]), prefer);
                let fast = (tier == Tier::Fast) as usize;
                fast_hits += fast as u64;
                let streamed = self.prefetcher.observe(addrs[i]) as usize;
                burst_ns += mem_ns[fast][streamed];
            }
        } else {
            for i in 0..addrs.len() {
                let page = PageId(pages[i]);
                let tier = self.mem.ensure_mapped(page, prefer);
                let fast = (tier == Tier::Fast) as usize;
                fast_hits += fast as u64;

                // Application access latency: through the cache if enabled;
                // memory-level accesses that continue a detected sequential
                // stream are charged the (bandwidth-bound) prefetched cost.
                let streamed = self.prefetcher.observe(addrs[i]) as usize;
                let memory_ns = mem_ns[fast][streamed];
                burst_ns += match &mut self.hier {
                    Some(h) => match h.access(addrs[i], Source::App) {
                        HitLevel::L1 => self.latency.l1_hit_ns,
                        HitLevel::Llc => self.latency.llc_hit_ns,
                        HitLevel::Memory => memory_ns,
                    },
                    None => memory_ns,
                };

                // Fault-hook collection (recency policies): delivered as one
                // batch in the policy stage, charged to this op.
                if wants_hook {
                    self.fault_buf.push(page);
                }

                // PEBS sampling.
                if sampling && self.sampler.tick() {
                    self.collect_sample(addrs[i], writes[i], page, tier);
                }
            }
        }
        self.fast_hits += fast_hits;
        burst_ns
    }

    /// Handles one selected PEBS sample: burst filtering, probes, and
    /// buffering for the policy stage.
    ///
    /// Burst filter: at real PEBS periods a sequential sweep yields at most
    /// one sample per page, because the period far exceeds a page's line
    /// count. Our scaled period is dense enough that a streamed page would
    /// register several times within microseconds; suppressing page repeats
    /// within a short sample window restores the hardware behaviour
    /// (momentum then measures sustained intensity, not one sweep's burst).
    #[inline]
    fn collect_sample(&mut self, addr: u64, is_write: bool, page: PageId, tier: Tier) {
        if self.recent_pages.contains(&page.0) {
            return;
        }
        self.recent_pages[self.recent_cursor] = page.0;
        self.recent_cursor = (self.recent_cursor + 1) % self.recent_pages.len();
        self.samples += 1;
        if self.cfg.count_probe {
            let c = &mut self.counts[page.0 as usize];
            *c = (*c + 1).min(15);
        }
        if let Some(r) = &mut self.retention {
            r.record(page, self.now_ns);
        }
        self.sample_buf.push(Sample {
            page,
            addr,
            tier,
            at_ns: self.now_ns,
            is_write,
        });
    }

    /// Stage 3 — policy: deliver the burst's fault pages and samples in two
    /// batched virtual calls. Returns fault-service nanoseconds charged to
    /// the op.
    fn policy_stage<P: TieringPolicy + ?Sized>(&mut self, policy: &mut P) -> u64 {
        let mut hook_ns = 0;
        if self.wants_hook && !self.fault_buf.is_empty() {
            hook_ns =
                policy.on_access_batch(&self.fault_buf, self.now_ns, &mut self.mem, &mut self.ctx);
        }
        if !self.sample_buf.is_empty() {
            policy.on_sample_batch(&self.sample_buf, &mut self.mem, &mut self.ctx);
        }
        hook_ns
    }

    /// Stage 4 — migrate: the policy's periodic maintenance tick (promotion
    /// flushes, cooling, watermark demotion scans).
    fn migrate_stage<P: TieringPolicy + ?Sized>(&mut self, policy: &mut P) {
        if self.now_ns >= self.next_tick {
            policy.on_tick(self.now_ns, &mut self.mem, &mut self.ctx);
            self.next_tick = self.now_ns + self.cfg.tick_interval_ns;
        }
    }

    /// Stage 5 — account: charge asynchronous tiering costs (migration
    /// bandwidth, tiering-thread CPU, metadata cache traffic) to the
    /// application clock. Returns the nanoseconds charged.
    fn account_stage(&mut self) -> u64 {
        let cfg = self.cfg;
        let mut charged = 0;
        let mig_now = self.mem.stats();
        let moved = (mig_now.promotions - self.mig_before.promotions)
            + (mig_now.demotions - self.mig_before.demotions);
        self.mig_before = mig_now;
        if moved > 0 {
            // 2-tier keeps the flat per-move rate the goldens were recorded
            // with; deeper ladders drain the per-hop accumulator (each hop
            // charged at its slower rung's rate).
            let mig_ns = if self.mem.n_tiers() > 2 {
                self.mem.take_migration_ns()
            } else {
                moved * self.latency.migrate_page_ns(cfg.page_size)
            };
            charged += charge_scaled(mig_ns, cfg.migration_charge);
        }
        if self.ctx.tiering_work_ns > 0 {
            charged += charge_scaled(self.ctx.tiering_work_ns, cfg.tiering_work_charge);
        }
        // Replay metadata traffic through the cache, attributed to the
        // tiering runtime.
        if let Some(h) = &mut self.hier {
            for &line in &self.ctx.metadata_lines {
                h.access(line, Source::Tiering);
            }
        } else if let Some(h) = &mut self.meta_hier {
            let mut interference = 0u64;
            for &line in &self.ctx.metadata_lines {
                interference += match h.access(line, Source::Tiering) {
                    HitLevel::L1 => 0,
                    HitLevel::Llc => 6,
                    HitLevel::Memory => 60,
                };
            }
            charged += charge_scaled(interference, cfg.tiering_work_charge);
        }
        self.ctx.drain();
        charged
    }

    /// Clock advance and latency-window bookkeeping after one op.
    fn advance(&mut self, op_ns: u64) {
        self.now_ns += op_ns.max(1);
        self.ops += 1;
        // One bucket update per op: the whole-run histogram absorbs each
        // window wholesale at flush time (addition commutes, so the final
        // counts are identical to recording into both).
        self.window_hist.record(op_ns);

        while self.now_ns >= self.window_end {
            self.timeline.push(TimelinePoint {
                t_ns: self.window_end,
                p50_ns: self.window_hist.p50(),
                mean_ns: self.window_hist.mean() as u64,
                ops: self.window_hist.count(),
            });
            if let Some(h) = &self.hier {
                let s = h.stats();
                let dl1_t = s.l1.by(Source::Tiering).misses
                    - self.last_cache_stats.l1.by(Source::Tiering).misses;
                let dl1 = s.l1.total_misses() - self.last_cache_stats.l1.total_misses();
                let dllc_t = s.llc.by(Source::Tiering).misses
                    - self.last_cache_stats.llc.by(Source::Tiering).misses;
                let dllc = s.llc.total_misses() - self.last_cache_stats.llc.total_misses();
                self.cache_timeline.push(CacheTimelinePoint {
                    t_ns: self.window_end,
                    l1_tiering_frac: if dl1 == 0 {
                        0.0
                    } else {
                        dl1_t as f64 / dl1 as f64
                    },
                    llc_tiering_frac: if dllc == 0 {
                        0.0
                    } else {
                        dllc_t as f64 / dllc as f64
                    },
                });
                self.last_cache_stats = s;
            }
            self.global_hist.merge(&self.window_hist);
            self.window_hist.clear();
            self.window_end += self.cfg.window_ns;
        }
    }

    /// Seals the run into a [`SimReport`].
    pub(crate) fn finish<P: TieringPolicy + ?Sized>(
        self,
        workload_name: &str,
        policy: &P,
    ) -> SimReport {
        self.finish_captured(workload_name, policy).report
    }

    /// [`finish`](Pipeline::finish), also yielding the raw aggregates the
    /// chunked-run reduction needs (the whole-run histogram and the exact
    /// fast-hit count — see the [`chunk`](crate::merge_captured) module).
    /// The report inside is byte-identical to what `finish` returns.
    pub(crate) fn finish_captured<P: TieringPolicy + ?Sized>(
        mut self,
        workload_name: &str,
        policy: &P,
    ) -> crate::chunk::CapturedRun {
        // Final partial window.
        if self.window_hist.count() > 0 {
            self.timeline.push(TimelinePoint {
                t_ns: self.now_ns,
                p50_ns: self.window_hist.p50(),
                mean_ns: self.window_hist.mean() as u64,
                ops: self.window_hist.count(),
            });
        }
        self.global_hist.merge(&self.window_hist);

        let untouched = self.tier_cfg.address_space_pages - self.mem.mapped_pages();
        let report = SimReport {
            workload: workload_name.to_string(),
            policy: policy.name().to_string(),
            ops: self.ops,
            accesses: self.accesses,
            samples: self.samples,
            sim_ns: self.now_ns,
            latency: LatencySummary::from_histogram(&self.global_hist),
            timeline: self.timeline,
            cache_timeline: self.cache_timeline,
            cache: self.hier.map(|h| h.stats()),
            migrations: self.mem.stats(),
            fast_hit_frac: if self.accesses == 0 {
                0.0
            } else {
                self.fast_hits as f64 / self.accesses as f64
            },
            metadata_bytes: policy.metadata_bytes(),
            count_distribution: if self.cfg.count_probe {
                Some(CountDistribution::from_counts(&self.counts, untouched))
            } else {
                None
            },
            retention: self.retention.map(|r| r.finish(self.now_ns)),
        };
        crate::chunk::CapturedRun::new(report, self.global_hist, self.fast_hits)
    }
}
