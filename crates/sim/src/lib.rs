//! The discrete-event tiered-memory simulation engine.
//!
//! This crate replaces the paper's two-socket emulated-CXL testbed (§5.1):
//! it replays a [`Workload`](tiering_trace::Workload)'s operations against a
//! [`TieredMemory`](tiering_mem::TieredMemory) managed by a
//! [`TieringPolicy`](tiering_policies::TieringPolicy), advancing simulated
//! time by each operation's compute time plus its memory-access latencies,
//! and charging tiering costs where the real system pays them:
//!
//! * **synchronously** — hint-fault service time lands on the faulting
//!   access (recency systems sample through faults);
//! * **asynchronously** — a configurable fraction of migration bandwidth
//!   and tiering-thread CPU time is charged to the application, modelling
//!   interference from the co-located tiering runtime;
//! * **through the cache** — when cache simulation is enabled, application
//!   and metadata references share a simulated L1/LLC and misses are
//!   attributed per source (paper Figures 5/13/14).
//!
//! Outputs are [`SimReport`]s: latency percentiles (exact, from log-bucketed
//! histograms), a median-latency timeline (paper Figure 4), migration and
//! cache statistics, optional hotness probes (Figures 2 and 16), and a
//! stable outcome [`fingerprint`](SimReport::fingerprint) that distributed
//! sweeps use as portable scenario identity.
//!
//! # Module map
//!
//! * `engine` — [`Engine`], [`SimConfig`], and the run loop's accounting.
//! * `pipeline` — the batched stage pipeline behind [`Engine::run`]
//!   (pull → access → policy → migrate → account over
//!   [`AccessBatch`](tiering_trace::AccessBatch)es; provably
//!   batch-size-invariant).
//! * `chunk` — [`CapturedRun`] / [`merge_captured`]: order-preserving
//!   reduction of a run split into contiguous op-range chunks (the
//!   substrate of the runner's intra-scenario parallelism).
//! * `multi_tenant` — [`MultiTenantEngine`]: N tenants over one shared
//!   fast tier under the §7 global controller, with churn
//!   ([`ChurnSchedule`]) and round-based rebalancing.
//! * `report` — [`SimReport`] / [`MultiTenantReport`] and friends.
//! * `adaptation` / `hotness` / `histo` / `prefetch` — measurement
//!   helpers: adaptation-time extraction, retention/count probes, exact
//!   log-bucketed percentiles, stream prefetch detection.
//!
//! Everything here is single-run machinery; *many* runs (matrices,
//! parallel sweeps, multi-host sharding) live in `tiering_runner`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adaptation;
mod charge;
mod chunk;
mod engine;
mod histo;
mod hotness;
mod multi_tenant;
mod pipeline;
mod prefetch;
mod report;

pub use adaptation::{adaptation_time_ns, steady_state_p50};
pub use charge::charge_scaled;
pub use chunk::{merge_captured, CapturedRun};
pub use engine::{CacheSimOptions, Engine, SimConfig};
pub use histo::LogHistogram;
pub use hotness::{CountDistribution, RetentionConfig, RetentionProbe, COUNT_BUCKET_LABELS};
pub use multi_tenant::{
    ChurnSchedule, MultiTenantConfig, MultiTenantEngine, TenantEvent, TenantPolicyBuilder,
    TenantRun, DEFAULT_FLOOR_FRAC, DEFAULT_REBALANCE_INTERVAL_NS,
};
pub use prefetch::StreamPrefetcher;
pub use report::{
    CacheTimelinePoint, ChurnKind, ChurnRecord, LatencySummary, MultiTenantReport, SimReport,
    TenantReport, TimelinePoint, SUMMARY_MAX_TENANTS,
};

/// Convenience: run `policy_kind` over `workload_id` at `ratio` with default
/// engine settings and the suite's scaled parameters.
///
/// This is the entry point the figure harnesses and examples use; it wires
/// the workload footprint into a [`TierConfig`](tiering_mem::TierConfig)
/// (using the all-fast configuration for the `AllFast` bound), builds the
/// policy, and runs the engine.
pub fn run_suite_experiment(
    workload_id: tiering_workloads::WorkloadId,
    policy_kind: tiering_policies::PolicyKind,
    ratio: tiering_mem::TierRatio,
    config: &SimConfig,
    seed: u64,
) -> SimReport {
    use tiering_mem::{PageSize, TierConfig};
    use tiering_policies::{build_policy, PolicyKind};
    use tiering_workloads::build_workload;

    let mut workload = build_workload(workload_id, seed);
    let pages = workload.footprint_pages(config.page_size);
    let tier_cfg = if policy_kind == PolicyKind::AllFast {
        TierConfig::all_fast(pages, config.page_size)
    } else {
        let mut c = TierConfig::for_footprint(pages, ratio, config.page_size);
        if config.page_size == PageSize::Huge2M {
            c.page_size = PageSize::Huge2M;
        }
        c
    };
    let mut policy = build_policy(policy_kind, &tier_cfg);
    Engine::new(config.clone()).run(workload.as_mut(), policy.as_mut(), tier_cfg)
}
