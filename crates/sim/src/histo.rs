//! Log-bucketed latency histogram (HDR-style) for exact-enough percentiles
//! at O(1) record cost.

/// Number of sub-buckets per power of two (6 mantissa bits → ≤ 1.6% value
/// error, fine enough to resolve the 1% adaptation tolerance of Table 3).
const SUB_BITS: u32 = 6;
const SUB: u64 = 1 << SUB_BITS;

/// A histogram over `u64` nanosecond values with logarithmic bucketing.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            // 64 exponents × 8 sub-buckets.
            buckets: vec![0; (64 * SUB) as usize],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    #[inline]
    fn bucket_of(value: u64) -> usize {
        let v = value.max(1);
        if v < SUB {
            // Small values are represented exactly.
            return v as usize;
        }
        let exp = 63 - v.leading_zeros() as u64; // floor(log2 v), >= SUB_BITS
        let mantissa = (v >> (exp - SUB_BITS as u64)) & (SUB - 1);
        ((exp - SUB_BITS as u64 + 1) * SUB + mantissa) as usize
    }

    /// Representative (midpoint) value of bucket `idx`.
    fn bucket_value(idx: usize) -> u64 {
        if (idx as u64) < SUB {
            return idx as u64;
        }
        let exp = idx as u64 / SUB - 1 + SUB_BITS as u64;
        let mantissa = idx as u64 % SUB;
        (1 << exp) + (mantissa << (exp - SUB_BITS as u64)) + (1 << (exp - SUB_BITS as u64)) / 2
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Maximum recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q` in `[0, 1]`; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(idx).min(self.max);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// Clears all recorded values.
    pub fn clear(&mut self) {
        self.buckets.fill(0);
        self.count = 0;
        self.sum = 0;
        self.max = 0;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_value() {
        let mut h = LogHistogram::new();
        h.record(1000);
        let p50 = h.p50();
        assert!((900..=1100).contains(&p50), "p50 {p50} should be ~1000");
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.p50();
        let p90 = h.quantile(0.9);
        let p99 = h.quantile(0.99);
        assert!((4500..=5600).contains(&p50), "p50 {p50}");
        assert!((8200..=10_000).contains(&p90), "p90 {p90}");
        assert!(p99 >= p90 && p99 <= 10_000, "p99 {p99}");
        assert!((h.mean() - 5000.5).abs() < 1.0);
    }

    #[test]
    fn bucket_error_is_bounded() {
        // Every value's bucket representative is within 12.5% + rounding.
        for v in [1u64, 7, 63, 64, 100, 1000, 123_456, 1 << 40] {
            let idx = LogHistogram::bucket_of(v);
            let rep = LogHistogram::bucket_value(idx);
            let err = (rep as f64 - v as f64).abs() / v as f64;
            assert!(err <= 0.02, "value {v} rep {rep} err {err}");
        }
    }

    #[test]
    fn merge_combines() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for v in 1..=100u64 {
            a.record(v);
        }
        for v in 901..=1000u64 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        let p50 = a.p50();
        assert!(
            (64..=512).contains(&p50),
            "p50 {p50} should sit between ranges"
        );
    }

    #[test]
    fn clear_resets() {
        let mut h = LogHistogram::new();
        h.record(5);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
    }

    #[test]
    fn monotone_quantiles() {
        let mut h = LogHistogram::new();
        let mut x = 12345u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record((x >> 33) % 1_000_000);
        }
        let mut prev = 0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            prev = v;
        }
    }
}
