//! Exact interference-charge scaling.
//!
//! The account stage charges the application a configurable *fraction* of
//! asynchronous tiering work: `charged += (work_ns as f64 * charge) as u64`.
//! That round-trip has two sharp edges:
//!
//! 1. **Precision loss past 2⁵³ ns**: `work_ns as f64` rounds once the
//!    accumulated nanoseconds exceed 53 bits (~104 days of simulated time —
//!    unreachable per op today, but reachable by a fleet-aggregated charge
//!    or a corrupted config, and PR 5 already met seeds corrupted by exactly
//!    this f64 round-trip).
//! 2. **Silent truncation on non-finite/negative charge configs**: the
//!    `as u64` cast saturates NaN and negative products to 0 and infinite
//!    products to `u64::MAX` without any indication the config was bogus.
//!
//! [`charge_scaled`] keeps the fast path bit-identical to the historical
//! expression below 2⁵³ (so every golden trajectory is unchanged) and
//! switches to exact u128 fixed-point arithmetic above it; the cast's
//! saturation semantics on NaN/negative/infinite fractions are preserved
//! but now explicit and documented, with regression tests pinning them.

/// Scales `ns` by `frac`, rounding toward zero, saturating at `u64::MAX`.
///
/// Semantics (a superset of `(ns as f64 * frac) as u64`):
///
/// * `frac` NaN, zero, or negative → `0` (a charge cannot be negative).
/// * `frac = +∞` with `ns > 0` → `u64::MAX`.
/// * `ns < 2⁵³` (every op-level charge in practice) → **bit-identical** to
///   the f64 expression.
/// * `ns ≥ 2⁵³` with finite `frac` → exact `⌊ns · frac⌋` computed in u128
///   (the f64 expression would first round `ns` itself).
pub fn charge_scaled(ns: u64, frac: f64) -> u64 {
    if frac.is_nan() || frac <= 0.0 {
        // NaN and negative fractions charge nothing — same result the
        // saturating cast produced, now on purpose.
        return 0;
    }
    if ns < (1u64 << 53) || !frac.is_finite() {
        return (ns as f64 * frac) as u64;
    }
    // Exact path: frac = m · 2^e with m odd (every finite f64 decomposes
    // this way), so ns·frac = (ns·m) · 2^e with ns·m < 2^64 · 2^53 < u128.
    let bits = frac.to_bits();
    let raw_exp = ((bits >> 52) & 0x7ff) as i64;
    let raw_man = bits & ((1u64 << 52) - 1);
    let (mut m, mut e) = if raw_exp == 0 {
        (raw_man, -1074i64)
    } else {
        (raw_man | (1u64 << 52), raw_exp - 1075)
    };
    let tz = m.trailing_zeros();
    m >>= tz;
    e += i64::from(tz);
    let product = (ns as u128) * (m as u128);
    let scaled = if e >= 0 {
        // A shift that would push bits off the top means ns·frac ≥ 2^128.
        if e >= 128 || product.leading_zeros() < e as u32 {
            return u64::MAX;
        }
        product << e
    } else {
        let s = -e;
        if s >= 128 {
            0
        } else {
            product >> s
        }
    };
    u64::try_from(scaled).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The historical expression, verbatim.
    fn legacy(ns: u64, frac: f64) -> u64 {
        (ns as f64 * frac) as u64
    }

    #[test]
    fn bit_identical_to_legacy_below_2_53() {
        // Every charge fraction shipped in a config, plus awkward ones.
        let fracs = [0.35, 0.25, 1.0, 0.1, 0.9999999, 1.5, 123.456];
        let nss = [
            0u64,
            1,
            999,
            2_000,
            123_456_789,
            (1 << 53) - 1,
            (1 << 52) + 12_345,
        ];
        for &f in &fracs {
            for &ns in &nss {
                assert_eq!(charge_scaled(ns, f), legacy(ns, f), "ns={ns} f={f}");
            }
        }
    }

    #[test]
    fn nan_and_negative_fractions_charge_zero() {
        assert_eq!(charge_scaled(1_000_000, f64::NAN), 0);
        assert_eq!(charge_scaled(1_000_000, -0.35), 0);
        assert_eq!(charge_scaled(1_000_000, f64::NEG_INFINITY), 0);
        assert_eq!(charge_scaled(1_000_000, 0.0), 0);
        assert_eq!(charge_scaled(1_000_000, -0.0), 0);
        // Matches the saturating-cast semantics the old code had.
        assert_eq!(legacy(1_000_000, f64::NAN), 0);
        assert_eq!(legacy(1_000_000, -0.35), 0);
    }

    #[test]
    fn infinite_and_overflowing_fractions_saturate() {
        assert_eq!(charge_scaled(1, f64::INFINITY), u64::MAX);
        assert_eq!(charge_scaled(u64::MAX, 1e300), u64::MAX);
        assert_eq!(charge_scaled(1 << 60, 1e30), u64::MAX);
        // Positive-exponent shift whose bits would fall off the top of u128.
        assert_eq!(charge_scaled(1 << 60, (1u128 << 80) as f64), u64::MAX);
        assert_eq!(charge_scaled(0, f64::INFINITY), 0, "0 * inf casts NaN -> 0");
        assert_eq!(legacy(0, f64::INFINITY), 0);
    }

    #[test]
    fn exact_past_2_53() {
        // frac = 3/4 is dyadic: the exact answer is floor(ns * 3 / 4),
        // computable independently in u128.
        let ns = u64::MAX - 5;
        let exact = ((ns as u128) * 3 / 4) as u64;
        assert_eq!(charge_scaled(ns, 0.75), exact);
        // The legacy expression first rounds ns to 2^64, landing elsewhere —
        // this is the precision-loss bug being fixed.
        assert_ne!(legacy(ns, 0.75), exact);

        // Non-dyadic fraction: verify against the decomposition identity
        // floor(ns·m·2^e) for frac = m·2^e.
        let frac = 0.35f64;
        let bits = frac.to_bits();
        let m = (bits & ((1u64 << 52) - 1)) | (1 << 52);
        let e = ((bits >> 52) & 0x7ff) as i64 - 1075;
        let want = (((ns as u128) * (m as u128)) >> (-e) as u32) as u64;
        assert_eq!(charge_scaled(ns, frac), want);
    }

    #[test]
    fn monotone_in_ns_across_the_2_53_seam() {
        let f = 0.35;
        let below = charge_scaled((1 << 53) - 1, f);
        let at = charge_scaled(1 << 53, f);
        let above = charge_scaled((1 << 53) + 1, f);
        assert!(below <= at && at <= above);
    }
}
