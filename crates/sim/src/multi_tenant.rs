//! Co-located tenants over one physical fast tier (paper §7).
//!
//! [`MultiTenantEngine`] drives N tenants — each an ordinary (workload,
//! policy) pair with its own [`Pipeline`] — against one shared fast-tier
//! budget partitioned by a [`GlobalController`]. Execution is round-based:
//!
//! 1. every tenant runs through the shared batched pipeline until its local
//!    simulated clock reaches the next rebalance boundary (or it finishes);
//! 2. the controller collects each tenant's demand signal
//!    ([`TieringPolicy::fast_demand_pages`]) and re-partitions the budget,
//!    recording a typed [`RebalanceEvent`](tiering_policies::RebalanceEvent);
//! 3. the new quotas are applied to each tenant's memory view — shrunk
//!    tenants drain through their policy's ordinary watermark demotion, so
//!    quota enforcement rides the existing migration path.
//!
//! Determinism mirrors the single-tenant engine: tenants are stepped in
//! registration order, all state is thread-local, and batching never
//! perturbs results. A tenant suspended at a round boundary with
//! pulled-but-unconsumed operations resumes them after the rebalance —
//! legal because operations are batch-pulled only while the workload's
//! output is time-independent, and a rebalance only resizes memory, never
//! the workload. The `multi_tenant_equivalence` integration tests pin
//! batch-size invariance for the whole co-located run.

use std::fmt;

use tiering_mem::TierConfig;
use tiering_policies::{GlobalController, TieringPolicy};
use tiering_trace::{AccessBatch, Workload};

use crate::pipeline::Pipeline;
use crate::report::{MultiTenantReport, SimReport, TenantReport};
use crate::{LatencySummary, LogHistogram, SimConfig};

/// Default tenant floor fraction (the canonical §7 demo value, shared with
/// the runner's co-location specs so the constant lives once).
pub const DEFAULT_FLOOR_FRAC: f64 = 0.1;

/// Default rebalance cadence in simulated ns (10 ms; see
/// [`DEFAULT_FLOOR_FRAC`]).
pub const DEFAULT_REBALANCE_INTERVAL_NS: u64 = 10_000_000;

/// Builds a tenant's policy once its initial tier configuration (equal-share
/// quota) is known.
pub type TenantPolicyBuilder = Box<dyn FnOnce(&TierConfig) -> Box<dyn TieringPolicy>>;

/// One tenant to co-locate: a name, a workload, and a policy recipe.
pub struct TenantRun {
    /// Tenant name (reporting and lookup).
    pub name: String,
    /// The tenant's application.
    pub workload: Box<dyn Workload>,
    /// Policy factory, invoked with the tenant's initial tier config.
    pub policy: TenantPolicyBuilder,
}

impl TenantRun {
    /// A tenant from its parts.
    pub fn new<F>(name: impl Into<String>, workload: Box<dyn Workload>, policy: F) -> Self
    where
        F: FnOnce(&TierConfig) -> Box<dyn TieringPolicy> + 'static,
    {
        Self {
            name: name.into(),
            workload,
            policy: Box::new(policy),
        }
    }
}

impl fmt::Debug for TenantRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TenantRun({}, {})", self.name, self.workload.name())
    }
}

/// Co-location parameters: the shared budget and the controller cadence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiTenantConfig {
    /// Physical fast pages shared by all tenants.
    pub fast_budget_pages: u64,
    /// Minimum budget share any tenant keeps (see
    /// [`GlobalController::new`]).
    pub floor_frac: f64,
    /// Simulated time between controller rebalances.
    pub rebalance_interval_ns: u64,
}

impl MultiTenantConfig {
    /// A configuration with the paper-demo defaults: 10% floor, 10 ms
    /// rebalance cadence.
    pub fn new(fast_budget_pages: u64) -> Self {
        Self {
            fast_budget_pages,
            floor_frac: DEFAULT_FLOOR_FRAC,
            rebalance_interval_ns: DEFAULT_REBALANCE_INTERVAL_NS,
        }
    }

    /// Overrides the tenant floor fraction.
    #[must_use]
    pub fn with_floor_frac(mut self, frac: f64) -> Self {
        self.floor_frac = frac;
        self
    }

    /// Overrides the rebalance cadence.
    ///
    /// # Panics
    ///
    /// Panics if `ns == 0`.
    #[must_use]
    pub fn with_rebalance_interval_ns(mut self, ns: u64) -> Self {
        assert!(ns > 0, "rebalance interval must be positive");
        self.rebalance_interval_ns = ns;
        self
    }
}

/// One tenant's live execution state.
struct Lane<'c> {
    name: String,
    workload: Box<dyn Workload>,
    policy: Box<dyn TieringPolicy>,
    pipeline: Pipeline<'c>,
    batch: AccessBatch,
    /// Next unconsumed op within `batch`.
    cursor: usize,
    /// The workload returned an empty pull.
    exhausted: bool,
    initial_quota: u64,
}

impl Lane<'_> {
    /// Whether this tenant has nothing left to simulate.
    fn finished(&self) -> bool {
        self.pipeline.done() || (self.exhausted && self.cursor >= self.batch.len())
    }

    /// Advances the tenant until its local clock reaches `until_ns`, it
    /// hits an engine cap, or its workload ends. Unconsumed batched ops are
    /// kept for the next round.
    fn run_until(&mut self, until_ns: u64, batch_ops: usize) {
        loop {
            if self.pipeline.done() || self.pipeline.now_ns() >= until_ns {
                return;
            }
            if self.cursor >= self.batch.len() {
                if self.exhausted {
                    return;
                }
                if !self
                    .pipeline
                    .stage_pull(self.workload.as_mut(), &mut self.batch, batch_ops)
                {
                    self.exhausted = true;
                    return;
                }
                self.cursor = 0;
            }
            self.pipeline
                .stage_op(self.policy.as_mut(), &self.batch, self.cursor);
            self.cursor += 1;
        }
    }
}

/// The co-location engine: N tenants, one fast budget, a central
/// controller.
///
/// Like [`Engine`](crate::Engine), runs are deterministic: the same tenant
/// list, configurations, and seeds produce byte-identical
/// [`MultiTenantReport`]s regardless of batch size.
#[derive(Debug, Clone)]
pub struct MultiTenantEngine {
    sim: SimConfig,
    cfg: MultiTenantConfig,
}

impl MultiTenantEngine {
    /// Creates the engine. `sim` applies to every tenant's pipeline
    /// (per-tenant op/time caps, batch size, probes).
    pub fn new(sim: SimConfig, cfg: MultiTenantConfig) -> Self {
        Self { sim, cfg }
    }

    /// Runs all tenants to completion and seals the merged report.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is empty.
    pub fn run(&self, tenants: Vec<TenantRun>) -> MultiTenantReport {
        assert!(!tenants.is_empty(), "co-location needs at least one tenant");
        let mut controller = GlobalController::new(self.cfg.fast_budget_pages, self.cfg.floor_frac);
        for t in &tenants {
            controller.add_tenant(&t.name, t.workload.footprint_pages(self.sim.page_size));
        }

        let batch_ops = self.sim.batch_ops.max(1);
        let mut lanes: Vec<Lane<'_>> = tenants
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let tier_cfg = controller.tier_config(i, self.sim.page_size);
                let policy = (t.policy)(&tier_cfg);
                Lane {
                    name: t.name,
                    workload: t.workload,
                    pipeline: Pipeline::new(&self.sim, tier_cfg, policy.as_ref()),
                    policy,
                    batch: AccessBatch::with_capacity(batch_ops, batch_ops * 4),
                    cursor: 0,
                    exhausted: false,
                    initial_quota: tier_cfg.fast_capacity_pages,
                }
            })
            .collect();

        let mut round_end = self.cfg.rebalance_interval_ns;
        loop {
            let mut any_running = false;
            for lane in &mut lanes {
                lane.run_until(round_end, batch_ops);
                any_running |= !lane.finished();
            }
            if !any_running {
                break;
            }
            // A finished tenant's application is gone: its policy state
            // (and hot-set estimate) is frozen at peak, so letting it keep
            // reporting demand would squeeze still-running tenants forever.
            // It reports zero instead — the controller floors that to the
            // idle share, freeing the rest for live tenants.
            let demands: Vec<u64> = lanes
                .iter()
                .map(|l| {
                    if l.finished() {
                        0
                    } else {
                        l.policy.fast_demand_pages(l.pipeline.mem())
                    }
                })
                .collect();
            let event = controller.rebalance(round_end, &demands);
            for (lane, &quota) in lanes.iter_mut().zip(&event.quotas) {
                lane.pipeline.set_fast_capacity(quota);
            }
            round_end += self.cfg.rebalance_interval_ns;
        }

        self.seal(controller, lanes)
    }

    /// Merges per-lane state into the final report.
    fn seal(&self, controller: GlobalController, lanes: Vec<Lane<'_>>) -> MultiTenantReport {
        let mut merged_hist = LogHistogram::new();
        let mut tenant_reports = Vec::with_capacity(lanes.len());
        let mut names = Vec::with_capacity(lanes.len());
        let mut policies = Vec::with_capacity(lanes.len());
        for (i, lane) in lanes.into_iter().enumerate() {
            merged_hist.merge(lane.pipeline.hist());
            let final_fast_used = lane.pipeline.mem().fast_used();
            let report = lane
                .pipeline
                .finish(lane.workload.name(), lane.policy.as_ref());
            names.push(lane.name.clone());
            policies.push(report.policy.clone());
            tenant_reports.push(TenantReport {
                name: lane.name,
                initial_quota_pages: lane.initial_quota,
                final_quota_pages: controller.quota(i),
                final_fast_used,
                report,
            });
        }

        let mut migrations = tiering_mem::MigrationStats::default();
        let (mut ops, mut accesses, mut samples, mut fast_hits_weighted) = (0, 0, 0, 0.0);
        let mut sim_ns = 0;
        let mut metadata_bytes = 0;
        for t in &tenant_reports {
            ops += t.report.ops;
            accesses += t.report.accesses;
            samples += t.report.samples;
            sim_ns = sim_ns.max(t.report.sim_ns);
            metadata_bytes += t.report.metadata_bytes;
            fast_hits_weighted += t.report.fast_hit_frac * t.report.accesses as f64;
            migrations.promotions += t.report.migrations.promotions;
            migrations.demotions += t.report.migrations.demotions;
            migrations.allocated_fast += t.report.migrations.allocated_fast;
            migrations.allocated_slow += t.report.migrations.allocated_slow;
            migrations.failed_promotions += t.report.migrations.failed_promotions;
        }
        let aggregate = SimReport {
            workload: names.join("+"),
            policy: policies.join("+"),
            ops,
            accesses,
            samples,
            sim_ns,
            latency: LatencySummary::from_histogram(&merged_hist),
            timeline: Vec::new(),
            cache_timeline: Vec::new(),
            cache: None,
            migrations,
            fast_hit_frac: if accesses == 0 {
                0.0
            } else {
                fast_hits_weighted / accesses as f64
            },
            metadata_bytes,
            count_distribution: None,
            retention: None,
        };

        MultiTenantReport {
            fast_budget_pages: self.cfg.fast_budget_pages,
            tenants: tenant_reports,
            rebalances: controller.events().to_vec(),
            aggregate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiering_mem::PageSize;
    use tiering_policies::{build_policy, PolicyKind};
    use tiering_workloads::ZipfPageWorkload;

    fn two_tenants(ops: u64) -> Vec<TenantRun> {
        vec![
            TenantRun::new(
                "hot",
                Box::new(ZipfPageWorkload::new(2_000, 0.99, ops, 7)),
                |cfg| build_policy(PolicyKind::HybridTier, cfg),
            ),
            TenantRun::new(
                "cool",
                // Uniform and slow: samples spread one-per-page and arrive
                // rarely, so almost nothing crosses the hotness threshold
                // and the demand signal stays near zero.
                Box::new(ZipfPageWorkload::new(4_000, 0.0, ops, 9).with_cpu_ns(2_000)),
                |cfg| build_policy(PolicyKind::HybridTier, cfg),
            ),
        ]
    }

    #[test]
    fn budget_is_partitioned_and_rebalanced() {
        let engine = MultiTenantEngine::new(
            SimConfig::default().with_max_ops(40_000),
            MultiTenantConfig::new(750).with_rebalance_interval_ns(2_000_000),
        );
        let r = engine.run(two_tenants(40_000));
        assert_eq!(r.tenants.len(), 2);
        assert!(!r.rebalances.is_empty(), "cadence must fire");
        for e in &r.rebalances {
            assert_eq!(e.assigned(), 750, "every rebalance assigns the budget");
        }
        assert_eq!(
            r.tenants[0].initial_quota_pages + r.tenants[1].initial_quota_pages,
            750
        );
        // Quota follows demand: whichever tenant demonstrated the larger
        // hot set at the final rebalance holds the larger quota. (Note a
        // highly skewed tenant legitimately demands *few* pages — its hot
        // set is small — so the invariant is demand-ordering, not skew.)
        let last = r.rebalances.last().expect("events");
        let hi = usize::from(last.demands[1] > last.demands[0]);
        assert!(
            last.quotas[hi] >= last.quotas[1 - hi],
            "quota must follow demand: {last:?}"
        );
        assert_eq!(r.tenants[0].final_quota_pages, last.quotas[0]);
        assert_eq!(r.aggregate.ops, 80_000);
        assert_eq!(
            r.aggregate.accesses,
            r.tenants.iter().map(|t| t.report.accesses).sum::<u64>()
        );
        let fairness = r.fairness_index();
        assert!((0.5..=1.0).contains(&fairness), "2-tenant Jain: {fairness}");
        // "hot" hits its op cap within a few simulated ms while "cool"
        // runs ~20x longer: once finished, "hot" must stop claiming its
        // frozen peak demand so the live tenant takes over the budget.
        assert!(
            r.tenants[0].report.sim_ns < r.tenants[1].report.sim_ns,
            "test premise: hot finishes first"
        );
        assert_eq!(
            last.demands[0], 1,
            "finished tenant's demand must drop to the idle floor: {last:?}"
        );
        assert_eq!(r.find("cool").unwrap().name, "cool");
        let traj = r.quota_trajectory(0);
        assert_eq!(traj.len(), r.rebalances.len() + 1);
        assert_eq!(traj[0], (0, r.tenants[0].initial_quota_pages));
    }

    #[test]
    fn single_tenant_colocation_matches_quota() {
        let engine = MultiTenantEngine::new(
            SimConfig::default().with_max_ops(5_000),
            MultiTenantConfig::new(500),
        );
        let r = engine.run(vec![TenantRun::new(
            "solo",
            Box::new(ZipfPageWorkload::new(1_000, 0.99, 5_000, 3)),
            |cfg| build_policy(PolicyKind::HybridTier, cfg),
        )]);
        assert_eq!(r.tenants[0].initial_quota_pages, 500);
        assert!(r.tenants[0].final_fast_used <= 500);
        assert_eq!(r.quota_share(0), 1.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            MultiTenantEngine::new(
                SimConfig::default().with_max_ops(20_000),
                MultiTenantConfig::new(600).with_rebalance_interval_ns(3_000_000),
            )
            .run(two_tenants(20_000))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn footprint_panic_is_loud() {
        let engine = MultiTenantEngine::new(
            SimConfig {
                page_size: PageSize::Base4K,
                ..SimConfig::default()
            },
            MultiTenantConfig::new(100),
        );
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.run(Vec::new());
        }));
        assert!(result.is_err(), "empty tenant list must panic");
    }
}
