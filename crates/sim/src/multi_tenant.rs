//! Co-located tenants over one physical fast tier (paper §7).
//!
//! [`MultiTenantEngine`] drives N tenants — each an ordinary (workload,
//! policy) pair with its own [`Pipeline`] — against one shared fast-tier
//! budget partitioned by a [`GlobalController`]. Execution is round-based:
//!
//! 1. every tenant runs through the shared batched pipeline until its local
//!    simulated clock reaches the next rebalance boundary (or it finishes);
//! 2. the controller collects each tenant's demand signal
//!    ([`TieringPolicy::fast_demand_pages`]) and re-partitions the budget,
//!    recording a typed [`RebalanceEvent`](tiering_policies::RebalanceEvent);
//! 3. the new quotas are applied to each tenant's memory view — shrunk
//!    tenants drain through their policy's ordinary watermark demotion, so
//!    quota enforcement rides the existing migration path.
//!
//! Determinism mirrors the single-tenant engine: tenants are stepped in
//! registration order, all state is thread-local, and batching never
//! perturbs results. A tenant suspended at a round boundary with
//! pulled-but-unconsumed operations resumes them after the rebalance —
//! legal because operations are batch-pulled only while the workload's
//! output is time-independent, and a rebalance only resizes memory, never
//! the workload. The `multi_tenant_equivalence` integration tests pin
//! batch-size invariance for the whole co-located run.
//!
//! # Tenant churn
//!
//! Real fleets are not a fixed tenant set: applications arrive, finish,
//! and leave mid-run. [`ChurnSchedule`] expresses that as
//! [`TenantEvent`]s triggered at **fleet op-count boundaries**: once the
//! fleet's cumulative completed operations cross an event's threshold, the
//! event is applied at the next round boundary (round boundaries are the
//! only points where the fleet's state is globally consistent, and per-
//! round op counts are batch-size invariant — so churn is too). Departing
//! tenants stop executing and their fast pages are reclaimed into the live
//! budget immediately; arrivals are admitted under the controller's
//! min-one guarantee and earn their real share at the next rebalance.
//! Every applied event is sealed into the report as a
//! [`ChurnRecord`](crate::ChurnRecord), so per-epoch fleet composition is
//! reconstructible from the result alone.
//!
//! Like single-tenant runs, a whole co-located run is a pure function of
//! its recipe: the sealed [`MultiTenantReport`](crate::MultiTenantReport)
//! (and its [`fingerprint`](crate::MultiTenantReport::fingerprint)) is
//! identical on any host or thread count, which is what lets
//! `tiering_runner` treat fleet scenarios as ordinary units of parallel —
//! and, via its shard layer, distributed — sweeps.

use std::collections::VecDeque;
use std::fmt;

use tiering_mem::TierConfig;
use tiering_policies::{ControllerMode, GlobalController, ObjectiveKind, TieringPolicy};
use tiering_trace::{AccessBatch, Workload};

use crate::pipeline::Pipeline;
use crate::report::{ChurnKind, ChurnRecord, MultiTenantReport, SimReport, TenantReport};
use crate::{LatencySummary, LogHistogram, SimConfig};

/// Default tenant floor fraction (the canonical §7 demo value, shared with
/// the runner's co-location specs so the constant lives once).
pub const DEFAULT_FLOOR_FRAC: f64 = 0.1;

/// Default rebalance cadence in simulated ns (10 ms; see
/// [`DEFAULT_FLOOR_FRAC`]).
pub const DEFAULT_REBALANCE_INTERVAL_NS: u64 = 10_000_000;

/// Builds a tenant's policy once its initial tier configuration (equal-share
/// quota) is known.
pub type TenantPolicyBuilder = Box<dyn FnOnce(&TierConfig) -> Box<dyn TieringPolicy>>;

/// One tenant to co-locate: a name, a workload, and a policy recipe.
pub struct TenantRun {
    /// Tenant name (reporting and lookup).
    pub name: String,
    /// The tenant's application.
    pub workload: Box<dyn Workload>,
    /// Policy factory, invoked with the tenant's initial tier config.
    pub policy: TenantPolicyBuilder,
}

impl TenantRun {
    /// A tenant from its parts.
    pub fn new<F>(name: impl Into<String>, workload: Box<dyn Workload>, policy: F) -> Self
    where
        F: FnOnce(&TierConfig) -> Box<dyn TieringPolicy> + 'static,
    {
        Self {
            name: name.into(),
            workload,
            policy: Box::new(policy),
        }
    }
}

impl fmt::Debug for TenantRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TenantRun({}, {})", self.name, self.workload.name())
    }
}

/// One fleet-composition change.
pub enum TenantEvent {
    /// A new tenant joins the fleet (admitted under the min-one
    /// guarantee; its workload starts at the round boundary it arrives
    /// at).
    Arrive(TenantRun),
    /// The named tenant leaves the fleet: it stops executing and its fast
    /// pages are reclaimed into the live budget. Names are resolved
    /// against **live** tenants, so a departed name can arrive again
    /// later (a fresh slot).
    Depart(String),
}

impl fmt::Debug for TenantEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TenantEvent::Arrive(run) => write!(f, "Arrive({})", run.name),
            TenantEvent::Depart(name) => write!(f, "Depart({name})"),
        }
    }
}

/// A list of [`TenantEvent`]s, each firing independently once the fleet's
/// cumulative completed operations reach its threshold (applied at the
/// next round boundary; events due in the same round apply in list
/// order). Events whose threshold is never reached — the fleet finished
/// first — do not fire.
#[derive(Debug, Default)]
pub struct ChurnSchedule {
    events: Vec<(u64, TenantEvent)>,
}

impl ChurnSchedule {
    /// An empty schedule (a static fleet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the schedule holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Schedules an arrival once the fleet has completed `at_fleet_ops`
    /// operations.
    #[must_use]
    pub fn arrive(mut self, at_fleet_ops: u64, tenant: TenantRun) -> Self {
        self.events
            .push((at_fleet_ops, TenantEvent::Arrive(tenant)));
        self
    }

    /// Schedules the named tenant's departure once the fleet has completed
    /// `at_fleet_ops` operations.
    #[must_use]
    pub fn depart(mut self, at_fleet_ops: u64, name: impl Into<String>) -> Self {
        self.events
            .push((at_fleet_ops, TenantEvent::Depart(name.into())));
        self
    }
}

/// Co-location parameters: the shared budget, the controller cadence, and
/// the quota objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiTenantConfig {
    /// Physical fast pages shared by all tenants.
    pub fast_budget_pages: u64,
    /// Minimum budget share any tenant keeps (see
    /// [`GlobalController::new`]).
    pub floor_frac: f64,
    /// Simulated time between controller rebalances.
    pub rebalance_interval_ns: u64,
    /// How the controller follows demand (see [`ObjectiveKind`]).
    pub objective: ObjectiveKind,
    /// Controller execution mode. [`ControllerMode::FullScan`] (the
    /// default) records the historical full-vector rebalance events;
    /// [`ControllerMode::Incremental`] records compact events and costs
    /// `O(k log n)` per rebalance — the setting for synthetic large
    /// fleets. Quotas are bit-identical either way.
    pub controller_mode: ControllerMode,
    /// When set, each active tenant's sampled marginal-utility curve
    /// ([`TieringPolicy::demand_curve`]) is fed to the controller every
    /// round alongside the point demand. Only curve-consuming objectives
    /// ([`ObjectiveKind::SloUtility`]) react; off by default so existing
    /// runs (and goldens) are unchanged.
    pub use_demand_curves: bool,
}

impl MultiTenantConfig {
    /// A configuration with the paper-demo defaults: 10% floor, 10 ms
    /// rebalance cadence, proportional share.
    pub fn new(fast_budget_pages: u64) -> Self {
        Self {
            fast_budget_pages,
            floor_frac: DEFAULT_FLOOR_FRAC,
            rebalance_interval_ns: DEFAULT_REBALANCE_INTERVAL_NS,
            objective: ObjectiveKind::Proportional,
            controller_mode: ControllerMode::FullScan,
            use_demand_curves: false,
        }
    }

    /// Overrides the controller execution mode (see
    /// [`MultiTenantConfig::controller_mode`]).
    #[must_use]
    pub fn with_controller_mode(mut self, mode: ControllerMode) -> Self {
        self.controller_mode = mode;
        self
    }

    /// Feeds sampled demand curves to the controller each round (see
    /// [`MultiTenantConfig::use_demand_curves`]).
    #[must_use]
    pub fn with_demand_curves(mut self, on: bool) -> Self {
        self.use_demand_curves = on;
        self
    }

    /// Overrides the quota objective.
    #[must_use]
    pub fn with_objective(mut self, objective: ObjectiveKind) -> Self {
        self.objective = objective;
        self
    }

    /// Overrides the tenant floor fraction.
    #[must_use]
    pub fn with_floor_frac(mut self, frac: f64) -> Self {
        self.floor_frac = frac;
        self
    }

    /// Overrides the rebalance cadence.
    ///
    /// # Panics
    ///
    /// Panics if `ns == 0`.
    #[must_use]
    pub fn with_rebalance_interval_ns(mut self, ns: u64) -> Self {
        assert!(ns > 0, "rebalance interval must be positive");
        self.rebalance_interval_ns = ns;
        self
    }
}

/// One tenant's live execution state.
struct Lane<'c> {
    name: String,
    workload: Box<dyn Workload>,
    policy: Box<dyn TieringPolicy>,
    pipeline: Pipeline<'c>,
    batch: AccessBatch,
    /// Next unconsumed op within `batch`.
    cursor: usize,
    /// The workload returned an empty pull.
    exhausted: bool,
    initial_quota: u64,
    /// Fleet time at which this lane joined (0 for initial tenants). The
    /// lane's pipeline clock is local — fleet boundaries are translated by
    /// this offset.
    start_ns: u64,
    /// Fleet time the lane departed at, once a churn event removed it.
    departed_at_ns: Option<u64>,
    /// Ops already folded into the engine's running fleet total, so the
    /// per-round fleet op count is an `O(active)` delta accumulation
    /// instead of an `O(tenants)` re-sum.
    counted_ops: u64,
}

impl Lane<'_> {
    /// Whether this tenant has nothing left to simulate (departed lanes
    /// are done regardless of their workload's state).
    fn finished(&self) -> bool {
        self.departed_at_ns.is_some()
            || self.pipeline.done()
            || (self.exhausted && self.cursor >= self.batch.len())
    }

    /// Advances the tenant until its local clock reaches the **fleet**
    /// boundary `until_fleet_ns`, it hits an engine cap, or its workload
    /// ends. Unconsumed batched ops are kept for the next round.
    fn run_until(&mut self, until_fleet_ns: u64, batch_ops: usize) {
        let until_ns = until_fleet_ns.saturating_sub(self.start_ns);
        loop {
            if self.pipeline.done() || self.pipeline.now_ns() >= until_ns {
                return;
            }
            if self.cursor >= self.batch.len() {
                if self.exhausted {
                    return;
                }
                if !self
                    .pipeline
                    .stage_pull(self.workload.as_mut(), &mut self.batch, batch_ops)
                {
                    self.exhausted = true;
                    return;
                }
                self.cursor = 0;
            }
            self.pipeline
                .stage_op(self.policy.as_mut(), &self.batch, self.cursor);
            self.cursor += 1;
        }
    }
}

/// The co-location engine: N tenants, one fast budget, a central
/// controller.
///
/// Like [`Engine`](crate::Engine), runs are deterministic: the same tenant
/// list, configurations, and seeds produce byte-identical
/// [`MultiTenantReport`]s regardless of batch size.
#[derive(Debug, Clone)]
pub struct MultiTenantEngine {
    sim: SimConfig,
    cfg: MultiTenantConfig,
}

impl MultiTenantEngine {
    /// Creates the engine. `sim` applies to every tenant's pipeline
    /// (per-tenant op/time caps, batch size, probes).
    pub fn new(sim: SimConfig, cfg: MultiTenantConfig) -> Self {
        Self { sim, cfg }
    }

    /// Runs a static fleet to completion and seals the merged report.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is empty.
    pub fn run(&self, tenants: Vec<TenantRun>) -> MultiTenantReport {
        self.run_with_churn(tenants, ChurnSchedule::new())
    }

    /// Runs a dynamic fleet: the initial tenants start together, and
    /// `churn` events are applied at round boundaries once the fleet's
    /// cumulative op count crosses their thresholds (see the module docs
    /// for the determinism argument). Events whose threshold the run never
    /// reaches do not fire.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is empty (a fleet must start with at least one
    /// tenant), or if a [`TenantEvent::Depart`] names no live tenant when
    /// it fires.
    pub fn run_with_churn(
        &self,
        tenants: Vec<TenantRun>,
        churn: ChurnSchedule,
    ) -> MultiTenantReport {
        assert!(!tenants.is_empty(), "co-location needs at least one tenant");
        let mut controller = GlobalController::new(self.cfg.fast_budget_pages, self.cfg.floor_frac)
            .with_objective_kind(self.cfg.objective)
            .with_mode(self.cfg.controller_mode);
        for t in &tenants {
            controller.add_tenant(&t.name, t.workload.footprint_pages(self.sim.page_size));
        }

        let batch_ops = self.sim.batch_ops.max(1);
        let mut lanes: Vec<Lane<'_>> = tenants
            .into_iter()
            .enumerate()
            .map(|(i, t)| self.lane(&controller, i, t, 0, batch_ops))
            .collect();
        let mut pending: VecDeque<(u64, TenantEvent)> = churn.events.into();
        let mut churn_records: Vec<ChurnRecord> = Vec::new();

        // Active-set iteration: only lanes that can still make progress
        // are visited per round, so a fleet where most tenants finished
        // early (the synthetic large-fleet shape) costs O(active) per
        // round, not O(tenants). Registration order is preserved —
        // `retain` keeps relative order — so stepping order, and with it
        // every report bit, is unchanged.
        let mut active: Vec<usize> = (0..lanes.len()).collect();
        let mut fleet_ops = 0u64;

        let mut round_end = self.cfg.rebalance_interval_ns;
        loop {
            for &i in &active {
                let lane = &mut lanes[i];
                lane.run_until(round_end, batch_ops);
                fleet_ops += lane.pipeline.ops() - lane.counted_ops;
                lane.counted_ops = lane.pipeline.ops();
            }

            // Apply due churn events. Each event fires independently of
            // its position in the schedule — the whole pending list is
            // scanned every round, so an event listed after one with a
            // higher (possibly never-reached) threshold still fires when
            // its own threshold is crossed; events due in the same round
            // apply in list order. Thresholds compare against fleet-wide
            // completed ops, which are identical at round boundaries for
            // every batch size — so churn timing is batch-size invariant
            // too.
            let mut scan = 0;
            while scan < pending.len() {
                if pending[scan].0 > fleet_ops {
                    scan += 1;
                    continue;
                }
                let (at_ops, event) = pending.remove(scan).expect("index checked");
                let (kind, tenant) = match event {
                    TenantEvent::Depart(name) => {
                        let slot = lanes
                            .iter()
                            .position(|l| l.departed_at_ns.is_none() && l.name == name)
                            .unwrap_or_else(|| panic!("depart of unknown live tenant {name}"));
                        lanes[slot].departed_at_ns = Some(round_end);
                        controller.retire_tenant(slot);
                        (ChurnKind::Departed, name)
                    }
                    TenantEvent::Arrive(run) => {
                        let slot = controller.admit_tenant(
                            &run.name,
                            run.workload.footprint_pages(self.sim.page_size),
                        );
                        let name = run.name.clone();
                        let lane = self.lane(&controller, slot, run, round_end, batch_ops);
                        debug_assert_eq!(slot, lanes.len(), "slots track lanes");
                        lanes.push(lane);
                        active.push(slot);
                        (ChurnKind::Arrived, name)
                    }
                };
                // Reclaimed/carved pages are enforced immediately, not at
                // the next rebalance — live quotas always sum to budget.
                // Finished lanes never run again, so re-capping them is
                // unobservable: active lanes suffice.
                for &i in &active {
                    let lane = &mut lanes[i];
                    if lane.departed_at_ns.is_none() {
                        lane.pipeline.set_fast_capacity(controller.quota(i));
                    }
                }
                churn_records.push(ChurnRecord {
                    at_ns: round_end,
                    at_fleet_ops: at_ops,
                    kind,
                    tenant,
                    live_after: controller.live_mask(),
                });
            }

            // A finished tenant's application is gone: its policy state
            // (and hot-set estimate) is frozen at peak, so letting it keep
            // reporting demand would squeeze still-running tenants forever.
            // It reports zero exactly once, at the transition off the
            // active set — the controller floors that to the idle share
            // and the applied demand model never changes again, which is
            // why dropping it from the per-round loop is bit-identical.
            // (Departed tenants have no quota at all — their slots are
            // dead; `update_demand` ignores them.)
            active.retain(|&i| {
                if lanes[i].finished() {
                    controller.update_demand(i, 0);
                    false
                } else {
                    true
                }
            });
            if active.is_empty() {
                break;
            }
            for &i in &active {
                let lane = &lanes[i];
                controller.update_demand(i, lane.policy.fast_demand_pages(lane.pipeline.mem()));
                if self.cfg.use_demand_curves {
                    let curve = lane.policy.demand_curve(lane.pipeline.mem());
                    controller.update_demand_curve(i, &curve);
                }
            }
            controller.rebalance_dirty(round_end);
            for &i in &active {
                lanes[i].pipeline.set_fast_capacity(controller.quota(i));
            }
            round_end += self.cfg.rebalance_interval_ns;
        }

        self.seal(controller, lanes, churn_records)
    }

    /// Builds one tenant's lane at its controller-assigned initial quota.
    fn lane<'c>(
        &'c self,
        controller: &GlobalController,
        slot: usize,
        run: TenantRun,
        start_ns: u64,
        batch_ops: usize,
    ) -> Lane<'c> {
        let tier_cfg = controller.tier_config(slot, self.sim.page_size);
        let policy = (run.policy)(&tier_cfg);
        Lane {
            name: run.name,
            workload: run.workload,
            pipeline: Pipeline::new(&self.sim, tier_cfg, policy.as_ref()),
            policy,
            batch: AccessBatch::with_capacity(batch_ops, batch_ops * 4),
            cursor: 0,
            exhausted: false,
            initial_quota: tier_cfg.fast_capacity_pages,
            start_ns,
            departed_at_ns: None,
            counted_ops: 0,
        }
    }

    /// Merges per-lane state into the final report.
    fn seal(
        &self,
        controller: GlobalController,
        lanes: Vec<Lane<'_>>,
        churn: Vec<ChurnRecord>,
    ) -> MultiTenantReport {
        let mut merged_hist = LogHistogram::new();
        let mut tenant_reports = Vec::with_capacity(lanes.len());
        let mut names = Vec::with_capacity(lanes.len());
        let mut policies = Vec::with_capacity(lanes.len());
        for (i, lane) in lanes.into_iter().enumerate() {
            merged_hist.merge(&lane.pipeline.hist());
            let final_fast_used = lane.pipeline.mem().fast_used();
            let report = lane
                .pipeline
                .finish(lane.workload.name(), lane.policy.as_ref());
            names.push(lane.name.clone());
            policies.push(report.policy.clone());
            tenant_reports.push(TenantReport {
                name: lane.name,
                initial_quota_pages: lane.initial_quota,
                final_quota_pages: controller.quota(i),
                final_fast_used,
                arrived_at_ns: lane.start_ns,
                departed_at_ns: lane.departed_at_ns,
                report,
            });
        }

        let mut migrations = tiering_mem::MigrationStats::default();
        let (mut ops, mut accesses, mut samples, mut fast_hits_weighted) = (0, 0, 0, 0.0);
        let mut sim_ns = 0;
        let mut metadata_bytes = 0;
        for t in &tenant_reports {
            ops += t.report.ops;
            accesses += t.report.accesses;
            samples += t.report.samples;
            // Fleet-time end of this tenant's run (arrivals run on offset
            // local clocks; identical for static fleets).
            sim_ns = sim_ns.max(t.arrived_at_ns + t.report.sim_ns);
            metadata_bytes += t.report.metadata_bytes;
            fast_hits_weighted += t.report.fast_hit_frac * t.report.accesses as f64;
            migrations.promotions += t.report.migrations.promotions;
            migrations.demotions += t.report.migrations.demotions;
            migrations.allocated_fast += t.report.migrations.allocated_fast;
            migrations.allocated_slow += t.report.migrations.allocated_slow;
            migrations.failed_promotions += t.report.migrations.failed_promotions;
        }
        let aggregate = SimReport {
            workload: names.join("+"),
            policy: policies.join("+"),
            ops,
            accesses,
            samples,
            sim_ns,
            latency: LatencySummary::from_histogram(&merged_hist),
            timeline: Vec::new(),
            cache_timeline: Vec::new(),
            cache: None,
            migrations,
            fast_hit_frac: if accesses == 0 {
                0.0
            } else {
                fast_hits_weighted / accesses as f64
            },
            metadata_bytes,
            count_distribution: None,
            retention: None,
        };

        MultiTenantReport {
            fast_budget_pages: self.cfg.fast_budget_pages,
            tenants: tenant_reports,
            rebalances: controller.events().to_vec(),
            churn,
            aggregate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiering_mem::PageSize;
    use tiering_policies::{build_policy, PolicyKind};
    use tiering_workloads::ZipfPageWorkload;

    fn two_tenants(ops: u64) -> Vec<TenantRun> {
        vec![
            TenantRun::new(
                "hot",
                Box::new(ZipfPageWorkload::new(2_000, 0.99, ops, 7)),
                |cfg| build_policy(PolicyKind::HybridTier, cfg),
            ),
            TenantRun::new(
                "cool",
                // Uniform and slow: samples spread one-per-page and arrive
                // rarely, so almost nothing crosses the hotness threshold
                // and the demand signal stays near zero.
                Box::new(ZipfPageWorkload::new(4_000, 0.0, ops, 9).with_cpu_ns(2_000)),
                |cfg| build_policy(PolicyKind::HybridTier, cfg),
            ),
        ]
    }

    #[test]
    fn budget_is_partitioned_and_rebalanced() {
        let engine = MultiTenantEngine::new(
            SimConfig::default().with_max_ops(40_000),
            MultiTenantConfig::new(750).with_rebalance_interval_ns(2_000_000),
        );
        let r = engine.run(two_tenants(40_000));
        assert_eq!(r.tenants.len(), 2);
        assert!(!r.rebalances.is_empty(), "cadence must fire");
        for e in &r.rebalances {
            assert_eq!(e.assigned(), 750, "every rebalance assigns the budget");
        }
        assert_eq!(
            r.tenants[0].initial_quota_pages + r.tenants[1].initial_quota_pages,
            750
        );
        // Quota follows demand: whichever tenant demonstrated the larger
        // hot set at the final rebalance holds the larger quota. (Note a
        // highly skewed tenant legitimately demands *few* pages — its hot
        // set is small — so the invariant is demand-ordering, not skew.)
        let last = r.rebalances.last().expect("events");
        let hi = usize::from(last.demands[1] > last.demands[0]);
        assert!(
            last.quotas[hi] >= last.quotas[1 - hi],
            "quota must follow demand: {last:?}"
        );
        assert_eq!(r.tenants[0].final_quota_pages, last.quotas[0]);
        assert_eq!(r.aggregate.ops, 80_000);
        assert_eq!(
            r.aggregate.accesses,
            r.tenants.iter().map(|t| t.report.accesses).sum::<u64>()
        );
        let fairness = r.fairness_index();
        assert!((0.5..=1.0).contains(&fairness), "2-tenant Jain: {fairness}");
        // "hot" hits its op cap within a few simulated ms while "cool"
        // runs ~20x longer: once finished, "hot" must stop claiming its
        // frozen peak demand so the live tenant takes over the budget.
        assert!(
            r.tenants[0].report.sim_ns < r.tenants[1].report.sim_ns,
            "test premise: hot finishes first"
        );
        assert_eq!(
            last.demands[0], 1,
            "finished tenant's demand must drop to the idle floor: {last:?}"
        );
        assert_eq!(r.find("cool").unwrap().name, "cool");
        let traj = r.quota_trajectory(0);
        assert_eq!(traj.len(), r.rebalances.len() + 1);
        assert_eq!(traj[0], (0, r.tenants[0].initial_quota_pages));
    }

    #[test]
    fn single_tenant_colocation_matches_quota() {
        let engine = MultiTenantEngine::new(
            SimConfig::default().with_max_ops(5_000),
            MultiTenantConfig::new(500),
        );
        let r = engine.run(vec![TenantRun::new(
            "solo",
            Box::new(ZipfPageWorkload::new(1_000, 0.99, 5_000, 3)),
            |cfg| build_policy(PolicyKind::HybridTier, cfg),
        )]);
        assert_eq!(r.tenants[0].initial_quota_pages, 500);
        assert!(r.tenants[0].final_fast_used <= 500);
        assert_eq!(r.quota_share(0), 1.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            MultiTenantEngine::new(
                SimConfig::default().with_max_ops(20_000),
                MultiTenantConfig::new(600).with_rebalance_interval_ns(3_000_000),
            )
            .run(two_tenants(20_000))
        };
        assert_eq!(run(), run());
    }

    /// A 3-tenant fleet with an arrive → depart → arrive-again schedule:
    /// the churn records seal the composition, departed tenants' pages are
    /// reclaimed (every rebalance still assigns the full budget over the
    /// live fleet), and the re-arrived name gets a fresh slot.
    #[test]
    fn churn_schedule_applies_and_conserves_the_budget() {
        let engine = MultiTenantEngine::new(
            SimConfig::default().with_max_ops(30_000),
            MultiTenantConfig::new(900).with_rebalance_interval_ns(1_000_000),
        );
        let mk_burst = || {
            TenantRun::new(
                "burst",
                Box::new(ZipfPageWorkload::new(1_000, 0.9, 30_000, 23)),
                |cfg| build_policy(PolicyKind::HybridTier, cfg),
            )
        };
        let schedule = ChurnSchedule::new()
            .depart(20_000, "burst")
            .arrive(45_000, mk_burst());
        let mut tenants = two_tenants(30_000);
        tenants.push(mk_burst());
        let r = engine.run_with_churn(tenants, schedule);

        assert_eq!(r.tenants.len(), 4, "3 initial slots + 1 re-arrival slot");
        assert_eq!(r.churn.len(), 2, "both events fired");
        assert_eq!(r.churn[0].kind, ChurnKind::Departed);
        assert_eq!(r.churn[0].tenant, "burst");
        assert_eq!(r.churn[0].live_after, vec![true, true, false]);
        assert!(r.churn[0].at_fleet_ops <= r.churn[1].at_fleet_ops);
        assert_eq!(r.churn[1].kind, ChurnKind::Arrived);
        assert_eq!(r.churn[1].live_after, vec![true, true, false, true]);
        assert!(
            r.churn[1].at_ns > r.churn[0].at_ns,
            "depart before re-arrive"
        );

        // The departed slot stopped mid-run; the fresh slot ran after it.
        let departed = &r.tenants[2];
        assert_eq!(departed.departed_at_ns, Some(r.churn[0].at_ns));
        assert_eq!(departed.final_quota_pages, 0, "pages reclaimed");
        assert!(departed.report.ops < 30_000, "cut short by departure");
        let rearrived = &r.tenants[3];
        assert_eq!(rearrived.name, "burst");
        assert_eq!(rearrived.arrived_at_ns, r.churn[1].at_ns);
        assert_eq!(rearrived.initial_quota_pages, 1, "min-one admission");
        assert!(rearrived.report.ops > 0, "re-arrival actually ran");

        // Budget conservation at every rebalance, over whatever fleet was
        // live (the acceptance criterion).
        for e in &r.rebalances {
            assert_eq!(e.assigned(), 900, "budget leak at t={}", e.at_ns);
            for (i, &l) in e.live.iter().enumerate() {
                if !l {
                    assert_eq!(e.quotas[i], 0, "dead slot holds quota at t={}", e.at_ns);
                }
            }
        }
        // The re-arrival's trajectory starts at its arrival time.
        let traj = r.quota_trajectory(3);
        assert_eq!(traj[0], (r.churn[1].at_ns, 1));
        assert!(traj.last().expect("rebalances after arrival").1 >= 1);
        // Summary renders pre-arrival slots as `-` and lists churn.
        let s = r.summary();
        assert!(s.contains(" - "), "pre-arrival placeholder: {s}");
        assert!(s.contains("churn @"), "churn section present: {s}");
    }

    /// Churn thresholds the run never reaches do not fire, and the fleet
    /// still terminates.
    #[test]
    fn unreachable_churn_events_are_dropped() {
        let engine = MultiTenantEngine::new(
            SimConfig::default().with_max_ops(4_000),
            MultiTenantConfig::new(400),
        );
        let schedule = ChurnSchedule::new().arrive(
            u64::MAX,
            TenantRun::new(
                "never",
                Box::new(ZipfPageWorkload::new(500, 0.9, 1_000, 3)),
                |cfg| build_policy(PolicyKind::HybridTier, cfg),
            ),
        );
        let r = engine.run_with_churn(two_tenants(4_000), schedule);
        assert_eq!(r.tenants.len(), 2, "unreachable arrival never joined");
        assert!(r.churn.is_empty());
    }

    /// Events fire independently of schedule order: a due departure listed
    /// *behind* an unreachable arrival must still be applied when its own
    /// threshold is crossed.
    #[test]
    fn due_events_fire_behind_unreached_ones() {
        let engine = MultiTenantEngine::new(
            SimConfig::default().with_max_ops(20_000),
            MultiTenantConfig::new(600).with_rebalance_interval_ns(2_000_000),
        );
        let schedule = ChurnSchedule::new()
            .arrive(
                u64::MAX,
                TenantRun::new(
                    "never",
                    Box::new(ZipfPageWorkload::new(500, 0.9, 1_000, 3)),
                    |cfg| build_policy(PolicyKind::HybridTier, cfg),
                ),
            )
            .depart(5_000, "hot");
        let r = engine.run_with_churn(two_tenants(20_000), schedule);
        assert_eq!(r.churn.len(), 1, "the due depart must fire");
        assert_eq!(r.churn[0].kind, ChurnKind::Departed);
        assert_eq!(r.churn[0].tenant, "hot");
        assert!(r.find("hot").unwrap().departed_at_ns.is_some());
        assert_eq!(r.tenants.len(), 2, "unreachable arrival never joined");
    }

    #[test]
    fn objective_is_recorded_in_events() {
        let engine = MultiTenantEngine::new(
            SimConfig::default().with_max_ops(10_000),
            MultiTenantConfig::new(500)
                .with_rebalance_interval_ns(2_000_000)
                .with_objective(ObjectiveKind::MaxMin),
        );
        let r = engine.run(two_tenants(10_000));
        assert!(!r.rebalances.is_empty());
        assert!(r.rebalances.iter().all(|e| e.objective == "max-min"));
        assert!(r.rebalances.iter().all(|e| e.assigned() == 500));
    }

    #[test]
    fn footprint_panic_is_loud() {
        let engine = MultiTenantEngine::new(
            SimConfig {
                page_size: PageSize::Base4K,
                ..SimConfig::default()
            },
            MultiTenantConfig::new(100),
        );
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.run(Vec::new());
        }));
        assert!(result.is_err(), "empty tenant list must panic");
    }
}
