//! Hotness probes for the motivation/analysis figures.

use std::collections::HashSet;

use tiering_mem::PageId;

/// Per-page sampled-access-count distribution, bucketed exactly as the
/// paper's Figure 16 x-axis: 0, 1–3, 4–6, 7–9, 10–12, 13–14, 15 (counts
/// saturate at 15, matching the 4-bit counter argument of §6.4.2).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CountDistribution {
    /// Pages per bucket, in the Figure 16 bucket order.
    pub buckets: [u64; 7],
}

/// Bucket labels matching Figure 16.
pub const COUNT_BUCKET_LABELS: [&str; 7] = ["0", "1-3", "4-6", "7-9", "10-12", "13-14", "15"];

impl CountDistribution {
    /// Builds the distribution from saturating per-page counts, including
    /// `untouched` pages in the 0 bucket.
    pub fn from_counts(counts: &[u8], untouched: u64) -> Self {
        let mut buckets = [0u64; 7];
        buckets[0] = untouched;
        for &c in counts {
            let b = match c {
                0 => 0,
                1..=3 => 1,
                4..=6 => 2,
                7..=9 => 3,
                10..=12 => 4,
                13..=14 => 5,
                _ => 6,
            };
            buckets[b] += 1;
        }
        Self { buckets }
    }

    /// Total pages.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Cumulative fractions per bucket (the Figure 16 y-axis).
    pub fn cumulative_fractions(&self) -> [f64; 7] {
        let total = self.total().max(1) as f64;
        let mut acc = 0u64;
        let mut out = [0.0; 7];
        for (i, &b) in self.buckets.iter().enumerate() {
            acc += b;
            out[i] = acc as f64 / total;
        }
        out
    }

    /// Fraction of pages with saturated (≥15) counts — the paper's
    /// justification check for 4-bit counters (§6.4.2: "for all workloads
    /// except for social-graph, the fraction of pages with frequency ≥ 15 is
    /// less than 3%").
    pub fn saturated_fraction(&self) -> f64 {
        self.buckets[6] as f64 / self.total().max(1) as f64
    }
}

/// Configuration for the hot-set retention probe (paper Figure 2).
#[derive(Debug, Clone, Copy)]
pub struct RetentionConfig {
    /// Window length over which hotness is assessed.
    pub window_ns: u64,
    /// Minimum sampled accesses within a window for a page to count as hot.
    pub hot_min_samples: u32,
}

impl Default for RetentionConfig {
    fn default() -> Self {
        Self {
            window_ns: 2_000_000_000,
            hot_min_samples: 2,
        }
    }
}

/// Measures, per window, what fraction of the *initial* hot set is still
/// hot — the paper's Figure 2 ("the fraction of pages that were hot at time
/// 0 and remained hot over a certain time").
#[derive(Debug)]
pub struct RetentionProbe {
    config: RetentionConfig,
    window_counts: std::collections::HashMap<u64, u32>,
    initial_hot: Option<HashSet<u64>>,
    window_end_ns: u64,
    series: Vec<(u64, f64)>,
}

impl RetentionProbe {
    /// Creates the probe; the first window's hot set becomes the reference.
    pub fn new(config: RetentionConfig) -> Self {
        Self {
            window_end_ns: config.window_ns,
            config,
            window_counts: std::collections::HashMap::new(),
            initial_hot: None,
            series: Vec::new(),
        }
    }

    /// Records a sampled access at `now_ns`.
    pub fn record(&mut self, page: PageId, now_ns: u64) {
        while now_ns >= self.window_end_ns {
            self.roll_window();
        }
        *self.window_counts.entry(page.0).or_insert(0) += 1;
    }

    fn roll_window(&mut self) {
        let hot: HashSet<u64> = self
            .window_counts
            .iter()
            .filter(|&(_, &c)| c >= self.config.hot_min_samples)
            .map(|(&p, _)| p)
            .collect();
        match &self.initial_hot {
            None => {
                self.initial_hot = Some(hot);
                self.series.push((self.window_end_ns, 1.0));
            }
            Some(initial) => {
                let retained = initial.intersection(&hot).count();
                let frac = if initial.is_empty() {
                    0.0
                } else {
                    retained as f64 / initial.len() as f64
                };
                self.series.push((self.window_end_ns, frac));
            }
        }
        self.window_counts.clear();
        self.window_end_ns += self.config.window_ns;
    }

    /// Finalizes and returns the retention series.
    pub fn finish(mut self, now_ns: u64) -> Vec<(u64, f64)> {
        while now_ns >= self.window_end_ns {
            self.roll_window();
        }
        self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_buckets_match_figure16_axis() {
        let counts = vec![0u8, 1, 3, 4, 6, 7, 9, 10, 12, 13, 14, 15, 15];
        let d = CountDistribution::from_counts(&counts, 5);
        assert_eq!(d.buckets, [6, 2, 2, 2, 2, 2, 2]);
        assert_eq!(d.total(), 18);
        let cum = d.cumulative_fractions();
        assert!((cum[6] - 1.0).abs() < 1e-12);
        assert!(cum.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn saturated_fraction() {
        let d = CountDistribution::from_counts(&[15, 15, 1, 2], 0);
        assert!((d.saturated_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn retention_full_when_hot_set_stable() {
        let mut p = RetentionProbe::new(RetentionConfig {
            window_ns: 100,
            hot_min_samples: 2,
        });
        // Pages 1 and 2 hot in every window.
        for w in 0..5u64 {
            for _ in 0..3 {
                p.record(PageId(1), w * 100 + 10);
                p.record(PageId(2), w * 100 + 10);
            }
        }
        let series = p.finish(500);
        assert_eq!(series.len(), 5);
        for &(_, frac) in &series {
            assert!((frac - 1.0).abs() < 1e-12, "stable hot set retains 100%");
        }
    }

    #[test]
    fn retention_decays_when_hot_set_shifts() {
        let mut p = RetentionProbe::new(RetentionConfig {
            window_ns: 100,
            hot_min_samples: 2,
        });
        // Window 0: pages 0..10 hot. Later windows: pages 100.. hot.
        for pg in 0..10u64 {
            p.record(PageId(pg), 10);
            p.record(PageId(pg), 20);
        }
        for w in 1..4u64 {
            for pg in 100..110u64 {
                p.record(PageId(pg), w * 100 + 10);
                p.record(PageId(pg), w * 100 + 20);
            }
        }
        let series = p.finish(400);
        assert!((series[0].1 - 1.0).abs() < 1e-12);
        for &(_, frac) in &series[1..] {
            assert_eq!(frac, 0.0, "disjoint hot sets retain nothing");
        }
    }

    #[test]
    fn single_touch_pages_are_not_hot() {
        let mut p = RetentionProbe::new(RetentionConfig {
            window_ns: 100,
            hot_min_samples: 2,
        });
        p.record(PageId(7), 10); // only once
        p.record(PageId(8), 20);
        p.record(PageId(8), 30);
        let series = p.finish(200);
        // Initial hot set = {8} only; second window empty → retention 0.
        assert_eq!(series.len(), 2);
        assert!((series[0].1 - 1.0).abs() < 1e-12);
        assert_eq!(series[1].1, 0.0);
    }
}
