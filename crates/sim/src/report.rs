//! Simulation reports.

use cache_sim::HierarchyStats;
use tiering_mem::MigrationStats;

use crate::histo::LogHistogram;
use crate::hotness::CountDistribution;

/// Latency percentile summary over all operations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Median operation latency (ns).
    pub p50_ns: u64,
    /// 90th percentile (ns).
    pub p90_ns: u64,
    /// 99th percentile (ns).
    pub p99_ns: u64,
    /// Mean (ns).
    pub mean_ns: f64,
}

impl LatencySummary {
    /// Builds the summary from a histogram.
    pub fn from_histogram(h: &LogHistogram) -> Self {
        Self {
            p50_ns: h.p50(),
            p90_ns: h.quantile(0.9),
            p99_ns: h.quantile(0.99),
            mean_ns: h.mean(),
        }
    }
}

/// One point of the windowed median-latency timeline (paper Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelinePoint {
    /// Window end time (simulated ns).
    pub t_ns: u64,
    /// Median op latency within the window (ns).
    pub p50_ns: u64,
    /// Mean op latency within the window (ns). The adaptation analyses use
    /// this: the simulator's discrete op shapes make windowed medians
    /// bimodal around bucket boundaries, while the mean moves smoothly with
    /// fast-tier hit rate (the paper's testbed medians are smooth for the
    /// same reason real op latencies are continuous).
    pub mean_ns: u64,
    /// Operations completed within the window.
    pub ops: u64,
}

/// One point of the cache-miss-attribution timeline (paper Figures 5/13).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheTimelinePoint {
    /// Window end time (simulated ns).
    pub t_ns: u64,
    /// Fraction of this window's L1 misses caused by tiering metadata.
    pub l1_tiering_frac: f64,
    /// Fraction of this window's LLC misses caused by tiering metadata.
    pub llc_tiering_frac: f64,
}

/// The complete result of one simulation run.
///
/// `PartialEq` compares every field — the batch-equivalence and runner
/// determinism tests rely on whole-report equality.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Workload name.
    pub workload: String,
    /// Policy name.
    pub policy: String,
    /// Operations executed.
    pub ops: u64,
    /// Application memory accesses replayed.
    pub accesses: u64,
    /// PEBS samples delivered to the policy.
    pub samples: u64,
    /// Total simulated time.
    pub sim_ns: u64,
    /// Operation latency summary.
    pub latency: LatencySummary,
    /// Windowed median-latency series.
    pub timeline: Vec<TimelinePoint>,
    /// Cache-attribution series (when cache simulation was enabled).
    pub cache_timeline: Vec<CacheTimelinePoint>,
    /// Final cache statistics (when enabled).
    pub cache: Option<HierarchyStats>,
    /// Migration counters.
    pub migrations: MigrationStats,
    /// Fraction of application accesses served by the fast tier.
    pub fast_hit_frac: f64,
    /// Policy metadata footprint at end of run.
    pub metadata_bytes: usize,
    /// Per-page sampled-count distribution (when the count probe was on).
    pub count_distribution: Option<CountDistribution>,
    /// Hot-page retention series (when the retention probe was on):
    /// `(window end ns, fraction of the initial hot set still hot)`.
    pub retention: Option<Vec<(u64, f64)>>,
}

impl SimReport {
    /// Throughput in million operations per simulated second.
    pub fn throughput_mops(&self) -> f64 {
        if self.sim_ns == 0 {
            0.0
        } else {
            self.ops as f64 * 1_000.0 / self.sim_ns as f64
        }
    }

    /// Runtime in simulated seconds.
    pub fn runtime_s(&self) -> f64 {
        self.sim_ns as f64 / 1e9
    }

    /// Relative performance vs. a baseline report (baseline runtime / own
    /// runtime, >1 means faster than baseline) — the metric of Figure 10.
    pub fn relative_performance(&self, baseline: &SimReport) -> f64 {
        if self.sim_ns == 0 {
            0.0
        } else {
            baseline.sim_ns as f64 / self.sim_ns as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(sim_ns: u64, ops: u64) -> SimReport {
        SimReport {
            workload: "w".into(),
            policy: "p".into(),
            ops,
            accesses: 0,
            samples: 0,
            sim_ns,
            latency: LatencySummary::default(),
            timeline: Vec::new(),
            cache_timeline: Vec::new(),
            cache: None,
            migrations: MigrationStats::default(),
            fast_hit_frac: 0.0,
            metadata_bytes: 0,
            count_distribution: None,
            retention: None,
        }
    }

    #[test]
    fn throughput_is_ops_per_second() {
        let r = dummy(2_000_000_000, 4_000_000);
        assert!((r.throughput_mops() - 2.0).abs() < 1e-9);
        assert!((r.runtime_s() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn relative_performance_vs_baseline() {
        let fast = dummy(1_000, 1);
        let slow = dummy(2_000, 1);
        assert!((fast.relative_performance(&slow) - 2.0).abs() < 1e-9);
        assert!((slow.relative_performance(&fast) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_time_edge_cases() {
        let r = dummy(0, 0);
        assert_eq!(r.throughput_mops(), 0.0);
        assert_eq!(r.relative_performance(&dummy(5, 1)), 0.0);
    }

    #[test]
    fn summary_from_histogram() {
        let mut h = LogHistogram::new();
        for v in [100u64, 200, 300, 400, 500] {
            h.record(v);
        }
        let s = LatencySummary::from_histogram(&h);
        assert!(s.p50_ns >= 200 && s.p50_ns <= 400);
        assert!(s.p99_ns >= s.p50_ns);
        assert!((s.mean_ns - 300.0).abs() < 1.0);
    }
}
