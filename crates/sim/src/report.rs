//! Simulation reports.
//!
//! [`SimReport`] is the outcome of one engine run and [`MultiTenantReport`]
//! of one co-located/fleet run. Both derive `PartialEq` over every field —
//! the batch-equivalence and runner determinism tests rely on whole-report
//! equality — and both expose a [`fingerprint`](SimReport::fingerprint): a
//! stable 64-bit digest of the deterministic outcome, giving every scenario
//! a portable identity that distributed-sweep tooling (the runner's shard
//! merge, `bench --merge`) can compare across hosts without shipping whole
//! reports.

use cache_sim::HierarchyStats;
use tiering_mem::MigrationStats;
use tiering_policies::RebalanceEvent;

use crate::histo::LogHistogram;
use crate::hotness::CountDistribution;

/// Latency percentile summary over all operations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Median operation latency (ns).
    pub p50_ns: u64,
    /// 90th percentile (ns).
    pub p90_ns: u64,
    /// 99th percentile (ns).
    pub p99_ns: u64,
    /// Mean (ns).
    pub mean_ns: f64,
}

impl LatencySummary {
    /// Builds the summary from a histogram.
    pub fn from_histogram(h: &LogHistogram) -> Self {
        Self {
            p50_ns: h.p50(),
            p90_ns: h.quantile(0.9),
            p99_ns: h.quantile(0.99),
            mean_ns: h.mean(),
        }
    }
}

/// One point of the windowed median-latency timeline (paper Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelinePoint {
    /// Window end time (simulated ns).
    pub t_ns: u64,
    /// Median op latency within the window (ns).
    pub p50_ns: u64,
    /// Mean op latency within the window (ns). The adaptation analyses use
    /// this: the simulator's discrete op shapes make windowed medians
    /// bimodal around bucket boundaries, while the mean moves smoothly with
    /// fast-tier hit rate (the paper's testbed medians are smooth for the
    /// same reason real op latencies are continuous).
    pub mean_ns: u64,
    /// Operations completed within the window.
    pub ops: u64,
}

/// One point of the cache-miss-attribution timeline (paper Figures 5/13).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheTimelinePoint {
    /// Window end time (simulated ns).
    pub t_ns: u64,
    /// Fraction of this window's L1 misses caused by tiering metadata.
    pub l1_tiering_frac: f64,
    /// Fraction of this window's LLC misses caused by tiering metadata.
    pub llc_tiering_frac: f64,
}

/// The complete result of one simulation run.
///
/// `PartialEq` compares every field — the batch-equivalence and runner
/// determinism tests rely on whole-report equality.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Workload name.
    pub workload: String,
    /// Policy name.
    pub policy: String,
    /// Operations executed.
    pub ops: u64,
    /// Application memory accesses replayed.
    pub accesses: u64,
    /// PEBS samples delivered to the policy.
    pub samples: u64,
    /// Total simulated time.
    pub sim_ns: u64,
    /// Operation latency summary.
    pub latency: LatencySummary,
    /// Windowed median-latency series.
    pub timeline: Vec<TimelinePoint>,
    /// Cache-attribution series (when cache simulation was enabled).
    pub cache_timeline: Vec<CacheTimelinePoint>,
    /// Final cache statistics (when enabled).
    pub cache: Option<HierarchyStats>,
    /// Migration counters.
    pub migrations: MigrationStats,
    /// Fraction of application accesses served by the fast tier.
    pub fast_hit_frac: f64,
    /// Policy metadata footprint at end of run.
    pub metadata_bytes: usize,
    /// Per-page sampled-count distribution (when the count probe was on).
    pub count_distribution: Option<CountDistribution>,
    /// Hot-page retention series (when the retention probe was on):
    /// `(window end ns, fraction of the initial hot set still hot)`.
    pub retention: Option<Vec<(u64, f64)>>,
}

impl SimReport {
    /// Throughput in million operations per simulated second.
    pub fn throughput_mops(&self) -> f64 {
        if self.sim_ns == 0 {
            0.0
        } else {
            self.ops as f64 * 1_000.0 / self.sim_ns as f64
        }
    }

    /// Runtime in simulated seconds.
    pub fn runtime_s(&self) -> f64 {
        self.sim_ns as f64 / 1e9
    }

    /// Relative performance vs. a baseline report (baseline runtime / own
    /// runtime, >1 means faster than baseline) — the metric of Figure 10.
    pub fn relative_performance(&self, baseline: &SimReport) -> f64 {
        if self.sim_ns == 0 {
            0.0
        } else {
            baseline.sim_ns as f64 / self.sim_ns as f64
        }
    }

    /// A stable 64-bit digest of this run's deterministic outcome: the
    /// headline counters (ops, accesses, samples, simulated time), the
    /// latency summary, migration counters, fast-hit fraction, metadata
    /// footprint, the full latency timeline, and the workload/policy names.
    ///
    /// Two runs of the same scenario — on any host, any thread count, any
    /// batch size — produce the same fingerprint; the engine's integer
    /// simulated-time arithmetic and `f64` aggregations are both exactly
    /// reproducible. Distributed-sweep tooling uses it as the scenario's
    /// portable outcome identity (shard-merge cross-checks, the
    /// `"fingerprint"` field of `BENCH_*.json` scenario entries).
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fingerprint::new();
        h.str(&self.workload);
        h.str(&self.policy);
        h.u64(self.ops);
        h.u64(self.accesses);
        h.u64(self.samples);
        h.u64(self.sim_ns);
        h.u64(self.latency.p50_ns);
        h.u64(self.latency.p90_ns);
        h.u64(self.latency.p99_ns);
        h.f64(self.latency.mean_ns);
        h.u64(self.migrations.promotions);
        h.u64(self.migrations.demotions);
        h.u64(self.migrations.allocated_fast);
        h.u64(self.migrations.allocated_slow);
        h.u64(self.migrations.failed_promotions);
        h.f64(self.fast_hit_frac);
        h.u64(self.metadata_bytes as u64);
        h.u64(self.timeline.len() as u64);
        for p in &self.timeline {
            h.u64(p.t_ns);
            h.u64(p.p50_ns);
            h.u64(p.mean_ns);
            h.u64(p.ops);
        }
        h.finish()
    }
}

/// FNV-1a accumulator behind the report fingerprints: a fixed, documented
/// algorithm (not `DefaultHasher`, whose output may change across Rust
/// releases) so fingerprints are comparable between binaries built on
/// different hosts.
struct Fingerprint(u64);

impl Fingerprint {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0100_0000_01b3;

    fn new() -> Self {
        Self(Self::OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(Self::PRIME);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    /// Hashes the bit pattern; `-0.0` is normalized to `0.0` so the two
    /// representations of zero cannot split a fingerprint.
    fn f64(&mut self, v: f64) {
        let v = if v == 0.0 { 0.0f64 } else { v };
        self.u64(v.to_bits());
    }

    /// Length-prefixed, so adjacent strings cannot alias.
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.bytes() {
            self.byte(b);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// One tenant's slice of a multi-tenant run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant name (as registered with the controller).
    pub name: String,
    /// Fast-tier quota the tenant started with (equal shares for initial
    /// tenants, the min-one admission share for churn arrivals).
    pub initial_quota_pages: u64,
    /// Fast-tier quota after the final rebalance (0 for departed tenants —
    /// their pages were reclaimed).
    pub final_quota_pages: u64,
    /// Fast pages actually resident at end of run (≤ quota once watermark
    /// demotion has drained any post-shrink excess).
    pub final_fast_used: u64,
    /// Fleet time at which this tenant joined (0 for initial tenants).
    pub arrived_at_ns: u64,
    /// Fleet time at which this tenant departed, when it did.
    pub departed_at_ns: Option<u64>,
    /// The tenant's ordinary simulation report.
    pub report: SimReport,
}

/// Which way a [`ChurnRecord`] went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnKind {
    /// The tenant joined the fleet mid-run.
    Arrived,
    /// The tenant left the fleet mid-run.
    Departed,
}

/// One applied churn event: the fleet composition change and when it
/// happened — sealed into the report so per-epoch composition is
/// reconstructible from the result alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnRecord {
    /// Fleet time (the round boundary) the event was applied at.
    pub at_ns: u64,
    /// Fleet-wide completed operations when the event fired (the schedule
    /// triggers on op-count boundaries).
    pub at_fleet_ops: u64,
    /// Arrival or departure.
    pub kind: ChurnKind,
    /// The tenant's name.
    pub tenant: String,
    /// Live mask over registration slots *after* the event — the epoch's
    /// fleet composition.
    pub live_after: Vec<bool>,
}

/// Tenant-count threshold beyond which [`MultiTenantReport::summary`]
/// (and the runner's golden renderer) switch from per-tenant tables to
/// aggregate form, keeping fleet-scale renders `O(threshold)`.
pub const SUMMARY_MAX_TENANTS: usize = 12;

/// The complete result of one multi-tenant (co-located) run: per-tenant
/// [`SimReport`]s, the controller's full quota trajectory, and fairness
/// summaries (paper §7).
///
/// `PartialEq` compares everything — the co-location determinism tests rely
/// on whole-report equality.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiTenantReport {
    /// Physical fast pages shared by all tenants.
    pub fast_budget_pages: u64,
    /// Per-tenant results, in registration order (slot order; includes
    /// departed tenants and churn arrivals).
    pub tenants: Vec<TenantReport>,
    /// Every rebalance the controller performed, in time order.
    pub rebalances: Vec<RebalanceEvent>,
    /// Every applied churn event, in time order (empty for static fleets) —
    /// together with `rebalances[..].live`, the per-epoch fleet
    /// composition.
    pub churn: Vec<ChurnRecord>,
    /// Whole-machine view: summed ops/accesses/migrations, exact merged
    /// latency percentiles, access-weighted fast-hit fraction. Timeline and
    /// cache series are per-tenant concerns and stay empty here.
    pub aggregate: SimReport,
}

impl MultiTenantReport {
    /// Looks a tenant up by name.
    pub fn find(&self, name: &str) -> Option<&TenantReport> {
        self.tenants.iter().find(|t| t.name == name)
    }

    /// The quota trajectory of one tenant: `(rebalance time ns, quota)` per
    /// rebalance event, prefixed by the tenant's admission assignment at
    /// its arrival time. Rebalances before a churn arrival's slot existed
    /// report quota 0 (the tenant was not in the fleet yet). Compact
    /// events (incremental-mode rebalances carry no per-slot vectors) are
    /// skipped rather than misread as zeros.
    pub fn quota_trajectory(&self, tenant: usize) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.rebalances.len() + 1);
        out.push((
            self.tenants[tenant].arrived_at_ns,
            self.tenants[tenant].initial_quota_pages,
        ));
        out.extend(
            self.rebalances
                .iter()
                .filter(|e| !e.quotas.is_empty() && e.at_ns >= self.tenants[tenant].arrived_at_ns)
                .map(|e| (e.at_ns, e.quotas.get(tenant).copied().unwrap_or(0))),
        );
        out
    }

    /// Jain's fairness index over per-tenant fast-hit fractions, in
    /// `(1/n, 1]`: 1.0 means every tenant enjoys the same fast-tier service,
    /// 1/n means one tenant monopolizes it. Reports 1.0 for the degenerate
    /// all-zero case.
    pub fn fairness_index(&self) -> f64 {
        let xs: Vec<f64> = self
            .tenants
            .iter()
            .map(|t| t.report.fast_hit_frac)
            .collect();
        let sum: f64 = xs.iter().sum();
        let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
        if sum_sq == 0.0 {
            1.0
        } else {
            sum * sum / (xs.len() as f64 * sum_sq)
        }
    }

    /// Fraction of the fast budget the tenant holds after the final
    /// rebalance.
    pub fn quota_share(&self, tenant: usize) -> f64 {
        self.tenants[tenant].final_quota_pages as f64 / self.fast_budget_pages as f64
    }

    /// The multi-tenant twin of [`SimReport::fingerprint`]: a stable 64-bit
    /// digest over the budget, every tenant's outcome (name, quota
    /// endpoints, arrival/departure times, and its report's fingerprint),
    /// the rebalance trace (per-event time, quotas, demands), and the churn
    /// records. Deterministic across hosts for identical scenarios.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fingerprint::new();
        h.u64(self.fast_budget_pages);
        h.u64(self.aggregate.fingerprint());
        h.u64(self.tenants.len() as u64);
        for t in &self.tenants {
            h.str(&t.name);
            h.u64(t.initial_quota_pages);
            h.u64(t.final_quota_pages);
            h.u64(t.final_fast_used);
            h.u64(t.arrived_at_ns);
            h.u64(t.departed_at_ns.map_or(u64::MAX, |v| v));
            h.u64(t.report.fingerprint());
        }
        h.u64(self.rebalances.len() as u64);
        for e in &self.rebalances {
            h.u64(e.at_ns);
            for &q in &e.quotas {
                h.u64(q);
            }
            for &d in &e.demands {
                h.u64(d);
            }
        }
        h.u64(self.churn.len() as u64);
        for c in &self.churn {
            h.u64(c.at_ns);
            h.u64(c.at_fleet_ops);
            h.u64(matches!(c.kind, ChurnKind::Arrived) as u64);
            h.str(&c.tenant);
        }
        h.finish()
    }

    /// Plain-text run summary: the demand/quota trajectory table, one line
    /// per tenant, and the fairness index. The `multi_tenant` example and
    /// the bench `sec7` experiment both print exactly this block, so their
    /// outputs cannot drift apart.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        // Beyond the threshold (or when every event is compact) the
        // per-tenant trajectory table degenerates into noise; summarize in
        // aggregate instead so a 10⁵-tenant fleet renders in O(threshold).
        let compact_events =
            !self.rebalances.is_empty() && self.rebalances.iter().all(|e| e.quotas.is_empty());
        let wide = self.tenants.len() > SUMMARY_MAX_TENANTS;
        if compact_events {
            let _ = writeln!(
                out,
                "{} rebalances recorded in compact (incremental) form; trajectory table elided",
                self.rebalances.len()
            );
        } else if wide {
            let _ = writeln!(
                out,
                "trajectory table elided ({} tenants > {SUMMARY_MAX_TENANTS} threshold, {} rebalances)",
                self.tenants.len(),
                self.rebalances.len()
            );
        } else {
            let _ = write!(out, "{:>6}", "t_ms");
            for t in &self.tenants {
                let _ = write!(out, " {:>13}", format!("{} demand", t.name));
            }
            for t in &self.tenants {
                let _ = write!(out, " {:>12}", format!("{} quota", t.name));
            }
            out.push('\n');
            for e in &self.rebalances {
                let _ = write!(out, "{:>6.0}", e.at_ns as f64 / 1e6);
                // Slots admitted after this event print `-` (not in the
                // fleet yet); departed slots print their recorded zeros.
                for i in 0..self.tenants.len() {
                    match e.demands.get(i) {
                        Some(d) => {
                            let _ = write!(out, " {d:>13}");
                        }
                        None => {
                            let _ = write!(out, " {:>13}", "-");
                        }
                    }
                }
                for i in 0..self.tenants.len() {
                    match e.quotas.get(i) {
                        Some(q) => {
                            let _ = write!(out, " {q:>12}");
                        }
                        None => {
                            let _ = write!(out, " {:>12}", "-");
                        }
                    }
                }
                out.push('\n');
            }
        }
        out.push('\n');
        for c in &self.churn {
            let live = c.live_after.iter().filter(|&&l| l).count();
            let fleet = if live > SUMMARY_MAX_TENANTS {
                format!("{live} live")
            } else {
                format!(
                    "[{}]",
                    c.live_after
                        .iter()
                        .zip(&self.tenants)
                        .filter(|(&l, _)| l)
                        .map(|(_, t)| t.name.as_str())
                        .collect::<Vec<_>>()
                        .join("+")
                )
            };
            let _ = writeln!(
                out,
                "churn @{:>4.0} ms ({:>8} fleet ops): {} {:>7}, fleet now {fleet}",
                c.at_ns as f64 / 1e6,
                c.at_fleet_ops,
                match c.kind {
                    ChurnKind::Arrived => "arrive",
                    ChurnKind::Departed => "depart",
                },
                c.tenant,
            );
        }
        if !self.churn.is_empty() {
            out.push('\n');
        }
        let shown = if wide {
            SUMMARY_MAX_TENANTS
        } else {
            self.tenants.len()
        };
        for t in &self.tenants[..shown] {
            let _ = writeln!(
                out,
                "tenant {:>6}: {:>8} ops, fast-hit {:.3}, quota {} -> {} pages ({} resident)",
                t.name,
                t.report.ops,
                t.report.fast_hit_frac,
                t.initial_quota_pages,
                t.final_quota_pages,
                t.final_fast_used,
            );
        }
        if wide {
            let elided = &self.tenants[shown..];
            let _ = writeln!(
                out,
                "... {} more tenants elided ({} ops, {} pages held at finish)",
                elided.len(),
                elided.iter().map(|t| t.report.ops).sum::<u64>(),
                elided.iter().map(|t| t.final_quota_pages).sum::<u64>(),
            );
        }
        let _ = writeln!(
            out,
            "fairness (Jain over fast-hit): {:.4}; budget {} pages, {} rebalances",
            self.fairness_index(),
            self.fast_budget_pages,
            self.rebalances.len()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(sim_ns: u64, ops: u64) -> SimReport {
        SimReport {
            workload: "w".into(),
            policy: "p".into(),
            ops,
            accesses: 0,
            samples: 0,
            sim_ns,
            latency: LatencySummary::default(),
            timeline: Vec::new(),
            cache_timeline: Vec::new(),
            cache: None,
            migrations: MigrationStats::default(),
            fast_hit_frac: 0.0,
            metadata_bytes: 0,
            count_distribution: None,
            retention: None,
        }
    }

    #[test]
    fn throughput_is_ops_per_second() {
        let r = dummy(2_000_000_000, 4_000_000);
        assert!((r.throughput_mops() - 2.0).abs() < 1e-9);
        assert!((r.runtime_s() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn relative_performance_vs_baseline() {
        let fast = dummy(1_000, 1);
        let slow = dummy(2_000, 1);
        assert!((fast.relative_performance(&slow) - 2.0).abs() < 1e-9);
        assert!((slow.relative_performance(&fast) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_time_edge_cases() {
        let r = dummy(0, 0);
        assert_eq!(r.throughput_mops(), 0.0);
        assert_eq!(r.relative_performance(&dummy(5, 1)), 0.0);
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = dummy(1_000, 10);
        // Pinned literal (independently computed with reference FNV-1a):
        // the fingerprint is part of the BENCH json contract, so an
        // accidental algorithm change must fail loudly here, not just
        // against another in-process recomputation.
        assert_eq!(a.fingerprint(), 0xe3b5_a9c6_54f4_7baf);
        assert_eq!(a.fingerprint(), dummy(1_000, 10).fingerprint());
        assert_ne!(a.fingerprint(), dummy(1_000, 11).fingerprint());
        assert_ne!(a.fingerprint(), dummy(1_001, 10).fingerprint());
        let mut renamed = dummy(1_000, 10);
        renamed.policy = "q".into();
        assert_ne!(a.fingerprint(), renamed.fingerprint());
        let mut zero = dummy(1_000, 10);
        zero.fast_hit_frac = -0.0;
        assert_eq!(a.fingerprint(), zero.fingerprint(), "-0.0 == 0.0");
    }

    #[test]
    fn summary_from_histogram() {
        let mut h = LogHistogram::new();
        for v in [100u64, 200, 300, 400, 500] {
            h.record(v);
        }
        let s = LatencySummary::from_histogram(&h);
        assert!(s.p50_ns >= 200 && s.p50_ns <= 400);
        assert!(s.p99_ns >= s.p50_ns);
        assert!((s.mean_ns - 300.0).abs() < 1.0);
    }
}
