//! Hardware stream-prefetcher model.
//!
//! Modern cores detect sequential line streams and prefetch ahead, so a
//! streamed access costs memory *bandwidth* rather than full latency. This
//! matters for tiering fidelity: a slow-tier sequential sweep (GAP edge
//! arrays, SPEC grids) pays the CXL bandwidth penalty (20–70% of local,
//! paper Figure 1), not the 2–5× latency penalty — whereas random accesses
//! (graph property arrays, cache objects) eat the full latency. Without
//! this, streaming bytes dominate simulated runtimes and page placement
//! stops mattering, which is not how the paper's testbed behaves.

/// Number of concurrent streams tracked (typical L2 prefetchers track
/// 8–32).
const STREAMS: usize = 16;

/// Detects ascending or descending unit-line streams over up to 16
/// concurrent address sequences.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    /// Last line seen per tracked stream.
    heads: [u64; STREAMS],
    /// Round-robin replacement cursor.
    cursor: usize,
}

impl Default for StreamPrefetcher {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamPrefetcher {
    /// An empty prefetcher.
    pub fn new() -> Self {
        Self {
            heads: [u64::MAX; STREAMS],
            cursor: 0,
        }
    }

    /// Observes an access; returns `true` if it continues a tracked stream
    /// (i.e. the hardware would have prefetched it).
    ///
    /// The scan is branchless over all heads (a lane-wise match mask, then
    /// first-set-bit) rather than an early-exit loop: random accesses — the
    /// dominant case in cache workloads — miss every head, so the full scan
    /// is paid either way, and the flag-accumulating form lets the compiler
    /// vectorize it. Only the *first* matching head is updated, exactly as
    /// the sequential loop did, so the head state and every return value
    /// are identical.
    #[inline]
    pub fn observe(&mut self, addr: u64) -> bool {
        let line = addr >> 6;
        let mut mask = 0u32;
        for (i, &head) in self.heads.iter().enumerate() {
            // Same line, the next line, or one-line skip (stride-2 within a
            // page) all count as stream continuation; descending too.
            let matched = line.wrapping_sub(head) <= 2 || head.wrapping_sub(line) == 1;
            mask |= (matched as u32) << i;
        }
        if mask != 0 {
            self.heads[mask.trailing_zeros() as usize] = line;
            return true;
        }
        // New potential stream: install.
        self.heads[self.cursor] = line;
        self.cursor = (self.cursor + 1) % STREAMS;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_lines_stream_after_first() {
        let mut p = StreamPrefetcher::new();
        assert!(!p.observe(0x1000), "first touch trains the stream");
        assert!(p.observe(0x1040));
        assert!(p.observe(0x1080));
        assert!(p.observe(0x10C0));
    }

    #[test]
    fn random_accesses_do_not_stream() {
        let mut p = StreamPrefetcher::new();
        let mut x = 12345u64;
        let mut hits = 0;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
            if p.observe((x >> 16) << 12) {
                hits += 1;
            }
        }
        assert!(hits < 50, "{hits} spurious stream hits on random addresses");
    }

    #[test]
    fn interleaved_streams_are_tracked() {
        let mut p = StreamPrefetcher::new();
        p.observe(0x10000);
        p.observe(0x90000);
        // Interleave two streams; both should hit after training.
        let mut hits = 0;
        for i in 1..20u64 {
            if p.observe(0x10000 + i * 64) {
                hits += 1;
            }
            if p.observe(0x90000 + i * 64) {
                hits += 1;
            }
        }
        assert_eq!(hits, 38, "both streams should continue hitting");
    }

    #[test]
    fn same_line_counts_as_hit_once_trained() {
        let mut p = StreamPrefetcher::new();
        p.observe(0x2000);
        assert!(p.observe(0x2010), "same line re-touch is covered");
    }

    #[test]
    fn descending_stream_detected() {
        let mut p = StreamPrefetcher::new();
        p.observe(0x8000);
        assert!(p.observe(0x8000 - 64));
        assert!(p.observe(0x8000 - 128));
    }
}
