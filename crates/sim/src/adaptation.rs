//! Adaptation-time measurement (paper Figure 4 / Table 3).
//!
//! The paper measures "the amount of time required ... to adapt to a new
//! hotness distribution" as the time from the distribution change until the
//! median latency "reach[es] within 1% of the steady-state median latency"
//! (Table 3 caption).

use crate::report::TimelinePoint;

/// Steady-state latency: the median of the window-mean series over the
/// final `tail_frac` of the post-shift region.
pub fn steady_state_p50(timeline: &[TimelinePoint], shift_ns: u64, tail_frac: f64) -> Option<u64> {
    let post: Vec<u64> = timeline
        .iter()
        .filter(|p| p.t_ns > shift_ns && p.ops > 0)
        .map(|p| p.mean_ns)
        .collect();
    if post.is_empty() {
        return None;
    }
    let tail_len = ((post.len() as f64 * tail_frac).ceil() as usize).clamp(1, post.len());
    let mut tail: Vec<u64> = post[post.len() - tail_len..].to_vec();
    tail.sort_unstable();
    Some(tail[tail.len() / 2])
}

/// Time (ns after `shift_ns`) for the timeline to converge to within
/// `tolerance` (e.g. 0.01 = 1%) of the steady-state median and stay there
/// for `stable_windows` consecutive windows. `None` if it never converges.
pub fn adaptation_time_ns(
    timeline: &[TimelinePoint],
    shift_ns: u64,
    tolerance: f64,
    stable_windows: usize,
) -> Option<u64> {
    let steady = steady_state_p50(timeline, shift_ns, 0.25)? as f64;
    let bound = steady * (1.0 + tolerance);
    let post: Vec<&TimelinePoint> = timeline
        .iter()
        .filter(|p| p.t_ns > shift_ns && p.ops > 0)
        .collect();
    let need = stable_windows.max(1);
    let mut run = 0usize;
    for p in &post {
        if (p.mean_ns as f64) <= bound {
            run += 1;
            if run >= need {
                // Converged at the *start* of this stable run.
                let idx = post.iter().position(|q| q.t_ns == p.t_ns).unwrap();
                let first = post[idx + 1 - need];
                return Some(first.t_ns.saturating_sub(shift_ns));
            }
        } else {
            run = 0;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tl(points: &[(u64, u64)]) -> Vec<TimelinePoint> {
        points
            .iter()
            .map(|&(t_ns, p50_ns)| TimelinePoint {
                t_ns,
                p50_ns,
                mean_ns: p50_ns,
                ops: 100,
            })
            .collect()
    }

    #[test]
    fn steady_state_is_tail_median() {
        let timeline = tl(&[
            (100, 900),
            (200, 800),
            (300, 700),
            (400, 600),
            (500, 600),
            (600, 600),
            (700, 600),
            (800, 600),
        ]);
        assert_eq!(steady_state_p50(&timeline, 0, 0.5), Some(600));
    }

    #[test]
    fn adaptation_finds_convergence_point() {
        // Shift at t=100; latency spikes then recovers at t=500.
        let timeline = tl(&[
            (100, 600),
            (200, 1000),
            (300, 950),
            (400, 800),
            (500, 605),
            (600, 600),
            (700, 600),
            (800, 600),
        ]);
        let t = adaptation_time_ns(&timeline, 100, 0.01, 2).unwrap();
        assert_eq!(t, 400, "converges at t=500, i.e. 400ns after the shift");
    }

    #[test]
    fn unstable_dips_do_not_count() {
        // Dips to steady state at 300 but bounces back up; real convergence
        // only at 700.
        let timeline = tl(&[
            (200, 1000),
            (300, 600),
            (400, 1000),
            (500, 1000),
            (600, 1000),
            (700, 600),
            (800, 600),
            (900, 600),
            (1000, 600),
        ]);
        let t = adaptation_time_ns(&timeline, 100, 0.01, 3).unwrap();
        assert_eq!(t, 600);
    }

    #[test]
    fn never_converging_returns_none() {
        // Latency keeps rising: the tail median is the steady state but the
        // early windows never reach it... construct monotonically rising.
        let timeline = tl(&[(200, 600), (300, 700), (400, 800), (500, 900)]);
        // Steady = median of tail (800,900) region; early windows are BELOW
        // it, so they converge immediately — instead test empty post-shift.
        assert_eq!(adaptation_time_ns(&timeline, 1_000, 0.01, 2), None);
        assert_eq!(steady_state_p50(&timeline, 1_000, 0.25), None);
    }

    #[test]
    fn empty_windows_excluded() {
        let mut timeline = tl(&[(200, 5000), (300, 600), (400, 600)]);
        timeline.insert(
            1,
            TimelinePoint {
                t_ns: 250,
                p50_ns: 0,
                mean_ns: 0,
                ops: 0,
            },
        );
        let t = adaptation_time_ns(&timeline, 100, 0.01, 2).unwrap();
        assert_eq!(t, 200);
    }
}
