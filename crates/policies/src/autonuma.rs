//! AutoNUMA: Linux NUMA-balancing recency tiering.
//!
//! AutoNUMA "periodically scans the application address space and unmaps
//! 256 MB of pages. The time elapsed between when an unmapped page is
//! accessed and when it was unmapped is the hint fault latency. If a page
//! has hint fault latency of less than 1 second, it is promoted, regardless
//! of its historical access statistics" (paper §2.3.2).
//!
//! The two recency weaknesses the paper demonstrates arise structurally:
//! a single recent access promotes a cold page (no frequency filter), and
//! under fast-tier pressure those mispromotions crowd out genuinely hot
//! pages. Demotion follows the MGLRU configuration the paper enables:
//! pages whose last hint fault is oldest are demoted first.

use tiering_mem::{PageId, Tier, TierConfig, TieredMemory};

use crate::chain::DemotionChain;
use crate::policy::{PolicyCtx, TieringPolicy};

const SCAN_PAGE_NS: u64 = 10;
const FAULT_SERVICE_NS: u64 = 250;

/// Configuration of [`AutoNumaPolicy`].
#[derive(Debug, Clone)]
pub struct AutoNumaConfig {
    /// Pages unmapped per scan window (256 MB at paper scale; scaled down
    /// with the footprints here).
    pub scan_window_pages: u64,
    /// Interval between scan windows.
    pub scan_interval_ns: u64,
    /// Hint-fault latency below which a slow-tier page is promoted
    /// (paper: 1 second).
    pub promote_latency_ns: u64,
    /// Demotion trigger watermark.
    pub promo_wmark: f64,
    /// Demotion target watermark.
    pub demote_wmark: f64,
    /// Max pages demoted per pressure event.
    pub max_demote_per_call: u64,
}

impl Default for AutoNumaConfig {
    fn default() -> Self {
        Self {
            scan_window_pages: 1_024,
            scan_interval_ns: 10_000_000, // 10 ms (paper-scale seconds, compressed ~1000x)
            promote_latency_ns: 20_000_000, // 20 ms (paper: 1 s)
            promo_wmark: 0.02,
            demote_wmark: 0.06,
            max_demote_per_call: 4_096,
        }
    }
}

/// The AutoNUMA policy.
#[derive(Debug)]
pub struct AutoNumaPolicy {
    config: AutoNumaConfig,
    /// Per-page unmap timestamp; 0 = currently mapped (no pending hint
    /// fault).
    unmapped_at: Vec<u64>,
    /// Per-page last hint-fault time (the recency signal MGLRU demotes by).
    last_fault: Vec<u64>,
    scan_cursor: u64,
    next_scan_ns: u64,
    demote_cursor: u64,
    chain: DemotionChain,
}

impl AutoNumaPolicy {
    /// Builds AutoNUMA for the given address space.
    pub fn new(mut config: AutoNumaConfig, tier_cfg: &TierConfig) -> Self {
        let n = tier_cfg.address_space_pages as usize;
        // Keep the full-sweep period roughly footprint-independent.
        config.scan_window_pages = config.scan_window_pages.max(n as u64 / 64);
        Self {
            config,
            unmapped_at: vec![0; n],
            last_fault: vec![0; n],
            scan_cursor: 0,
            next_scan_ns: 0,
            demote_cursor: 0,
            chain: DemotionChain::new(),
        }
    }

    /// Unmaps the next scan window (the periodic kernel scanner).
    fn scan_window(&mut self, now_ns: u64, ctx: &mut PolicyCtx) {
        let n = self.unmapped_at.len() as u64;
        if n == 0 {
            return;
        }
        let window = self.config.scan_window_pages.min(n);
        for _ in 0..window {
            self.unmapped_at[self.scan_cursor as usize] = now_ns.max(1);
            self.scan_cursor = (self.scan_cursor + 1) % n;
        }
        ctx.tiering_work_ns += window * SCAN_PAGE_NS;
    }

    /// Demotes coldest-by-recency fast-tier pages until the target
    /// watermark (MGLRU aging approximation: oldest `last_fault` first,
    /// found by a clock-style sweep).
    fn demote_pressure(&mut self, now_ns: u64, mem: &mut TieredMemory, ctx: &mut PolicyCtx) {
        let n = mem.address_space_pages();
        if n == 0 {
            return;
        }
        // Two sweeps: first demote pages never faulted recently (older than
        // 2 scan intervals), then anything fast if still over watermark.
        let stale_cutoff = now_ns.saturating_sub(2 * self.config.scan_interval_ns);
        for pass in 0..2 {
            let mut scanned = 0u64;
            while mem.fast_free_below(self.config.demote_wmark)
                && scanned < self.config.max_demote_per_call.min(n)
            {
                let page = PageId(self.demote_cursor);
                self.demote_cursor = (self.demote_cursor + 1) % n;
                scanned += 1;
                ctx.tiering_work_ns += SCAN_PAGE_NS;
                if mem.tier_of(page) != Some(Tier::Fast) {
                    continue;
                }
                let stale = self.last_fault[page.0 as usize] <= stale_cutoff;
                if pass == 1 || stale {
                    let _ = mem.demote(page);
                }
            }
            if !mem.fast_free_below(self.config.demote_wmark) {
                break;
            }
        }
    }
}

impl TieringPolicy for AutoNumaPolicy {
    fn name(&self) -> &'static str {
        "AutoNUMA"
    }

    fn wants_access_hook(&self) -> bool {
        true
    }

    fn on_access(
        &mut self,
        page: PageId,
        now_ns: u64,
        mem: &mut TieredMemory,
        ctx: &mut PolicyCtx,
    ) -> u64 {
        let idx = page.0 as usize;
        let unmapped = self.unmapped_at[idx];
        if unmapped == 0 {
            return 0; // mapped: no hint fault, zero overhead
        }
        // Hint fault: re-map and evaluate recency.
        self.unmapped_at[idx] = 0;
        self.last_fault[idx] = now_ns.max(1);
        let latency = now_ns.saturating_sub(unmapped);
        if mem.tier_of(page) == Some(Tier::Slow) && latency < self.config.promote_latency_ns {
            if mem.fast_free() == 0 {
                self.demote_pressure(now_ns, mem, ctx);
            }
            let _ = mem.promote(page);
        }
        FAULT_SERVICE_NS
    }

    fn on_access_batch(
        &mut self,
        pages: &[PageId],
        now_ns: u64,
        mem: &mut TieredMemory,
        ctx: &mut PolicyCtx,
    ) -> u64 {
        // Fused hint-fault loop: skip already-mapped pages (the common case
        // between scan windows) with one array probe each, paying the full
        // fault path only for genuinely unmapped entries.
        let mut total = 0;
        for &page in pages {
            if self.unmapped_at[page.0 as usize] == 0 {
                continue;
            }
            total += self.on_access(page, now_ns, mem, ctx);
        }
        total
    }

    fn on_tick(&mut self, now_ns: u64, mem: &mut TieredMemory, ctx: &mut PolicyCtx) {
        if now_ns >= self.next_scan_ns {
            self.scan_window(now_ns, ctx);
            self.next_scan_ns = now_ns + self.config.scan_interval_ns;
        }
        if mem.fast_free_below(self.config.promo_wmark) {
            self.demote_pressure(now_ns, mem, ctx);
        }
        // Cascade watermark pressure down any middle rungs (no-op on the
        // 2-tier testbed).
        self.chain.cascade(
            mem,
            self.config.demote_wmark,
            self.config.max_demote_per_call,
            ctx,
        );
    }

    fn metadata_bytes(&self) -> usize {
        // Two u64 timestamps per page.
        self.unmapped_at.len() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiering_mem::{PageSize, TierRatio};

    fn setup() -> (AutoNumaPolicy, TieredMemory) {
        let cfg = TierConfig::for_footprint(512, TierRatio::OneTo8, PageSize::Base4K);
        (
            AutoNumaPolicy::new(AutoNumaConfig::default(), &cfg),
            TieredMemory::new(cfg),
        )
    }

    #[test]
    fn no_fault_no_overhead() {
        let (mut p, mut mem) = setup();
        let mut ctx = PolicyCtx::new();
        mem.ensure_mapped(PageId(1), Tier::Slow);
        assert_eq!(p.on_access(PageId(1), 100, &mut mem, &mut ctx), 0);
        assert_eq!(mem.tier_of(PageId(1)), Some(Tier::Slow));
    }

    #[test]
    fn recent_fault_promotes_even_single_access() {
        let (mut p, mut mem) = setup();
        let mut ctx = PolicyCtx::new();
        mem.ensure_mapped(PageId(1), Tier::Slow);
        p.on_tick(1_000, &mut mem, &mut ctx); // unmaps a window incl. page 1
        let cost = p.on_access(PageId(1), 2_000, &mut mem, &mut ctx);
        assert!(cost > 0, "hint fault must cost time");
        assert_eq!(
            mem.tier_of(PageId(1)),
            Some(Tier::Fast),
            "one recent access suffices for promotion (the recency weakness)"
        );
    }

    #[test]
    fn old_fault_does_not_promote() {
        let (mut p, mut mem) = setup();
        let mut ctx = PolicyCtx::new();
        mem.ensure_mapped(PageId(1), Tier::Slow);
        p.on_tick(1_000, &mut mem, &mut ctx);
        // Access arrives 2 simulated seconds later: above the 1 s threshold.
        let cost = p.on_access(PageId(1), 2_001_001_000, &mut mem, &mut ctx);
        assert!(cost > 0);
        assert_eq!(mem.tier_of(PageId(1)), Some(Tier::Slow));
    }

    #[test]
    fn fault_fires_once_until_rescanned() {
        let (mut p, mut mem) = setup();
        let mut ctx = PolicyCtx::new();
        mem.ensure_mapped(PageId(3), Tier::Fast);
        p.on_tick(0, &mut mem, &mut ctx);
        assert!(p.on_access(PageId(3), 10, &mut mem, &mut ctx) > 0);
        assert_eq!(p.on_access(PageId(3), 20, &mut mem, &mut ctx), 0);
    }

    #[test]
    fn pressure_demotes_stalest_pages() {
        let (mut p, mut mem) = setup();
        let mut ctx = PolicyCtx::new();
        let cap = mem.config().fast_capacity_pages;
        for i in 0..cap {
            mem.ensure_mapped(PageId(i), Tier::Fast);
        }
        // Fault page 0 recently so it is "fresh".
        p.on_tick(0, &mut mem, &mut ctx);
        let t = 10_000_000_000;
        p.on_tick(t, &mut mem, &mut ctx); // rescan
        p.on_access(PageId(0), t + 1_000, &mut mem, &mut ctx);
        // Trigger pressure demotion.
        p.demote_pressure(t + 2_000, &mut mem, &mut ctx);
        assert!(mem.stats().demotions > 0);
        assert_eq!(
            mem.tier_of(PageId(0)),
            Some(Tier::Fast),
            "recently faulted page survives MGLRU-style demotion"
        );
    }

    #[test]
    fn metadata_is_two_words_per_page() {
        let cfg = TierConfig::for_footprint(1_000, TierRatio::OneTo8, PageSize::Base4K);
        let p = AutoNumaPolicy::new(AutoNumaConfig::default(), &cfg);
        assert_eq!(p.metadata_bytes(), 16_000);
    }
}
