//! The policy trait and engine↔policy context.

use tiering_mem::{PageId, Tier, TierConfig, TieredMemory};
use tiering_trace::Sample;

/// Per-call context through which a policy reports its own resource usage
/// back to the engine.
///
/// * `metadata_lines` — cache-line addresses the policy's metadata update
///   touched; the engine replays them through the cache simulator attributed
///   to the tiering source (paper Figures 5/13/14).
/// * `tiering_work_ns` — CPU time the tiering runtime spent (scans, syscall
///   overhead); the engine charges a configurable fraction of it to the
///   application to model interference from the co-located tiering thread.
#[derive(Debug, Default)]
pub struct PolicyCtx {
    /// Metadata cache-line addresses touched since the engine last drained.
    pub metadata_lines: Vec<u64>,
    /// Tiering-thread CPU time accumulated since the engine last drained.
    pub tiering_work_ns: u64,
}

impl PolicyCtx {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears accumulated usage (the engine calls this after draining).
    pub fn drain(&mut self) {
        self.metadata_lines.clear();
        self.tiering_work_ns = 0;
    }
}

/// A sampled marginal-utility curve: cumulative access mass captured at
/// increasing fast-page allocations, the richer demand signal behind
/// [`TieringPolicy::demand_curve`].
///
/// Points are `(pages, mass)` with pages strictly increasing and mass
/// non-decreasing — each point says "with this many fast pages, this much
/// of the tenant's observed access mass is served fast". Policies with a
/// hotness histogram sample it from suffix sums
/// ([`HotnessHistogram::marginal_curve`](crate::HotnessHistogram::marginal_curve));
/// the default is a single-point curve at the policy's scalar demand
/// estimate. Objectives distill a curve into whatever scalar they can use
/// (`SloUtility`: the smallest allocation capturing its SLO fraction of
/// the mass).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DemandCurve {
    points: Vec<(u64, u64)>,
}

impl DemandCurve {
    /// A curve from explicit `(pages, cumulative mass)` points.
    ///
    /// # Panics
    ///
    /// Panics unless pages are strictly increasing and mass non-decreasing.
    pub fn from_points(points: Vec<(u64, u64)>) -> Self {
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "curve pages must strictly increase");
            assert!(w[0].1 <= w[1].1, "curve mass must not decrease");
        }
        Self { points }
    }

    /// The degenerate single-point curve — all observed mass at `pages` —
    /// which makes every consumer behave exactly like the scalar
    /// point-estimate path.
    pub fn point(pages: u64) -> Self {
        Self {
            points: vec![(pages, 1)],
        }
    }

    /// The sampled points, pages ascending.
    pub fn points(&self) -> &[(u64, u64)] {
        &self.points
    }

    /// Whether the curve carries no information (no points, or no mass).
    pub fn is_empty(&self) -> bool {
        self.total_mass() == 0
    }

    /// Total observed access mass (the last point's cumulative mass).
    pub fn total_mass(&self) -> u64 {
        self.points.last().map_or(0, |&(_, m)| m)
    }

    /// The smallest sampled allocation capturing at least `frac` of the
    /// total access mass; `None` for empty curves or `frac` outside
    /// `(0, 1]` (consumers then keep their point-estimate path).
    pub fn pages_for_mass_fraction(&self, frac: f64) -> Option<u64> {
        if self.is_empty() || !(frac > 0.0 && frac <= 1.0) {
            return None;
        }
        let target = (self.total_mass() as f64 * frac).ceil() as u64;
        self.points
            .iter()
            .find(|&&(_, mass)| mass >= target)
            .map(|&(pages, _)| pages)
    }
}

/// A memory tiering policy.
///
/// The engine drives a policy with three kinds of events:
///
/// 1. [`on_access`](TieringPolicy::on_access) — every application access,
///    but only if [`wants_access_hook`](TieringPolicy::wants_access_hook)
///    returns `true`. Fault-driven policies (AutoNUMA, TPP) use this to
///    model NUMA hint faults; the returned nanoseconds are charged
///    *synchronously* to the faulting access.
/// 2. [`on_sample`](TieringPolicy::on_sample) — every PEBS sample, for
///    hardware-sampling policies (HybridTier, Memtis, ARC, TwoQ).
/// 3. [`on_tick`](TieringPolicy::on_tick) — periodic maintenance (cooling,
///    demotion scans, watermark checks).
pub trait TieringPolicy {
    /// Display name used in reports (matches the paper's legends).
    fn name(&self) -> &'static str;

    /// Tier preference for first-touch allocation of new pages.
    ///
    /// Linux (and TPP) allocate top-tier first; the paper places ARC/TwoQ
    /// allocations in the slow tier (§5.2).
    fn preferred_alloc_tier(&self) -> Tier {
        Tier::Fast
    }

    /// Whether the engine should invoke [`on_access`](Self::on_access) for
    /// every application access (fault-driven policies only — it is the
    /// expensive path).
    fn wants_access_hook(&self) -> bool {
        false
    }

    /// Observes one application access; returns extra nanoseconds charged to
    /// it (e.g. hint-fault service time).
    fn on_access(
        &mut self,
        _page: PageId,
        _now_ns: u64,
        _mem: &mut TieredMemory,
        _ctx: &mut PolicyCtx,
    ) -> u64 {
        0
    }

    /// Observes one PEBS sample.
    fn on_sample(&mut self, _sample: Sample, _mem: &mut TieredMemory, _ctx: &mut PolicyCtx) {}

    /// Observes a burst of faulting accesses (one op's worth) in a single
    /// call, returning the total extra nanoseconds charged to the op.
    ///
    /// The batched engine pipeline collects each operation's accesses and
    /// delivers them together, so the virtual-dispatch cost is paid once per
    /// op instead of once per access. The default loops
    /// [`on_access`](Self::on_access); fault-driven policies override it
    /// with a fused loop. Overrides must leave the policy in exactly the
    /// state the scalar loop would — the engine's scalar and batched paths
    /// are asserted bit-identical.
    fn on_access_batch(
        &mut self,
        pages: &[PageId],
        now_ns: u64,
        mem: &mut TieredMemory,
        ctx: &mut PolicyCtx,
    ) -> u64 {
        let mut total = 0;
        for &page in pages {
            total += self.on_access(page, now_ns, mem, ctx);
        }
        total
    }

    /// Ingests a burst of PEBS samples (one op's worth) in a single call —
    /// the batched analogue of [`on_sample`](Self::on_sample), mirroring
    /// how the real tiering thread drains the PEBS buffer in runs rather
    /// than one record at a time (paper Algorithm 1).
    ///
    /// The default loops the scalar hook; sampling-driven policies override
    /// it to amortize dispatch and tracker-update setup. Overrides must be
    /// state-identical to the scalar loop.
    fn on_sample_batch(&mut self, samples: &[Sample], mem: &mut TieredMemory, ctx: &mut PolicyCtx) {
        for &sample in samples {
            self.on_sample(sample, mem, ctx);
        }
    }

    /// Periodic maintenance, called every engine tick.
    fn on_tick(&mut self, _now_ns: u64, _mem: &mut TieredMemory, _ctx: &mut PolicyCtx) {}

    /// Demand signal for the global controller of paper §7: how many fast
    /// pages this tenant's application currently wants. The default reports
    /// demonstrated residency (pages resident in the fast tier), which every
    /// policy can answer; sampling policies with a hotness histogram
    /// (HybridTier) override it with their measured hot-set size, which can
    /// exceed the current quota and therefore lets a squeezed tenant ask
    /// for more.
    fn fast_demand_pages(&self, mem: &TieredMemory) -> u64 {
        mem.fast_used()
    }

    /// The marginal-utility form of the demand signal: how much access
    /// mass each candidate fast allocation would capture. The default is
    /// the single-point curve at [`fast_demand_pages`](Self::fast_demand_pages)
    /// — exactly the information the scalar signal carries — so nothing
    /// changes for policies (or controllers) that don't opt in. Policies
    /// with a hotness histogram (HybridTier) override it with real
    /// curvature sampled from the histogram's suffix sums.
    fn demand_curve(&self, mem: &TieredMemory) -> DemandCurve {
        DemandCurve::point(self.fast_demand_pages(mem))
    }

    /// Bytes of tiering metadata currently allocated (paper Table 4).
    fn metadata_bytes(&self) -> usize;

    /// One-line internal-state summary for diagnostics (thresholds, queue
    /// depths); empty by default.
    fn debug_state(&self) -> String {
        String::new()
    }
}

/// The policies evaluated in the paper, as buildable identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// HybridTier (this paper).
    HybridTier,
    /// HybridTier with the momentum tracker disabled (Figure 15 ablation,
    /// "HybridTier-onlyFreqCBF").
    HybridTierFreqOnly,
    /// HybridTier with a standard (unblocked) CBF (Figure 14 ablation,
    /// "HybridTier-CBF").
    HybridTierUnblocked,
    /// Memtis (frequency-based state of the art).
    Memtis,
    /// Linux AutoNUMA balancing.
    AutoNuma,
    /// TPP.
    Tpp,
    /// ARC adapted to tiering.
    Arc,
    /// TwoQ adapted to tiering.
    TwoQ,
    /// NeoMem-style device-side counter sampling: the CXL device counts
    /// accesses to its own pages in hardware; the host pays only for
    /// periodic readouts. A third observation mode (exact device counters)
    /// alongside host PEBS sampling and CBF compression — an additional
    /// comparison axis, not part of the paper's six-way figure set.
    NeoMem,
    /// All-fast-tier upper bound.
    AllFast,
    /// First-touch placement with no migration (lower bound).
    FirstTouch,
}

impl PolicyKind {
    /// The six systems compared in Figures 9/10 plus bounds, in plot order.
    pub const COMPARED: [PolicyKind; 6] = [
        PolicyKind::Tpp,
        PolicyKind::AutoNuma,
        PolicyKind::Memtis,
        PolicyKind::Arc,
        PolicyKind::TwoQ,
        PolicyKind::HybridTier,
    ];

    /// Label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::HybridTier => "HybridTier",
            PolicyKind::HybridTierFreqOnly => "HybridTier-onlyFreqCBF",
            PolicyKind::HybridTierUnblocked => "HybridTier-CBF",
            PolicyKind::Memtis => "Memtis",
            PolicyKind::AutoNuma => "AutoNUMA",
            PolicyKind::Tpp => "TPP",
            PolicyKind::Arc => "ARC",
            PolicyKind::TwoQ => "TwoQ",
            PolicyKind::NeoMem => "NeoMem",
            PolicyKind::AllFast => "AllFast",
            PolicyKind::FirstTouch => "FirstTouch",
        }
    }
}

/// Receiver for [`visit_policy`]: `visit` is called with the *concretely
/// typed* policy for a [`PolicyKind`], so a caller generic over
/// [`TieringPolicy`] is monomorphized for it. The engine's typed pipeline
/// uses this to resolve policy dispatch once per run instead of once per
/// batched virtual call; [`build_policy`] is the type-erasing special case.
pub trait PolicyVisitor {
    /// The visit result.
    type Out;
    /// Called with the built policy (same construction as [`build_policy`]).
    fn visit<P: TieringPolicy + 'static>(self, policy: P) -> Self::Out;
}

/// Builds the policy for `kind` with the crate's default (scaled) parameters
/// and passes it, concretely typed, to `visitor` — the dispatch-once
/// counterpart of [`build_policy`].
pub fn visit_policy<V: PolicyVisitor>(kind: PolicyKind, cfg: &TierConfig, visitor: V) -> V::Out {
    use crate::{
        AllFastPolicy, ArcPolicy, AutoNumaPolicy, FirstTouchPolicy, HybridTierConfig,
        HybridTierPolicy, MemtisPolicy, NeoMemPolicy, TppPolicy, TwoQPolicy,
    };
    match kind {
        PolicyKind::HybridTier => {
            visitor.visit(HybridTierPolicy::new(HybridTierConfig::scaled(cfg), cfg))
        }
        PolicyKind::HybridTierFreqOnly => {
            let c = HybridTierConfig::scaled(cfg).without_momentum();
            visitor.visit(HybridTierPolicy::new(c, cfg))
        }
        PolicyKind::HybridTierUnblocked => {
            let c = HybridTierConfig::scaled(cfg).with_layout(crate::TrackerLayout::Standard);
            visitor.visit(HybridTierPolicy::new(c, cfg))
        }
        PolicyKind::Memtis => visitor.visit(MemtisPolicy::new(Default::default(), cfg)),
        PolicyKind::AutoNuma => visitor.visit(AutoNumaPolicy::new(Default::default(), cfg)),
        PolicyKind::Tpp => visitor.visit(TppPolicy::new(Default::default(), cfg)),
        PolicyKind::Arc => visitor.visit(ArcPolicy::new(cfg)),
        PolicyKind::TwoQ => visitor.visit(TwoQPolicy::new(cfg)),
        PolicyKind::NeoMem => visitor.visit(NeoMemPolicy::new(Default::default(), cfg)),
        PolicyKind::AllFast => visitor.visit(AllFastPolicy::new()),
        PolicyKind::FirstTouch => visitor.visit(FirstTouchPolicy::new()),
    }
}

/// Builds a policy with the crate's default (scaled) parameters for the
/// given tier configuration.
pub fn build_policy(kind: PolicyKind, cfg: &TierConfig) -> Box<dyn TieringPolicy> {
    struct BoxIt;
    impl PolicyVisitor for BoxIt {
        type Out = Box<dyn TieringPolicy>;
        fn visit<P: TieringPolicy + 'static>(self, policy: P) -> Self::Out {
            Box::new(policy)
        }
    }
    visit_policy(kind, cfg, BoxIt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiering_mem::PageSize;

    #[test]
    fn all_kinds_build() {
        let cfg =
            TierConfig::for_footprint(10_000, tiering_mem::TierRatio::OneTo8, PageSize::Base4K);
        for kind in [
            PolicyKind::HybridTier,
            PolicyKind::HybridTierFreqOnly,
            PolicyKind::HybridTierUnblocked,
            PolicyKind::Memtis,
            PolicyKind::AutoNuma,
            PolicyKind::Tpp,
            PolicyKind::Arc,
            PolicyKind::TwoQ,
            PolicyKind::NeoMem,
            PolicyKind::AllFast,
            PolicyKind::FirstTouch,
        ] {
            let p = build_policy(kind, &cfg);
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn compared_set_matches_paper() {
        assert_eq!(PolicyKind::COMPARED.len(), 6);
        assert!(PolicyKind::COMPARED.contains(&PolicyKind::HybridTier));
        assert!(PolicyKind::COMPARED.contains(&PolicyKind::Memtis));
    }

    #[test]
    fn ctx_drain_clears() {
        let mut ctx = PolicyCtx::new();
        ctx.metadata_lines.push(64);
        ctx.tiering_work_ns = 5;
        ctx.drain();
        assert!(ctx.metadata_lines.is_empty());
        assert_eq!(ctx.tiering_work_ns, 0);
    }

    #[test]
    fn demand_curve_fraction_lookup() {
        let c = DemandCurve::from_points(vec![(10, 50), (40, 90), (100, 100)]);
        assert_eq!(c.total_mass(), 100);
        assert_eq!(c.pages_for_mass_fraction(0.5), Some(10));
        assert_eq!(c.pages_for_mass_fraction(0.51), Some(40));
        assert_eq!(c.pages_for_mass_fraction(0.9), Some(40));
        assert_eq!(c.pages_for_mass_fraction(1.0), Some(100));
        assert_eq!(c.pages_for_mass_fraction(0.0), None);
        assert_eq!(c.pages_for_mass_fraction(1.5), None);
        assert_eq!(DemandCurve::default().pages_for_mass_fraction(0.5), None);
    }

    #[test]
    fn point_curve_degenerates_to_the_estimate() {
        let c = DemandCurve::point(64);
        assert_eq!(c.pages_for_mass_fraction(0.5), Some(64));
        assert_eq!(c.pages_for_mass_fraction(1.0), Some(64));
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn non_increasing_pages_rejected() {
        let _ = DemandCurve::from_points(vec![(10, 50), (10, 60)]);
    }

    #[test]
    #[should_panic(expected = "must not decrease")]
    fn decreasing_mass_rejected() {
        let _ = DemandCurve::from_points(vec![(10, 50), (20, 40)]);
    }
}
