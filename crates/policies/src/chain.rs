//! Demotion chains: cascading watermark pressure down an N-tier ladder.
//!
//! On two tiers, watermark demotion ends at "slow" — there is nowhere
//! colder. On a ladder (DRAM → CXL → NVMe → …) the same pressure must
//! *cascade*: demoting fast-tier excess fills the next rung, whose own
//! watermark then pushes its coldest residents another hop down, and so on
//! to the bottom (TPP's multi-NUMA-node demotion targets work exactly this
//! way). [`DemotionChain`] packages that cascade so every watermark policy
//! can bolt it onto its existing 2-tier demotion logic: on a 2-tier memory
//! there are no middle rungs and [`cascade`](DemotionChain::cascade) is a
//! structural no-op — zero scans, zero charge, zero state change — which is
//! what keeps the 2-tier golden trajectories byte-identical.

use tiering_mem::TieredMemory;

use crate::policy::PolicyCtx;

/// Cost charged per page-table entry scanned by a cascade sweep, matching
/// the clock-scan cost the 2-tier demotion paths charge.
const SCAN_PAGE_NS: u64 = 10;

/// Per-rung clock cursors driving watermark cascades down a tier ladder.
///
/// One instance lives inside each watermark policy; cursors persist across
/// ticks so successive sweeps resume where the last one stopped (the same
/// clock discipline the 2-tier demotion scans use).
#[derive(Debug, Clone, Default)]
pub struct DemotionChain {
    /// Clock cursor per ladder rung (grown on first use).
    cursors: Vec<u64>,
}

impl DemotionChain {
    /// Creates a chain with no per-rung state yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cascades watermark pressure down every *middle* rung of the ladder:
    /// for each tier `t` in `1..bottom`, while `t`'s free fraction is
    /// (exactly) below `wmark`, clock-scan the address space demoting
    /// residents of `t` one hop toward `t + 1`, up to `max_per_tier` page
    /// moves per rung per call. The fast tier (rung 0) is *not* touched —
    /// that is the policy's own demotion logic — and on a 2-tier memory
    /// the middle range is empty, making this a no-op.
    ///
    /// Returns the number of pages moved; scan work is charged to `ctx` at
    /// the same per-entry rate the 2-tier demotion scans use.
    pub fn cascade(
        &mut self,
        mem: &mut TieredMemory,
        wmark: f64,
        max_per_tier: u64,
        ctx: &mut PolicyCtx,
    ) -> u64 {
        let bottom = mem.n_tiers() - 1;
        if bottom < 2 {
            return 0;
        }
        if self.cursors.len() < bottom {
            self.cursors.resize(bottom, 0);
        }
        let n = mem.address_space_pages();
        if n == 0 {
            return 0;
        }
        let mut moved_total = 0u64;
        for t in 1..bottom {
            let mut moved = 0u64;
            let mut scanned = 0u64;
            // Bound the sweep by one full revolution: if a rung is over
            // watermark but holds nothing demotable (everything already
            // moved this call), stop rather than spin.
            while mem.tier_free_below(t, wmark) && moved < max_per_tier && scanned < n {
                let page = tiering_mem::PageId(self.cursors[t]);
                self.cursors[t] = (self.cursors[t] + 1) % n;
                scanned += 1;
                ctx.tiering_work_ns += SCAN_PAGE_NS;
                if mem.tier_index_of(page) == Some(t) && mem.demote_toward(page, t + 1).is_ok() {
                    moved += 1;
                }
            }
            moved_total += moved;
        }
        moved_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiering_mem::{PageId, PageSize, Tier, TierConfig, TierTopology, TieredMemory};

    #[test]
    fn two_tier_cascade_is_a_structural_noop() {
        let cfg = TierConfig::for_footprint(512, tiering_mem::TierRatio::OneTo8, PageSize::Base4K);
        let mut mem = TieredMemory::new(cfg);
        for i in 0..512 {
            mem.ensure_mapped(PageId(i), Tier::Fast);
        }
        let mut chain = DemotionChain::new();
        let mut ctx = PolicyCtx::new();
        let before = mem.stats();
        assert_eq!(chain.cascade(&mut mem, 0.9, 4_096, &mut ctx), 0);
        assert_eq!(mem.stats(), before, "no migrations");
        assert_eq!(ctx.tiering_work_ns, 0, "no scan work charged");
        assert!(chain.cursors.is_empty(), "no per-rung state allocated");
    }

    #[test]
    fn cascade_drains_a_pressured_middle_rung() {
        // dram 10 / cxl 40 / nvme 80.
        let topo = TierTopology::three_tier_dram_cxl_nvme(80, PageSize::Base4K);
        let mut mem = TieredMemory::with_topology(topo);
        for i in 0..40 {
            mem.ensure_mapped(PageId(i), Tier::Slow); // fills cxl (tier 1)
        }
        assert_eq!(mem.tier_free(1), 0);
        let mut chain = DemotionChain::new();
        let mut ctx = PolicyCtx::new();
        let moved = chain.cascade(&mut mem, 0.1, 4_096, &mut ctx);
        assert!(moved > 0);
        assert!(
            !mem.tier_free_below(1, 0.1),
            "cxl pressure relieved: free frac {} of capacity",
            mem.tier_free(1)
        );
        assert_eq!(mem.tier_used(2), moved, "excess landed one rung down");
        assert!(ctx.tiering_work_ns > 0, "scan work charged");
    }

    #[test]
    fn cascade_respects_the_per_tier_move_budget() {
        let topo = TierTopology::three_tier_dram_cxl_nvme(80, PageSize::Base4K);
        let mut mem = TieredMemory::with_topology(topo);
        for i in 0..40 {
            mem.ensure_mapped(PageId(i), Tier::Slow);
        }
        let mut chain = DemotionChain::new();
        let mut ctx = PolicyCtx::new();
        assert_eq!(chain.cascade(&mut mem, 0.5, 3, &mut ctx), 3);
        assert_eq!(mem.tier_used(2), 3);
    }

    #[test]
    fn cascade_terminates_when_nothing_is_demotable() {
        // Four rungs; overfill cxl while nvme (tier 2) is sized so the
        // cascade keeps pressure below — one revolution per rung, no spin.
        let topo = TierTopology::four_tier_archive(256, PageSize::Base4K);
        let mut mem = TieredMemory::with_topology(topo);
        for i in 0..mem.address_space_pages() {
            mem.ensure_mapped(PageId(i), Tier::Slow);
        }
        let mut chain = DemotionChain::new();
        let mut ctx = PolicyCtx::new();
        // Absurd watermark: every rung always "pressured". Must still
        // return (bounded by one revolution + budget per rung).
        let moved = chain.cascade(&mut mem, 1.0, u64::MAX, &mut ctx);
        let again = chain.cascade(&mut mem, 1.0, u64::MAX, &mut ctx);
        assert!(moved >= again, "progress is monotone, not oscillating");
    }
}
