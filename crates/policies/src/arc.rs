//! ARC (Adaptive Replacement Cache) adapted to memory tiering.
//!
//! ARC (Megiddo & Modha, FAST'03) self-tunes between recency and frequency
//! with two resident LRU lists (T1: seen once, T2: seen twice+) and two
//! ghost lists (B1/B2) steering the adaptation parameter `p`. The paper
//! implements it as a tiering baseline (§5.2): the fast tier is the cache
//! (capacity = fast-tier pages), new pages allocate to the slow tier, and a
//! sampled access to a non-resident page is a "miss" that promotes it.
//!
//! The paper's profiling observation — "upon a cold miss, both systems
//! directly promote the missed page... often too aggressive" (§6.1) — is a
//! direct consequence of the algorithm and reproduces here.

use tiering_mem::{PageId, Tier, TierConfig, TieredMemory};
use tiering_trace::Sample;

use crate::chain::DemotionChain;
use crate::list_set::ListSet;
use crate::policy::{PolicyCtx, TieringPolicy};

const T1: u8 = 0;
const T2: u8 = 1;
const B1: u8 = 2;
const B2: u8 = 3;

const LRU_NODE_NS: u64 = 8;
const META_BASE: u64 = 0x7800_0000_0000;
/// Free-fraction target the cascade maintains on middle rungs of deep
/// ladders, and its per-rung move budget per tick. ARC itself has no
/// watermark machinery — the cache *is* the fast tier — but on an N-tier
/// ladder its REPLACE demotions land on the next rung down, which must in
/// turn drain somewhere or REPLACE wedges against a full rung.
const CHAIN_WMARK: f64 = 0.06;
const CHAIN_BUDGET: u64 = 4_096;

/// The ARC tiering policy.
#[derive(Debug)]
pub struct ArcPolicy {
    lists: ListSet,
    /// Adaptation target for |T1|.
    p: usize,
    /// Cache capacity = fast-tier pages.
    c: usize,
    chain: DemotionChain,
}

impl ArcPolicy {
    /// Builds ARC with capacity equal to the fast tier.
    pub fn new(tier_cfg: &TierConfig) -> Self {
        Self {
            lists: ListSet::new(tier_cfg.address_space_pages as usize, 4),
            p: 0,
            c: tier_cfg.fast_capacity_pages as usize,
            chain: DemotionChain::new(),
        }
    }

    /// Current adaptation parameter (target |T1|).
    pub fn p(&self) -> usize {
        self.p
    }

    /// Resident pages under ARC control.
    pub fn resident(&self) -> usize {
        self.lists.len(T1) + self.lists.len(T2)
    }

    /// The REPLACE subroutine: demote one resident page to make room,
    /// moving its id to the appropriate ghost list.
    fn replace(&mut self, in_b2: bool, mem: &mut TieredMemory) {
        let t1_len = self.lists.len(T1);
        let take_t1 = t1_len > 0 && (t1_len > self.p || (in_b2 && t1_len == self.p));
        let (src, ghost) = if take_t1 { (T1, B1) } else { (T2, B2) };
        let victim = match self.lists.pop_lru(src) {
            Some(v) => v,
            None => match self.lists.pop_lru(if take_t1 { T2 } else { T1 }) {
                Some(v) => v,
                None => return,
            },
        };
        let _ = mem.demote(PageId(victim as u64));
        self.lists.push_mru(ghost, victim);
    }

    fn promote(&mut self, page: PageId, mem: &mut TieredMemory) {
        if mem.fast_free() == 0 {
            self.replace(false, mem);
        }
        let _ = mem.promote(page);
    }

    /// One ARC step (Cases I–IV); shared by the scalar and batched hooks.
    #[inline]
    fn ingest_sample(&mut self, sample: Sample, mem: &mut TieredMemory, ctx: &mut PolicyCtx) {
        let x = sample.page.0 as u32;
        ctx.tiering_work_ns += LRU_NODE_NS;
        ctx.metadata_lines.push(META_BASE + sample.page.0 * 9);
        match self.lists.which(x) {
            // Case I: resident hit → MRU of T2.
            Some(T1) | Some(T2) => {
                self.lists.touch(T2, x);
            }
            // Case II: ghost hit in B1 → grow p toward recency.
            Some(B1) => {
                let delta = (self.lists.len(B2) / self.lists.len(B1).max(1)).max(1);
                self.p = (self.p + delta).min(self.c);
                self.replace(false, mem);
                self.lists.remove(x);
                self.lists.push_mru(T2, x);
                self.promote(sample.page, mem);
            }
            // Case III: ghost hit in B2 → shrink p toward frequency.
            Some(B2) => {
                let delta = (self.lists.len(B1) / self.lists.len(B2).max(1)).max(1);
                self.p = self.p.saturating_sub(delta);
                self.replace(true, mem);
                self.lists.remove(x);
                self.lists.push_mru(T2, x);
                self.promote(sample.page, mem);
            }
            Some(_) => unreachable!("only four lists"),
            // Case IV: cold miss → admit to T1 (the lenient promotion).
            None => {
                let l1 = self.lists.len(T1) + self.lists.len(B1);
                if l1 == self.c && self.c > 0 {
                    if self.lists.len(T1) < self.c {
                        self.lists.pop_lru(B1);
                        self.replace(false, mem);
                    } else if let Some(v) = self.lists.pop_lru(T1) {
                        // T1 fills the whole cache: drop its LRU entirely.
                        let _ = mem.demote(PageId(v as u64));
                    }
                } else {
                    let total = l1 + self.lists.len(T2) + self.lists.len(B2);
                    if total >= self.c {
                        if total >= 2 * self.c {
                            self.lists.pop_lru(B2);
                        }
                        if self.resident() >= self.c {
                            self.replace(false, mem);
                        }
                    }
                }
                if mem.tier_of(sample.page) == Some(Tier::Slow) {
                    self.promote(sample.page, mem);
                }
                if mem.tier_of(sample.page) == Some(Tier::Fast) {
                    self.lists.push_mru(T1, x);
                }
            }
        }
    }
}

impl TieringPolicy for ArcPolicy {
    fn name(&self) -> &'static str {
        "ARC"
    }

    fn preferred_alloc_tier(&self) -> Tier {
        Tier::Slow // paper §5.2: ARC/TwoQ allocate new pages on the slow tier
    }

    fn on_sample(&mut self, sample: Sample, mem: &mut TieredMemory, ctx: &mut PolicyCtx) {
        self.ingest_sample(sample, mem, ctx);
    }

    fn on_sample_batch(&mut self, samples: &[Sample], mem: &mut TieredMemory, ctx: &mut PolicyCtx) {
        for &sample in samples {
            self.ingest_sample(sample, mem, ctx);
        }
    }

    fn on_tick(&mut self, _now_ns: u64, mem: &mut TieredMemory, ctx: &mut PolicyCtx) {
        // Keep the rung below the cache drained on deep ladders so REPLACE
        // has somewhere to demote to (no-op on the 2-tier testbed).
        self.chain.cascade(mem, CHAIN_WMARK, CHAIN_BUDGET, ctx);
    }

    fn metadata_bytes(&self) -> usize {
        self.lists.metadata_bytes() + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiering_mem::{PageSize, TierRatio};

    fn setup() -> (ArcPolicy, TieredMemory) {
        // Footprint 64 pages, fast tier 16.
        let cfg = TierConfig::for_footprint(64, TierRatio::OneTo4, PageSize::Base4K);
        (ArcPolicy::new(&cfg), TieredMemory::new(cfg))
    }

    fn sample(page: u64) -> Sample {
        Sample {
            page: PageId(page),
            addr: page << 12,
            tier: Tier::Slow,
            at_ns: 0,
            is_write: false,
        }
    }

    #[test]
    fn cold_miss_promotes_immediately() {
        let (mut p, mut mem) = setup();
        let mut ctx = PolicyCtx::new();
        mem.ensure_mapped(PageId(3), Tier::Slow);
        p.on_sample(sample(3), &mut mem, &mut ctx);
        assert_eq!(
            mem.tier_of(PageId(3)),
            Some(Tier::Fast),
            "ARC promotes on first touch (the lenient-promotion weakness)"
        );
        assert_eq!(p.lists.which(3), Some(T1));
    }

    #[test]
    fn second_touch_moves_to_t2() {
        let (mut p, mut mem) = setup();
        let mut ctx = PolicyCtx::new();
        mem.ensure_mapped(PageId(3), Tier::Slow);
        p.on_sample(sample(3), &mut mem, &mut ctx);
        p.on_sample(sample(3), &mut mem, &mut ctx);
        assert_eq!(p.lists.which(3), Some(T2));
    }

    #[test]
    fn capacity_never_exceeded() {
        let (mut p, mut mem) = setup();
        let mut ctx = PolicyCtx::new();
        for i in 0..64u64 {
            mem.ensure_mapped(PageId(i), Tier::Slow);
        }
        // Stream far more distinct pages than capacity.
        for round in 0..4 {
            for i in 0..64u64 {
                p.on_sample(sample((i * 7 + round) % 64), &mut mem, &mut ctx);
                assert!(
                    mem.fast_used() <= mem.config().fast_capacity_pages,
                    "fast tier overflowed"
                );
                assert_eq!(p.resident() as u64, mem.fast_used(), "lists out of sync");
            }
        }
        assert!(mem.stats().demotions > 0, "churn must cause evictions");
    }

    #[test]
    fn ghost_hit_adapts_p() {
        let (mut p, mut mem) = setup();
        let mut ctx = PolicyCtx::new();
        for i in 0..64u64 {
            mem.ensure_mapped(PageId(i), Tier::Slow);
        }
        // Promote pages 0..8 twice so they reach T2 (shrinking T1), then
        // stream fresh pages: REPLACE now routes T1 victims into B1.
        for _ in 0..2 {
            for i in 0..8u64 {
                p.on_sample(sample(i), &mut mem, &mut ctx);
            }
        }
        for i in 8..40u64 {
            p.on_sample(sample(i), &mut mem, &mut ctx);
        }
        assert!(p.lists.len(B1) > 0, "evictions should populate B1 ghosts");
        let ghost = p.lists.peek_lru(B1).unwrap();
        let p_before = p.p();
        p.on_sample(sample(ghost as u64), &mut mem, &mut ctx);
        assert!(p.p() > p_before, "B1 ghost hit grows p");
        assert_eq!(p.lists.which(ghost), Some(T2));
        assert_eq!(mem.tier_of(PageId(ghost as u64)), Some(Tier::Fast));
    }

    #[test]
    fn frequent_pages_survive_scan_pollution() {
        let (mut p, mut mem) = setup();
        let mut ctx = PolicyCtx::new();
        for i in 0..64u64 {
            mem.ensure_mapped(PageId(i), Tier::Slow);
        }
        // Establish pages 0..4 as frequent (T2).
        for _ in 0..3 {
            for i in 0..4u64 {
                p.on_sample(sample(i), &mut mem, &mut ctx);
            }
        }
        // One-time scan over many cold pages.
        for i in 8..56u64 {
            p.on_sample(sample(i), &mut mem, &mut ctx);
        }
        // The frequent pages should still be resident.
        let survivors = (0..4u64)
            .filter(|&i| mem.tier_of(PageId(i)) == Some(Tier::Fast))
            .count();
        assert!(survivors >= 3, "only {survivors}/4 frequent pages survived");
    }
}
