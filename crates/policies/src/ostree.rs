//! Augmented order-statistics treap over `(demand, slot)` keys.
//!
//! The incremental control plane (`global::ControllerMode::Incremental`)
//! keeps every live tenant's clamped demand in one of these: a balanced
//! search tree ordered by `(demand, slot)` where each node carries its
//! subtree's element count and demand sum. That augmentation answers, in
//! `O(log n)` per query, exactly the order statistics the three built-in
//! quota objectives need:
//!
//! * `first`/`last` — the least/most hungry tenant (dust placement and the
//!   min-allocation probe);
//! * `select(k)` — the k-th smallest `(demand, slot)` key (max-min dust
//!   cutoffs);
//! * `fill_break` — the max-min progressive-filling break position, found
//!   by descending on the monotone predicate
//!   `demand(p) * (n - p) + prefix_sum(p) > amount`.
//!
//! Tree shape is a treap with priorities derived deterministically from the
//! key (SplitMix64), so equal insert/remove histories produce identical
//! trees on every platform — no RNG state, no iteration-order hazards.
//! Every mutation and order-statistic descent bumps a visit counter that
//! [`GlobalController::apportion_ops`](crate::GlobalController::apportion_ops)
//! exposes, so the sub-linearity tests can count work instead of wall time.

use std::cmp::Ordering;

/// Tree key: clamped demand first, registration slot as the tiebreak.
pub(crate) type Key = (u64, usize);

#[derive(Debug)]
struct Node {
    key: Key,
    pri: u64,
    cnt: usize,
    /// Sum of `key.0` over this subtree.
    sum: u128,
    left: Option<Box<Node>>,
    right: Option<Box<Node>>,
}

impl Node {
    fn leaf(key: Key, pri: u64) -> Box<Node> {
        Box::new(Node {
            key,
            pri,
            cnt: 1,
            sum: u128::from(key.0),
            left: None,
            right: None,
        })
    }

    /// Recomputes this node's augmentation from its children.
    fn pull(&mut self) {
        self.cnt = 1 + cnt(&self.left) + cnt(&self.right);
        self.sum = u128::from(self.key.0) + sum(&self.left) + sum(&self.right);
    }
}

fn cnt(n: &Option<Box<Node>>) -> usize {
    n.as_ref().map_or(0, |n| n.cnt)
}

fn sum(n: &Option<Box<Node>>) -> u128 {
    n.as_ref().map_or(0, |n| n.sum)
}

/// SplitMix64 — the key's deterministic treap priority.
fn priority(key: Key) -> u64 {
    let mut z = key
        .0
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((key.1 as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(0x94d0_49bb_1331_11eb);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn rotate_right(mut n: Box<Node>) -> Box<Node> {
    let mut l = n.left.take().expect("rotate_right needs a left child");
    n.left = l.right.take();
    n.pull();
    l.right = Some(n);
    l.pull();
    l
}

fn rotate_left(mut n: Box<Node>) -> Box<Node> {
    let mut r = n.right.take().expect("rotate_left needs a right child");
    n.right = r.left.take();
    n.pull();
    r.left = Some(n);
    r.pull();
    r
}

fn insert_at(node: Option<Box<Node>>, key: Key, pri: u64, visits: &mut u64) -> Box<Node> {
    *visits += 1;
    let Some(mut n) = node else {
        return Node::leaf(key, pri);
    };
    match key.cmp(&n.key) {
        Ordering::Less => {
            n.left = Some(insert_at(n.left.take(), key, pri, visits));
            if n.left.as_ref().expect("just set").pri > n.pri {
                n = rotate_right(n);
            }
        }
        Ordering::Greater => {
            n.right = Some(insert_at(n.right.take(), key, pri, visits));
            if n.right.as_ref().expect("just set").pri > n.pri {
                n = rotate_left(n);
            }
        }
        // A slot appears at most once, so duplicate keys cannot happen;
        // tolerate them as a no-op rather than corrupting the counts.
        Ordering::Equal => {}
    }
    n.pull();
    n
}

fn merge(a: Option<Box<Node>>, b: Option<Box<Node>>, visits: &mut u64) -> Option<Box<Node>> {
    *visits += 1;
    match (a, b) {
        (None, b) => b,
        (a, None) => a,
        (Some(mut a), Some(mut b)) => {
            if a.pri >= b.pri {
                a.right = merge(a.right.take(), Some(b), visits);
                a.pull();
                Some(a)
            } else {
                b.left = merge(Some(a), b.left.take(), visits);
                b.pull();
                Some(b)
            }
        }
    }
}

fn remove_at(
    node: Option<Box<Node>>,
    key: Key,
    visits: &mut u64,
    removed: &mut bool,
) -> Option<Box<Node>> {
    *visits += 1;
    let mut n = node?;
    match key.cmp(&n.key) {
        Ordering::Less => n.left = remove_at(n.left.take(), key, visits, removed),
        Ordering::Greater => n.right = remove_at(n.right.take(), key, visits, removed),
        Ordering::Equal => {
            *removed = true;
            return merge(n.left.take(), n.right.take(), visits);
        }
    }
    n.pull();
    Some(n)
}

/// The augmented treap. See the module docs for the operation inventory.
#[derive(Debug, Default)]
pub(crate) struct OsTree {
    root: Option<Box<Node>>,
    visits: u64,
}

impl OsTree {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Number of keys.
    pub(crate) fn len(&self) -> usize {
        cnt(&self.root)
    }

    /// Sum of all demands.
    pub(crate) fn sum(&self) -> u128 {
        sum(&self.root)
    }

    /// Nodes touched by mutations and order-statistic descents so far —
    /// the work meter behind `GlobalController::apportion_ops`.
    pub(crate) fn visits(&self) -> u64 {
        self.visits
    }

    pub(crate) fn insert(&mut self, key: Key) {
        let pri = priority(key);
        self.root = Some(insert_at(self.root.take(), key, pri, &mut self.visits));
    }

    /// Removes the key; returns whether it was present.
    pub(crate) fn remove(&mut self, key: Key) -> bool {
        let mut removed = false;
        self.root = remove_at(self.root.take(), key, &mut self.visits, &mut removed);
        removed
    }

    /// The smallest `(demand, slot)` key.
    pub(crate) fn first(&self) -> Option<Key> {
        let mut cur = self.root.as_deref()?;
        while let Some(l) = cur.left.as_deref() {
            cur = l;
        }
        Some(cur.key)
    }

    /// The largest `(demand, slot)` key.
    pub(crate) fn last(&self) -> Option<Key> {
        let mut cur = self.root.as_deref()?;
        while let Some(r) = cur.right.as_deref() {
            cur = r;
        }
        Some(cur.key)
    }

    /// The k-th smallest key (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `k >= len()`.
    pub(crate) fn select(&mut self, mut k: usize) -> Key {
        assert!(k < self.len(), "select({k}) beyond {} keys", self.len());
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            self.visits += 1;
            let lc = cnt(&n.left);
            match k.cmp(&lc) {
                Ordering::Less => cur = n.left.as_deref(),
                Ordering::Equal => return n.key,
                Ordering::Greater => {
                    k -= lc + 1;
                    cur = n.right.as_deref();
                }
            }
        }
        unreachable!("select bounds checked above")
    }

    /// Max-min progressive-filling break: the first ascending position `p`
    /// where `demand(p) * (len - p) + prefix_sum(p) > amount` — i.e. the
    /// first tenant the rising water level no longer fully satisfies.
    /// Returns `(p, prefix_sum(p), demand(p))`, or `None` when every tenant
    /// is satisfiable (`amount >= sum()`). The predicate is monotone in `p`
    /// (its finite difference is `(d[p+1] - d[p]) * (len - p - 1) >= 0`),
    /// so one root-to-leaf descent finds it.
    pub(crate) fn fill_break(&mut self, amount: u128) -> Option<(usize, u128, u64)> {
        let m = self.len() as u128;
        let mut acc_cnt = 0u128;
        let mut acc_sum = 0u128;
        let mut best: Option<(usize, u128, u64)> = None;
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            self.visits += 1;
            let pos = acc_cnt + cnt(&n.left) as u128;
            let pref = acc_sum + sum(&n.left);
            if u128::from(n.key.0) * (m - pos) + pref > amount {
                best = Some((pos as usize, pref, n.key.0));
                cur = n.left.as_deref();
            } else {
                acc_cnt = pos + 1;
                acc_sum = pref + u128::from(n.key.0);
                cur = n.right.as_deref();
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-demand stream for the reference tests.
    fn mix(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A sorted-`Vec` reference model the tree must agree with.
    fn reference(keys: &[Key]) -> Vec<Key> {
        let mut v = keys.to_vec();
        v.sort_unstable();
        v
    }

    #[test]
    fn order_statistics_match_a_sorted_vec() {
        let mut tree = OsTree::new();
        let mut keys = Vec::new();
        for slot in 0..200usize {
            let d = mix(slot as u64) % 37 + 1; // dense values: many ties
            tree.insert((d, slot));
            keys.push((d, slot));
        }
        // Remove a deterministic third of them.
        for slot in (0..200usize).step_by(3) {
            let key = keys.iter().copied().find(|k| k.1 == slot).unwrap();
            assert!(tree.remove(key));
            keys.retain(|k| k.1 != slot);
        }
        let sorted = reference(&keys);
        assert_eq!(tree.len(), sorted.len());
        assert_eq!(
            tree.sum(),
            sorted.iter().map(|k| u128::from(k.0)).sum::<u128>()
        );
        assert_eq!(tree.first(), sorted.first().copied());
        assert_eq!(tree.last(), sorted.last().copied());
        for (k, &want) in sorted.iter().enumerate() {
            assert_eq!(tree.select(k), want, "select({k})");
        }
    }

    #[test]
    fn fill_break_matches_linear_scan() {
        let mut tree = OsTree::new();
        let mut keys = Vec::new();
        for slot in 0..64usize {
            let d = mix(slot as u64 ^ 0xabcd) % 1_000 + 1;
            tree.insert((d, slot));
            keys.push((d, slot));
        }
        let sorted = reference(&keys);
        let m = sorted.len();
        let total: u128 = tree.sum();
        for amount in [0u128, 1, 500, 5_000, total - 1] {
            let want = (0..m)
                .scan(0u128, |pref, p| {
                    let here = *pref;
                    *pref += u128::from(sorted[p].0);
                    Some((p, here, sorted[p].0))
                })
                .find(|&(p, pref, d)| u128::from(d) * (m - p) as u128 + pref > amount);
            assert_eq!(tree.fill_break(amount), want, "amount {amount}");
        }
        assert_eq!(tree.fill_break(total), None, "fully satisfiable");
    }

    #[test]
    fn shape_is_deterministic_and_visits_count_work() {
        let build = || {
            let mut tree = OsTree::new();
            for slot in 0..500usize {
                tree.insert((mix(slot as u64) % 1_000 + 1, slot));
            }
            for slot in (0..500usize).step_by(2) {
                tree.remove((mix(slot as u64) % 1_000 + 1, slot));
            }
            tree
        };
        let (mut a, mut b) = (build(), build());
        assert_eq!(
            a.visits(),
            b.visits(),
            "identical histories, identical work"
        );
        for k in 0..a.len() {
            assert_eq!(a.select(k), b.select(k));
        }
        // Work stays logarithmic-ish: 750 mutations over ≤500 keys should
        // visit far fewer than 750 * 500 nodes.
        assert!(a.visits() < 750 * 64, "visits {} too high", a.visits());
    }
}
