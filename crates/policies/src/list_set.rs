//! Dense intrusive LRU/FIFO lists over page ids.
//!
//! ARC and TwoQ maintain several queues whose membership is mutually
//! exclusive (a page is in at most one list at a time). `ListSet` packs all
//! of them into three dense arrays (prev/next/tag) indexed by page id —
//! O(1) push/remove/pop with no per-node allocation, mirroring how such
//! policies are implemented in kernels.

/// Sentinel for "no page".
const NIL: u32 = u32::MAX;
/// Tag for "in no list".
const NONE_TAG: u8 = u8::MAX;

/// A family of doubly-linked lists over the dense page-id space `0..n`,
/// where each page belongs to at most one list.
#[derive(Debug, Clone)]
pub struct ListSet {
    prev: Vec<u32>,
    next: Vec<u32>,
    tag: Vec<u8>,
    head: Vec<u32>,
    tail: Vec<u32>,
    len: Vec<usize>,
}

impl ListSet {
    /// Creates `lists` empty lists over pages `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `lists` is 0 or ≥ 255.
    pub fn new(n: usize, lists: usize) -> Self {
        assert!(lists > 0 && lists < NONE_TAG as usize);
        Self {
            prev: vec![NIL; n],
            next: vec![NIL; n],
            tag: vec![NONE_TAG; n],
            head: vec![NIL; lists],
            tail: vec![NIL; lists],
            len: vec![0; lists],
        }
    }

    /// Which list `page` is in, if any.
    #[inline]
    pub fn which(&self, page: u32) -> Option<u8> {
        match self.tag[page as usize] {
            NONE_TAG => None,
            t => Some(t),
        }
    }

    /// Number of pages in `list`.
    #[inline]
    pub fn len(&self, list: u8) -> usize {
        self.len[list as usize]
    }

    /// Whether `list` is empty.
    pub fn is_empty(&self, list: u8) -> bool {
        self.len(list) == 0
    }

    /// Pushes `page` at the MRU (head) end of `list`.
    ///
    /// # Panics
    ///
    /// Panics if the page is already in some list.
    pub fn push_mru(&mut self, list: u8, page: u32) {
        assert_eq!(
            self.tag[page as usize], NONE_TAG,
            "page {page} already in list {}",
            self.tag[page as usize]
        );
        let l = list as usize;
        let old_head = self.head[l];
        self.prev[page as usize] = NIL;
        self.next[page as usize] = old_head;
        if old_head != NIL {
            self.prev[old_head as usize] = page;
        } else {
            self.tail[l] = page;
        }
        self.head[l] = page;
        self.tag[page as usize] = list;
        self.len[l] += 1;
    }

    /// Removes `page` from whatever list it is in; returns the list tag.
    pub fn remove(&mut self, page: u32) -> Option<u8> {
        let t = self.tag[page as usize];
        if t == NONE_TAG {
            return None;
        }
        let l = t as usize;
        let (p, n) = (self.prev[page as usize], self.next[page as usize]);
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.head[l] = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            self.tail[l] = p;
        }
        self.tag[page as usize] = NONE_TAG;
        self.prev[page as usize] = NIL;
        self.next[page as usize] = NIL;
        self.len[l] -= 1;
        Some(t)
    }

    /// Pops the LRU (tail) page of `list`.
    pub fn pop_lru(&mut self, list: u8) -> Option<u32> {
        let tail = self.tail[list as usize];
        if tail == NIL {
            return None;
        }
        self.remove(tail);
        Some(tail)
    }

    /// The LRU (tail) page of `list` without removing it.
    pub fn peek_lru(&self, list: u8) -> Option<u32> {
        match self.tail[list as usize] {
            NIL => None,
            p => Some(p),
        }
    }

    /// Moves `page` to the MRU end of `list` (removing it from its current
    /// list if needed).
    pub fn touch(&mut self, list: u8, page: u32) {
        self.remove(page);
        self.push_mru(list, page);
    }

    /// Approximate bytes consumed (9 bytes per page slot).
    pub fn metadata_bytes(&self) -> usize {
        self.prev.len() * 9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_is_fifo_from_tail() {
        let mut s = ListSet::new(10, 2);
        s.push_mru(0, 1);
        s.push_mru(0, 2);
        s.push_mru(0, 3);
        assert_eq!(s.len(0), 3);
        assert_eq!(s.pop_lru(0), Some(1));
        assert_eq!(s.pop_lru(0), Some(2));
        assert_eq!(s.pop_lru(0), Some(3));
        assert_eq!(s.pop_lru(0), None);
    }

    #[test]
    fn touch_moves_to_mru() {
        let mut s = ListSet::new(10, 1);
        s.push_mru(0, 1);
        s.push_mru(0, 2);
        s.push_mru(0, 3);
        s.touch(0, 1); // 1 becomes MRU
        assert_eq!(s.pop_lru(0), Some(2));
        assert_eq!(s.pop_lru(0), Some(3));
        assert_eq!(s.pop_lru(0), Some(1));
    }

    #[test]
    fn remove_middle_keeps_links() {
        let mut s = ListSet::new(10, 1);
        for p in [5, 6, 7] {
            s.push_mru(0, p);
        }
        assert_eq!(s.remove(6), Some(0));
        assert_eq!(s.which(6), None);
        assert_eq!(s.pop_lru(0), Some(5));
        assert_eq!(s.pop_lru(0), Some(7));
    }

    #[test]
    fn lists_are_independent() {
        let mut s = ListSet::new(10, 3);
        s.push_mru(0, 1);
        s.push_mru(1, 2);
        s.push_mru(2, 3);
        assert_eq!(s.which(1), Some(0));
        assert_eq!(s.which(2), Some(1));
        assert_eq!(s.which(3), Some(2));
        assert_eq!(s.len(0), 1);
        assert_eq!(s.pop_lru(1), Some(2));
        assert_eq!(s.len(1), 0);
        assert_eq!(s.len(2), 1);
    }

    #[test]
    #[should_panic(expected = "already in list")]
    fn double_insert_panics() {
        let mut s = ListSet::new(4, 2);
        s.push_mru(0, 1);
        s.push_mru(1, 1);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut s = ListSet::new(4, 1);
        s.push_mru(0, 2);
        assert_eq!(s.peek_lru(0), Some(2));
        assert_eq!(s.len(0), 1);
    }
}
