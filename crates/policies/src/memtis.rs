//! Memtis: frequency-based tiering with exact per-page counters.
//!
//! Memtis (Lee et al., SOSP'23) is the state-of-the-art frequency-based
//! system the paper compares against most closely. It tracks PEBS samples
//! in *exact* per-page counters (16 B of metadata per 4 KiB page attached to
//! `struct page`, paper §2.3.3), maintains a global hotness histogram from
//! which it derives the promotion threshold for the fast-tier capacity, and
//! keeps the histogram fresh by halving all counters every cooling period
//! (EMA with decay factor 2, §2.3.2).
//!
//! The two weaknesses the paper demonstrates are reproduced structurally:
//!
//! * *slow adaptation* — a formerly hot page keeps a high EMA score for
//!   several cooling periods after turning cold (Figure 3a), so it lingers
//!   in the fast tier;
//! * *cache-hostile metadata* — every sample updates a 16 B/page record
//!   reached through a page-table-like walk, touching several metadata
//!   cache lines with poor locality (§3.3, Algorithm 1).

use tiering_mem::{PageId, Tier, TierConfig, TieredMemory};
use tiering_trace::Sample;

use crate::chain::DemotionChain;
use crate::histogram::HotnessHistogram;
use crate::policy::{PolicyCtx, TieringPolicy};

const META_BASE: u64 = 0x7600_0000_0000;
const LEVEL2_BASE: u64 = 0x7680_0000_0000;
const LEVEL3_BASE: u64 = 0x76C0_0000_0000;
const HIST_BASE: u64 = 0x7700_0000_0000;
const SCAN_PAGE_NS: u64 = 20;
const SYSCALL_NS: u64 = 1_500;

/// Configuration of [`MemtisPolicy`].
#[derive(Debug, Clone)]
pub struct MemtisConfig {
    /// Cooling period in samples (the paper's Figure 3b sweeps this;
    /// Memtis's default at full scale is 2M samples).
    pub cool_samples: u64,
    /// Lower bound on the derived hotness threshold.
    pub min_threshold: u32,
    /// Demotion trigger watermark (free fast fraction).
    pub promo_wmark: f64,
    /// Demotion target watermark.
    pub demote_wmark: f64,
    /// Max pages examined per demotion scan call.
    pub max_scan_per_call: u64,
    /// Pages demote only when their count falls below this (Memtis demotes
    /// from its *cold* set — the lowest histogram region — not everything
    /// below the promotion threshold; a warm page stays until cooling
    /// erodes it, which is precisely the paper's adaptation critique).
    pub demote_below: u32,
    /// Background management overhead per fast-tier page per tick, in
    /// nanoseconds ×1000 (the paper observes Memtis "performs additional
    /// background activities that result in higher runtime overhead" as the
    /// fast tier grows, §6.1).
    pub background_ns_per_kpage: u64,
}

impl Default for MemtisConfig {
    fn default() -> Self {
        Self {
            cool_samples: 200_000,
            min_threshold: 2,
            promo_wmark: 0.02,
            demote_wmark: 0.06,
            max_scan_per_call: 16_384,
            demote_below: 2,
            background_ns_per_kpage: 3_000,
        }
    }
}

/// The Memtis tiering system.
#[derive(Debug)]
pub struct MemtisPolicy {
    config: MemtisConfig,
    /// Exact access counter per page (the counting half of the 16 B/page
    /// record).
    counts: Vec<u32>,
    hist: HotnessHistogram,
    threshold: u32,
    samples_seen: u64,
    /// Samples until the next cooling pass (countdown form of
    /// `samples_seen % cool_samples == 0`, sparing the per-sample
    /// division).
    cool_in: u64,
    scan_cursor: u64,
    chain: DemotionChain,
    /// Physical pages across both tiers (struct-page metadata is per
    /// physical page, not per mapped page).
    physical_pages: u64,
}

/// Histogram levels (counts clamp here for thresholding purposes).
const MAX_LEVEL: u32 = 63;

impl MemtisPolicy {
    /// Builds Memtis for an address space of `tier_cfg.address_space_pages`.
    ///
    /// # Panics
    ///
    /// Panics if `config.cool_samples` is zero (the cooling cadence is
    /// countdown driven; use a huge period to effectively disable it).
    pub fn new(config: MemtisConfig, tier_cfg: &TierConfig) -> Self {
        assert!(config.cool_samples > 0, "cooling period must be positive");
        Self {
            counts: vec![0; tier_cfg.address_space_pages as usize],
            hist: HotnessHistogram::new(MAX_LEVEL),
            threshold: config.min_threshold,
            samples_seen: 0,
            cool_in: config.cool_samples,
            scan_cursor: 0,
            chain: DemotionChain::new(),
            physical_pages: tier_cfg.fast_capacity_pages + tier_cfg.slow_capacity_pages,
            config,
        }
    }

    /// Current promotion threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Exact access count of a page.
    pub fn count_of(&self, page: PageId) -> u32 {
        self.counts[page.0 as usize]
    }

    /// Metadata lines touched when updating a page's record: the 16 B/page
    /// leaf array entry plus two upper page-table levels (the multi-level
    /// walk of paper §3.3; the root level is effectively always cached and
    /// omitted).
    fn record_meta_lines(&self, page: u64, out: &mut Vec<u64>) {
        out.push(META_BASE + page * 16);
        out.push(LEVEL2_BASE + (page >> 9) * 64);
        out.push(LEVEL3_BASE + (page >> 18) * 64);
    }

    /// The per-sample update: exact counter, histogram transition, metadata
    /// walk, threshold refresh, inline promotion. Shared (inlined) by the
    /// scalar and batched hooks.
    #[inline]
    fn ingest_sample(&mut self, sample: Sample, mem: &mut TieredMemory, ctx: &mut PolicyCtx) {
        self.samples_seen += 1;
        let page = sample.page.0;
        let old = self.counts[page as usize];
        let new = old.saturating_add(1);
        self.counts[page as usize] = new;
        self.hist.transition(old.min(MAX_LEVEL), new.min(MAX_LEVEL));
        self.record_meta_lines(page, &mut ctx.metadata_lines);
        ctx.metadata_lines
            .push(HIST_BASE + u64::from(new.min(MAX_LEVEL)) / 8 * 64);

        self.cool_in -= 1;
        if self.cool_in == 0 {
            self.cool_in = self.config.cool_samples;
            self.cool_all();
            // A full cooling pass walks every record.
            ctx.tiering_work_ns += self.counts.len() as u64 / 64;
        }

        self.threshold = self
            .hist
            .threshold_for(mem.config().fast_capacity_pages, self.config.min_threshold);

        // Promotion is attempted inline (kmigrated is asynchronous but fast);
        // when the fast tier is clogged the candidate is simply dropped —
        // demotion happens only from the background tick, so a clogged tier
        // stalls promotions until cooling refreshes the cold set.
        if sample.tier == Tier::Slow && new >= self.threshold && mem.fast_free() > 0 {
            ctx.tiering_work_ns += SYSCALL_NS / 32; // kernel-side migration, amortized
            let _ = mem.promote(sample.page);
        }
    }

    fn cool_all(&mut self) {
        for c in &mut self.counts {
            *c /= 2;
        }
        self.hist.cool();
    }

    fn demote_scan(&mut self, mem: &mut TieredMemory, ctx: &mut PolicyCtx) {
        let n = mem.address_space_pages();
        if n == 0 {
            return;
        }
        let mut scanned = 0u64;
        while mem.fast_free_below(self.config.demote_wmark)
            && scanned < self.config.max_scan_per_call.min(n)
        {
            let page = PageId(self.scan_cursor);
            self.scan_cursor = (self.scan_cursor + 1) % n;
            scanned += 1;
            ctx.tiering_work_ns += SCAN_PAGE_NS;
            if mem.tier_of(page) != Some(Tier::Fast) {
                continue;
            }
            self.record_meta_lines(page.0, &mut ctx.metadata_lines);
            // Demote only cold-classified pages; warm/hot pages keep their
            // fast residency until cooling erodes their EMA score (no
            // momentum signal, no second chance — the adaptation lag of
            // paper §2.3.2).
            if self.counts[page.0 as usize] < self.config.demote_below.min(self.threshold) {
                let _ = mem.demote(page);
            }
        }
    }
}

impl TieringPolicy for MemtisPolicy {
    fn name(&self) -> &'static str {
        "Memtis"
    }

    fn on_sample(&mut self, sample: Sample, mem: &mut TieredMemory, ctx: &mut PolicyCtx) {
        self.ingest_sample(sample, mem, ctx);
    }

    fn on_sample_batch(&mut self, samples: &[Sample], mem: &mut TieredMemory, ctx: &mut PolicyCtx) {
        // Memtis's per-sample record walk is the expensive part (paper §3.3);
        // batching at least pays the dispatch once per drained burst.
        for &sample in samples {
            self.ingest_sample(sample, mem, ctx);
        }
    }

    fn on_tick(&mut self, _now_ns: u64, mem: &mut TieredMemory, ctx: &mut PolicyCtx) {
        if mem.fast_free_below(self.config.promo_wmark) {
            self.demote_scan(mem, ctx);
        }
        // Cascade watermark pressure down any middle rungs (no-op on the
        // 2-tier testbed).
        self.chain.cascade(
            mem,
            self.config.demote_wmark,
            self.config.max_scan_per_call,
            ctx,
        );
        // Background page-size determination / kptscand-style activity that
        // grows with the managed fast tier (paper §6.1 observation).
        ctx.tiering_work_ns +=
            mem.config().fast_capacity_pages * self.config.background_ns_per_kpage / 1_000;
    }

    fn metadata_bytes(&self) -> usize {
        // 16 B per page of the *total* memory, as the paper charges Memtis
        // (Table 4: overhead scales with total capacity and stays 0.39%).
        self.physical_pages as usize * 16 + self.hist.metadata_bytes()
    }

    fn debug_state(&self) -> String {
        format!("thr={}", self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiering_mem::{PageSize, TierRatio};

    fn setup() -> (MemtisPolicy, TieredMemory) {
        let cfg = TierConfig::for_footprint(1_024, TierRatio::OneTo16, PageSize::Base4K);
        (
            MemtisPolicy::new(MemtisConfig::default(), &cfg),
            TieredMemory::new(cfg),
        )
    }

    fn sample(page: u64, tier: Tier, at: u64) -> Sample {
        Sample {
            page: PageId(page),
            addr: page << 12,
            tier,
            at_ns: at,
            is_write: false,
        }
    }

    #[test]
    fn counts_are_exact() {
        let (mut p, mut mem) = setup();
        let mut ctx = PolicyCtx::new();
        mem.ensure_mapped(PageId(5), Tier::Slow);
        for i in 0..7 {
            p.on_sample(sample(5, Tier::Slow, i), &mut mem, &mut ctx);
        }
        assert_eq!(p.count_of(PageId(5)), 7);
    }

    #[test]
    fn hot_page_promoted_when_over_threshold() {
        let (mut p, mut mem) = setup();
        let mut ctx = PolicyCtx::new();
        mem.ensure_mapped(PageId(1), Tier::Slow);
        for i in 0..5 {
            p.on_sample(sample(1, Tier::Slow, i), &mut mem, &mut ctx);
        }
        assert_eq!(mem.tier_of(PageId(1)), Some(Tier::Fast));
    }

    #[test]
    fn cooling_halves_counts_and_is_periodic() {
        let cfg = TierConfig::for_footprint(64, TierRatio::OneTo4, PageSize::Base4K);
        let mut p = MemtisPolicy::new(
            MemtisConfig {
                cool_samples: 10,
                ..MemtisConfig::default()
            },
            &cfg,
        );
        let mut mem = TieredMemory::new(cfg);
        let mut ctx = PolicyCtx::new();
        mem.ensure_mapped(PageId(0), Tier::Slow);
        for i in 0..10 {
            p.on_sample(sample(0, Tier::Slow, i), &mut mem, &mut ctx);
        }
        // 10 increments then one cooling: 10/2 = 5.
        assert_eq!(p.count_of(PageId(0)), 5);
    }

    #[test]
    #[should_panic(expected = "cooling period must be positive")]
    fn zero_cooling_period_rejected() {
        let cfg = TierConfig::for_footprint(64, TierRatio::OneTo4, PageSize::Base4K);
        let _ = MemtisPolicy::new(
            MemtisConfig {
                cool_samples: 0,
                ..MemtisConfig::default()
            },
            &cfg,
        );
    }

    #[test]
    fn metadata_is_16b_per_total_page() {
        let cfg = TierConfig::for_footprint(10_000, TierRatio::OneTo8, PageSize::Base4K);
        let p = MemtisPolicy::new(MemtisConfig::default(), &cfg);
        assert!(p.metadata_bytes() >= 160_000);
        // Ratio to total (fast + slow) memory ≈ 16/4096 = 0.39%, constant
        // across ratios (paper Table 4).
        let frac = p.metadata_bytes() as f64 / cfg.total_bytes() as f64;
        assert!((frac - 0.0039).abs() < 0.0005, "metadata fraction {frac}");
    }

    #[test]
    fn metadata_update_walks_multiple_lines() {
        let (mut p, mut mem) = setup();
        let mut ctx = PolicyCtx::new();
        mem.ensure_mapped(PageId(9), Tier::Slow);
        p.on_sample(sample(9, Tier::Slow, 0), &mut mem, &mut ctx);
        // Leaf + 2 upper levels + histogram = 4 distinct lines.
        assert_eq!(ctx.metadata_lines.len(), 4);
    }

    #[test]
    fn demotes_cold_pages_under_pressure() {
        let (mut p, mut mem) = setup();
        let mut ctx = PolicyCtx::new();
        let cap = mem.config().fast_capacity_pages;
        for i in 0..cap {
            mem.ensure_mapped(PageId(i), Tier::Fast);
        }
        p.on_tick(0, &mut mem, &mut ctx);
        assert!(mem.stats().demotions > 0);
        assert!(mem.fast_free_frac() >= 0.06);
    }

    #[test]
    fn stale_hot_page_lingers_until_cooled() {
        // The adaptation weakness: a page with a large accumulated count
        // stays above threshold (and hence undemotable) until enough cooling
        // periods pass — unlike HybridTier's second-chance fast path.
        let cfg = TierConfig::for_footprint(64, TierRatio::OneTo4, PageSize::Base4K);
        let mut p = MemtisPolicy::new(
            MemtisConfig {
                cool_samples: 1_000_000,
                ..MemtisConfig::default()
            },
            &cfg,
        );
        let mut mem = TieredMemory::new(cfg);
        let mut ctx = PolicyCtx::new();
        let cap = mem.config().fast_capacity_pages;
        for i in 0..cap {
            mem.ensure_mapped(PageId(i), Tier::Fast);
        }
        // Page 0 accumulates a deep history.
        for i in 0..40 {
            p.on_sample(sample(0, Tier::Fast, i), &mut mem, &mut ctx);
        }
        // It then turns cold, but pressure-driven scans cannot demote it.
        for t in 0..4 {
            p.on_tick(t, &mut mem, &mut ctx);
        }
        assert_eq!(
            mem.tier_of(PageId(0)),
            Some(Tier::Fast),
            "stale-hot page survives scans until cooling catches up"
        );
    }
}
