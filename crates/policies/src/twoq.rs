//! TwoQ (2Q) adapted to memory tiering.
//!
//! 2Q (Johnson & Shasha, VLDB'94) filters one-time accesses with a FIFO
//! admission queue: pages enter `A1in`; only pages re-referenced *after*
//! falling out of `A1in` (caught by the `A1out` ghost queue) enter the main
//! LRU `Am`. The paper uses the original parameters `Kin = maxSize/4`,
//! `Kout = maxSize/2` (§6.1), allocates new pages slow-tier first, and
//! promotes on first sampled touch — sharing ARC's lenient-promotion
//! weakness.

use tiering_mem::{PageId, Tier, TierConfig, TieredMemory};
use tiering_trace::Sample;

use crate::chain::DemotionChain;
use crate::list_set::ListSet;
use crate::policy::{PolicyCtx, TieringPolicy};

const A1IN: u8 = 0;
const AM: u8 = 1;
const A1OUT: u8 = 2;

const LRU_NODE_NS: u64 = 8;
const META_BASE: u64 = 0x7900_0000_0000;
/// Middle-rung free-fraction target and per-rung move budget for the
/// ladder cascade: 2Q's reclaim demotes to the rung below the cache, which
/// must itself drain on deep ladders or reclaim wedges against a full rung.
const CHAIN_WMARK: f64 = 0.06;
const CHAIN_BUDGET: u64 = 4_096;

/// The 2Q tiering policy.
#[derive(Debug)]
pub struct TwoQPolicy {
    lists: ListSet,
    /// Fast-tier capacity in pages.
    c: usize,
    /// FIFO admission-queue capacity (`maxSize / 4`).
    k_in: usize,
    /// Ghost-queue capacity (`maxSize / 2`).
    k_out: usize,
    chain: DemotionChain,
}

impl TwoQPolicy {
    /// Builds 2Q with the paper's default parameters for the fast tier.
    pub fn new(tier_cfg: &TierConfig) -> Self {
        let c = tier_cfg.fast_capacity_pages as usize;
        Self {
            lists: ListSet::new(tier_cfg.address_space_pages as usize, 3),
            c,
            k_in: (c / 4).max(1),
            k_out: (c / 2).max(1),
            chain: DemotionChain::new(),
        }
    }

    /// Resident pages under 2Q control.
    pub fn resident(&self) -> usize {
        self.lists.len(A1IN) + self.lists.len(AM)
    }

    /// Frees one resident slot per the 2Q reclaim rule.
    fn reclaim_slot(&mut self, mem: &mut TieredMemory) {
        if self.lists.len(A1IN) > self.k_in {
            // Evict the FIFO tail into the ghost queue.
            if let Some(victim) = self.lists.pop_lru(A1IN) {
                let _ = mem.demote(PageId(victim as u64));
                self.lists.push_mru(A1OUT, victim);
                if self.lists.len(A1OUT) > self.k_out {
                    self.lists.pop_lru(A1OUT);
                }
            }
        } else if let Some(victim) = self.lists.pop_lru(AM) {
            // Evict from the main LRU; 2Q does not remember Am evictions.
            let _ = mem.demote(PageId(victim as u64));
        } else if let Some(victim) = self.lists.pop_lru(A1IN) {
            let _ = mem.demote(PageId(victim as u64));
            self.lists.push_mru(A1OUT, victim);
        }
    }

    fn promote(&mut self, page: PageId, mem: &mut TieredMemory) -> bool {
        while mem.fast_free() == 0 && self.resident() > 0 {
            self.reclaim_slot(mem);
        }
        mem.promote(page).is_ok()
    }

    /// One 2Q step; shared by the scalar and batched hooks.
    #[inline]
    fn ingest_sample(&mut self, sample: Sample, mem: &mut TieredMemory, ctx: &mut PolicyCtx) {
        let x = sample.page.0 as u32;
        ctx.tiering_work_ns += LRU_NODE_NS;
        ctx.metadata_lines.push(META_BASE + sample.page.0 * 9);
        match self.lists.which(x) {
            Some(AM) => {
                self.lists.touch(AM, x);
            }
            Some(A1IN) => {
                // FIFO: membership refreshes nothing.
            }
            Some(A1OUT) => {
                // Re-reference after admission-queue eviction: hot enough
                // for the main LRU.
                self.lists.remove(x);
                if self.promote(sample.page, mem) {
                    self.lists.push_mru(AM, x);
                }
            }
            Some(_) => unreachable!("only three lists"),
            None => {
                if mem.tier_of(sample.page) == Some(Tier::Slow) && self.promote(sample.page, mem) {
                    self.lists.push_mru(A1IN, x);
                    if self.resident() > self.c {
                        self.reclaim_slot(mem);
                    }
                } else if mem.tier_of(sample.page) == Some(Tier::Fast)
                    && self.lists.which(x).is_none()
                {
                    // Page arrived fast without 2Q knowing (first touch
                    // spill): adopt it into the admission queue.
                    self.lists.push_mru(A1IN, x);
                }
            }
        }
    }
}

impl TieringPolicy for TwoQPolicy {
    fn name(&self) -> &'static str {
        "TwoQ"
    }

    fn preferred_alloc_tier(&self) -> Tier {
        Tier::Slow
    }

    fn on_sample(&mut self, sample: Sample, mem: &mut TieredMemory, ctx: &mut PolicyCtx) {
        self.ingest_sample(sample, mem, ctx);
    }

    fn on_sample_batch(&mut self, samples: &[Sample], mem: &mut TieredMemory, ctx: &mut PolicyCtx) {
        for &sample in samples {
            self.ingest_sample(sample, mem, ctx);
        }
    }

    fn on_tick(&mut self, _now_ns: u64, mem: &mut TieredMemory, ctx: &mut PolicyCtx) {
        // Keep the rung below the cache drained on deep ladders so reclaim
        // has somewhere to demote to (no-op on the 2-tier testbed).
        self.chain.cascade(mem, CHAIN_WMARK, CHAIN_BUDGET, ctx);
    }

    fn metadata_bytes(&self) -> usize {
        self.lists.metadata_bytes() + 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiering_mem::{PageSize, TierRatio};

    fn setup() -> (TwoQPolicy, TieredMemory) {
        let cfg = TierConfig::for_footprint(64, TierRatio::OneTo4, PageSize::Base4K);
        (TwoQPolicy::new(&cfg), TieredMemory::new(cfg))
    }

    fn sample(page: u64) -> Sample {
        Sample {
            page: PageId(page),
            addr: page << 12,
            tier: Tier::Slow,
            at_ns: 0,
            is_write: false,
        }
    }

    #[test]
    fn parameters_follow_the_paper() {
        let (p, _) = setup();
        assert_eq!(p.c, 16);
        assert_eq!(p.k_in, 4);
        assert_eq!(p.k_out, 8);
    }

    #[test]
    fn first_touch_admits_to_a1in_and_promotes() {
        let (mut p, mut mem) = setup();
        let mut ctx = PolicyCtx::new();
        mem.ensure_mapped(PageId(1), Tier::Slow);
        p.on_sample(sample(1), &mut mem, &mut ctx);
        assert_eq!(p.lists.which(1), Some(A1IN));
        assert_eq!(mem.tier_of(PageId(1)), Some(Tier::Fast));
    }

    #[test]
    fn one_time_pages_cycle_through_a1in_not_am() {
        let (mut p, mut mem) = setup();
        let mut ctx = PolicyCtx::new();
        for i in 0..64u64 {
            mem.ensure_mapped(PageId(i), Tier::Slow);
        }
        // A long one-time scan: nothing should reach Am.
        for i in 0..60u64 {
            p.on_sample(sample(i), &mut mem, &mut ctx);
        }
        assert_eq!(p.lists.len(AM), 0, "scan pages must not enter Am");
        assert!(mem.stats().demotions > 0);
    }

    #[test]
    fn reference_after_a1out_enters_am() {
        let (mut p, mut mem) = setup();
        let mut ctx = PolicyCtx::new();
        for i in 0..64u64 {
            mem.ensure_mapped(PageId(i), Tier::Slow);
        }
        // Push page 0 through A1in and out into the ghost queue: 2Q only
        // reclaims once the cache (fast tier, 16 pages) is actually full,
        // so stream enough distinct pages to exceed capacity.
        p.on_sample(sample(0), &mut mem, &mut ctx);
        for i in 1..20u64 {
            p.on_sample(sample(i), &mut mem, &mut ctx);
        }
        assert_eq!(p.lists.which(0), Some(A1OUT), "page 0 should be ghosted");
        // Re-reference: promoted into Am.
        p.on_sample(sample(0), &mut mem, &mut ctx);
        assert_eq!(p.lists.which(0), Some(AM));
        assert_eq!(mem.tier_of(PageId(0)), Some(Tier::Fast));
    }

    #[test]
    fn capacity_respected_under_churn() {
        let (mut p, mut mem) = setup();
        let mut ctx = PolicyCtx::new();
        for i in 0..64u64 {
            mem.ensure_mapped(PageId(i), Tier::Slow);
        }
        for round in 0..5u64 {
            for i in 0..64u64 {
                p.on_sample(sample((i * 11 + round * 3) % 64), &mut mem, &mut ctx);
                assert!(mem.fast_used() <= mem.config().fast_capacity_pages);
                assert_eq!(p.resident() as u64, mem.fast_used());
            }
        }
    }
}
