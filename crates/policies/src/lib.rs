//! Memory tiering policies over a common interface.
//!
//! This crate implements the paper's contribution and all five baselines it
//! compares against (paper §5.2), driven by the same sampled access stream
//! and tiered-memory substrate:
//!
//! * [`HybridTierPolicy`] — the paper's system: frequency + momentum
//!   counting-Bloom-filter trackers, promote on *either* signal, demote on
//!   *neither*, second chance in between (Table 1).
//! * [`MemtisPolicy`] — state-of-the-art frequency-based tiering: exact
//!   per-page counters, a hotness histogram with an auto-adjusted threshold,
//!   and periodic cooling (Lee et al., SOSP'23).
//! * [`AutoNumaPolicy`] — Linux NUMA balancing: hint-fault recency with a
//!   1-second promotion threshold and MGLRU-style pressure demotion.
//! * [`TppPolicy`] — transparent page placement (Maruf et al., ASPLOS'23):
//!   fast-tier-first allocation, two-fault promotion filter, proactive
//!   watermark demotion.
//! * [`ArcPolicy`] / [`TwoQPolicy`] — classic caching algorithms adapted to
//!   tiering, with slow-tier initial allocation as in the paper.
//! * [`AllFastPolicy`] — the all-fast-tier upper bound of Figure 11.
//! * [`NeoMemPolicy`] — a NeoMem-style device-side counter design: the CXL
//!   device counts accesses to its own pages in hardware and the host only
//!   pays for periodic readouts, a third observation mode (exact device
//!   counters) alongside host PEBS sampling and CBF compression.
//!
//! Policies communicate with the simulation engine through
//! [`TieringPolicy`]: they receive PEBS-like [`Sample`]s and/or per-access
//! fault hooks, mutate the [`TieredMemory`] page table, and report the
//! metadata cache lines they touch (for the cache-overhead experiments) via
//! [`PolicyCtx`].
//!
//! Above the per-tenant policies sits the `global` module — the paper's §7
//! multi-tenant extension: a [`GlobalController`] owns one physical fast
//! budget, collects each tenant's demand signal
//! ([`TieringPolicy::fast_demand_pages`]), and re-partitions on a cadence
//! under a pluggable, exact-integer [`QuotaObjective`]
//! ([`ObjectiveKind`]: proportional share, max-min fairness, SLO utility),
//! supporting mid-run tenant churn and recording every decision as a typed
//! [`RebalanceEvent`]. Its invariants (budget conservation, floors,
//! min-one admission, determinism, demand monotonicity) are
//! property-tested for every objective in `tests/global_properties.rs` and
//! model-tested under churn in `tests/global_churn_model.rs`.
//!
//! [`Sample`]: tiering_trace::Sample
//! [`TieredMemory`]: tiering_mem::TieredMemory

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arc;
mod autonuma;
mod baseline;
mod chain;
mod ema;
mod flat_table;
mod global;
mod histogram;
mod hybridtier;
mod list_set;
mod memtis;
mod neomem;
mod ostree;
mod policy;
mod tpp;
mod twoq;

pub use arc::ArcPolicy;
pub use autonuma::{AutoNumaConfig, AutoNumaPolicy};
pub use baseline::{AllFastPolicy, FirstTouchPolicy};
pub use chain::DemotionChain;
pub use ema::{ema_lag_series, EmaScore};
pub use flat_table::FlatPageMap;
pub use global::{
    ControllerMode, GlobalController, MaxMinFairness, ObjectiveKind, ProportionalShare,
    QuotaObjective, RebalanceEvent, SloUtility, DEFAULT_SLO_FRAC,
};
pub use histogram::HotnessHistogram;
pub use hybridtier::{HybridTierConfig, HybridTierPolicy, MigrationDecision, TrackerLayout};
pub use list_set::ListSet;
pub use memtis::{MemtisConfig, MemtisPolicy};
pub use neomem::{NeoMemConfig, NeoMemPolicy};
pub use policy::{
    build_policy, visit_policy, DemandCurve, PolicyCtx, PolicyKind, PolicyVisitor, TieringPolicy,
};
pub use tpp::{TppConfig, TppPolicy};
pub use twoq::TwoQPolicy;
