//! A flat open-addressed page→record table for per-page policy
//! bookkeeping.
//!
//! Policies that track a sparse, churning subset of pages (HybridTier's
//! second-chance marks) used to reach for `std::collections::HashMap` —
//! SipHash per operation, heap buckets, and pointer-chasing on every probe
//! of the demotion scan. [`FlatPageMap`] replaces that with the layout a
//! production runtime would use: one keys array and one values array,
//! linear probing from a multiplicative hash, and backward-shift deletion
//! (no tombstones), so a lookup is one or two adjacent cache lines and the
//! load factor stays honest after heavy insert/remove churn.
//!
//! Semantics match a `HashMap<u64, V>` exactly for `insert`/`get`/`remove`
//! (pinned by a randomized model test); iteration order is intentionally
//! not offered — policy logic must stay order-independent.

/// Sentinel for an empty slot. Page numbers are derived from shifted
/// addresses, so `u64::MAX` can never name a real page.
const EMPTY: u64 = u64::MAX;

/// Fibonacci multiplicative hash: maps a page number to its home slot.
#[inline]
fn home_of(key: u64, mask: usize) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & mask
}

/// A flat open-addressed map from page number to a small `Copy` record.
///
/// Capacity is a power of two, grown at 7/8 load; storage is allocated
/// lazily on first insert.
#[derive(Debug, Clone)]
pub struct FlatPageMap<V: Copy> {
    keys: Vec<u64>,
    vals: Vec<V>,
    len: usize,
    mask: usize,
}

impl<V: Copy + Default> Default for FlatPageMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Copy + Default> FlatPageMap<V> {
    /// An empty map (no allocation until the first insert).
    pub fn new() -> Self {
        Self {
            keys: Vec::new(),
            vals: Vec::new(),
            len: 0,
            mask: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocated slots (power of two; 0 before the first insert).
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Bytes of live payload: entries × (8-byte key + value). The
    /// per-entry cost a dense arena would charge, and the figure HybridTier
    /// has always reported for its second-chance marks.
    pub fn resident_bytes(&self) -> usize {
        self.len * (8 + std::mem::size_of::<V>())
    }

    /// Bytes of allocated backing storage (keys + values arrays).
    pub fn allocated_bytes(&self) -> usize {
        self.capacity() * (8 + std::mem::size_of::<V>())
    }

    /// Looks up `key`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `key` is the reserved sentinel
    /// (`u64::MAX`).
    #[inline]
    pub fn get(&self, key: u64) -> Option<V> {
        debug_assert_ne!(key, EMPTY, "u64::MAX is reserved");
        if self.len == 0 {
            return None;
        }
        let mut i = home_of(key, self.mask);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(self.vals[i]);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Inserts or overwrites `key`, returning the previous value if any.
    #[inline]
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        debug_assert_ne!(key, EMPTY, "u64::MAX is reserved");
        if self.keys.is_empty() || (self.len + 1) * 8 > self.capacity() * 7 {
            self.grow();
        }
        let mut i = home_of(key, self.mask);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(std::mem::replace(&mut self.vals[i], value));
            }
            if k == EMPTY {
                self.keys[i] = key;
                self.vals[i] = value;
                self.len += 1;
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Removes `key`, returning its value if present. Uses backward-shift
    /// deletion, so no tombstones accumulate under churn.
    #[inline]
    pub fn remove(&mut self, key: u64) -> Option<V> {
        debug_assert_ne!(key, EMPTY, "u64::MAX is reserved");
        if self.len == 0 {
            return None;
        }
        let mut i = home_of(key, self.mask);
        loop {
            let k = self.keys[i];
            if k == EMPTY {
                return None;
            }
            if k == key {
                break;
            }
            i = (i + 1) & self.mask;
        }
        let removed = self.vals[i];
        self.len -= 1;
        // Backward shift: pull displaced entries over the hole until a slot
        // is empty or an entry sits in its home position for this gap.
        let mut hole = i;
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            let k = self.keys[j];
            if k == EMPTY {
                break;
            }
            // `k` may fill the hole only if its home lies cyclically at or
            // before the hole (moving it never skips past its home).
            let home = home_of(k, self.mask);
            let dist_home = j.wrapping_sub(home) & self.mask;
            let dist_hole = j.wrapping_sub(hole) & self.mask;
            if dist_home >= dist_hole {
                self.keys[hole] = k;
                self.vals[hole] = self.vals[j];
                hole = j;
            }
        }
        self.keys[hole] = EMPTY;
        Some(removed)
    }

    /// Drops every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.keys.fill(EMPTY);
        self.len = 0;
    }

    fn grow(&mut self) {
        let new_cap = (self.capacity() * 2).max(16);
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![V::default(); new_cap]);
        self.mask = new_cap - 1;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k == EMPTY {
                continue;
            }
            let mut i = home_of(k, self.mask);
            while self.keys[i] != EMPTY {
                i = (i + 1) & self.mask;
            }
            self.keys[i] = k;
            self.vals[i] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: FlatPageMap<u32> = FlatPageMap::new();
        assert_eq!(m.get(7), None);
        assert_eq!(m.insert(7, 70), None);
        assert_eq!(m.insert(9, 90), None);
        assert_eq!(m.get(7), Some(70));
        assert_eq!(m.insert(7, 71), Some(70));
        assert_eq!(m.get(7), Some(71));
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(7), Some(71));
        assert_eq!(m.remove(7), None);
        assert_eq!(m.get(9), Some(90));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m: FlatPageMap<u64> = FlatPageMap::new();
        for k in 0..10_000u64 {
            m.insert(k, k * 3);
        }
        assert_eq!(m.len(), 10_000);
        assert!(m.capacity() >= 10_000);
        assert!(m.capacity().is_power_of_two());
        for k in 0..10_000u64 {
            assert_eq!(m.get(k), Some(k * 3));
        }
        assert_eq!(m.resident_bytes(), 10_000 * 16);
        assert_eq!(m.allocated_bytes(), m.capacity() * 16);
    }

    #[test]
    fn clear_keeps_allocation() {
        let mut m: FlatPageMap<u8> = FlatPageMap::new();
        for k in 0..100 {
            m.insert(k, 1);
        }
        let cap = m.capacity();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.capacity(), cap);
        assert_eq!(m.get(5), None);
        m.insert(5, 2);
        assert_eq!(m.get(5), Some(2));
    }

    /// Randomized model check against `std::collections::HashMap`,
    /// including heavy remove churn (exercises backward-shift deletion
    /// across wrap-around clusters).
    #[test]
    fn matches_std_hashmap_under_churn() {
        let mut flat: FlatPageMap<u64> = FlatPageMap::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut state = 0x1234_5678u64;
        for step in 0..200_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Small key universe forces dense clusters and frequent
            // collisions/shifts.
            let key = (state >> 33) % 512;
            match state % 3 {
                0 | 1 => {
                    assert_eq!(
                        flat.insert(key, step),
                        model.insert(key, step),
                        "insert({key}) at step {step}"
                    );
                }
                _ => {
                    assert_eq!(
                        flat.remove(key),
                        model.remove(&key),
                        "remove({key}) at step {step}"
                    );
                }
            }
            if step % 1024 == 0 {
                assert_eq!(flat.len(), model.len());
            }
        }
        for key in 0..512 {
            assert_eq!(flat.get(key), model.get(&key).copied(), "final get({key})");
        }
    }
}
