//! Global (multi-tenant) tiering — the paper's §7 extension.
//!
//! "To support global memory tiering (e.g., multi-tenant VM, co-located
//! applications), one could use a central HybridTier controller that
//! coordinates with individual HybridTier instances. Each HybridTier
//! instance would report local hot/cold items to the central controller,
//! which makes global promotion/demotion decisions." (paper §7)
//!
//! This module implements that sketch as a *coordinator*: a
//! [`GlobalController`] owns the physical fast-tier budget and periodically
//! re-partitions it across registered tenants in proportion to each
//! tenant's reported demand (its demonstrated hot-set size, see
//! [`TieringPolicy::fast_demand_pages`](crate::TieringPolicy::fast_demand_pages)).
//! Every re-partition is recorded as a typed [`RebalanceEvent`], so callers
//! get a full quota trajectory instead of a bare quota vector.
//!
//! The controller deliberately does **not** own tenant runtimes: the
//! simulation engine (`tiering_sim::MultiTenantEngine`) drives each tenant
//! through its own pipeline, collects demand signals, calls
//! [`rebalance`](GlobalController::rebalance), and enforces the resulting
//! quotas by resizing each tenant's fast tier (shrunk tenants drain through
//! their policy's ordinary watermark demotion — quota enforcement rides the
//! existing migration path, it is not a special mechanism).

use tiering_mem::{PageSize, TierConfig, TieredMemory};

/// Demands above this are clamped before apportioning (2^40 pages = 4 PiB of
/// 4 KiB pages): keeps the exact 128-bit quota arithmetic overflow-free for
/// any `u64` budget while being far beyond any real footprint.
const DEMAND_CLAMP: u64 = 1 << 40;

/// One quota re-partition, as a typed event.
///
/// The controller records every [`rebalance`](GlobalController::rebalance)
/// as one of these; the vectors are indexed by tenant registration order.
/// `PartialEq`/`Eq` make event traces directly comparable in determinism
/// tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceEvent {
    /// Simulated time the rebalance ran at.
    pub at_ns: u64,
    /// Demand signal per tenant as used for apportioning (clamped to
    /// `[1, 2^40]`).
    pub demands: Vec<u64>,
    /// Fast-tier quota per tenant after the rebalance. Sums to exactly the
    /// controller's budget.
    pub quotas: Vec<u64>,
}

impl RebalanceEvent {
    /// Fast pages assigned in total (always the controller's full budget).
    pub fn assigned(&self) -> u64 {
        self.quotas.iter().sum()
    }
}

/// One registered tenant (name + footprint + current quota).
#[derive(Debug, Clone)]
struct TenantSlot {
    name: String,
    footprint_pages: u64,
    quota: u64,
}

/// Central coordinator that splits one physical fast tier across tenants.
///
/// Quotas are re-derived on [`rebalance`](GlobalController::rebalance):
/// the caller reports each tenant's demand (pages it demonstrably wants
/// fast), and the controller assigns the global budget proportionally with
/// a configurable per-tenant floor so an idle tenant can always warm back
/// up. The arithmetic is exact (128-bit integer), so equal inputs always
/// produce identical quotas — the property tests pin this.
#[derive(Debug)]
pub struct GlobalController {
    fast_budget_pages: u64,
    /// Minimum share of the budget any tenant keeps (fraction).
    floor_frac: f64,
    tenants: Vec<TenantSlot>,
    events: Vec<RebalanceEvent>,
}

impl GlobalController {
    /// A controller managing `fast_budget_pages` of physical fast memory.
    ///
    /// # Panics
    ///
    /// Panics if `fast_budget_pages == 0` or `floor_frac` is not in
    /// `[0, 0.5]`.
    pub fn new(fast_budget_pages: u64, floor_frac: f64) -> Self {
        assert!(fast_budget_pages > 0, "empty fast budget");
        assert!(
            (0.0..=0.5).contains(&floor_frac),
            "floor fraction {floor_frac} out of range"
        );
        Self {
            fast_budget_pages,
            floor_frac,
            tenants: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Registers a tenant and resets all tenants to equal initial shares of
    /// the budget (remainder pages go to the earliest tenants). Returns the
    /// tenant's index for subsequent calls.
    ///
    /// # Panics
    ///
    /// Panics if the budget cannot give every registered tenant at least
    /// one fast page — the min-one quota guarantee needs
    /// `fast_budget_pages >= num_tenants`.
    pub fn add_tenant(&mut self, name: &str, footprint_pages: u64) -> usize {
        assert!(
            self.fast_budget_pages > self.tenants.len() as u64,
            "budget of {} pages cannot hold one page per tenant for {} tenants",
            self.fast_budget_pages,
            self.tenants.len() + 1,
        );
        self.tenants.push(TenantSlot {
            name: name.to_string(),
            footprint_pages,
            quota: 0,
        });
        let n = self.tenants.len() as u64;
        let base = self.fast_budget_pages / n;
        let rem = self.fast_budget_pages % n;
        for (i, t) in self.tenants.iter_mut().enumerate() {
            t.quota = base + u64::from((i as u64) < rem);
        }
        self.tenants.len() - 1
    }

    /// Number of registered tenants.
    pub fn num_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// The tenant's registered name.
    pub fn tenant_name(&self, idx: usize) -> &str {
        &self.tenants[idx].name
    }

    /// Pages the tenant's address space spans.
    pub fn footprint_pages(&self, idx: usize) -> u64 {
        self.tenants[idx].footprint_pages
    }

    /// The tenant's current fast-tier quota in pages.
    pub fn quota(&self, idx: usize) -> u64 {
        self.tenants[idx].quota
    }

    /// Current quotas in tenant order.
    pub fn quotas(&self) -> Vec<u64> {
        self.tenants.iter().map(|t| t.quota).collect()
    }

    /// The physical fast budget being partitioned.
    pub fn fast_budget_pages(&self) -> u64 {
        self.fast_budget_pages
    }

    /// The per-tenant quota floor in pages at the current tenant count
    /// (zero until a tenant is registered).
    pub fn floor_pages(&self) -> u64 {
        let n = self.tenants.len() as u64;
        if n == 0 {
            0
        } else {
            (self.fast_budget_pages as f64 * self.floor_frac / n as f64) as u64
        }
    }

    /// The tier configuration a tenant's private runtime should start from:
    /// fast capacity = current quota, slow capacity and address space = the
    /// tenant's footprint (the paper's slow tier alone always holds the
    /// whole footprint).
    pub fn tier_config(&self, idx: usize, page_size: PageSize) -> TierConfig {
        let t = &self.tenants[idx];
        TierConfig {
            fast_capacity_pages: t.quota,
            slow_capacity_pages: t.footprint_pages,
            page_size,
            address_space_pages: t.footprint_pages,
        }
    }

    /// Enforces the tenant's current quota on its memory view: shrinking
    /// below occupancy is allowed — the tier reports zero free pages until
    /// the tenant policy's watermark demotion drains the excess, so quota
    /// enforcement rides the ordinary migration path. Quotas are always
    /// ≥ 1 (the min-one guarantee), so the recorded quota is the capacity
    /// actually enforced.
    pub fn apply(&self, idx: usize, mem: &mut TieredMemory) {
        mem.set_fast_capacity(self.tenants[idx].quota);
    }

    /// Re-partitions the fast budget proportionally to the reported demand
    /// per tenant (index-aligned with registration order), with the
    /// configured floor, and records the result as a [`RebalanceEvent`].
    ///
    /// Guarantees (property-tested):
    /// * quotas sum to exactly the budget;
    /// * every tenant keeps at least the floor share — and at least one
    ///   page, so the recorded quota is always an enforceable capacity;
    /// * equal inputs produce identical events (exact integer arithmetic);
    /// * raising one tenant's demand while others hold still never lowers
    ///   that tenant's quota.
    ///
    /// # Panics
    ///
    /// Panics if `demands.len()` differs from the registered tenant count
    /// or no tenants are registered.
    pub fn rebalance(&mut self, at_ns: u64, demands: &[u64]) -> RebalanceEvent {
        let n = self.tenants.len();
        assert!(n > 0, "rebalance with no tenants");
        assert_eq!(demands.len(), n, "one demand per tenant");

        let norm: Vec<u64> = demands.iter().map(|&d| d.clamp(1, DEMAND_CLAMP)).collect();
        let total: u128 = norm.iter().map(|&d| u128::from(d)).sum();
        let floor = self.floor_pages();
        let distributable = u128::from(self.fast_budget_pages.saturating_sub(floor * n as u64));
        let mut quotas: Vec<u64> = norm
            .iter()
            .map(|&d| floor + (distributable * u128::from(d) / total) as u64)
            .collect();
        // Rounding remainder goes to the hungriest tenant (last max on
        // ties, matching `max_by` semantics).
        let assigned: u64 = quotas.iter().sum();
        debug_assert!(assigned <= self.fast_budget_pages);
        let max_idx = norm
            .iter()
            .enumerate()
            .max_by_key(|&(i, &d)| (d, i))
            .map(|(i, _)| i)
            .expect("n > 0");
        quotas[max_idx] += self.fast_budget_pages - assigned;

        // Min-one guarantee: a quota of zero is not an enforceable fast
        // capacity, so top zeros up to one page, taking each page from the
        // largest current quota (lowest demand, then lowest index, on
        // ties — the tie-break that keeps quota ordering aligned with
        // demand ordering). `add_tenant` guarantees budget ≥ tenants, so
        // while a zero exists some quota is ≥ 2 by pigeonhole.
        for i in 0..n {
            if quotas[i] == 0 {
                let donor = quotas
                    .iter()
                    .enumerate()
                    .max_by_key(|&(j, &q)| (q, std::cmp::Reverse(norm[j]), std::cmp::Reverse(j)))
                    .map(|(j, _)| j)
                    .expect("n > 0");
                debug_assert!(quotas[donor] >= 2, "pigeonhole violated");
                quotas[donor] -= 1;
                quotas[i] = 1;
            }
        }

        for (tenant, &quota) in self.tenants.iter_mut().zip(&quotas) {
            tenant.quota = quota;
        }
        let event = RebalanceEvent {
            at_ns,
            demands: norm,
            quotas,
        };
        self.events.push(event.clone());
        event
    }

    /// The full rebalance trace, in call order.
    pub fn events(&self) -> &[RebalanceEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybridtier::{HybridTierConfig, HybridTierPolicy};
    use crate::policy::{PolicyCtx, TieringPolicy};
    use tiering_mem::{PageId, Tier};
    use tiering_trace::Sample;

    /// Builds a tenant runtime at the controller's current quota and feeds
    /// it a synthetic hot set, returning its demand signal.
    fn demand_after_feed(
        g: &GlobalController,
        idx: usize,
        pages: u64,
        samples_per_page: u32,
    ) -> u64 {
        let cfg = g.tier_config(idx, PageSize::Base4K);
        let mut policy = HybridTierPolicy::new(HybridTierConfig::scaled(&cfg), &cfg);
        let mut mem = TieredMemory::new(cfg);
        let mut ctx = PolicyCtx::new();
        for p in 0..pages {
            mem.ensure_mapped(PageId(p), Tier::Slow);
        }
        for s in 0..samples_per_page {
            for p in 0..pages {
                policy.on_sample(
                    Sample {
                        page: PageId(p),
                        addr: p << 12,
                        tier: mem.tier_of(PageId(p)).unwrap_or(Tier::Slow),
                        at_ns: u64::from(s) * 1_000 + p,
                        is_write: false,
                    },
                    &mut mem,
                    &mut ctx,
                );
            }
        }
        policy.fast_demand_pages(&mem)
    }

    #[test]
    fn tenants_start_with_equal_shares() {
        let mut g = GlobalController::new(1_001, 0.1);
        g.add_tenant("a", 10_000);
        g.add_tenant("b", 10_000);
        assert_eq!(g.num_tenants(), 2);
        assert_eq!(g.quota(0) + g.quota(1), 1_001, "budget fully assigned");
        assert!(g.quota(0).abs_diff(g.quota(1)) <= 1, "equal initial shares");
        assert_eq!(g.tenant_name(1), "b");
        assert_eq!(g.footprint_pages(0), 10_000);
    }

    #[test]
    fn hot_tenant_receives_larger_quota() {
        let mut g = GlobalController::new(1_000, 0.1);
        let a = g.add_tenant("hot", 10_000);
        let b = g.add_tenant("idle", 10_000);
        let hot_demand = demand_after_feed(&g, a, 400, 6);
        assert!(hot_demand > 100, "feeding builds real demand: {hot_demand}");
        let event = g.rebalance(0, &[hot_demand, 1]);
        assert!(
            event.quotas[a] > 2 * event.quotas[b],
            "hot tenant should dominate: {:?}",
            event.quotas
        );
        assert_eq!(event.assigned(), 1_000);
    }

    #[test]
    fn floor_keeps_idle_tenants_alive() {
        let mut g = GlobalController::new(1_000, 0.2);
        let _hot = g.add_tenant("hot", 10_000);
        let idle = g.add_tenant("idle", 10_000);
        let event = g.rebalance(0, &[5_000, 0]);
        assert!(
            event.quotas[idle] >= 100,
            "idle tenant must keep its floor share, got {}",
            event.quotas[idle]
        );
        assert_eq!(g.floor_pages(), 100);
    }

    /// The wake-up transition the `multi_tenant` example demonstrates, as a
    /// typed event trace: the batch tenant idles for two rebalances, then
    /// wakes with a demand far beyond the cache tenant's — its quota must
    /// grow strictly across the transition and end dominant, and every
    /// event must assign the full budget.
    #[test]
    fn wakeup_transition_produces_event_trace() {
        let mut g = GlobalController::new(4_000, 0.1);
        let cache = g.add_tenant("cache", 40_000);
        let batch = g.add_tenant("batch", 40_000);

        g.rebalance(100, &[900, 10]);
        g.rebalance(200, &[900, 10]);
        let asleep = g.quota(batch);
        g.rebalance(300, &[900, 2_600]); // batch wakes up
        let awake = g.quota(batch);

        let events = g.events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.at_ns).collect::<Vec<_>>(),
            vec![100, 200, 300]
        );
        assert!(events.iter().all(|e| e.assigned() == 4_000));
        assert!(
            awake > asleep,
            "woken tenant's quota must grow: {asleep} -> {awake}"
        );
        assert!(
            g.quota(batch) > g.quota(cache),
            "demand leader takes the larger share: {:?}",
            g.quotas()
        );
        // The trace reproduces the stored state.
        assert_eq!(events[2].quotas, g.quotas());
    }

    #[test]
    fn shrunk_quota_is_enforced_by_memory() {
        let mut g = GlobalController::new(1_000, 0.1);
        let a = g.add_tenant("a", 10_000);
        let mut mem = TieredMemory::new(g.tier_config(a, PageSize::Base4K));
        for p in 0..1_000u64 {
            mem.ensure_mapped(PageId(p), Tier::Fast);
        }
        g.add_tenant("b", 10_000);
        g.rebalance(0, &[100, 800]);
        g.apply(a, &mut mem);
        assert_eq!(mem.config().fast_capacity_pages, g.quota(a).max(1));
        // Over-quota state is visible so the policy's watermark demotion
        // drains it on subsequent ticks.
        assert_eq!(mem.fast_free(), 0);
        assert!(mem.fast_used() > g.quota(a));
    }

    #[test]
    fn rebalance_is_exact_and_deterministic() {
        let run = || {
            let mut g = GlobalController::new(7_777, 0.15);
            g.add_tenant("a", 1_000);
            g.add_tenant("b", 1_000);
            g.add_tenant("c", 1_000);
            g.rebalance(5, &[13, 999, 100_000])
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "empty fast budget")]
    fn zero_budget_rejected() {
        let _ = GlobalController::new(0, 0.1);
    }

    #[test]
    #[should_panic(expected = "one demand per tenant")]
    fn demand_arity_checked() {
        let mut g = GlobalController::new(100, 0.1);
        g.add_tenant("a", 10);
        g.rebalance(0, &[1, 2]);
    }
}
