//! Global (multi-tenant) tiering — the paper's §7 extension.
//!
//! "To support global memory tiering (e.g., multi-tenant VM, co-located
//! applications), one could use a central HybridTier controller that
//! coordinates with individual HybridTier instances. Each HybridTier
//! instance would report local hot/cold items to the central controller,
//! which makes global promotion/demotion decisions." (paper §7)
//!
//! This module implements that sketch as a *coordinator*: a
//! [`GlobalController`] owns the physical fast-tier budget and periodically
//! re-partitions it across registered tenants in proportion to each
//! tenant's reported demand (its demonstrated hot-set size, see
//! [`TieringPolicy::fast_demand_pages`](crate::TieringPolicy::fast_demand_pages)).
//! Every re-partition is recorded as a typed [`RebalanceEvent`], so callers
//! get a full quota trajectory instead of a bare quota vector.
//!
//! The controller deliberately does **not** own tenant runtimes: the
//! simulation engine (`tiering_sim::MultiTenantEngine`) drives each tenant
//! through its own pipeline, collects demand signals, calls
//! [`rebalance`](GlobalController::rebalance), and enforces the resulting
//! quotas by resizing each tenant's fast tier (shrunk tenants drain through
//! their policy's ordinary watermark demotion — quota enforcement rides the
//! existing migration path, it is not a special mechanism).
//!
//! Two fleet-scale extensions on top of the §7 sketch:
//!
//! * **Pluggable objectives.** *How* the distributable budget follows
//!   demand is a [`QuotaObjective`]: proportional share (the default),
//!   max-min fairness (progressive filling, Equilibria-style), or a
//!   piecewise-linear SLO/utility objective. Every objective must satisfy
//!   the same contract — exact assignment, determinism, demand
//!   monotonicity — pinned for all of them by `tests/global_properties.rs`.
//! * **Tenant churn.** Tenants [`admit`](GlobalController::admit_tenant)
//!   mid-run (under the min-one guarantee) and
//!   [`retire`](GlobalController::retire_tenant) (their fast pages are
//!   reclaimed into the live budget immediately). Slots are stable:
//!   a departed tenant keeps its registration index with a zero quota, so
//!   event vectors stay index-aligned across the whole run, and every
//!   [`RebalanceEvent`] records the live mask it decided over.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;

use tiering_mem::{PageSize, TierConfig, TieredMemory};

use crate::ostree::OsTree;
use crate::policy::DemandCurve;

/// Demands above this are clamped before apportioning (2^40 pages = 4 PiB of
/// 4 KiB pages): keeps the exact 128-bit quota arithmetic overflow-free for
/// any `u64` budget while being far beyond any real footprint.
const DEMAND_CLAMP: u64 = 1 << 40;

/// How a controller splits the distributable budget across live tenants.
///
/// `apportion` receives the clamped demand vector (every entry in
/// `[1, 2^40]`) of the *live* tenants only and the page count to split; it
/// must return one allocation per demand that
///
/// * sums to **exactly** `amount` (the controller closes no gaps);
/// * is **deterministic** — equal inputs, equal outputs (exact integer
///   arithmetic only);
/// * is **demand-monotone** — raising one tenant's demand while the others
///   hold still never lowers that tenant's allocation;
/// * **follows demand ordering** — a strictly hungrier tenant never
///   receives strictly less.
///
/// The per-tenant floor and the min-one guarantee are enforced by the
/// controller *around* the objective, so objectives stay pure apportioning
/// math. `tests/global_properties.rs` pins the contract for every
/// [`ObjectiveKind`].
pub trait QuotaObjective: fmt::Debug + Send + Sync {
    /// Short name recorded into every [`RebalanceEvent`].
    fn label(&self) -> &'static str;

    /// Splits `amount` pages across `demands.len()` tenants.
    fn apportion(&self, demands: &[u64], amount: u64) -> Vec<u64>;

    /// Like [`apportion`](Self::apportion), but with an optional per-tenant
    /// requirement hint distilled from a sampled marginal-utility curve
    /// (see [`curve_requirement`](Self::curve_requirement)). Objectives
    /// that have no use for the richer signal ignore it — the default
    /// delegates to `apportion`, so behavior is bit-identical unless an
    /// objective opts in (only [`SloUtility`] does). Hinted apportioning
    /// keeps exactness and determinism but deliberately trades the
    /// demand-ordering guarantee for measured curvature: a tenant whose
    /// curve says it needs few fast pages may receive less than a
    /// nominally less hungry tenant with a steep curve.
    fn apportion_hinted(&self, demands: &[u64], hints: &[Option<u64>], amount: u64) -> Vec<u64> {
        let _ = hints;
        self.apportion(demands, amount)
    }

    /// Distills a sampled marginal-utility curve into the scalar this
    /// objective can consume (for [`SloUtility`]: the smallest sampled
    /// allocation capturing `slo_frac` of the curve's access mass).
    /// `None` (the default) means the objective ignores curves and the
    /// controller keeps the point-estimate path.
    fn curve_requirement(&self, curve: &DemandCurve) -> Option<u64> {
        let _ = curve;
        None
    }
}

/// Exact weighted split: each tenant gets `amount * w_i / total` (128-bit
/// integer arithmetic), and the rounding dust all goes to the heaviest
/// weight — ties broken by `tiebreak` (the raw demands), then by highest
/// index (`max_by_key` semantics, matching the controller's historical
/// remainder rule). The demand tie-break matters for objectives whose
/// phase weights can tie while demands differ (e.g. SLO requirements
/// `ceil(d·frac)`): without it, dust could hand a strictly hungrier
/// tenant strictly less, breaking the demand-ordering contract. All-zero
/// weights degrade to an equal split (tie-break still by demand).
fn weighted_split(weights: &[u64], amount: u64, tiebreak: &[u64]) -> Vec<u64> {
    let total: u128 = weights.iter().map(|&w| u128::from(w)).sum();
    if total == 0 {
        let ones = vec![1u64; weights.len()];
        return weighted_split(&ones, amount, tiebreak);
    }
    let mut out: Vec<u64> = weights
        .iter()
        .map(|&w| (u128::from(amount) * u128::from(w) / total) as u64)
        .collect();
    let assigned: u64 = out.iter().sum();
    let max_idx = weights
        .iter()
        .enumerate()
        .max_by_key(|&(i, &w)| (w, tiebreak[i], i))
        .map(|(i, _)| i)
        .expect("non-empty weights");
    out[max_idx] += amount - assigned;
    out
}

/// The historical default: allocations proportional to demand.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProportionalShare;

impl QuotaObjective for ProportionalShare {
    fn label(&self) -> &'static str {
        "proportional"
    }

    fn apportion(&self, demands: &[u64], amount: u64) -> Vec<u64> {
        weighted_split(demands, amount, demands)
    }
}

/// Max-min fairness by progressive filling: demands are caps, the water
/// level rises until the budget is spent, and any surplus beyond total
/// demand is split equally. Small tenants are fully satisfied before any
/// large tenant gets more than the fair share — the classic fleet fairness
/// objective (Equilibria, PAPERS.md).
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxMinFairness;

impl QuotaObjective for MaxMinFairness {
    fn label(&self) -> &'static str {
        "max-min"
    }

    fn apportion(&self, demands: &[u64], amount: u64) -> Vec<u64> {
        let n = demands.len();
        let total: u128 = demands.iter().map(|&d| u128::from(d)).sum();
        if u128::from(amount) >= total {
            // Everyone satisfied; the surplus is split equally, one-page
            // dust going to the hungriest tenants first (ties: highest
            // index, consistent with `weighted_split`).
            let surplus = amount - total as u64;
            let base = surplus / n as u64;
            let dust = (surplus % n as u64) as usize;
            let mut out: Vec<u64> = demands.iter().map(|&d| d + base).collect();
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&i| (demands[i], i));
            for &i in order.iter().rev().take(dust) {
                out[i] += 1;
            }
            return out;
        }
        // Progressive filling: satisfy demands in ascending order while the
        // equal share covers them; once it no longer does, every remaining
        // tenant gets the final water level (dust to the hungriest).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (demands[i], i));
        let mut out = vec![0u64; n];
        let mut remaining = amount;
        for (pos, &i) in order.iter().enumerate() {
            let active = (n - pos) as u64;
            let level = remaining / active;
            if demands[i] <= level {
                out[i] = demands[i];
                remaining -= demands[i];
            } else {
                let dust = (remaining - level * active) as usize;
                for &j in &order[pos..] {
                    out[j] = level;
                }
                for &j in order.iter().rev().take(dust) {
                    out[j] += 1;
                }
                remaining = 0;
                break;
            }
        }
        debug_assert_eq!(remaining, 0, "filling assigns the whole amount");
        out
    }
}

/// Default SLO point of [`SloUtility`]: half the demonstrated hot set must
/// be fast before any tenant gets post-SLO pages.
pub const DEFAULT_SLO_FRAC: f64 = 0.5;

/// Piecewise-linear utility / SLO objective (Equilibria-style): each
/// tenant's utility curve is concave piecewise-linear in fast pages — a
/// steep segment up to its SLO requirement (`slo_frac` of demand), a
/// shallow segment up to full demand, flat beyond. With slopes shared
/// across tenants, the exact utility maximizer is a three-phase greedy:
///
/// 1. satisfy every SLO requirement (proportionally to requirements when
///    the budget cannot cover them all);
/// 2. fill the post-SLO segments up to demand (proportionally to segment
///    width when short);
/// 3. split any surplus beyond total demand proportionally to demand
///    (marginal utility is zero there, so surplus placement just keeps the
///    assignment exact and demand-ordered).
#[derive(Debug, Clone, Copy)]
pub struct SloUtility {
    /// Fraction of a tenant's demand that constitutes its SLO requirement,
    /// in `(0, 1]`.
    pub slo_frac: f64,
}

impl Default for SloUtility {
    fn default() -> Self {
        Self {
            slo_frac: DEFAULT_SLO_FRAC,
        }
    }
}

/// The SLO requirement for one clamped demand at `slo_frac`:
/// `ceil(d * slo_frac)`, kept within `[1, d]` so it is always achievable
/// and monotone in `d`. Shared by the full-scan oracle and the incremental
/// apportioner, so both compute bit-identical requirements.
fn slo_requirement(demand: u64, slo_frac: f64) -> u64 {
    ((demand as f64 * slo_frac).ceil() as u64).clamp(1, demand)
}

impl SloUtility {
    /// The SLO requirement for one clamped demand: `ceil(d * slo_frac)`,
    /// kept within `[1, d]` so it is always achievable and monotone in `d`.
    fn requirement(&self, demand: u64) -> u64 {
        slo_requirement(demand, self.slo_frac)
    }

    /// The three-phase greedy over an explicit requirement vector (each
    /// entry already within `[1, d]`): requirements first, then the
    /// post-requirement segments, then surplus beyond demand.
    fn apportion_with_requirements(&self, demands: &[u64], req: &[u64], amount: u64) -> Vec<u64> {
        let total_req: u128 = req.iter().map(|&r| u128::from(r)).sum();
        if u128::from(amount) <= total_req {
            // SLO pressure: the steep segments already exceed the budget —
            // allocate proportionally to the requirements (dust ties broken
            // by raw demand, so requirement ties cannot invert ordering).
            return weighted_split(req, amount, demands);
        }
        let mut out = req.to_vec();
        let mut remaining = amount - total_req as u64;
        let post: Vec<u64> = demands.iter().zip(req).map(|(&d, &r)| d - r).collect();
        let total_post: u128 = post.iter().map(|&p| u128::from(p)).sum();
        if u128::from(remaining) <= total_post {
            for (o, p) in out
                .iter_mut()
                .zip(weighted_split(&post, remaining, demands))
            {
                *o += p;
            }
            return out;
        }
        for (o, &p) in out.iter_mut().zip(&post) {
            *o += p;
        }
        remaining -= total_post as u64;
        for (o, s) in out
            .iter_mut()
            .zip(weighted_split(demands, remaining, demands))
        {
            *o += s;
        }
        out
    }
}

impl QuotaObjective for SloUtility {
    fn label(&self) -> &'static str {
        "slo-utility"
    }

    fn apportion(&self, demands: &[u64], amount: u64) -> Vec<u64> {
        let req: Vec<u64> = demands.iter().map(|&d| self.requirement(d)).collect();
        self.apportion_with_requirements(demands, &req, amount)
    }

    fn apportion_hinted(&self, demands: &[u64], hints: &[Option<u64>], amount: u64) -> Vec<u64> {
        if hints.iter().all(Option::is_none) {
            return self.apportion(demands, amount);
        }
        // A curve-derived requirement replaces the point-estimate one, but
        // stays within `[1, d]` so every phase remains well-formed.
        let req: Vec<u64> = demands
            .iter()
            .zip(hints)
            .map(|(&d, h)| h.map_or_else(|| self.requirement(d), |r| r.clamp(1, d)))
            .collect();
        self.apportion_with_requirements(demands, &req, amount)
    }

    fn curve_requirement(&self, curve: &DemandCurve) -> Option<u64> {
        curve.pages_for_mass_fraction(self.slo_frac)
    }
}

/// The built-in objectives, as a cheap, hashable recipe — what sweep specs
/// carry and [`RebalanceEvent`]s are labelled with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ObjectiveKind {
    /// [`ProportionalShare`] (the default).
    #[default]
    Proportional,
    /// [`MaxMinFairness`].
    MaxMin,
    /// [`SloUtility`] at [`DEFAULT_SLO_FRAC`].
    SloUtility,
}

impl ObjectiveKind {
    /// Every built-in objective, in comparison order — test harnesses and
    /// sweep matrices iterate this.
    pub const ALL: [ObjectiveKind; 3] = [
        ObjectiveKind::Proportional,
        ObjectiveKind::MaxMin,
        ObjectiveKind::SloUtility,
    ];

    /// Label used in reports, scenario names, and golden files.
    pub fn label(self) -> &'static str {
        match self {
            ObjectiveKind::Proportional => "proportional",
            ObjectiveKind::MaxMin => "max-min",
            ObjectiveKind::SloUtility => "slo-utility",
        }
    }

    /// Instantiates the objective.
    pub fn build(self) -> Box<dyn QuotaObjective> {
        match self {
            ObjectiveKind::Proportional => Box::new(ProportionalShare),
            ObjectiveKind::MaxMin => Box::new(MaxMinFairness),
            ObjectiveKind::SloUtility => Box::new(SloUtility::default()),
        }
    }
}

/// How the controller computes and records rebalances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ControllerMode {
    /// The historical path: every rebalance rescans all slots, materializes
    /// every quota, and records full per-slot event vectors. This is the
    /// oracle the incremental path is pinned against, and what all existing
    /// goldens/fingerprints were produced under.
    #[default]
    FullScan,
    /// The fleet-scale path: demands arrive as deltas
    /// ([`update_demand`](GlobalController::update_demand)), a rebalance
    /// after `k` changes costs `O((k + v) log n)` (`v` = distinct live
    /// demand values — `O(k)` in the idle-fleet regime where quiescent
    /// tenants share one demand value), and quotas are represented lazily
    /// as an apportioning *plan* evaluated per slot on read. Events are
    /// **compact**: `live`/`demands`/`quotas` vectors are left empty so a
    /// 10⁵-tenant trace doesn't cost `O(n)` per round to record. Quotas
    /// themselves are bit-identical to [`FullScan`](Self::FullScan) —
    /// property suites pin incremental ≡ full-scan for every objective.
    /// Requires the objective to be set via
    /// [`with_objective_kind`](GlobalController::with_objective_kind);
    /// custom boxed objectives fall back to full scans (correct, just not
    /// sub-linear).
    Incremental,
}

/// Cap on the distinct-demand-value class iteration inside incremental
/// weighted plans. Beyond this the per-class dust sum stops beating the
/// `O(n)` oracle by enough to matter, so the planner gives up and the
/// controller falls back to a full scan for that rebalance (identical
/// results either way).
const MAX_PLAN_CLASSES: usize = 1024;

/// Which weight function a [`ApportionPlan::Weighted`] phase applies to a
/// clamped demand. Every variant is monotone non-decreasing in `d`, which
/// is what makes the plan's dust slot always the maximum `(demand, slot)`
/// key and the minimum allocation always sit at the minimum key.
#[derive(Debug, Clone, Copy)]
enum WeightFn {
    /// base 0, weight `d` — proportional share.
    Demand,
    /// base 0, weight `req(d)` — SLO phase 1 (under requirement pressure).
    Requirement(f64),
    /// base `req(d)`, weight `d - req(d)` — SLO phase 2 (post-SLO fill).
    Post(f64),
    /// base `d`, weight `d` — SLO phase 3 (surplus beyond total demand).
    Luxury,
}

impl WeightFn {
    /// `(base, weight)` for one clamped demand.
    fn base_weight(self, d: u64) -> (u64, u64) {
        match self {
            WeightFn::Demand => (0, d),
            WeightFn::Requirement(frac) => (0, slo_requirement(d, frac)),
            WeightFn::Post(frac) => {
                let r = slo_requirement(d, frac);
                (r, d - r)
            }
            WeightFn::Luxury => (d, d),
        }
    }
}

/// A lazy, `O(1)`-per-slot representation of one exact apportioning
/// decision: `quota(slot) = floor + plan_alloc(plan, slot, norm[slot])`.
/// Constructed in `O(log n)`-ish time from the demand treap; provably
/// equal, slot for slot, to what the full-scan objective math produces
/// (the incremental≡full property suites enforce this bit for bit).
#[derive(Debug, Clone)]
enum ApportionPlan {
    /// One exact weighted split plus a per-slot base — proportional share
    /// and every `SloUtility` phase. `alloc(d) = base(d) +
    /// floor(amount·w(d)/total) + dust·[slot == dust_slot]`; since `w` is
    /// monotone in `d` with demand-then-slot tie-breaks, the oracle's
    /// `max_by_key((w, d, i))` dust receiver *is* the maximum
    /// `(demand, slot)` key.
    Weighted {
        weight: WeightFn,
        amount: u64,
        total: u128,
        dust_slot: usize,
        dust: u64,
    },
    /// Max-min, surplus branch (`amount ≥ total demand`):
    /// `alloc(d) = d + base + [(d, slot) ≥ cutoff]` — the oracle hands its
    /// remainder pages to the top `dust` keys in `(demand, slot)` order,
    /// i.e. everything at or above the `(m - dust)`-th ascending key.
    Surplus {
        base: u64,
        cutoff: Option<(u64, usize)>,
    },
    /// Max-min, progressive-filling branch: demands strictly below the
    /// break demand are fully satisfied; everyone else gets the final
    /// water `level`, plus one dust page for the top `dust` keys. The
    /// break position is per *demand-value class* (the fill predicate is
    /// constant within a class), so `d < d_break` decides the side exactly
    /// as the oracle's position-based loop does.
    Fill {
        level: u64,
        d_break: u64,
        cutoff: Option<(u64, usize)>,
    },
}

/// One dust page for keys at or above the cutoff.
fn cutoff_bonus(cutoff: Option<(u64, usize)>, d: u64, slot: usize) -> u64 {
    u64::from(cutoff.is_some_and(|c| (d, slot) >= c))
}

/// Evaluates a plan for one live slot with clamped demand `d` — the `O(1)`
/// read side of the lazy quota representation.
fn plan_alloc(plan: &ApportionPlan, slot: usize, d: u64) -> u64 {
    match *plan {
        ApportionPlan::Weighted {
            weight,
            amount,
            total,
            dust_slot,
            dust,
        } => {
            let (base, w) = weight.base_weight(d);
            let share = (u128::from(amount) * u128::from(w) / total) as u64;
            base + share + if slot == dust_slot { dust } else { 0 }
        }
        ApportionPlan::Surplus { base, cutoff } => d + base + cutoff_bonus(cutoff, d, slot),
        ApportionPlan::Fill {
            level,
            d_break,
            cutoff,
        } => {
            if d < d_break {
                d
            } else {
                level + cutoff_bonus(cutoff, d, slot)
            }
        }
    }
}

/// Per-objective incremental apportioning state: the live demand treap
/// (keyed `(demand, slot)`, augmented with subtree counts and demand sums)
/// plus the incrementally-maintained requirement total for `SloUtility`.
/// `plan` turns the current tree into an [`ApportionPlan`] without touching
/// unchanged tenants; `None` means "this rebalance can't be planned
/// sub-linearly" and the controller falls back to the full-scan oracle.
#[derive(Debug)]
struct IncrementalApportioner {
    kind: ObjectiveKind,
    slo_frac: f64,
    tree: OsTree,
    /// `Σ slo_requirement(d)` over live slots (maintained for every kind —
    /// one multiply per update — so switching objectives stays trivial).
    total_req: u128,
    /// Demand-value classes: distinct clamped demand → live-slot count.
    /// The weighted plans' dust sum iterates *classes*, not slots, and
    /// this index makes that `O(1)` per class (jumping the treap instead
    /// costs `O(log n)` per class, which at a few hundred classes is a
    /// full scan in disguise).
    classes: BTreeMap<u64, u64>,
    /// Class-walk work performed, in classes visited — folded into
    /// [`ops`](Self::ops) so the meter stays honest about plan cost.
    walk_ops: u64,
}

impl IncrementalApportioner {
    fn new(kind: ObjectiveKind) -> Self {
        Self {
            kind,
            slo_frac: DEFAULT_SLO_FRAC,
            tree: OsTree::new(),
            total_req: 0,
            classes: BTreeMap::new(),
            walk_ops: 0,
        }
    }

    fn insert(&mut self, slot: usize, d: u64) {
        self.tree.insert((d, slot));
        self.total_req += u128::from(slo_requirement(d, self.slo_frac));
        *self.classes.entry(d).or_insert(0) += 1;
    }

    fn remove(&mut self, slot: usize, d: u64) {
        let removed = self.tree.remove((d, slot));
        debug_assert!(removed, "removing absent demand key ({d}, {slot})");
        self.total_req -= u128::from(slo_requirement(d, self.slo_frac));
        let count = self.classes.get_mut(&d).expect("class present");
        *count -= 1;
        if *count == 0 {
            self.classes.remove(&d);
        }
    }

    fn ops(&self) -> u64 {
        self.tree.visits() + self.walk_ops
    }

    fn plan(&mut self, amount: u64) -> Option<ApportionPlan> {
        match self.kind {
            ObjectiveKind::Proportional => {
                let total = self.tree.sum();
                self.weighted_plan(WeightFn::Demand, amount, total)
            }
            ObjectiveKind::MaxMin => self.maxmin_plan(amount),
            ObjectiveKind::SloUtility => {
                let treq = self.total_req;
                if u128::from(amount) <= treq {
                    return self.weighted_plan(WeightFn::Requirement(self.slo_frac), amount, treq);
                }
                let rem = (u128::from(amount) - treq) as u64;
                let tpost = self.tree.sum() - treq;
                if u128::from(rem) <= tpost {
                    return self.weighted_plan(WeightFn::Post(self.slo_frac), rem, tpost);
                }
                let rem2 = (u128::from(rem) - tpost) as u64;
                let total = self.tree.sum();
                self.weighted_plan(WeightFn::Luxury, rem2, total)
            }
        }
    }

    /// A weighted-split plan. The only super-logarithmic step is the dust
    /// value `amount - Σ floor(amount·w_i/total)`, summed per distinct
    /// demand-value class (`w` depends only on the demand value) through
    /// the class index — `O(1)` per class, bounded by
    /// [`MAX_PLAN_CLASSES`]; a more fragmented demand domain falls back to
    /// the full scan instead of pretending to be sub-linear.
    fn weighted_plan(
        &mut self,
        weight: WeightFn,
        amount: u64,
        total: u128,
    ) -> Option<ApportionPlan> {
        if total == 0 {
            // Unreachable for live inputs (clamped demands ≥ 1 make every
            // phase total positive), but the oracle's equal-split fallback
            // is not worth replicating here.
            return None;
        }
        if self.classes.len() > MAX_PLAN_CLASSES {
            return None;
        }
        let dust_slot = self.tree.last().expect("live tenants present").1;
        let mut assigned: u128 = 0;
        for (&v, &count) in &self.classes {
            let (_, w) = weight.base_weight(v);
            assigned += u128::from(count) * (u128::from(amount) * u128::from(w) / total);
        }
        self.walk_ops += self.classes.len() as u64;
        Some(ApportionPlan::Weighted {
            weight,
            amount,
            total,
            dust_slot,
            dust: amount - assigned as u64,
        })
    }

    fn maxmin_plan(&mut self, amount: u64) -> Option<ApportionPlan> {
        let m = self.tree.len() as u64;
        let total = self.tree.sum();
        if u128::from(amount) >= total {
            let surplus = amount - total as u64;
            let base = surplus / m;
            let dust = surplus % m;
            let cutoff = (dust > 0).then(|| self.tree.select((m - dust) as usize));
            return Some(ApportionPlan::Surplus { base, cutoff });
        }
        let (p, pref, d_break) = self
            .tree
            .fill_break(u128::from(amount))
            .expect("amount below total demand always breaks");
        let active = m - p as u64;
        let remaining = (u128::from(amount) - pref) as u64;
        let level = remaining / active;
        let dust = remaining % active;
        let cutoff = (dust > 0).then(|| self.tree.select((m - dust) as usize));
        Some(ApportionPlan::Fill {
            level,
            d_break,
            cutoff,
        })
    }

    /// The smallest allocation any live slot would receive under `plan` —
    /// every plan's `alloc` is monotone in demand with slot tie-breaks, so
    /// the minimum sits at the minimum `(demand, slot)` key. The controller
    /// uses this to prove the min-one fixup is a no-op before going lazy.
    fn min_alloc(&self, plan: &ApportionPlan) -> u64 {
        let (d, slot) = self.tree.first().expect("live tenants present");
        plan_alloc(plan, slot, d)
    }
}

/// One quota re-partition, as a typed event.
///
/// The controller records every [`rebalance`](GlobalController::rebalance)
/// as one of these; the vectors are indexed by tenant registration order
/// (stable slots — a departed tenant keeps its index with `live = false`
/// and zeroed entries). `PartialEq`/`Eq` make event traces directly
/// comparable in determinism tests.
///
/// Under [`ControllerMode::Incremental`] the controller records **compact**
/// events: `at_ns`, `objective`, and `floor_pages` are filled in but the
/// three per-slot vectors are left empty, so event recording stays `O(1)`
/// per rebalance at fleet scale. Query the controller
/// ([`quota`](GlobalController::quota)/[`quotas`](GlobalController::quotas))
/// for the decision itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceEvent {
    /// Simulated time the rebalance ran at.
    pub at_ns: u64,
    /// Label of the [`QuotaObjective`] that made the decision.
    pub objective: String,
    /// Per-live-tenant floor (pages) enforced around the objective.
    pub floor_pages: u64,
    /// Which registration slots were live at decision time — the fleet
    /// composition this event apportioned over.
    pub live: Vec<bool>,
    /// Demand signal per tenant as used for apportioning (clamped to
    /// `[1, 2^40]`; departed slots report 0).
    pub demands: Vec<u64>,
    /// Fast-tier quota per tenant after the rebalance. Sums to exactly the
    /// controller's budget (departed slots hold 0).
    pub quotas: Vec<u64>,
}

impl RebalanceEvent {
    /// Fast pages assigned in total (the controller's full budget for
    /// full-detail events; 0 for the empty-vector compact events recorded
    /// under [`ControllerMode::Incremental`]).
    pub fn assigned(&self) -> u64 {
        self.quotas.iter().sum()
    }
}

/// One registered tenant (name + footprint + current quota + liveness).
#[derive(Debug, Clone)]
struct TenantSlot {
    name: String,
    footprint_pages: u64,
    quota: u64,
    /// A retired slot stays registered (stable indices) but holds no quota
    /// and is skipped by every apportioning decision.
    live: bool,
}

/// A rebalance whose quotas exist only as `floor + plan` — the lazy state
/// [`ControllerMode::Incremental`] leaves behind instead of materialized
/// per-slot quotas. Folded into the slots (`materialize`) the moment any
/// operation needs mutable per-slot quotas (churn).
#[derive(Debug, Clone)]
struct LazyPlan {
    floor: u64,
    plan: ApportionPlan,
}

/// Central coordinator that splits one physical fast tier across tenants.
///
/// Quotas are re-derived on [`rebalance`](GlobalController::rebalance):
/// the caller reports each tenant's demand (pages it demonstrably wants
/// fast), and the controller assigns the global budget proportionally with
/// a configurable per-tenant floor so an idle tenant can always warm back
/// up. The arithmetic is exact (128-bit integer), so equal inputs always
/// produce identical quotas — the property tests pin this.
///
/// At fleet scale, [`ControllerMode::Incremental`] plus the delta API
/// ([`update_demand`](Self::update_demand) →
/// [`rebalance_dirty`](Self::rebalance_dirty)) makes a rebalance after `k`
/// demand changes cost `O(k log n)` instead of `O(n)`, bit-identical to
/// the full-scan arithmetic (pinned by `tests/global_incremental.rs`).
#[derive(Debug)]
pub struct GlobalController {
    fast_budget_pages: u64,
    /// Minimum share of the budget any tenant keeps (fraction).
    floor_frac: f64,
    objective: Box<dyn QuotaObjective>,
    /// Set when the objective came from [`ObjectiveKind`] — the incremental
    /// apportioner dispatches on it; `None` (custom boxed objective) pins
    /// the controller to full scans.
    objective_kind: Option<ObjectiveKind>,
    mode: ControllerMode,
    tenants: Vec<TenantSlot>,
    /// Applied clamped demand per slot (`[1, 2^40]` live, 0 dead) — the
    /// controller's persistent demand model, updated only for dirty slots.
    norm: Vec<u64>,
    /// Staged clamped demand per slot (meaningful while `dirty[slot]`).
    staged: Vec<u64>,
    dirty: Vec<bool>,
    dirty_slots: Vec<usize>,
    /// Curve-derived requirement hint per slot (see
    /// [`update_demand_curve`](Self::update_demand_curve)); `hints_live`
    /// counts the `Some` entries so the default path pays nothing.
    hints: Vec<Option<u64>>,
    hints_live: usize,
    live_count: usize,
    incr: Option<IncrementalApportioner>,
    lazy: Option<LazyPlan>,
    /// Set while quotas are (lazily) the equal seed split of the budget —
    /// [`add_tenant`](Self::add_tenant) resets every live tenant anyway,
    /// so registering an `n`-tenant fleet stays `O(n)` total instead of
    /// `O(n²)`. Only ever set when every slot is live (rank = index);
    /// folded by [`materialize`](Self::materialize). Mutually exclusive
    /// with `lazy`.
    equal_share: bool,
    /// Lazily rebuilt max-heap of `(quota, Reverse(slot))` over live slots,
    /// making admission bursts `O(log n)` amortized; invalidated whenever
    /// quotas change outside `admit_tenant` itself.
    donor_heap: Option<BinaryHeap<(u64, Reverse<usize>)>>,
    /// Slots touched by full-scan rebalances — with the treap's visit
    /// counter, the work meter behind [`apportion_ops`](Self::apportion_ops).
    full_scan_ops: u64,
    events: Vec<RebalanceEvent>,
}

impl GlobalController {
    /// A controller managing `fast_budget_pages` of physical fast memory
    /// under the default [`ProportionalShare`] objective.
    ///
    /// # Panics
    ///
    /// Panics if `fast_budget_pages == 0` or `floor_frac` is not in
    /// `[0, 0.5]`.
    pub fn new(fast_budget_pages: u64, floor_frac: f64) -> Self {
        assert!(fast_budget_pages > 0, "empty fast budget");
        assert!(
            (0.0..=0.5).contains(&floor_frac),
            "floor fraction {floor_frac} out of range"
        );
        Self {
            fast_budget_pages,
            floor_frac,
            objective: Box::new(ProportionalShare),
            objective_kind: Some(ObjectiveKind::Proportional),
            mode: ControllerMode::FullScan,
            tenants: Vec::new(),
            norm: Vec::new(),
            staged: Vec::new(),
            dirty: Vec::new(),
            dirty_slots: Vec::new(),
            hints: Vec::new(),
            hints_live: 0,
            live_count: 0,
            incr: None,
            lazy: None,
            equal_share: false,
            donor_heap: None,
            full_scan_ops: 0,
            events: Vec::new(),
        }
    }

    /// Swaps in a **custom** quota objective. This disables the incremental
    /// apportioner (the controller can't see inside a boxed objective), so
    /// [`ControllerMode::Incremental`] degrades to full scans with compact
    /// events; built-in objectives should go through
    /// [`with_objective_kind`](Self::with_objective_kind) instead.
    #[must_use]
    pub fn with_objective(mut self, objective: Box<dyn QuotaObjective>) -> Self {
        self.objective = objective;
        self.objective_kind = None;
        self.refresh_incremental();
        self
    }

    /// Selects a built-in objective by kind — the form that keeps
    /// [`ControllerMode::Incremental`] genuinely sub-linear, because the
    /// controller can maintain per-kind incremental apportioning state.
    #[must_use]
    pub fn with_objective_kind(mut self, kind: ObjectiveKind) -> Self {
        self.objective = kind.build();
        self.objective_kind = Some(kind);
        self.refresh_incremental();
        self
    }

    /// Selects the rebalance mode (default [`ControllerMode::FullScan`]).
    #[must_use]
    pub fn with_mode(mut self, mode: ControllerMode) -> Self {
        self.mode = mode;
        self.refresh_incremental();
        self
    }

    /// The active rebalance mode.
    pub fn mode(&self) -> ControllerMode {
        self.mode
    }

    /// (Re)builds the incremental apportioner to match mode + objective,
    /// reseeding it from the current live demand model so the builders can
    /// be called in any order (even, defensively, mid-run).
    fn refresh_incremental(&mut self) {
        self.materialize();
        self.incr = match (self.mode, self.objective_kind) {
            (ControllerMode::Incremental, Some(kind)) => {
                let mut inc = IncrementalApportioner::new(kind);
                for (slot, &d) in self.norm.iter().enumerate() {
                    if d > 0 {
                        inc.insert(slot, d);
                    }
                }
                Some(inc)
            }
            _ => None,
        };
    }

    /// Label of the active objective.
    pub fn objective_label(&self) -> &'static str {
        self.objective.label()
    }

    /// Registers a tenant and resets all **live** tenants to equal initial
    /// shares of the budget (remainder pages go to the earliest live
    /// tenants). Returns the tenant's index for subsequent calls. Use
    /// before the run starts; mid-run arrivals go through
    /// [`admit_tenant`](GlobalController::admit_tenant), which leaves
    /// incumbent quotas standing.
    ///
    /// # Panics
    ///
    /// Panics if the budget cannot give every live tenant at least one
    /// fast page — the min-one quota guarantee needs
    /// `fast_budget_pages >= live tenants`.
    pub fn add_tenant(&mut self, name: &str, footprint_pages: u64) -> usize {
        assert!(
            self.fast_budget_pages > self.num_live() as u64,
            "budget of {} pages cannot hold one page per tenant for {} tenants",
            self.fast_budget_pages,
            self.num_live() + 1,
        );
        let slot = self.register_slot(name, footprint_pages, 0);
        // The reset discards every prior quota, so nothing needs
        // materializing first — registering an n-tenant fleet is O(n)
        // total. With retired slots in the table the live ranks are no
        // longer the indices, so fall back to the eager loop.
        self.lazy = None;
        self.donor_heap = None;
        if self.live_count == self.tenants.len() {
            self.equal_share = true;
        } else {
            self.equal_share = false;
            let n = self.live_count as u64;
            let base = self.fast_budget_pages / n;
            let rem = self.fast_budget_pages % n;
            let mut live_idx = 0u64;
            for t in self.tenants.iter_mut() {
                if t.live {
                    t.quota = base + u64::from(live_idx < rem);
                    live_idx += 1;
                }
            }
        }
        slot
    }

    /// Pushes one live slot with the shared side-table bookkeeping: the
    /// demand model starts at 1 (the clamp of "no demand reported yet"),
    /// mirrored into the incremental apportioner.
    fn register_slot(&mut self, name: &str, footprint_pages: u64, quota: u64) -> usize {
        self.tenants.push(TenantSlot {
            name: name.to_string(),
            footprint_pages,
            quota,
            live: true,
        });
        self.norm.push(1);
        self.staged.push(1);
        self.dirty.push(false);
        self.hints.push(None);
        self.live_count += 1;
        let slot = self.tenants.len() - 1;
        if let Some(inc) = &mut self.incr {
            inc.insert(slot, 1);
        }
        slot
    }

    /// Admits a tenant **mid-run** under the min-one guarantee: the
    /// newcomer immediately receives one fast page — carved from the live
    /// tenant with the largest current quota (lowest index on ties) — and
    /// earns its real share at the next rebalance. If no tenant is live,
    /// the newcomer takes the whole parked budget. Incumbent quotas are
    /// otherwise untouched, so live quotas keep summing to the budget.
    ///
    /// # Panics
    ///
    /// Panics if the budget cannot hold one page per live tenant after
    /// admission.
    pub fn admit_tenant(&mut self, name: &str, footprint_pages: u64) -> usize {
        assert!(
            self.fast_budget_pages > self.num_live() as u64,
            "budget of {} pages cannot admit a tenant beyond {} live tenants",
            self.fast_budget_pages,
            self.num_live(),
        );
        self.materialize();
        let quota = if self.live_count == 0 {
            self.fast_budget_pages
        } else {
            // The donor is the largest live quota, lowest slot on ties —
            // found through a lazily-built max-heap so admission bursts at
            // fleet scale cost O(log n) amortized instead of a full scan
            // each (the heap survives across consecutive admits and is
            // invalidated by anything else that moves quotas).
            if self.donor_heap.is_none() {
                self.donor_heap = Some(
                    self.tenants
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| t.live)
                        .map(|(j, t)| (t.quota, Reverse(j)))
                        .collect(),
                );
            }
            let heap = self.donor_heap.as_mut().expect("just built");
            let donor = loop {
                let (q, Reverse(j)) = heap.pop().expect("a live tenant exists");
                // Entries go stale when a popped slot's quota was since
                // re-pushed lower; every live slot's current pair is always
                // present, so the first matching pop is the true maximum.
                if self.tenants[j].live && self.tenants[j].quota == q {
                    break j;
                }
            };
            // Pigeonhole: budget > live count and every live quota ≥ 1, so
            // the largest live quota is ≥ 2 and stays enforceable.
            debug_assert!(self.tenants[donor].quota >= 2, "pigeonhole violated");
            self.tenants[donor].quota -= 1;
            let updated = (self.tenants[donor].quota, Reverse(donor));
            self.donor_heap.as_mut().expect("just built").push(updated);
            1
        };
        let slot = self.register_slot(name, footprint_pages, quota);
        if let Some(heap) = &mut self.donor_heap {
            heap.push((quota, Reverse(slot)));
        }
        slot
    }

    /// Retires a tenant: its slot goes dead (index preserved, quota zero)
    /// and its fast pages are reclaimed into the budget **immediately** —
    /// spread equally over the remaining live tenants, remainder pages to
    /// the lowest-indexed ones — so live quotas re-sum to the budget after
    /// every event. With no live tenant left the budget parks until the
    /// next [`admit_tenant`](GlobalController::admit_tenant).
    ///
    /// # Panics
    ///
    /// Panics if the slot is already retired.
    pub fn retire_tenant(&mut self, idx: usize) {
        assert!(self.tenants[idx].live, "tenant {idx} retired twice");
        self.materialize();
        let reclaimed = self.tenants[idx].quota;
        self.tenants[idx].quota = 0;
        self.tenants[idx].live = false;
        if let Some(inc) = &mut self.incr {
            inc.remove(idx, self.norm[idx]);
        }
        self.norm[idx] = 0;
        if self.hints[idx].take().is_some() {
            self.hints_live -= 1;
        }
        self.live_count -= 1;
        self.donor_heap = None;
        let m = self.live_count as u64;
        if m == 0 {
            return;
        }
        let base = reclaimed / m;
        let rem = reclaimed % m;
        let mut live_idx = 0u64;
        for t in self.tenants.iter_mut() {
            if t.live {
                t.quota += base + u64::from(live_idx < rem);
                live_idx += 1;
            }
        }
    }

    /// Number of registered tenant slots (live and retired).
    pub fn num_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// Number of live tenants (an `O(1)` counter — `floor_pages` and the
    /// admission asserts hit this on every churn event, so it must not be
    /// a scan at fleet scale).
    pub fn num_live(&self) -> usize {
        self.live_count
    }

    /// Whether the slot is live (registered and not retired).
    pub fn is_live(&self, idx: usize) -> bool {
        self.tenants[idx].live
    }

    /// The live mask over registration slots — the fleet composition.
    pub fn live_mask(&self) -> Vec<bool> {
        self.tenants.iter().map(|t| t.live).collect()
    }

    /// The tenant's registered name.
    pub fn tenant_name(&self, idx: usize) -> &str {
        &self.tenants[idx].name
    }

    /// Pages the tenant's address space spans.
    pub fn footprint_pages(&self, idx: usize) -> u64 {
        self.tenants[idx].footprint_pages
    }

    /// The tenant's current fast-tier quota in pages. Under a lazy
    /// incremental rebalance this evaluates the plan for the slot in
    /// `O(1)`; the result is identical to the materialized quota.
    pub fn quota(&self, idx: usize) -> u64 {
        let t = &self.tenants[idx];
        if !t.live {
            return 0;
        }
        if self.equal_share {
            // All slots are live while this flag holds, so rank = index.
            let n = self.live_count as u64;
            return self.fast_budget_pages / n
                + u64::from((idx as u64) < self.fast_budget_pages % n);
        }
        match &self.lazy {
            Some(lz) => lz.floor + plan_alloc(&lz.plan, idx, self.norm[idx]),
            None => t.quota,
        }
    }

    /// Current quotas in tenant order.
    pub fn quotas(&self) -> Vec<u64> {
        (0..self.tenants.len()).map(|i| self.quota(i)).collect()
    }

    /// Folds an outstanding lazy plan into materialized per-slot quotas —
    /// the `O(n)` step churn pays so admit/retire keep their exact
    /// historical donor/spread semantics. A no-op when quotas are already
    /// materialized (always, under [`ControllerMode::FullScan`]).
    fn materialize(&mut self) {
        if self.equal_share {
            self.equal_share = false;
            let n = self.live_count as u64;
            let base = self.fast_budget_pages / n;
            let rem = self.fast_budget_pages % n;
            for (i, t) in self.tenants.iter_mut().enumerate() {
                t.quota = base + u64::from((i as u64) < rem);
            }
            self.donor_heap = None;
            return;
        }
        let Some(lz) = self.lazy.take() else {
            return;
        };
        for i in 0..self.tenants.len() {
            let q = if self.tenants[i].live {
                lz.floor + plan_alloc(&lz.plan, i, self.norm[i])
            } else {
                0
            };
            self.tenants[i].quota = q;
        }
        self.donor_heap = None;
    }

    /// The physical fast budget being partitioned.
    pub fn fast_budget_pages(&self) -> u64 {
        self.fast_budget_pages
    }

    /// The per-tenant quota floor in pages at the current **live** tenant
    /// count (zero until a tenant is live).
    pub fn floor_pages(&self) -> u64 {
        let n = self.num_live() as u64;
        if n == 0 {
            0
        } else {
            (self.fast_budget_pages as f64 * self.floor_frac / n as f64) as u64
        }
    }

    /// The tier configuration a tenant's private runtime should start from:
    /// fast capacity = current quota, slow capacity and address space = the
    /// tenant's footprint (the paper's slow tier alone always holds the
    /// whole footprint).
    pub fn tier_config(&self, idx: usize, page_size: PageSize) -> TierConfig {
        let t = &self.tenants[idx];
        TierConfig {
            fast_capacity_pages: self.quota(idx),
            slow_capacity_pages: t.footprint_pages,
            page_size,
            address_space_pages: t.footprint_pages,
        }
    }

    /// Enforces the tenant's current quota on its memory view: shrinking
    /// below occupancy is allowed — the tier reports zero free pages until
    /// the tenant policy's watermark demotion drains the excess, so quota
    /// enforcement rides the ordinary migration path. Quotas are always
    /// ≥ 1 (the min-one guarantee), so the recorded quota is the capacity
    /// actually enforced.
    pub fn apply(&self, idx: usize, mem: &mut TieredMemory) {
        mem.set_fast_capacity(self.quota(idx));
    }

    /// Re-partitions the fast budget across **live** tenants according to
    /// the active [`QuotaObjective`] and the reported demand per slot
    /// (index-aligned with registration order; departed slots' entries are
    /// ignored), with the configured floor, and records the result as a
    /// [`RebalanceEvent`].
    ///
    /// Guarantees (property-tested for every objective):
    /// * live quotas sum to exactly the budget (departed slots hold 0);
    /// * every live tenant keeps at least the floor share — and at least
    ///   one page, so the recorded quota is always an enforceable capacity;
    /// * equal inputs produce identical events (exact integer arithmetic);
    /// * raising one tenant's demand while others hold still never lowers
    ///   that tenant's quota.
    ///
    /// # Panics
    ///
    /// Panics if `demands.len()` differs from the registered slot count or
    /// no tenant is live.
    pub fn rebalance(&mut self, at_ns: u64, demands: &[u64]) -> RebalanceEvent {
        assert_eq!(demands.len(), self.tenants.len(), "one demand per tenant");
        for (slot, &d) in demands.iter().enumerate() {
            if self.tenants[slot].live {
                self.update_demand(slot, d);
            }
        }
        self.rebalance_dirty(at_ns)
    }

    /// Stages one tenant's demand signal for the next
    /// [`rebalance_dirty`](Self::rebalance_dirty), clamping it exactly as
    /// [`rebalance`](Self::rebalance) always has. Only *changed* demands
    /// mark the slot dirty — re-reporting an unchanged demand is free — so
    /// callers can push every active tenant's signal each round and still
    /// get `O(k)` dirty slots. Demands for retired slots are ignored
    /// (matching `rebalance`, which has always ignored dead entries).
    ///
    /// # Panics
    ///
    /// Panics if `slot` was never registered.
    pub fn update_demand(&mut self, slot: usize, demand: u64) {
        if !self.tenants[slot].live {
            return;
        }
        let clamped = demand.clamp(1, DEMAND_CLAMP);
        if self.dirty[slot] {
            self.staged[slot] = clamped;
        } else if self.norm[slot] != clamped {
            self.dirty[slot] = true;
            self.staged[slot] = clamped;
            self.dirty_slots.push(slot);
        }
    }

    /// Feeds one tenant's sampled marginal-utility curve (see
    /// [`TieringPolicy::demand_curve`](crate::TieringPolicy::demand_curve))
    /// to the objective. If the objective consumes curves
    /// ([`QuotaObjective::curve_requirement`] — only [`SloUtility`] does),
    /// the distilled requirement overrides the point-estimate one at the
    /// next rebalance and persists until re-fed or the tenant retires;
    /// otherwise this is a no-op, which is what keeps default behavior
    /// (and every golden) unchanged. Hinted rebalances always run the
    /// full-scan path — the incremental planner models unhinted math only.
    pub fn update_demand_curve(&mut self, slot: usize, curve: &DemandCurve) {
        if !self.tenants[slot].live {
            return;
        }
        let hint = self.objective.curve_requirement(curve);
        let before = self.hints[slot].is_some();
        if hint.is_some() != before {
            if hint.is_some() {
                self.hints_live += 1;
            } else {
                self.hints_live -= 1;
            }
        }
        self.hints[slot] = hint;
    }

    /// Re-partitions the budget from the staged demand deltas — the
    /// fleet-scale half of the split API. Applies every dirty slot to the
    /// demand model (and the incremental apportioner), then either
    ///
    /// * plans the apportionment lazily in `O((k + v) log n)` and records a
    ///   compact event ([`ControllerMode::Incremental`], when the plan is
    ///   provably fixup-free), or
    /// * runs the full-scan oracle over the same demand model (always
    ///   under [`ControllerMode::FullScan`]; as the incremental fallback
    ///   when the plan can't be built or the min-one fixup might fire).
    ///
    /// Both paths produce bit-identical quotas; `FullScan` additionally
    /// records the historical full event vectors.
    ///
    /// # Panics
    ///
    /// Panics if no tenant is live.
    pub fn rebalance_dirty(&mut self, at_ns: u64) -> RebalanceEvent {
        let m = self.live_count;
        assert!(m > 0, "rebalance with no live tenants");

        while let Some(slot) = self.dirty_slots.pop() {
            self.dirty[slot] = false;
            if !self.tenants[slot].live {
                continue;
            }
            let (old, new) = (self.norm[slot], self.staged[slot]);
            if old == new {
                continue;
            }
            if let Some(inc) = &mut self.incr {
                inc.remove(slot, old);
                inc.insert(slot, new);
            }
            self.norm[slot] = new;
        }

        let floor = self.floor_pages();
        let distributable = self.fast_budget_pages.saturating_sub(floor * m as u64);
        self.donor_heap = None;
        self.equal_share = false;

        if self.mode == ControllerMode::Incremental && self.hints_live == 0 {
            if let Some(inc) = &mut self.incr {
                if let Some(plan) = inc.plan(distributable) {
                    // Lazy quotas are exactly `floor + alloc`; that equals
                    // the oracle iff the min-one fixup would not fire, i.e.
                    // the smallest resulting quota is already ≥ 1.
                    if floor + inc.min_alloc(&plan) >= 1 {
                        self.lazy = Some(LazyPlan { floor, plan });
                        let event = self.compact_event(at_ns, floor);
                        self.events.push(event.clone());
                        return event;
                    }
                }
            }
        }

        self.lazy = None;
        self.full_scan_ops += self.tenants.len() as u64;
        let quotas = self.full_scan_quotas(floor, distributable);
        for (tenant, &quota) in self.tenants.iter_mut().zip(&quotas) {
            tenant.quota = quota;
        }
        let event = match self.mode {
            ControllerMode::FullScan => RebalanceEvent {
                at_ns,
                objective: self.objective.label().to_string(),
                floor_pages: floor,
                live: self.live_mask(),
                demands: self.norm.clone(),
                quotas,
            },
            // Event shape is decided by the mode, not by which internal
            // path ran — fingerprints must not depend on planner
            // heuristics like the class-walk cap.
            ControllerMode::Incremental => self.compact_event(at_ns, floor),
        };
        self.events.push(event.clone());
        event
    }

    /// An `O(1)` event record for [`ControllerMode::Incremental`].
    fn compact_event(&self, at_ns: u64, floor: u64) -> RebalanceEvent {
        RebalanceEvent {
            at_ns,
            objective: self.objective.label().to_string(),
            floor_pages: floor,
            live: Vec::new(),
            demands: Vec::new(),
            quotas: Vec::new(),
        }
    }

    /// The full-scan oracle: apportions over the *applied* demand model
    /// (`norm`) exactly as the historical `rebalance` body did, including
    /// the min-one fixup. Returns the materialized quota vector.
    fn full_scan_quotas(&self, floor: u64, distributable: u64) -> Vec<u64> {
        let n = self.tenants.len();
        // The objective sees only the live tenants, in slot order.
        let mut live_demands = Vec::with_capacity(self.live_count);
        let mut live_hints = Vec::with_capacity(self.live_count);
        for (i, t) in self.tenants.iter().enumerate() {
            if t.live {
                live_demands.push(self.norm[i]);
                live_hints.push(self.hints[i]);
            }
        }
        let alloc = if self.hints_live > 0 {
            self.objective
                .apportion_hinted(&live_demands, &live_hints, distributable)
        } else {
            self.objective.apportion(&live_demands, distributable)
        };
        debug_assert_eq!(
            alloc.iter().sum::<u64>(),
            distributable,
            "objective {} broke exact assignment",
            self.objective.label()
        );
        let mut quotas = vec![0u64; n];
        let mut cursor = alloc.into_iter();
        for (q, t) in quotas.iter_mut().zip(&self.tenants) {
            if t.live {
                *q = floor + cursor.next().expect("one allocation per live tenant");
            }
        }

        // Min-one guarantee: a quota of zero is not an enforceable fast
        // capacity, so top live zeros up to one page, taking each page from
        // the largest current live quota (lowest demand, then lowest index,
        // on ties — the tie-break that keeps quota ordering aligned with
        // demand ordering). Admission guarantees budget ≥ live tenants, so
        // while a live zero exists some live quota is ≥ 2 by pigeonhole.
        //
        // The donor key (q, Reverse(norm[j]), Reverse(j)) is injective in j,
        // so each donor is the unique maximum and a lazily-deleted max-heap
        // pops the same donor sequence a per-zero rescan would — in
        // O((n + zeros) log n) instead of O(zeros · n). A donor's quota only
        // decreases (and a topped-up zero jumps 0 → 1 exactly once), so a
        // stale entry can never collide with a slot's current quota; the
        // `quotas[j] == q` freshness check is exact.
        type DonorKey = (u64, Reverse<u64>, Reverse<usize>);
        let mut donors: Option<BinaryHeap<DonorKey>> = None;
        for i in 0..n {
            if self.tenants[i].live && quotas[i] == 0 {
                let heap = donors.get_or_insert_with(|| {
                    (0..n)
                        .filter(|&j| self.tenants[j].live)
                        .map(|j| (quotas[j], Reverse(self.norm[j]), Reverse(j)))
                        .collect()
                });
                let donor = loop {
                    let &(q, _, Reverse(j)) = heap.peek().expect("a live tenant exists");
                    if quotas[j] == q {
                        break j;
                    }
                    heap.pop(); // stale: j's quota changed since this entry
                };
                debug_assert!(quotas[donor] >= 2, "pigeonhole violated");
                heap.pop();
                quotas[donor] -= 1;
                heap.push((quotas[donor], Reverse(self.norm[donor]), Reverse(donor)));
                quotas[i] = 1;
                heap.push((1, Reverse(self.norm[i]), Reverse(i)));
            }
        }
        quotas
    }

    /// Work meter for the sub-linearity tests: tree-node visits performed
    /// by the incremental apportioner plus slots touched by full-scan
    /// rebalances. Counted (not timed) so CI can assert that a dirty-slot
    /// rebalance at 10⁴ tenants does sub-linear work without wall-clock
    /// flakiness.
    pub fn apportion_ops(&self) -> u64 {
        self.full_scan_ops + self.incr.as_ref().map_or(0, IncrementalApportioner::ops)
    }

    /// The full rebalance trace, in call order.
    pub fn events(&self) -> &[RebalanceEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybridtier::{HybridTierConfig, HybridTierPolicy};
    use crate::policy::{PolicyCtx, TieringPolicy};
    use tiering_mem::{PageId, Tier};
    use tiering_trace::Sample;

    /// Builds a tenant runtime at the controller's current quota and feeds
    /// it a synthetic hot set, returning its demand signal.
    fn demand_after_feed(
        g: &GlobalController,
        idx: usize,
        pages: u64,
        samples_per_page: u32,
    ) -> u64 {
        let cfg = g.tier_config(idx, PageSize::Base4K);
        let mut policy = HybridTierPolicy::new(HybridTierConfig::scaled(&cfg), &cfg);
        let mut mem = TieredMemory::new(cfg);
        let mut ctx = PolicyCtx::new();
        for p in 0..pages {
            mem.ensure_mapped(PageId(p), Tier::Slow);
        }
        for s in 0..samples_per_page {
            for p in 0..pages {
                policy.on_sample(
                    Sample {
                        page: PageId(p),
                        addr: p << 12,
                        tier: mem.tier_of(PageId(p)).unwrap_or(Tier::Slow),
                        at_ns: u64::from(s) * 1_000 + p,
                        is_write: false,
                    },
                    &mut mem,
                    &mut ctx,
                );
            }
        }
        policy.fast_demand_pages(&mem)
    }

    #[test]
    fn tenants_start_with_equal_shares() {
        let mut g = GlobalController::new(1_001, 0.1);
        g.add_tenant("a", 10_000);
        g.add_tenant("b", 10_000);
        assert_eq!(g.num_tenants(), 2);
        assert_eq!(g.quota(0) + g.quota(1), 1_001, "budget fully assigned");
        assert!(g.quota(0).abs_diff(g.quota(1)) <= 1, "equal initial shares");
        assert_eq!(g.tenant_name(1), "b");
        assert_eq!(g.footprint_pages(0), 10_000);
    }

    #[test]
    fn hot_tenant_receives_larger_quota() {
        let mut g = GlobalController::new(1_000, 0.1);
        let a = g.add_tenant("hot", 10_000);
        let b = g.add_tenant("idle", 10_000);
        let hot_demand = demand_after_feed(&g, a, 400, 6);
        assert!(hot_demand > 100, "feeding builds real demand: {hot_demand}");
        let event = g.rebalance(0, &[hot_demand, 1]);
        assert!(
            event.quotas[a] > 2 * event.quotas[b],
            "hot tenant should dominate: {:?}",
            event.quotas
        );
        assert_eq!(event.assigned(), 1_000);
    }

    #[test]
    fn floor_keeps_idle_tenants_alive() {
        let mut g = GlobalController::new(1_000, 0.2);
        let _hot = g.add_tenant("hot", 10_000);
        let idle = g.add_tenant("idle", 10_000);
        let event = g.rebalance(0, &[5_000, 0]);
        assert!(
            event.quotas[idle] >= 100,
            "idle tenant must keep its floor share, got {}",
            event.quotas[idle]
        );
        assert_eq!(g.floor_pages(), 100);
    }

    /// The wake-up transition the `multi_tenant` example demonstrates, as a
    /// typed event trace: the batch tenant idles for two rebalances, then
    /// wakes with a demand far beyond the cache tenant's — its quota must
    /// grow strictly across the transition and end dominant, and every
    /// event must assign the full budget.
    #[test]
    fn wakeup_transition_produces_event_trace() {
        let mut g = GlobalController::new(4_000, 0.1);
        let cache = g.add_tenant("cache", 40_000);
        let batch = g.add_tenant("batch", 40_000);

        g.rebalance(100, &[900, 10]);
        g.rebalance(200, &[900, 10]);
        let asleep = g.quota(batch);
        g.rebalance(300, &[900, 2_600]); // batch wakes up
        let awake = g.quota(batch);

        let events = g.events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.at_ns).collect::<Vec<_>>(),
            vec![100, 200, 300]
        );
        assert!(events.iter().all(|e| e.assigned() == 4_000));
        assert!(
            awake > asleep,
            "woken tenant's quota must grow: {asleep} -> {awake}"
        );
        assert!(
            g.quota(batch) > g.quota(cache),
            "demand leader takes the larger share: {:?}",
            g.quotas()
        );
        // The trace reproduces the stored state.
        assert_eq!(events[2].quotas, g.quotas());
    }

    #[test]
    fn shrunk_quota_is_enforced_by_memory() {
        let mut g = GlobalController::new(1_000, 0.1);
        let a = g.add_tenant("a", 10_000);
        let mut mem = TieredMemory::new(g.tier_config(a, PageSize::Base4K));
        for p in 0..1_000u64 {
            mem.ensure_mapped(PageId(p), Tier::Fast);
        }
        g.add_tenant("b", 10_000);
        g.rebalance(0, &[100, 800]);
        g.apply(a, &mut mem);
        assert_eq!(mem.config().fast_capacity_pages, g.quota(a).max(1));
        // Over-quota state is visible so the policy's watermark demotion
        // drains it on subsequent ticks.
        assert_eq!(mem.fast_free(), 0);
        assert!(mem.fast_used() > g.quota(a));
    }

    #[test]
    fn rebalance_is_exact_and_deterministic() {
        let run = || {
            let mut g = GlobalController::new(7_777, 0.15);
            g.add_tenant("a", 1_000);
            g.add_tenant("b", 1_000);
            g.add_tenant("c", 1_000);
            g.rebalance(5, &[13, 999, 100_000])
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "empty fast budget")]
    fn zero_budget_rejected() {
        let _ = GlobalController::new(0, 0.1);
    }

    #[test]
    #[should_panic(expected = "one demand per tenant")]
    fn demand_arity_checked() {
        let mut g = GlobalController::new(100, 0.1);
        g.add_tenant("a", 10);
        g.rebalance(0, &[1, 2]);
    }

    #[test]
    fn maxmin_satisfies_small_demands_first() {
        // 100 pages, demands [10, 200]: the small tenant is fully satisfied
        // (10), the big one takes the rest (90) — proportional would have
        // given the small tenant only ~5.
        let alloc = MaxMinFairness.apportion(&[10, 200], 100);
        assert_eq!(alloc, vec![10, 90]);
        // Surplus beyond total demand splits equally (dust to hungriest).
        let alloc = MaxMinFairness.apportion(&[10, 20], 41);
        assert_eq!(alloc, vec![15, 26]);
        assert_eq!(alloc.iter().sum::<u64>(), 41);
    }

    #[test]
    fn slo_utility_fills_requirements_before_luxury() {
        let slo = SloUtility { slo_frac: 0.5 };
        // 30 pages, demands [20, 40]: requirements [10, 20] fit exactly.
        assert_eq!(slo.apportion(&[20, 40], 30), vec![10, 20]);
        // Under SLO pressure the budget splits over requirements, not raw
        // demand.
        let alloc = slo.apportion(&[20, 40], 15);
        assert_eq!(alloc.iter().sum::<u64>(), 15);
        assert_eq!(alloc, vec![5, 10]);
        // Beyond all requirements, the post-SLO segments fill toward
        // demand.
        let alloc = slo.apportion(&[20, 40], 45);
        assert_eq!(alloc.iter().sum::<u64>(), 45);
        assert!(alloc[0] >= 10 && alloc[1] >= 20, "SLOs held: {alloc:?}");
    }

    #[test]
    fn slo_utility_dust_cannot_invert_ordering_on_requirement_ties() {
        // Demands [4, 3] → requirements [2, 2] (ceil of halves tie while
        // demands differ); 3 pages under SLO pressure leave one dust page.
        // The tie must break by raw demand — the hungrier tenant keeps at
        // least as much.
        let alloc = SloUtility { slo_frac: 0.5 }.apportion(&[4, 3], 3);
        assert_eq!(alloc.iter().sum::<u64>(), 3);
        assert!(alloc[0] >= alloc[1], "ordering inverted: {alloc:?}");
        // Same shape one phase later: post-SLO widths tie at [2, 1]→... and
        // the dust page of the post split must also favor the hungrier.
        let alloc = SloUtility { slo_frac: 0.5 }.apportion(&[4, 3], 6);
        assert_eq!(alloc.iter().sum::<u64>(), 6);
        assert!(alloc[0] >= alloc[1], "phase-2 ordering inverted: {alloc:?}");
    }

    #[test]
    fn objective_kinds_build_and_label() {
        for kind in ObjectiveKind::ALL {
            let obj = kind.build();
            assert_eq!(obj.label(), kind.label());
            assert_eq!(obj.apportion(&[3, 9, 1], 50).iter().sum::<u64>(), 50);
        }
        assert_eq!(ObjectiveKind::default(), ObjectiveKind::Proportional);
    }

    #[test]
    fn admit_carves_min_one_and_conserves_the_budget() {
        let mut g = GlobalController::new(1_000, 0.1);
        g.add_tenant("a", 10_000);
        g.add_tenant("b", 10_000);
        g.rebalance(10, &[700, 300]);
        let before = g.quotas();
        let c = g.admit_tenant("c", 5_000);
        assert_eq!(g.quota(c), 1, "newcomer starts at the min-one share");
        assert_eq!(g.quotas().iter().sum::<u64>(), 1_000, "budget conserved");
        // Exactly one page moved, from the largest incumbent quota.
        let donor = usize::from(before[1] > before[0]);
        assert_eq!(g.quota(donor), before[donor] - 1);
        assert!(g.is_live(c));
        assert_eq!(g.num_live(), 3);
    }

    #[test]
    fn retire_reclaims_pages_into_live_quotas() {
        let mut g = GlobalController::new(999, 0.1);
        g.add_tenant("a", 10_000);
        g.add_tenant("b", 10_000);
        g.add_tenant("c", 10_000);
        g.rebalance(5, &[100, 100, 800]);
        let reclaimed = g.quota(2);
        let (a_before, b_before) = (g.quota(0), g.quota(1));
        g.retire_tenant(2);
        assert!(!g.is_live(2));
        assert_eq!(g.quota(2), 0, "retired slot holds nothing");
        assert_eq!(
            g.quota(0) + g.quota(1),
            a_before + b_before + reclaimed,
            "departed pages reclaimed into live quotas"
        );
        assert_eq!(g.quotas().iter().sum::<u64>(), 999, "budget conserved");
        assert_eq!(g.live_mask(), vec![true, true, false]);
        // The next rebalance decides over the shrunk fleet only.
        let event = g.rebalance(20, &[50, 50, 123_456]);
        assert_eq!(event.quotas[2], 0);
        assert_eq!(event.demands[2], 0, "dead slot demand is ignored");
        assert_eq!(event.live, vec![true, true, false]);
        assert_eq!(event.assigned(), 999);
    }

    #[test]
    fn last_tenant_out_parks_the_budget_and_readmission_takes_it() {
        let mut g = GlobalController::new(500, 0.1);
        g.add_tenant("a", 1_000);
        g.retire_tenant(0);
        assert_eq!(g.num_live(), 0);
        assert_eq!(g.quotas().iter().sum::<u64>(), 0, "budget parked");
        let b = g.admit_tenant("b", 2_000);
        assert_eq!(g.quota(b), 500, "sole live tenant takes the full budget");
    }

    #[test]
    fn events_record_objective_and_floor() {
        let mut g = GlobalController::new(1_000, 0.2).with_objective(ObjectiveKind::MaxMin.build());
        assert_eq!(g.objective_label(), "max-min");
        g.add_tenant("a", 1_000);
        g.add_tenant("b", 1_000);
        let e = g.rebalance(3, &[10, 2_000]);
        assert_eq!(e.objective, "max-min");
        assert_eq!(e.floor_pages, g.floor_pages());
        assert_eq!(e.live, vec![true, true]);
        assert_eq!(e.assigned(), 1_000);
        // Max-min fully satisfies the small demand above its floor.
        assert_eq!(e.quotas[0], e.floor_pages + 10);
    }

    #[test]
    #[should_panic(expected = "retired twice")]
    fn double_retire_is_loud() {
        let mut g = GlobalController::new(100, 0.1);
        g.add_tenant("a", 10);
        g.retire_tenant(0);
        g.retire_tenant(0);
    }

    /// SplitMix64 — deterministic demand scripts without external crates.
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn paired(
        kind: ObjectiveKind,
        budget: u64,
        floor: f64,
        n: usize,
    ) -> (GlobalController, GlobalController) {
        let mut full = GlobalController::new(budget, floor).with_objective_kind(kind);
        let mut inc = GlobalController::new(budget, floor)
            .with_objective_kind(kind)
            .with_mode(ControllerMode::Incremental);
        for i in 0..n {
            full.add_tenant(&format!("t{i}"), 512);
            inc.add_tenant(&format!("t{i}"), 512);
        }
        (full, inc)
    }

    #[test]
    fn incremental_matches_full_scan_for_every_objective() {
        for kind in ObjectiveKind::ALL {
            let (mut full, mut inc) = paired(kind, 10_000, 0.02, 24);
            let mut state = 0xA5F0_5EED ^ kind as u64;
            let mut demands = vec![1u64; 24];
            for round in 0..40 {
                // A few slots change per round, with occasional extremes.
                for _ in 0..3 {
                    let slot = (mix(&mut state) % 24) as usize;
                    demands[slot] = match mix(&mut state) % 5 {
                        0 => 0,
                        1 => u64::MAX,
                        _ => mix(&mut state) % 5_000,
                    };
                }
                let ev_full = full.rebalance(round, &demands);
                let ev_inc = inc.rebalance(round, &demands);
                assert_eq!(
                    full.quotas(),
                    inc.quotas(),
                    "{kind:?} round {round} diverged"
                );
                assert_eq!(ev_full.floor_pages, ev_inc.floor_pages);
                // Compact events intentionally carry no vectors; the
                // controllers themselves must still agree exactly.
                assert_eq!(ev_inc.assigned(), 0);
                assert_eq!(ev_full.assigned(), inc.quotas().iter().sum::<u64>());
            }
        }
    }

    #[test]
    fn incremental_matches_full_scan_under_churn() {
        for kind in ObjectiveKind::ALL {
            let (mut full, mut inc) = paired(kind, 4_096, 0.01, 8);
            let mut state = 0xC0FF_EE00 ^ kind as u64;
            let mut live: Vec<usize> = (0..8).collect();
            let mut demands = vec![1u64; 8];
            for round in 0..60 {
                match mix(&mut state) % 4 {
                    0 if live.len() > 2 => {
                        let victim =
                            live.swap_remove((mix(&mut state) % live.len() as u64) as usize);
                        full.retire_tenant(victim);
                        inc.retire_tenant(victim);
                        demands[victim] = 0;
                    }
                    1 => {
                        let name = format!("n{round}");
                        let a = full.admit_tenant(&name, 256);
                        let b = inc.admit_tenant(&name, 256);
                        assert_eq!(a, b);
                        live.push(a);
                        demands.push(1);
                    }
                    _ => {
                        let slot = live[(mix(&mut state) % live.len() as u64) as usize];
                        demands[slot] = mix(&mut state) % 3_000;
                    }
                }
                assert_eq!(full.quotas(), inc.quotas(), "{kind:?} churn {round}");
                full.rebalance(round, &demands);
                inc.rebalance(round, &demands);
                assert_eq!(full.quotas(), inc.quotas(), "{kind:?} round {round}");
                assert_eq!(full.num_live(), inc.num_live());
            }
        }
    }

    #[test]
    fn delta_api_matches_bulk_rebalance() {
        for kind in ObjectiveKind::ALL {
            let (mut bulk, mut delta) = paired(kind, 8_192, 0.05, 16);
            let mut state = 7u64;
            let mut demands = vec![1u64; 16];
            for round in 0..25 {
                let slot = (mix(&mut state) % 16) as usize;
                let d = mix(&mut state) % 2_000;
                demands[slot] = d;
                bulk.rebalance(round, &demands);
                delta.update_demand(slot, d);
                delta.rebalance_dirty(round);
                assert_eq!(bulk.quotas(), delta.quotas(), "{kind:?} round {round}");
            }
        }
    }

    #[test]
    fn incremental_events_are_compact() {
        let (_, mut inc) = paired(ObjectiveKind::Proportional, 1_000, 0.1, 4);
        let ev = inc.rebalance(5, &[10, 20, 30, 40]);
        assert!(ev.live.is_empty() && ev.demands.is_empty() && ev.quotas.is_empty());
        assert_eq!(ev.assigned(), 0, "compact events report no assignment");
        assert_eq!(ev.floor_pages, inc.floor_pages());
        // The controller itself still answers exact quotas.
        assert_eq!(inc.quotas().iter().sum::<u64>(), 1_000);
    }

    #[test]
    fn full_scan_mode_keeps_historical_event_shape() {
        let (mut full, _) = paired(ObjectiveKind::Proportional, 1_000, 0.1, 4);
        let ev = full.rebalance(5, &[10, 20, 30, 40]);
        assert_eq!(ev.quotas, full.quotas());
        assert_eq!(ev.demands.len(), 4);
        assert_eq!(ev.live, vec![true; 4]);
    }

    #[test]
    fn apportion_ops_stay_sublinear_for_sparse_updates() {
        let n = 4_096;
        let mut inc = GlobalController::new(16 * n as u64, 0.0)
            .with_objective_kind(ObjectiveKind::MaxMin)
            .with_mode(ControllerMode::Incremental);
        for i in 0..n {
            inc.add_tenant(&format!("t{i}"), 64);
        }
        inc.rebalance_dirty(0); // settle the idle fleet
        let baseline = inc.apportion_ops();
        let rounds = 32u64;
        for round in 0..rounds {
            for j in 0..8u64 {
                inc.update_demand(((round * 131 + j * 17) as usize) % n, 100 + round * j);
            }
            inc.rebalance_dirty(round + 1);
        }
        let per_round = (inc.apportion_ops() - baseline) / rounds;
        // Full scans would cost ≥ n = 4096 ops per round; the incremental
        // path does k·O(log n) tree visits. Leave generous slack.
        assert!(
            per_round < n as u64 / 4,
            "expected sub-linear work, got {per_round} ops/round"
        );
    }

    #[test]
    fn hinted_apportion_defaults_to_plain_apportion() {
        let demands = [5u64, 100, 17, 64];
        let hints = [None, None, None, None];
        for kind in ObjectiveKind::ALL {
            let obj = kind.build();
            assert_eq!(
                obj.apportion_hinted(&demands, &hints, 500),
                obj.apportion(&demands, 500),
                "{kind:?} with no hints must match the plain path"
            );
        }
    }

    #[test]
    fn slo_hints_shift_the_requirement_split() {
        let obj = SloUtility { slo_frac: 0.5 };
        let demands = [100u64, 100];
        // Tenant 0's curve says it really needs 90 of its 100 pages to
        // capture half its access mass (flat curve); tenant 1 keeps the
        // default point-estimate requirement of 50.
        let hinted = obj.apportion_hinted(&demands, &[Some(90), None], 140);
        let plain = obj.apportion(&demands, 140);
        assert_eq!(hinted.iter().sum::<u64>(), 140);
        assert!(
            hinted[0] > plain[0],
            "a steeper requirement must pull pages toward tenant 0: {hinted:?} vs {plain:?}"
        );
    }

    #[test]
    fn curve_hints_only_engage_for_slo() {
        let curve = DemandCurve::from_points(vec![(10, 50), (100, 100)]);
        let mut g =
            GlobalController::new(1_000, 0.0).with_objective_kind(ObjectiveKind::Proportional);
        g.add_tenant("a", 128);
        g.add_tenant("b", 128);
        g.update_demand_curve(0, &curve);
        let ev = g.rebalance(1, &[100, 100]);
        assert_eq!(ev.quotas, vec![500, 500], "proportional ignores curves");

        // A scarce budget (below total demand) so the requirement split
        // actually decides the outcome — with abundance every SLO phase
        // saturates and hints are invisible by construction.
        let mut s = GlobalController::new(120, 0.0).with_objective_kind(ObjectiveKind::SloUtility);
        s.add_tenant("a", 128);
        s.add_tenant("b", 128);
        let baseline = s.rebalance(0, &[100, 100]).quotas.clone();
        assert_eq!(baseline, vec![60, 60]);
        // Half the mass sits in the first 10 pages: the distilled
        // requirement (10) is far below the point estimate (50).
        s.update_demand_curve(0, &curve);
        let hinted = s.rebalance(1, &[100, 100]).quotas.clone();
        assert_ne!(hinted, baseline, "SLO consumes the curve hint");
        assert_eq!(hinted.iter().sum::<u64>(), 120);
    }

    #[test]
    fn retiring_a_hinted_tenant_clears_its_hint() {
        let mut s = GlobalController::new(1_000, 0.0)
            .with_objective_kind(ObjectiveKind::SloUtility)
            .with_mode(ControllerMode::Incremental);
        s.add_tenant("a", 128);
        s.add_tenant("b", 128);
        s.add_tenant("c", 128);
        s.update_demand_curve(0, &DemandCurve::from_points(vec![(10, 50), (100, 100)]));
        s.rebalance(0, &[100, 100, 100]);
        s.retire_tenant(0);
        // With the hint gone the incremental planner is allowed again;
        // quotas must match a hint-free full-scan controller.
        let mut oracle =
            GlobalController::new(1_000, 0.0).with_objective_kind(ObjectiveKind::SloUtility);
        oracle.add_tenant("a", 128);
        oracle.add_tenant("b", 128);
        oracle.add_tenant("c", 128);
        oracle.retire_tenant(0);
        oracle.rebalance(1, &[0, 250, 750]);
        s.rebalance(1, &[0, 250, 750]);
        assert_eq!(s.quotas(), oracle.quotas());
    }

    #[test]
    fn admission_burst_matches_scan_donor_semantics() {
        // The donor heap must pick the same donor as the historical
        // max-by-(quota, lowest-index) scan, across a burst of admissions
        // with no rebalance in between.
        for mode in [ControllerMode::FullScan, ControllerMode::Incremental] {
            let mut g = GlobalController::new(997, 0.0).with_mode(mode);
            for i in 0..5 {
                g.add_tenant(&format!("t{i}"), 64);
            }
            g.rebalance(0, &[400, 30, 30, 30, 7]);
            let mut reference: Vec<u64> = g.quotas();
            for i in 0..40 {
                g.admit_tenant(&format!("late{i}"), 64);
                // Reference model: donor = max quota, lowest slot on ties.
                let donor = (0..reference.len())
                    .max_by_key(|&j| (reference[j], Reverse(j)))
                    .unwrap();
                reference[donor] -= 1;
                reference.push(1);
                assert_eq!(g.quotas(), reference, "mode {mode:?} admission {i}");
            }
            assert_eq!(g.quotas().iter().sum::<u64>(), 997);
        }
    }
}
