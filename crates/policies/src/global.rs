//! Global (multi-tenant) tiering — the paper's §7 extension.
//!
//! "To support global memory tiering (e.g., multi-tenant VM, co-located
//! applications), one could use a central HybridTier controller that
//! coordinates with individual HybridTier instances. Each HybridTier
//! instance would report local hot/cold items to the central controller,
//! which makes global promotion/demotion decisions." (paper §7)
//!
//! This module implements that sketch as a *coordinator*: a
//! [`GlobalController`] owns the physical fast-tier budget and periodically
//! re-partitions it across registered tenants in proportion to each
//! tenant's reported demand (its demonstrated hot-set size, see
//! [`TieringPolicy::fast_demand_pages`](crate::TieringPolicy::fast_demand_pages)).
//! Every re-partition is recorded as a typed [`RebalanceEvent`], so callers
//! get a full quota trajectory instead of a bare quota vector.
//!
//! The controller deliberately does **not** own tenant runtimes: the
//! simulation engine (`tiering_sim::MultiTenantEngine`) drives each tenant
//! through its own pipeline, collects demand signals, calls
//! [`rebalance`](GlobalController::rebalance), and enforces the resulting
//! quotas by resizing each tenant's fast tier (shrunk tenants drain through
//! their policy's ordinary watermark demotion — quota enforcement rides the
//! existing migration path, it is not a special mechanism).
//!
//! Two fleet-scale extensions on top of the §7 sketch:
//!
//! * **Pluggable objectives.** *How* the distributable budget follows
//!   demand is a [`QuotaObjective`]: proportional share (the default),
//!   max-min fairness (progressive filling, Equilibria-style), or a
//!   piecewise-linear SLO/utility objective. Every objective must satisfy
//!   the same contract — exact assignment, determinism, demand
//!   monotonicity — pinned for all of them by `tests/global_properties.rs`.
//! * **Tenant churn.** Tenants [`admit`](GlobalController::admit_tenant)
//!   mid-run (under the min-one guarantee) and
//!   [`retire`](GlobalController::retire_tenant) (their fast pages are
//!   reclaimed into the live budget immediately). Slots are stable:
//!   a departed tenant keeps its registration index with a zero quota, so
//!   event vectors stay index-aligned across the whole run, and every
//!   [`RebalanceEvent`] records the live mask it decided over.

use std::fmt;

use tiering_mem::{PageSize, TierConfig, TieredMemory};

/// Demands above this are clamped before apportioning (2^40 pages = 4 PiB of
/// 4 KiB pages): keeps the exact 128-bit quota arithmetic overflow-free for
/// any `u64` budget while being far beyond any real footprint.
const DEMAND_CLAMP: u64 = 1 << 40;

/// How a controller splits the distributable budget across live tenants.
///
/// `apportion` receives the clamped demand vector (every entry in
/// `[1, 2^40]`) of the *live* tenants only and the page count to split; it
/// must return one allocation per demand that
///
/// * sums to **exactly** `amount` (the controller closes no gaps);
/// * is **deterministic** — equal inputs, equal outputs (exact integer
///   arithmetic only);
/// * is **demand-monotone** — raising one tenant's demand while the others
///   hold still never lowers that tenant's allocation;
/// * **follows demand ordering** — a strictly hungrier tenant never
///   receives strictly less.
///
/// The per-tenant floor and the min-one guarantee are enforced by the
/// controller *around* the objective, so objectives stay pure apportioning
/// math. `tests/global_properties.rs` pins the contract for every
/// [`ObjectiveKind`].
pub trait QuotaObjective: fmt::Debug + Send + Sync {
    /// Short name recorded into every [`RebalanceEvent`].
    fn label(&self) -> &'static str;

    /// Splits `amount` pages across `demands.len()` tenants.
    fn apportion(&self, demands: &[u64], amount: u64) -> Vec<u64>;
}

/// Exact weighted split: each tenant gets `amount * w_i / total` (128-bit
/// integer arithmetic), and the rounding dust all goes to the heaviest
/// weight — ties broken by `tiebreak` (the raw demands), then by highest
/// index (`max_by_key` semantics, matching the controller's historical
/// remainder rule). The demand tie-break matters for objectives whose
/// phase weights can tie while demands differ (e.g. SLO requirements
/// `ceil(d·frac)`): without it, dust could hand a strictly hungrier
/// tenant strictly less, breaking the demand-ordering contract. All-zero
/// weights degrade to an equal split (tie-break still by demand).
fn weighted_split(weights: &[u64], amount: u64, tiebreak: &[u64]) -> Vec<u64> {
    let total: u128 = weights.iter().map(|&w| u128::from(w)).sum();
    if total == 0 {
        let ones = vec![1u64; weights.len()];
        return weighted_split(&ones, amount, tiebreak);
    }
    let mut out: Vec<u64> = weights
        .iter()
        .map(|&w| (u128::from(amount) * u128::from(w) / total) as u64)
        .collect();
    let assigned: u64 = out.iter().sum();
    let max_idx = weights
        .iter()
        .enumerate()
        .max_by_key(|&(i, &w)| (w, tiebreak[i], i))
        .map(|(i, _)| i)
        .expect("non-empty weights");
    out[max_idx] += amount - assigned;
    out
}

/// The historical default: allocations proportional to demand.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProportionalShare;

impl QuotaObjective for ProportionalShare {
    fn label(&self) -> &'static str {
        "proportional"
    }

    fn apportion(&self, demands: &[u64], amount: u64) -> Vec<u64> {
        weighted_split(demands, amount, demands)
    }
}

/// Max-min fairness by progressive filling: demands are caps, the water
/// level rises until the budget is spent, and any surplus beyond total
/// demand is split equally. Small tenants are fully satisfied before any
/// large tenant gets more than the fair share — the classic fleet fairness
/// objective (Equilibria, PAPERS.md).
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxMinFairness;

impl QuotaObjective for MaxMinFairness {
    fn label(&self) -> &'static str {
        "max-min"
    }

    fn apportion(&self, demands: &[u64], amount: u64) -> Vec<u64> {
        let n = demands.len();
        let total: u128 = demands.iter().map(|&d| u128::from(d)).sum();
        if u128::from(amount) >= total {
            // Everyone satisfied; the surplus is split equally, one-page
            // dust going to the hungriest tenants first (ties: highest
            // index, consistent with `weighted_split`).
            let surplus = amount - total as u64;
            let base = surplus / n as u64;
            let dust = (surplus % n as u64) as usize;
            let mut out: Vec<u64> = demands.iter().map(|&d| d + base).collect();
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&i| (demands[i], i));
            for &i in order.iter().rev().take(dust) {
                out[i] += 1;
            }
            return out;
        }
        // Progressive filling: satisfy demands in ascending order while the
        // equal share covers them; once it no longer does, every remaining
        // tenant gets the final water level (dust to the hungriest).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (demands[i], i));
        let mut out = vec![0u64; n];
        let mut remaining = amount;
        for (pos, &i) in order.iter().enumerate() {
            let active = (n - pos) as u64;
            let level = remaining / active;
            if demands[i] <= level {
                out[i] = demands[i];
                remaining -= demands[i];
            } else {
                let dust = (remaining - level * active) as usize;
                for &j in &order[pos..] {
                    out[j] = level;
                }
                for &j in order.iter().rev().take(dust) {
                    out[j] += 1;
                }
                remaining = 0;
                break;
            }
        }
        debug_assert_eq!(remaining, 0, "filling assigns the whole amount");
        out
    }
}

/// Default SLO point of [`SloUtility`]: half the demonstrated hot set must
/// be fast before any tenant gets post-SLO pages.
pub const DEFAULT_SLO_FRAC: f64 = 0.5;

/// Piecewise-linear utility / SLO objective (Equilibria-style): each
/// tenant's utility curve is concave piecewise-linear in fast pages — a
/// steep segment up to its SLO requirement (`slo_frac` of demand), a
/// shallow segment up to full demand, flat beyond. With slopes shared
/// across tenants, the exact utility maximizer is a three-phase greedy:
///
/// 1. satisfy every SLO requirement (proportionally to requirements when
///    the budget cannot cover them all);
/// 2. fill the post-SLO segments up to demand (proportionally to segment
///    width when short);
/// 3. split any surplus beyond total demand proportionally to demand
///    (marginal utility is zero there, so surplus placement just keeps the
///    assignment exact and demand-ordered).
#[derive(Debug, Clone, Copy)]
pub struct SloUtility {
    /// Fraction of a tenant's demand that constitutes its SLO requirement,
    /// in `(0, 1]`.
    pub slo_frac: f64,
}

impl Default for SloUtility {
    fn default() -> Self {
        Self {
            slo_frac: DEFAULT_SLO_FRAC,
        }
    }
}

impl SloUtility {
    /// The SLO requirement for one clamped demand: `ceil(d * slo_frac)`,
    /// kept within `[1, d]` so it is always achievable and monotone in `d`.
    fn requirement(&self, demand: u64) -> u64 {
        ((demand as f64 * self.slo_frac).ceil() as u64).clamp(1, demand)
    }
}

impl QuotaObjective for SloUtility {
    fn label(&self) -> &'static str {
        "slo-utility"
    }

    fn apportion(&self, demands: &[u64], amount: u64) -> Vec<u64> {
        let req: Vec<u64> = demands.iter().map(|&d| self.requirement(d)).collect();
        let total_req: u128 = req.iter().map(|&r| u128::from(r)).sum();
        if u128::from(amount) <= total_req {
            // SLO pressure: the steep segments already exceed the budget —
            // allocate proportionally to the requirements (dust ties broken
            // by raw demand, so requirement ties cannot invert ordering).
            return weighted_split(&req, amount, demands);
        }
        let mut out = req.clone();
        let mut remaining = amount - total_req as u64;
        let post: Vec<u64> = demands.iter().zip(&req).map(|(&d, &r)| d - r).collect();
        let total_post: u128 = post.iter().map(|&p| u128::from(p)).sum();
        if u128::from(remaining) <= total_post {
            for (o, p) in out
                .iter_mut()
                .zip(weighted_split(&post, remaining, demands))
            {
                *o += p;
            }
            return out;
        }
        for (o, &p) in out.iter_mut().zip(&post) {
            *o += p;
        }
        remaining -= total_post as u64;
        for (o, s) in out
            .iter_mut()
            .zip(weighted_split(demands, remaining, demands))
        {
            *o += s;
        }
        out
    }
}

/// The built-in objectives, as a cheap, hashable recipe — what sweep specs
/// carry and [`RebalanceEvent`]s are labelled with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ObjectiveKind {
    /// [`ProportionalShare`] (the default).
    #[default]
    Proportional,
    /// [`MaxMinFairness`].
    MaxMin,
    /// [`SloUtility`] at [`DEFAULT_SLO_FRAC`].
    SloUtility,
}

impl ObjectiveKind {
    /// Every built-in objective, in comparison order — test harnesses and
    /// sweep matrices iterate this.
    pub const ALL: [ObjectiveKind; 3] = [
        ObjectiveKind::Proportional,
        ObjectiveKind::MaxMin,
        ObjectiveKind::SloUtility,
    ];

    /// Label used in reports, scenario names, and golden files.
    pub fn label(self) -> &'static str {
        match self {
            ObjectiveKind::Proportional => "proportional",
            ObjectiveKind::MaxMin => "max-min",
            ObjectiveKind::SloUtility => "slo-utility",
        }
    }

    /// Instantiates the objective.
    pub fn build(self) -> Box<dyn QuotaObjective> {
        match self {
            ObjectiveKind::Proportional => Box::new(ProportionalShare),
            ObjectiveKind::MaxMin => Box::new(MaxMinFairness),
            ObjectiveKind::SloUtility => Box::new(SloUtility::default()),
        }
    }
}

/// One quota re-partition, as a typed event.
///
/// The controller records every [`rebalance`](GlobalController::rebalance)
/// as one of these; the vectors are indexed by tenant registration order
/// (stable slots — a departed tenant keeps its index with `live = false`
/// and zeroed entries). `PartialEq`/`Eq` make event traces directly
/// comparable in determinism tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceEvent {
    /// Simulated time the rebalance ran at.
    pub at_ns: u64,
    /// Label of the [`QuotaObjective`] that made the decision.
    pub objective: String,
    /// Per-live-tenant floor (pages) enforced around the objective.
    pub floor_pages: u64,
    /// Which registration slots were live at decision time — the fleet
    /// composition this event apportioned over.
    pub live: Vec<bool>,
    /// Demand signal per tenant as used for apportioning (clamped to
    /// `[1, 2^40]`; departed slots report 0).
    pub demands: Vec<u64>,
    /// Fast-tier quota per tenant after the rebalance. Sums to exactly the
    /// controller's budget (departed slots hold 0).
    pub quotas: Vec<u64>,
}

impl RebalanceEvent {
    /// Fast pages assigned in total (always the controller's full budget).
    pub fn assigned(&self) -> u64 {
        self.quotas.iter().sum()
    }
}

/// One registered tenant (name + footprint + current quota + liveness).
#[derive(Debug, Clone)]
struct TenantSlot {
    name: String,
    footprint_pages: u64,
    quota: u64,
    /// A retired slot stays registered (stable indices) but holds no quota
    /// and is skipped by every apportioning decision.
    live: bool,
}

/// Central coordinator that splits one physical fast tier across tenants.
///
/// Quotas are re-derived on [`rebalance`](GlobalController::rebalance):
/// the caller reports each tenant's demand (pages it demonstrably wants
/// fast), and the controller assigns the global budget proportionally with
/// a configurable per-tenant floor so an idle tenant can always warm back
/// up. The arithmetic is exact (128-bit integer), so equal inputs always
/// produce identical quotas — the property tests pin this.
#[derive(Debug)]
pub struct GlobalController {
    fast_budget_pages: u64,
    /// Minimum share of the budget any tenant keeps (fraction).
    floor_frac: f64,
    objective: Box<dyn QuotaObjective>,
    tenants: Vec<TenantSlot>,
    events: Vec<RebalanceEvent>,
}

impl GlobalController {
    /// A controller managing `fast_budget_pages` of physical fast memory
    /// under the default [`ProportionalShare`] objective.
    ///
    /// # Panics
    ///
    /// Panics if `fast_budget_pages == 0` or `floor_frac` is not in
    /// `[0, 0.5]`.
    pub fn new(fast_budget_pages: u64, floor_frac: f64) -> Self {
        assert!(fast_budget_pages > 0, "empty fast budget");
        assert!(
            (0.0..=0.5).contains(&floor_frac),
            "floor fraction {floor_frac} out of range"
        );
        Self {
            fast_budget_pages,
            floor_frac,
            objective: Box::new(ProportionalShare),
            tenants: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Swaps the quota objective (see [`ObjectiveKind::build`]).
    #[must_use]
    pub fn with_objective(mut self, objective: Box<dyn QuotaObjective>) -> Self {
        self.objective = objective;
        self
    }

    /// Label of the active objective.
    pub fn objective_label(&self) -> &'static str {
        self.objective.label()
    }

    /// Registers a tenant and resets all **live** tenants to equal initial
    /// shares of the budget (remainder pages go to the earliest live
    /// tenants). Returns the tenant's index for subsequent calls. Use
    /// before the run starts; mid-run arrivals go through
    /// [`admit_tenant`](GlobalController::admit_tenant), which leaves
    /// incumbent quotas standing.
    ///
    /// # Panics
    ///
    /// Panics if the budget cannot give every live tenant at least one
    /// fast page — the min-one quota guarantee needs
    /// `fast_budget_pages >= live tenants`.
    pub fn add_tenant(&mut self, name: &str, footprint_pages: u64) -> usize {
        assert!(
            self.fast_budget_pages > self.num_live() as u64,
            "budget of {} pages cannot hold one page per tenant for {} tenants",
            self.fast_budget_pages,
            self.num_live() + 1,
        );
        self.tenants.push(TenantSlot {
            name: name.to_string(),
            footprint_pages,
            quota: 0,
            live: true,
        });
        let n = self.num_live() as u64;
        let base = self.fast_budget_pages / n;
        let rem = self.fast_budget_pages % n;
        let mut live_idx = 0u64;
        for t in self.tenants.iter_mut() {
            if t.live {
                t.quota = base + u64::from(live_idx < rem);
                live_idx += 1;
            }
        }
        self.tenants.len() - 1
    }

    /// Admits a tenant **mid-run** under the min-one guarantee: the
    /// newcomer immediately receives one fast page — carved from the live
    /// tenant with the largest current quota (lowest index on ties) — and
    /// earns its real share at the next rebalance. If no tenant is live,
    /// the newcomer takes the whole parked budget. Incumbent quotas are
    /// otherwise untouched, so live quotas keep summing to the budget.
    ///
    /// # Panics
    ///
    /// Panics if the budget cannot hold one page per live tenant after
    /// admission.
    pub fn admit_tenant(&mut self, name: &str, footprint_pages: u64) -> usize {
        assert!(
            self.fast_budget_pages > self.num_live() as u64,
            "budget of {} pages cannot admit a tenant beyond {} live tenants",
            self.fast_budget_pages,
            self.num_live(),
        );
        let quota = if self.num_live() == 0 {
            self.fast_budget_pages
        } else {
            let donor = self
                .tenants
                .iter()
                .enumerate()
                .filter(|(_, t)| t.live)
                .max_by_key(|&(j, t)| (t.quota, std::cmp::Reverse(j)))
                .map(|(j, _)| j)
                .expect("a live tenant exists");
            // Pigeonhole: budget > live count and every live quota ≥ 1, so
            // the largest live quota is ≥ 2 and stays enforceable.
            debug_assert!(self.tenants[donor].quota >= 2, "pigeonhole violated");
            self.tenants[donor].quota -= 1;
            1
        };
        self.tenants.push(TenantSlot {
            name: name.to_string(),
            footprint_pages,
            quota,
            live: true,
        });
        self.tenants.len() - 1
    }

    /// Retires a tenant: its slot goes dead (index preserved, quota zero)
    /// and its fast pages are reclaimed into the budget **immediately** —
    /// spread equally over the remaining live tenants, remainder pages to
    /// the lowest-indexed ones — so live quotas re-sum to the budget after
    /// every event. With no live tenant left the budget parks until the
    /// next [`admit_tenant`](GlobalController::admit_tenant).
    ///
    /// # Panics
    ///
    /// Panics if the slot is already retired.
    pub fn retire_tenant(&mut self, idx: usize) {
        assert!(self.tenants[idx].live, "tenant {idx} retired twice");
        let reclaimed = self.tenants[idx].quota;
        self.tenants[idx].quota = 0;
        self.tenants[idx].live = false;
        let m = self.num_live() as u64;
        if m == 0 {
            return;
        }
        let base = reclaimed / m;
        let rem = reclaimed % m;
        let mut live_idx = 0u64;
        for t in self.tenants.iter_mut() {
            if t.live {
                t.quota += base + u64::from(live_idx < rem);
                live_idx += 1;
            }
        }
    }

    /// Number of registered tenant slots (live and retired).
    pub fn num_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// Number of live tenants.
    pub fn num_live(&self) -> usize {
        self.tenants.iter().filter(|t| t.live).count()
    }

    /// Whether the slot is live (registered and not retired).
    pub fn is_live(&self, idx: usize) -> bool {
        self.tenants[idx].live
    }

    /// The live mask over registration slots — the fleet composition.
    pub fn live_mask(&self) -> Vec<bool> {
        self.tenants.iter().map(|t| t.live).collect()
    }

    /// The tenant's registered name.
    pub fn tenant_name(&self, idx: usize) -> &str {
        &self.tenants[idx].name
    }

    /// Pages the tenant's address space spans.
    pub fn footprint_pages(&self, idx: usize) -> u64 {
        self.tenants[idx].footprint_pages
    }

    /// The tenant's current fast-tier quota in pages.
    pub fn quota(&self, idx: usize) -> u64 {
        self.tenants[idx].quota
    }

    /// Current quotas in tenant order.
    pub fn quotas(&self) -> Vec<u64> {
        self.tenants.iter().map(|t| t.quota).collect()
    }

    /// The physical fast budget being partitioned.
    pub fn fast_budget_pages(&self) -> u64 {
        self.fast_budget_pages
    }

    /// The per-tenant quota floor in pages at the current **live** tenant
    /// count (zero until a tenant is live).
    pub fn floor_pages(&self) -> u64 {
        let n = self.num_live() as u64;
        if n == 0 {
            0
        } else {
            (self.fast_budget_pages as f64 * self.floor_frac / n as f64) as u64
        }
    }

    /// The tier configuration a tenant's private runtime should start from:
    /// fast capacity = current quota, slow capacity and address space = the
    /// tenant's footprint (the paper's slow tier alone always holds the
    /// whole footprint).
    pub fn tier_config(&self, idx: usize, page_size: PageSize) -> TierConfig {
        let t = &self.tenants[idx];
        TierConfig {
            fast_capacity_pages: t.quota,
            slow_capacity_pages: t.footprint_pages,
            page_size,
            address_space_pages: t.footprint_pages,
        }
    }

    /// Enforces the tenant's current quota on its memory view: shrinking
    /// below occupancy is allowed — the tier reports zero free pages until
    /// the tenant policy's watermark demotion drains the excess, so quota
    /// enforcement rides the ordinary migration path. Quotas are always
    /// ≥ 1 (the min-one guarantee), so the recorded quota is the capacity
    /// actually enforced.
    pub fn apply(&self, idx: usize, mem: &mut TieredMemory) {
        mem.set_fast_capacity(self.tenants[idx].quota);
    }

    /// Re-partitions the fast budget across **live** tenants according to
    /// the active [`QuotaObjective`] and the reported demand per slot
    /// (index-aligned with registration order; departed slots' entries are
    /// ignored), with the configured floor, and records the result as a
    /// [`RebalanceEvent`].
    ///
    /// Guarantees (property-tested for every objective):
    /// * live quotas sum to exactly the budget (departed slots hold 0);
    /// * every live tenant keeps at least the floor share — and at least
    ///   one page, so the recorded quota is always an enforceable capacity;
    /// * equal inputs produce identical events (exact integer arithmetic);
    /// * raising one tenant's demand while others hold still never lowers
    ///   that tenant's quota.
    ///
    /// # Panics
    ///
    /// Panics if `demands.len()` differs from the registered slot count or
    /// no tenant is live.
    pub fn rebalance(&mut self, at_ns: u64, demands: &[u64]) -> RebalanceEvent {
        let n = self.tenants.len();
        assert_eq!(demands.len(), n, "one demand per tenant");
        let live: Vec<bool> = self.live_mask();
        let m = live.iter().filter(|&&l| l).count();
        assert!(m > 0, "rebalance with no live tenants");

        let norm: Vec<u64> = demands
            .iter()
            .zip(&live)
            .map(|(&d, &l)| if l { d.clamp(1, DEMAND_CLAMP) } else { 0 })
            .collect();
        let floor = self.floor_pages();
        let distributable = self.fast_budget_pages.saturating_sub(floor * m as u64);

        // The objective sees only the live tenants, in slot order.
        let live_demands: Vec<u64> = norm
            .iter()
            .zip(&live)
            .filter(|&(_, &l)| l)
            .map(|(&d, _)| d)
            .collect();
        let alloc = self.objective.apportion(&live_demands, distributable);
        debug_assert_eq!(
            alloc.iter().sum::<u64>(),
            distributable,
            "objective {} broke exact assignment",
            self.objective.label()
        );
        let mut quotas = vec![0u64; n];
        let mut cursor = alloc.into_iter();
        for (q, &l) in quotas.iter_mut().zip(&live) {
            if l {
                *q = floor + cursor.next().expect("one allocation per live tenant");
            }
        }

        // Min-one guarantee: a quota of zero is not an enforceable fast
        // capacity, so top live zeros up to one page, taking each page from
        // the largest current live quota (lowest demand, then lowest index,
        // on ties — the tie-break that keeps quota ordering aligned with
        // demand ordering). Admission guarantees budget ≥ live tenants, so
        // while a live zero exists some live quota is ≥ 2 by pigeonhole.
        for i in 0..n {
            if live[i] && quotas[i] == 0 {
                let donor = quotas
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| live[j])
                    .max_by_key(|&(j, &q)| (q, std::cmp::Reverse(norm[j]), std::cmp::Reverse(j)))
                    .map(|(j, _)| j)
                    .expect("m > 0");
                debug_assert!(quotas[donor] >= 2, "pigeonhole violated");
                quotas[donor] -= 1;
                quotas[i] = 1;
            }
        }

        for (tenant, &quota) in self.tenants.iter_mut().zip(&quotas) {
            tenant.quota = quota;
        }
        let event = RebalanceEvent {
            at_ns,
            objective: self.objective.label().to_string(),
            floor_pages: floor,
            live,
            demands: norm,
            quotas,
        };
        self.events.push(event.clone());
        event
    }

    /// The full rebalance trace, in call order.
    pub fn events(&self) -> &[RebalanceEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybridtier::{HybridTierConfig, HybridTierPolicy};
    use crate::policy::{PolicyCtx, TieringPolicy};
    use tiering_mem::{PageId, Tier};
    use tiering_trace::Sample;

    /// Builds a tenant runtime at the controller's current quota and feeds
    /// it a synthetic hot set, returning its demand signal.
    fn demand_after_feed(
        g: &GlobalController,
        idx: usize,
        pages: u64,
        samples_per_page: u32,
    ) -> u64 {
        let cfg = g.tier_config(idx, PageSize::Base4K);
        let mut policy = HybridTierPolicy::new(HybridTierConfig::scaled(&cfg), &cfg);
        let mut mem = TieredMemory::new(cfg);
        let mut ctx = PolicyCtx::new();
        for p in 0..pages {
            mem.ensure_mapped(PageId(p), Tier::Slow);
        }
        for s in 0..samples_per_page {
            for p in 0..pages {
                policy.on_sample(
                    Sample {
                        page: PageId(p),
                        addr: p << 12,
                        tier: mem.tier_of(PageId(p)).unwrap_or(Tier::Slow),
                        at_ns: u64::from(s) * 1_000 + p,
                        is_write: false,
                    },
                    &mut mem,
                    &mut ctx,
                );
            }
        }
        policy.fast_demand_pages(&mem)
    }

    #[test]
    fn tenants_start_with_equal_shares() {
        let mut g = GlobalController::new(1_001, 0.1);
        g.add_tenant("a", 10_000);
        g.add_tenant("b", 10_000);
        assert_eq!(g.num_tenants(), 2);
        assert_eq!(g.quota(0) + g.quota(1), 1_001, "budget fully assigned");
        assert!(g.quota(0).abs_diff(g.quota(1)) <= 1, "equal initial shares");
        assert_eq!(g.tenant_name(1), "b");
        assert_eq!(g.footprint_pages(0), 10_000);
    }

    #[test]
    fn hot_tenant_receives_larger_quota() {
        let mut g = GlobalController::new(1_000, 0.1);
        let a = g.add_tenant("hot", 10_000);
        let b = g.add_tenant("idle", 10_000);
        let hot_demand = demand_after_feed(&g, a, 400, 6);
        assert!(hot_demand > 100, "feeding builds real demand: {hot_demand}");
        let event = g.rebalance(0, &[hot_demand, 1]);
        assert!(
            event.quotas[a] > 2 * event.quotas[b],
            "hot tenant should dominate: {:?}",
            event.quotas
        );
        assert_eq!(event.assigned(), 1_000);
    }

    #[test]
    fn floor_keeps_idle_tenants_alive() {
        let mut g = GlobalController::new(1_000, 0.2);
        let _hot = g.add_tenant("hot", 10_000);
        let idle = g.add_tenant("idle", 10_000);
        let event = g.rebalance(0, &[5_000, 0]);
        assert!(
            event.quotas[idle] >= 100,
            "idle tenant must keep its floor share, got {}",
            event.quotas[idle]
        );
        assert_eq!(g.floor_pages(), 100);
    }

    /// The wake-up transition the `multi_tenant` example demonstrates, as a
    /// typed event trace: the batch tenant idles for two rebalances, then
    /// wakes with a demand far beyond the cache tenant's — its quota must
    /// grow strictly across the transition and end dominant, and every
    /// event must assign the full budget.
    #[test]
    fn wakeup_transition_produces_event_trace() {
        let mut g = GlobalController::new(4_000, 0.1);
        let cache = g.add_tenant("cache", 40_000);
        let batch = g.add_tenant("batch", 40_000);

        g.rebalance(100, &[900, 10]);
        g.rebalance(200, &[900, 10]);
        let asleep = g.quota(batch);
        g.rebalance(300, &[900, 2_600]); // batch wakes up
        let awake = g.quota(batch);

        let events = g.events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.at_ns).collect::<Vec<_>>(),
            vec![100, 200, 300]
        );
        assert!(events.iter().all(|e| e.assigned() == 4_000));
        assert!(
            awake > asleep,
            "woken tenant's quota must grow: {asleep} -> {awake}"
        );
        assert!(
            g.quota(batch) > g.quota(cache),
            "demand leader takes the larger share: {:?}",
            g.quotas()
        );
        // The trace reproduces the stored state.
        assert_eq!(events[2].quotas, g.quotas());
    }

    #[test]
    fn shrunk_quota_is_enforced_by_memory() {
        let mut g = GlobalController::new(1_000, 0.1);
        let a = g.add_tenant("a", 10_000);
        let mut mem = TieredMemory::new(g.tier_config(a, PageSize::Base4K));
        for p in 0..1_000u64 {
            mem.ensure_mapped(PageId(p), Tier::Fast);
        }
        g.add_tenant("b", 10_000);
        g.rebalance(0, &[100, 800]);
        g.apply(a, &mut mem);
        assert_eq!(mem.config().fast_capacity_pages, g.quota(a).max(1));
        // Over-quota state is visible so the policy's watermark demotion
        // drains it on subsequent ticks.
        assert_eq!(mem.fast_free(), 0);
        assert!(mem.fast_used() > g.quota(a));
    }

    #[test]
    fn rebalance_is_exact_and_deterministic() {
        let run = || {
            let mut g = GlobalController::new(7_777, 0.15);
            g.add_tenant("a", 1_000);
            g.add_tenant("b", 1_000);
            g.add_tenant("c", 1_000);
            g.rebalance(5, &[13, 999, 100_000])
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "empty fast budget")]
    fn zero_budget_rejected() {
        let _ = GlobalController::new(0, 0.1);
    }

    #[test]
    #[should_panic(expected = "one demand per tenant")]
    fn demand_arity_checked() {
        let mut g = GlobalController::new(100, 0.1);
        g.add_tenant("a", 10);
        g.rebalance(0, &[1, 2]);
    }

    #[test]
    fn maxmin_satisfies_small_demands_first() {
        // 100 pages, demands [10, 200]: the small tenant is fully satisfied
        // (10), the big one takes the rest (90) — proportional would have
        // given the small tenant only ~5.
        let alloc = MaxMinFairness.apportion(&[10, 200], 100);
        assert_eq!(alloc, vec![10, 90]);
        // Surplus beyond total demand splits equally (dust to hungriest).
        let alloc = MaxMinFairness.apportion(&[10, 20], 41);
        assert_eq!(alloc, vec![15, 26]);
        assert_eq!(alloc.iter().sum::<u64>(), 41);
    }

    #[test]
    fn slo_utility_fills_requirements_before_luxury() {
        let slo = SloUtility { slo_frac: 0.5 };
        // 30 pages, demands [20, 40]: requirements [10, 20] fit exactly.
        assert_eq!(slo.apportion(&[20, 40], 30), vec![10, 20]);
        // Under SLO pressure the budget splits over requirements, not raw
        // demand.
        let alloc = slo.apportion(&[20, 40], 15);
        assert_eq!(alloc.iter().sum::<u64>(), 15);
        assert_eq!(alloc, vec![5, 10]);
        // Beyond all requirements, the post-SLO segments fill toward
        // demand.
        let alloc = slo.apportion(&[20, 40], 45);
        assert_eq!(alloc.iter().sum::<u64>(), 45);
        assert!(alloc[0] >= 10 && alloc[1] >= 20, "SLOs held: {alloc:?}");
    }

    #[test]
    fn slo_utility_dust_cannot_invert_ordering_on_requirement_ties() {
        // Demands [4, 3] → requirements [2, 2] (ceil of halves tie while
        // demands differ); 3 pages under SLO pressure leave one dust page.
        // The tie must break by raw demand — the hungrier tenant keeps at
        // least as much.
        let alloc = SloUtility { slo_frac: 0.5 }.apportion(&[4, 3], 3);
        assert_eq!(alloc.iter().sum::<u64>(), 3);
        assert!(alloc[0] >= alloc[1], "ordering inverted: {alloc:?}");
        // Same shape one phase later: post-SLO widths tie at [2, 1]→... and
        // the dust page of the post split must also favor the hungrier.
        let alloc = SloUtility { slo_frac: 0.5 }.apportion(&[4, 3], 6);
        assert_eq!(alloc.iter().sum::<u64>(), 6);
        assert!(alloc[0] >= alloc[1], "phase-2 ordering inverted: {alloc:?}");
    }

    #[test]
    fn objective_kinds_build_and_label() {
        for kind in ObjectiveKind::ALL {
            let obj = kind.build();
            assert_eq!(obj.label(), kind.label());
            assert_eq!(obj.apportion(&[3, 9, 1], 50).iter().sum::<u64>(), 50);
        }
        assert_eq!(ObjectiveKind::default(), ObjectiveKind::Proportional);
    }

    #[test]
    fn admit_carves_min_one_and_conserves_the_budget() {
        let mut g = GlobalController::new(1_000, 0.1);
        g.add_tenant("a", 10_000);
        g.add_tenant("b", 10_000);
        g.rebalance(10, &[700, 300]);
        let before = g.quotas();
        let c = g.admit_tenant("c", 5_000);
        assert_eq!(g.quota(c), 1, "newcomer starts at the min-one share");
        assert_eq!(g.quotas().iter().sum::<u64>(), 1_000, "budget conserved");
        // Exactly one page moved, from the largest incumbent quota.
        let donor = usize::from(before[1] > before[0]);
        assert_eq!(g.quota(donor), before[donor] - 1);
        assert!(g.is_live(c));
        assert_eq!(g.num_live(), 3);
    }

    #[test]
    fn retire_reclaims_pages_into_live_quotas() {
        let mut g = GlobalController::new(999, 0.1);
        g.add_tenant("a", 10_000);
        g.add_tenant("b", 10_000);
        g.add_tenant("c", 10_000);
        g.rebalance(5, &[100, 100, 800]);
        let reclaimed = g.quota(2);
        let (a_before, b_before) = (g.quota(0), g.quota(1));
        g.retire_tenant(2);
        assert!(!g.is_live(2));
        assert_eq!(g.quota(2), 0, "retired slot holds nothing");
        assert_eq!(
            g.quota(0) + g.quota(1),
            a_before + b_before + reclaimed,
            "departed pages reclaimed into live quotas"
        );
        assert_eq!(g.quotas().iter().sum::<u64>(), 999, "budget conserved");
        assert_eq!(g.live_mask(), vec![true, true, false]);
        // The next rebalance decides over the shrunk fleet only.
        let event = g.rebalance(20, &[50, 50, 123_456]);
        assert_eq!(event.quotas[2], 0);
        assert_eq!(event.demands[2], 0, "dead slot demand is ignored");
        assert_eq!(event.live, vec![true, true, false]);
        assert_eq!(event.assigned(), 999);
    }

    #[test]
    fn last_tenant_out_parks_the_budget_and_readmission_takes_it() {
        let mut g = GlobalController::new(500, 0.1);
        g.add_tenant("a", 1_000);
        g.retire_tenant(0);
        assert_eq!(g.num_live(), 0);
        assert_eq!(g.quotas().iter().sum::<u64>(), 0, "budget parked");
        let b = g.admit_tenant("b", 2_000);
        assert_eq!(g.quota(b), 500, "sole live tenant takes the full budget");
    }

    #[test]
    fn events_record_objective_and_floor() {
        let mut g = GlobalController::new(1_000, 0.2).with_objective(ObjectiveKind::MaxMin.build());
        assert_eq!(g.objective_label(), "max-min");
        g.add_tenant("a", 1_000);
        g.add_tenant("b", 1_000);
        let e = g.rebalance(3, &[10, 2_000]);
        assert_eq!(e.objective, "max-min");
        assert_eq!(e.floor_pages, g.floor_pages());
        assert_eq!(e.live, vec![true, true]);
        assert_eq!(e.assigned(), 1_000);
        // Max-min fully satisfies the small demand above its floor.
        assert_eq!(e.quotas[0], e.floor_pages + 10);
    }

    #[test]
    #[should_panic(expected = "retired twice")]
    fn double_retire_is_loud() {
        let mut g = GlobalController::new(100, 0.1);
        g.add_tenant("a", 10);
        g.retire_tenant(0);
        g.retire_tenant(0);
    }
}
