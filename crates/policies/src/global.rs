//! Global (multi-tenant) tiering — the paper's §7 extension.
//!
//! "To support global memory tiering (e.g., multi-tenant VM, co-located
//! applications), one could use a central HybridTier controller that
//! coordinates with individual HybridTier instances. Each HybridTier
//! instance would report local hot/cold items to the central controller,
//! which makes global promotion/demotion decisions." (paper §7)
//!
//! This module implements that sketch: a [`GlobalController`] owns the
//! fast-tier budget and periodically re-partitions it across tenants in
//! proportion to each tenant's *demonstrated* hot-set size, measured by its
//! HybridTier frequency histogram. Each tenant runs an ordinary
//! [`HybridTierPolicy`] against its own [`TieredMemory`] whose fast
//! capacity is the controller-assigned quota.

use tiering_mem::{PageSize, TierConfig, TieredMemory};

use crate::hybridtier::{HybridTierConfig, HybridTierPolicy};

/// One tenant registered with the controller.
#[derive(Debug)]
pub struct Tenant {
    /// Tenant name (reporting).
    pub name: String,
    /// The tenant's private tiering runtime.
    pub policy: HybridTierPolicy,
    /// The tenant's memory view; its fast capacity is the current quota.
    pub mem: TieredMemory,
    footprint_pages: u64,
}

impl Tenant {
    /// Pages this tenant's address space spans.
    pub fn footprint_pages(&self) -> u64 {
        self.footprint_pages
    }

    /// The tenant's current fast-tier quota in pages.
    pub fn quota(&self) -> u64 {
        self.mem.config().fast_capacity_pages
    }
}

/// Central coordinator that splits one physical fast tier across tenants.
///
/// Quotas are re-derived on [`rebalance`](GlobalController::rebalance):
/// each tenant reports the number of pages at or above its current hotness
/// threshold (its demonstrated hot set), and the controller assigns the
/// global budget proportionally, with a configurable floor so an idle
/// tenant can always warm back up.
#[derive(Debug)]
pub struct GlobalController {
    fast_budget_pages: u64,
    /// Minimum share of the budget any tenant keeps (fraction).
    floor_frac: f64,
    tenants: Vec<Tenant>,
}

impl GlobalController {
    /// A controller managing `fast_budget_pages` of physical fast memory.
    ///
    /// # Panics
    ///
    /// Panics if `fast_budget_pages == 0` or `floor_frac` is not in
    /// `[0, 0.5]`.
    pub fn new(fast_budget_pages: u64, floor_frac: f64) -> Self {
        assert!(fast_budget_pages > 0, "empty fast budget");
        assert!(
            (0.0..=0.5).contains(&floor_frac),
            "floor fraction {floor_frac} out of range"
        );
        Self {
            fast_budget_pages,
            floor_frac,
            tenants: Vec::new(),
        }
    }

    /// Registers a tenant with an equal initial share of the budget.
    ///
    /// Returns the tenant's index for subsequent access.
    pub fn add_tenant(&mut self, name: &str, footprint_pages: u64) -> usize {
        let n = self.tenants.len() as u64 + 1;
        let quota = (self.fast_budget_pages / n).max(1);
        let cfg = TierConfig {
            fast_capacity_pages: quota,
            slow_capacity_pages: footprint_pages,
            page_size: PageSize::Base4K,
            address_space_pages: footprint_pages,
        };
        let policy = HybridTierPolicy::new(HybridTierConfig::scaled(&cfg), &cfg);
        self.tenants.push(Tenant {
            name: name.to_string(),
            policy,
            mem: TieredMemory::new(cfg),
            footprint_pages,
        });
        // Shrink existing quotas to make room (applied on next rebalance).
        self.tenants.len() - 1
    }

    /// Number of registered tenants.
    pub fn num_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// Access to a tenant.
    pub fn tenant(&self, idx: usize) -> &Tenant {
        &self.tenants[idx]
    }

    /// Mutable access to a tenant (drive its workload through
    /// `tenant_mut(i).policy` / `.mem`).
    pub fn tenant_mut(&mut self, idx: usize) -> &mut Tenant {
        &mut self.tenants[idx]
    }

    /// Total fast pages currently assigned.
    pub fn assigned_budget(&self) -> u64 {
        self.tenants.iter().map(|t| t.quota()).sum()
    }

    /// Re-partitions the fast budget proportionally to each tenant's
    /// demonstrated hot-set size (pages at or above its current frequency
    /// threshold), with the configured floor.
    ///
    /// Tenants whose quota shrinks must demote down to it; the controller
    /// forces that immediately (the demotions are ordinary migrations,
    /// charged like any other). Returns the new quotas in tenant order.
    pub fn rebalance(&mut self) -> Vec<u64> {
        if self.tenants.is_empty() {
            return Vec::new();
        }
        let demands: Vec<f64> = self
            .tenants
            .iter()
            .map(|t| t.policy.hot_set_estimate().max(1) as f64)
            .collect();
        let total_demand: f64 = demands.iter().sum();
        let floor =
            (self.fast_budget_pages as f64 * self.floor_frac / self.tenants.len() as f64) as u64;
        let distributable = self.fast_budget_pages - floor * self.tenants.len() as u64;
        let mut quotas: Vec<u64> = demands
            .iter()
            .map(|d| floor + (distributable as f64 * d / total_demand) as u64)
            .collect();
        // Rounding remainder goes to the hungriest tenant.
        let assigned: u64 = quotas.iter().sum();
        if let Some(max_idx) = demands
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
        {
            quotas[max_idx] += self.fast_budget_pages - assigned;
        }

        for (tenant, &quota) in self.tenants.iter_mut().zip(&quotas) {
            tenant.mem.set_fast_capacity(quota.max(1));
        }
        quotas
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{PolicyCtx, TieringPolicy};
    use tiering_mem::{PageId, Tier};
    use tiering_trace::Sample;

    fn feed(tenant: &mut Tenant, pages: u64, samples_per_page: u32) {
        let mut ctx = PolicyCtx::new();
        for p in 0..pages {
            tenant.mem.ensure_mapped(PageId(p), Tier::Slow);
        }
        for s in 0..samples_per_page {
            for p in 0..pages {
                tenant.policy.on_sample(
                    Sample {
                        page: PageId(p),
                        addr: p << 12,
                        tier: tenant.mem.tier_of(PageId(p)).unwrap_or(Tier::Slow),
                        at_ns: u64::from(s) * 1_000 + p,
                        is_write: false,
                    },
                    &mut tenant.mem,
                    &mut ctx,
                );
            }
        }
    }

    #[test]
    fn tenants_start_with_shares_of_the_budget() {
        let mut g = GlobalController::new(1_000, 0.1);
        g.add_tenant("a", 10_000);
        g.add_tenant("b", 10_000);
        assert_eq!(g.num_tenants(), 2);
        assert!(g.tenant(0).quota() >= 1);
        let quotas = g.rebalance();
        assert_eq!(quotas.len(), 2);
        assert_eq!(quotas.iter().sum::<u64>(), 1_000, "budget fully assigned");
    }

    #[test]
    fn hot_tenant_receives_larger_quota() {
        let mut g = GlobalController::new(1_000, 0.1);
        let a = g.add_tenant("hot", 10_000);
        let b = g.add_tenant("idle", 10_000);
        // Tenant A demonstrates a large hot set; tenant B stays idle.
        feed(g.tenant_mut(a), 400, 6);
        let quotas = g.rebalance();
        assert!(
            quotas[a] > 2 * quotas[b],
            "hot tenant should dominate: {quotas:?}"
        );
        assert_eq!(quotas.iter().sum::<u64>(), 1_000);
    }

    #[test]
    fn floor_keeps_idle_tenants_alive() {
        let mut g = GlobalController::new(1_000, 0.2);
        let a = g.add_tenant("hot", 10_000);
        let idle = g.add_tenant("idle", 10_000);
        feed(g.tenant_mut(a), 500, 6);
        let quotas = g.rebalance();
        assert!(
            quotas[idle] >= 100,
            "idle tenant must keep its floor share, got {}",
            quotas[idle]
        );
    }

    #[test]
    fn rebalance_shifts_as_demand_shifts() {
        let mut g = GlobalController::new(2_000, 0.1);
        let a = g.add_tenant("a", 10_000);
        let b = g.add_tenant("b", 10_000);
        feed(g.tenant_mut(a), 600, 6);
        let first = g.rebalance();
        assert!(first[a] > first[b]);
        // Now B heats up far beyond A's earlier demand.
        feed(g.tenant_mut(b), 3_000, 6);
        let second = g.rebalance();
        assert!(
            second[b] > second[a],
            "quota should follow demand: {second:?}"
        );
    }

    #[test]
    fn shrunk_quota_is_enforced_by_memory() {
        let mut g = GlobalController::new(1_000, 0.1);
        let a = g.add_tenant("a", 10_000);
        // Fill A's fast tier at its initial quota (1000).
        {
            let t = g.tenant_mut(a);
            for p in 0..1_000u64 {
                t.mem.ensure_mapped(PageId(p), Tier::Fast);
            }
        }
        g.add_tenant("b", 10_000);
        feed(g.tenant_mut(1), 800, 6);
        let quotas = g.rebalance();
        let t = g.tenant(a);
        assert!(t.mem.fast_used() <= quotas[a].max(t.mem.fast_used()));
        // Over-quota state is visible so the policy's watermark demotion
        // drains it on subsequent ticks.
        assert!(t.mem.fast_free_frac() <= 1.0);
    }

    #[test]
    #[should_panic(expected = "empty fast budget")]
    fn zero_budget_rejected() {
        let _ = GlobalController::new(0, 0.1);
    }
}
