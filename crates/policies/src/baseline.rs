//! Static placement baselines.

use tiering_mem::Tier;

use crate::policy::TieringPolicy;

/// The all-fast-tier upper bound (paper Figure 11): run with a
/// [`TierConfig::all_fast`](tiering_mem::TierConfig::all_fast) configuration
/// so every page allocates fast and no tiering ever happens.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllFastPolicy;

impl AllFastPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl TieringPolicy for AllFastPolicy {
    fn name(&self) -> &'static str {
        "AllFast"
    }

    fn preferred_alloc_tier(&self) -> Tier {
        Tier::Fast
    }

    fn metadata_bytes(&self) -> usize {
        0
    }
}

/// First-touch placement with no migrations: pages fill the fast tier in
/// allocation order and then spill to slow — Linux's default behaviour with
/// NUMA balancing off, and the "no tiering" lower bound.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstTouchPolicy;

impl FirstTouchPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl TieringPolicy for FirstTouchPolicy {
    fn name(&self) -> &'static str {
        "FirstTouch"
    }

    fn preferred_alloc_tier(&self) -> Tier {
        Tier::Fast
    }

    fn metadata_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyCtx;
    use tiering_mem::{PageId, PageSize, TierConfig, TieredMemory};
    use tiering_trace::Sample;

    #[test]
    fn all_fast_never_migrates() {
        let cfg = TierConfig::all_fast(100, PageSize::Base4K);
        let mut mem = TieredMemory::new(cfg);
        let mut p = AllFastPolicy::new();
        let mut ctx = PolicyCtx::new();
        for i in 0..100u64 {
            mem.ensure_mapped(PageId(i), p.preferred_alloc_tier());
        }
        p.on_sample(
            Sample {
                page: PageId(0),
                addr: 0,
                tier: Tier::Fast,
                at_ns: 0,
                is_write: false,
            },
            &mut mem,
            &mut ctx,
        );
        p.on_tick(0, &mut mem, &mut ctx);
        assert_eq!(mem.stats().promotions + mem.stats().demotions, 0);
        assert_eq!(mem.fast_used(), 100);
        assert_eq!(p.metadata_bytes(), 0);
    }

    #[test]
    fn first_touch_spills_to_slow() {
        let cfg = TierConfig {
            fast_capacity_pages: 10,
            slow_capacity_pages: 100,
            page_size: PageSize::Base4K,
            address_space_pages: 100,
        };
        let mut mem = TieredMemory::new(cfg);
        let p = FirstTouchPolicy::new();
        for i in 0..50u64 {
            mem.ensure_mapped(PageId(i), p.preferred_alloc_tier());
        }
        assert_eq!(mem.fast_used(), 10);
        assert_eq!(mem.slow_used(), 40);
    }
}
