//! Hotness histogram with automatic threshold derivation.
//!
//! Memtis "maintains a histogram to track the overall access frequency
//! distribution of memory pages. By understanding the overall hotness
//! distribution and the fast-tier memory capacity, Memtis can accurately
//! calculate the hotness threshold to ensure only the hottest data are
//! placed in the fast-tier" (paper §2.3.1). HybridTier adopts the same
//! mechanism for its frequency threshold (§3.1).

/// A histogram of page counts per hotness level.
///
/// `bucket[v]` approximates the number of pages whose current access count
/// is `v`. Maintained incrementally: when a page's count transitions from
/// `old` to `new`, the corresponding buckets are adjusted; when counters are
/// cooled (halved), the whole histogram is folded accordingly.
#[derive(Debug, Clone)]
pub struct HotnessHistogram {
    buckets: Vec<u64>,
}

impl HotnessHistogram {
    /// A histogram over hotness levels `0..=max_level`.
    ///
    /// # Panics
    ///
    /// Panics if `max_level == 0`.
    pub fn new(max_level: u32) -> Self {
        assert!(max_level > 0, "need at least levels 0 and 1");
        Self {
            buckets: vec![0; max_level as usize + 1],
        }
    }

    /// Highest representable level (counts are clamped to it).
    pub fn max_level(&self) -> u32 {
        self.buckets.len() as u32 - 1
    }

    /// Records a page's count transition `old → new`.
    ///
    /// A page entering the histogram for the first time should transition
    /// from level 0. No-ops when `old == new` (e.g. saturated counters).
    #[inline]
    pub fn transition(&mut self, old: u32, new: u32) {
        let cap = self.max_level();
        let (old, new) = (old.min(cap), new.min(cap));
        if old == new {
            return;
        }
        if old > 0 {
            let b = &mut self.buckets[old as usize];
            *b = b.saturating_sub(1);
        }
        if new > 0 {
            self.buckets[new as usize] += 1;
        }
    }

    /// Folds the histogram for a cooling event: every page at level `v`
    /// moves to level `v/2`.
    pub fn cool(&mut self) {
        let n = self.buckets.len();
        let mut folded = vec![0u64; n];
        for (v, &count) in self.buckets.iter().enumerate() {
            folded[v / 2] += count;
        }
        folded[0] = 0; // level 0 is implicit (untracked pages)
        self.buckets = folded;
    }

    /// Number of pages at exactly `level`.
    pub fn pages_at(&self, level: u32) -> u64 {
        self.buckets
            .get(level as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Number of pages at or above `level`.
    pub fn pages_at_or_above(&self, level: u32) -> u64 {
        self.buckets[(level as usize).min(self.buckets.len() - 1)..]
            .iter()
            .sum()
    }

    /// Derives the hotness threshold for a fast tier of `fast_capacity`
    /// pages: the smallest level `t ≥ min_threshold` such that the pages at
    /// or above `t` fit in the fast tier.
    ///
    /// When even the hottest level overflows the capacity, returns the top
    /// level (only the very hottest pages promote).
    pub fn threshold_for(&self, fast_capacity: u64, min_threshold: u32) -> u32 {
        // One suffix-sum pass from the top (Memtis refreshes the threshold
        // per sample, so the former per-level re-summation was quadratic in
        // levels). `pages_at_or_above(t)` is non-increasing in `t`, so the
        // smallest admissible `t` is the last one the descending scan sees
        // before the suffix overflows — identical to the ascending search.
        let min = min_threshold.max(1);
        let max = self.max_level();
        let mut suffix = 0u64;
        let mut best = max;
        let mut found = false;
        for t in (min..=max).rev() {
            suffix += self.buckets[t as usize];
            if suffix <= fast_capacity {
                best = t;
                found = true;
            } else {
                break;
            }
        }
        if found {
            best
        } else {
            max
        }
    }

    /// Samples a marginal-utility curve from the histogram's suffix sums:
    /// walking hotness levels from the hottest down, each non-empty level
    /// contributes one `(cumulative pages, cumulative access mass)` point,
    /// where a page at level `v` carries mass `v` (its approximate access
    /// count). The result is strictly increasing in pages, non-decreasing
    /// in mass, and concave — exactly the shape `DemandCurve` requires:
    /// the first pages (hottest levels) capture the most mass per page.
    ///
    /// Only levels at or above `min_level` (clamped to ≥ 1) contribute, so
    /// callers with a hotness cutoff (HybridTier's minimum frequency
    /// threshold) get a curve whose final point matches their hot-set
    /// estimate. At most `max_points` points are returned (evenly thinned,
    /// always keeping the hottest and the last point); an empty histogram
    /// yields an empty curve.
    pub fn marginal_curve(&self, min_level: u32, max_points: usize) -> Vec<(u64, u64)> {
        let mut points = Vec::new();
        let mut pages = 0u64;
        let mut mass = 0u64;
        for level in (min_level.max(1)..=self.max_level()).rev() {
            let at = self.pages_at(level);
            if at == 0 {
                continue;
            }
            pages += at;
            mass = mass.saturating_add(at.saturating_mul(u64::from(level)));
            points.push((pages, mass));
        }
        if max_points == 0 || points.len() <= max_points {
            return points;
        }
        // Thin to `max_points`, keeping the endpoints: index i picks the
        // round(i * (len-1) / (max_points-1))-th original point.
        let len = points.len();
        (0..max_points)
            .map(|i| points[i * (len - 1) / (max_points - 1).max(1)])
            .collect()
    }

    /// Resets all buckets.
    pub fn clear(&mut self) {
        self.buckets.fill(0);
    }

    /// Bytes consumed by the histogram.
    pub fn metadata_bytes(&self) -> usize {
        self.buckets.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_track_population() {
        let mut h = HotnessHistogram::new(15);
        h.transition(0, 1); // page A reaches 1
        h.transition(0, 1); // page B reaches 1
        h.transition(1, 2); // page A reaches 2
        assert_eq!(h.pages_at(1), 1);
        assert_eq!(h.pages_at(2), 1);
        assert_eq!(h.pages_at_or_above(1), 2);
    }

    #[test]
    fn saturated_transitions_are_noops() {
        let mut h = HotnessHistogram::new(15);
        h.transition(0, 15);
        h.transition(15, 15);
        assert_eq!(h.pages_at(15), 1);
    }

    #[test]
    fn transitions_clamp_to_max_level() {
        let mut h = HotnessHistogram::new(15);
        h.transition(0, 40);
        assert_eq!(h.pages_at(15), 1);
        h.transition(40, 99); // both clamp to 15: no-op
        assert_eq!(h.pages_at(15), 1);
    }

    #[test]
    fn cooling_folds_levels() {
        let mut h = HotnessHistogram::new(15);
        h.transition(0, 8);
        h.transition(0, 9);
        h.transition(0, 1);
        h.cool();
        assert_eq!(h.pages_at(4), 2, "8 and 9 both fold to 4");
        assert_eq!(h.pages_at(8), 0);
        // The level-1 page folded to 0 and left the histogram.
        assert_eq!(h.pages_at_or_above(1), 2);
    }

    #[test]
    fn threshold_fits_hot_set_to_capacity() {
        let mut h = HotnessHistogram::new(15);
        // 10 pages at level 10, 100 at level 5, 1000 at level 2.
        for _ in 0..10 {
            h.transition(0, 10);
        }
        for _ in 0..100 {
            h.transition(0, 5);
        }
        for _ in 0..1000 {
            h.transition(0, 2);
        }
        // Smallest level admitting <= capacity pages: only the 10 pages at
        // level 10 fit a capacity of 10, and level 6 is the first level
        // whose at-or-above population is exactly those 10 pages.
        assert_eq!(h.threshold_for(10, 1), 6);
        assert_eq!(h.threshold_for(110, 1), 3);
        assert_eq!(h.threshold_for(2000, 1), 1);
        // Capacity smaller than even the hottest bucket: threshold rises
        // past it, admitting nobody currently tracked.
        assert_eq!(h.threshold_for(5, 1), 11);
        assert_eq!(h.pages_at_or_above(11), 0);
    }

    /// The descending single-pass threshold scan equals the textbook
    /// ascending `pages_at_or_above` search for arbitrary populations,
    /// capacities, and minimums.
    #[test]
    fn threshold_single_pass_matches_reference_scan() {
        let reference = |h: &HotnessHistogram, cap: u64, min: u32| -> u32 {
            let min = min.max(1);
            for t in min..=h.max_level() {
                if h.pages_at_or_above(t) <= cap {
                    return t;
                }
            }
            h.max_level()
        };
        let mut h = HotnessHistogram::new(15);
        let mut state = 42u64;
        for round in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            h.transition(0, (state >> 20) as u32 % 16);
            for cap in [0u64, 1, 3, 10, 50, 1_000] {
                for min in [0u32, 1, 2, 5, 14, 15, 20] {
                    assert_eq!(
                        h.threshold_for(cap, min),
                        reference(&h, cap, min),
                        "round {round} cap {cap} min {min}"
                    );
                }
            }
        }
    }

    #[test]
    fn threshold_respects_minimum() {
        let mut h = HotnessHistogram::new(15);
        h.transition(0, 2);
        assert_eq!(h.threshold_for(1_000_000, 3), 3);
    }

    #[test]
    #[should_panic(expected = "at least levels")]
    fn zero_levels_rejected() {
        let _ = HotnessHistogram::new(0);
    }

    #[test]
    fn marginal_curve_walks_suffix_sums_hottest_first() {
        let mut h = HotnessHistogram::new(15);
        for _ in 0..4 {
            h.transition(0, 10); // 4 pages × mass 10
        }
        for _ in 0..6 {
            h.transition(0, 3); // 6 pages × mass 3
        }
        for _ in 0..5 {
            h.transition(0, 1); // 5 pages × mass 1
        }
        assert_eq!(
            h.marginal_curve(1, 8),
            vec![(4, 40), (10, 58), (15, 63)],
            "one point per non-empty level, cumulative from the hottest"
        );
        // A hotness cutoff drops the cold tail, matching
        // `pages_at_or_above(min_level)` at the last point.
        assert_eq!(h.marginal_curve(3, 8), vec![(4, 40), (10, 58)]);
        assert_eq!(h.marginal_curve(11, 8), Vec::<(u64, u64)>::new());
    }

    #[test]
    fn marginal_curve_thins_to_max_points_keeping_endpoints() {
        let mut h = HotnessHistogram::new(15);
        for level in 1..=12 {
            h.transition(0, level);
        }
        let full = h.marginal_curve(1, 0);
        assert_eq!(full.len(), 12);
        let thin = h.marginal_curve(1, 4);
        assert_eq!(thin.len(), 4);
        assert_eq!(thin.first(), full.first());
        assert_eq!(thin.last(), full.last());
        // Strictly increasing pages — a valid DemandCurve input.
        assert!(thin.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
