//! NeoMem-style device-side counter sampling.
//!
//! NeoMem (Zhou et al.) moves hotness tracking *onto the CXL device*: the
//! memory controller counts accesses to its own pages in hardware and the
//! host periodically reads out a compact hot-page report. This inverts the
//! paper's design point — HybridTier samples on the host through PEBS and
//! compresses with a CBF precisely because it assumes stock hardware —
//! which makes NeoMem the natural third axis in the policy comparison:
//!
//! * **observation**: every access to a device-resident (non-DRAM) page is
//!   counted, not a 1-in-N PEBS sample — no sampling noise, but DRAM-tier
//!   (rung 0) pages are invisible to the device;
//! * **host cost**: the host pays only the periodic readout (one
//!   syscall-sized transaction plus a few bytes per reported hot page), so
//!   host-side metadata is O(readout buffer), not O(pages);
//! * **placement**: counter-hot pages are promoted one rung toward DRAM per
//!   readout; watermark demotion drains cold DRAM pages and a
//!   [`DemotionChain`] cascades pressure down deeper ladders.
//!
//! The model is deliberately structural (counter widths, readout cadence,
//! decay) rather than a device RTL model — enough to compare the *sampling
//! mode* against CBF/PEBS under identical workloads.

use tiering_mem::{PageId, Tier, TierConfig, TieredMemory};

use crate::chain::DemotionChain;
use crate::policy::{PolicyCtx, TieringPolicy};

/// Host-side cost of one device-counter readout transaction (an MMIO/DMA
/// exchange, comparable to a syscall).
const READOUT_NS: u64 = 1_500;
/// Host-side cost per hot-page entry processed from a readout.
const PER_ENTRY_NS: u64 = 40;
/// Cost charged per page-table entry scanned by the demotion clock.
const SCAN_PAGE_NS: u64 = 10;

/// Configuration of [`NeoMemPolicy`].
#[derive(Debug, Clone)]
pub struct NeoMemConfig {
    /// Interval between host readouts of the device counters (simulated).
    pub readout_interval_ns: u64,
    /// Device counter value at which a page is reported hot.
    pub hot_threshold: u8,
    /// Right-shift applied to every counter at each readout (hardware decay
    /// so counters track the current epoch, not all of history).
    pub decay_shift: u8,
    /// Maximum pages promoted per readout (bounds the migration burst the
    /// host issues per report).
    pub max_promote_per_readout: u64,
    /// Fast-tier free-fraction target maintained by demotion.
    pub demote_wmark: f64,
    /// Maximum pages scanned per demotion call.
    pub max_scan_per_call: u64,
}

impl Default for NeoMemConfig {
    fn default() -> Self {
        Self {
            readout_interval_ns: 5_000_000, // 5 ms — NeoMem polls fast
            hot_threshold: 4,
            decay_shift: 1,
            max_promote_per_readout: 2_048,
            demote_wmark: 0.06,
            max_scan_per_call: 16_384,
        }
    }
}

/// The NeoMem-style policy: device-side per-page counters, periodic host
/// readout, counter-driven promotion, watermark demotion with a ladder
/// cascade.
#[derive(Debug)]
pub struct NeoMemPolicy {
    config: NeoMemConfig,
    /// Device-side 8-bit saturating counter per page. Device memory, not
    /// host metadata — see [`metadata_bytes`](TieringPolicy::metadata_bytes).
    counters: Vec<u8>,
    next_readout_ns: u64,
    demote_cursor: u64,
    chain: DemotionChain,
    /// Capacity of the host-side hot-page readout buffer (entries).
    readout_buf_entries: usize,
}

impl NeoMemPolicy {
    /// Builds the policy for the given address space.
    pub fn new(config: NeoMemConfig, tier_cfg: &TierConfig) -> Self {
        let readout_buf_entries = (config.max_promote_per_readout as usize).max(64);
        Self {
            counters: vec![0; tier_cfg.address_space_pages as usize],
            next_readout_ns: config.readout_interval_ns,
            demote_cursor: 0,
            chain: DemotionChain::new(),
            readout_buf_entries,
            config,
        }
    }

    /// Device counter value of a page (test/diagnostic hook).
    pub fn counter_of(&self, page: PageId) -> u8 {
        self.counters[page.0 as usize]
    }

    /// One host readout: harvest counter-hot device pages, promote them one
    /// rung toward DRAM, decay every counter.
    fn readout(&mut self, mem: &mut TieredMemory, ctx: &mut PolicyCtx) {
        ctx.tiering_work_ns += READOUT_NS;
        let mut promoted = 0u64;
        for page in 0..self.counters.len() as u64 {
            if self.counters[page as usize] >= self.config.hot_threshold
                && promoted < self.config.max_promote_per_readout
            {
                let p = PageId(page);
                // Device pages are any rung below 0; hop one toward DRAM.
                if mem.tier_index_of(p).is_some_and(|t| t > 0) {
                    ctx.tiering_work_ns += PER_ENTRY_NS;
                    if mem.fast_free() == 0 {
                        self.demote_pressure(mem, ctx);
                    }
                    if mem.promote_toward(p, 0).is_ok() {
                        promoted += 1;
                    }
                }
            }
            // Hardware decay runs over the whole counter array regardless.
            self.counters[page as usize] >>= self.config.decay_shift;
        }
    }

    /// Demotes DRAM-resident pages whose device history has fully decayed
    /// (counter 0: not reported hot in recent epochs) until the watermark
    /// recovers, then lets the chain cascade the pressure downward.
    fn demote_pressure(&mut self, mem: &mut TieredMemory, ctx: &mut PolicyCtx) {
        let n = mem.address_space_pages();
        if n == 0 {
            return;
        }
        for pass in 0..2 {
            let mut scanned = 0u64;
            while mem.fast_free_below(self.config.demote_wmark)
                && scanned < self.config.max_scan_per_call.min(n)
            {
                let page = PageId(self.demote_cursor);
                self.demote_cursor = (self.demote_cursor + 1) % n;
                scanned += 1;
                ctx.tiering_work_ns += SCAN_PAGE_NS;
                if mem.tier_index_of(page) != Some(0) {
                    continue;
                }
                // First pass: only fully-cold pages. Second pass: anything.
                if pass == 1 || self.counters[page.0 as usize] == 0 {
                    let _ = mem.demote(page);
                }
            }
            if !mem.fast_free_below(self.config.demote_wmark) {
                break;
            }
        }
    }
}

impl TieringPolicy for NeoMemPolicy {
    fn name(&self) -> &'static str {
        "NeoMem"
    }

    fn preferred_alloc_tier(&self) -> Tier {
        Tier::Fast
    }

    fn wants_access_hook(&self) -> bool {
        // The device sees every access to its pages; the hook is how the
        // engine exposes the full access stream. It costs the *host*
        // nothing (returns 0 ns) — counting happens in device hardware.
        true
    }

    fn on_access(
        &mut self,
        page: PageId,
        _now_ns: u64,
        mem: &mut TieredMemory,
        _ctx: &mut PolicyCtx,
    ) -> u64 {
        // Count only device-resident pages (DRAM rung 0 has no counters).
        if mem.tier_index_of(page).is_some_and(|t| t > 0) {
            let c = &mut self.counters[page.0 as usize];
            *c = c.saturating_add(1);
        }
        0
    }

    fn on_access_batch(
        &mut self,
        pages: &[PageId],
        _now_ns: u64,
        mem: &mut TieredMemory,
        _ctx: &mut PolicyCtx,
    ) -> u64 {
        for &page in pages {
            if mem.tier_index_of(page).is_some_and(|t| t > 0) {
                let c = &mut self.counters[page.0 as usize];
                *c = c.saturating_add(1);
            }
        }
        0
    }

    fn on_tick(&mut self, now_ns: u64, mem: &mut TieredMemory, ctx: &mut PolicyCtx) {
        if now_ns >= self.next_readout_ns {
            self.readout(mem, ctx);
            self.next_readout_ns = now_ns + self.config.readout_interval_ns;
        }
        if mem.fast_free_below(self.config.demote_wmark) {
            self.demote_pressure(mem, ctx);
        }
        self.chain.cascade(
            mem,
            self.config.demote_wmark,
            self.config.max_scan_per_call,
            ctx,
        );
    }

    fn metadata_bytes(&self) -> usize {
        // Host-side metadata only: the readout buffer (8 B page id + 1 B
        // count per entry) plus cursors. The per-page counters live on the
        // device — that asymmetry is NeoMem's selling point and the number
        // the metadata-overhead comparison should reflect.
        self.readout_buf_entries * 9 + 64
    }

    fn debug_state(&self) -> String {
        let hot = self
            .counters
            .iter()
            .filter(|&&c| c >= self.config.hot_threshold)
            .count();
        format!("hot={hot} next_readout={}", self.next_readout_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiering_mem::{PageSize, TierRatio, TierTopology};

    fn setup() -> (NeoMemPolicy, TieredMemory) {
        let cfg = TierConfig::for_footprint(512, TierRatio::OneTo8, PageSize::Base4K);
        (
            NeoMemPolicy::new(NeoMemConfig::default(), &cfg),
            TieredMemory::new(cfg),
        )
    }

    #[test]
    fn device_counts_only_non_dram_pages() {
        let (mut p, mut mem) = setup();
        let mut ctx = PolicyCtx::new();
        mem.ensure_mapped(PageId(0), Tier::Fast);
        mem.ensure_mapped(PageId(1), Tier::Slow);
        for _ in 0..3 {
            assert_eq!(p.on_access(PageId(0), 0, &mut mem, &mut ctx), 0);
            assert_eq!(p.on_access(PageId(1), 0, &mut mem, &mut ctx), 0);
        }
        assert_eq!(p.counter_of(PageId(0)), 0, "DRAM pages are invisible");
        assert_eq!(p.counter_of(PageId(1)), 3);
    }

    #[test]
    fn hot_device_page_promoted_at_readout() {
        let (mut p, mut mem) = setup();
        let mut ctx = PolicyCtx::new();
        mem.ensure_mapped(PageId(7), Tier::Slow);
        for _ in 0..4 {
            p.on_access(PageId(7), 0, &mut mem, &mut ctx);
        }
        p.on_tick(10_000_000, &mut mem, &mut ctx); // past the readout interval
        assert_eq!(mem.tier_of(PageId(7)), Some(Tier::Fast));
        assert!(ctx.tiering_work_ns >= READOUT_NS, "readout cost charged");
    }

    #[test]
    fn readout_decays_counters() {
        let (mut p, mut mem) = setup();
        let mut ctx = PolicyCtx::new();
        mem.ensure_mapped(PageId(3), Tier::Slow);
        for _ in 0..2 {
            p.on_access(PageId(3), 0, &mut mem, &mut ctx);
        }
        assert_eq!(p.counter_of(PageId(3)), 2);
        p.on_tick(10_000_000, &mut mem, &mut ctx);
        assert_eq!(p.counter_of(PageId(3)), 1, "decay shift halves");
    }

    #[test]
    fn watermark_demotion_prefers_cold_pages() {
        let (mut p, mut mem) = setup();
        let mut ctx = PolicyCtx::new();
        let cap = mem.config().fast_capacity_pages;
        for i in 0..cap {
            mem.ensure_mapped(PageId(i), Tier::Fast);
        }
        assert_eq!(mem.fast_free(), 0);
        p.on_tick(0, &mut mem, &mut ctx);
        assert!(!mem.fast_free_below(0.06), "headroom restored");
        assert!(mem.stats().demotions > 0);
    }

    #[test]
    fn host_metadata_is_footprint_independent() {
        let small = TierConfig::for_footprint(512, TierRatio::OneTo8, PageSize::Base4K);
        let large = TierConfig::for_footprint(500_000, TierRatio::OneTo8, PageSize::Base4K);
        let ps = NeoMemPolicy::new(NeoMemConfig::default(), &small);
        let pl = NeoMemPolicy::new(NeoMemConfig::default(), &large);
        assert_eq!(
            ps.metadata_bytes(),
            pl.metadata_bytes(),
            "host cost must not scale with footprint — that is the point"
        );
    }

    #[test]
    fn three_tier_hot_page_climbs_one_rung_per_readout() {
        let topo = TierTopology::three_tier_dram_cxl_nvme(80, PageSize::Base4K);
        let mut mem = TieredMemory::with_topology(topo);
        let mut p = NeoMemPolicy::new(NeoMemConfig::default(), &mem.config());
        let mut ctx = PolicyCtx::new();
        mem.ensure_mapped(PageId(9), Tier::Slow); // cxl, rung 1
        mem.demote(PageId(9)).unwrap(); // nvme, rung 2
        for readout in 0..2 {
            for _ in 0..8 {
                p.on_access(PageId(9), 0, &mut mem, &mut ctx);
            }
            let t = (readout + 1) * 10_000_000;
            p.on_tick(t, &mut mem, &mut ctx);
        }
        assert_eq!(
            mem.tier_index_of(PageId(9)),
            Some(0),
            "two readouts walk nvme → cxl → dram"
        );
    }
}
