//! TPP: Transparent Page Placement for CXL-enabled tiered memory.
//!
//! TPP (Maruf et al., ASPLOS'23) is the second recency-based baseline
//! (paper §2.3.2, §5.2). Its distinguishing mechanics relative to AutoNUMA:
//!
//! * **top-tier-first allocation** with *proactive* demotion: a background
//!   reclaimer keeps a free headroom in the fast tier so new allocations
//!   and promotions never stall;
//! * **two-touch promotion filter**: a slow-tier page is promoted only when
//!   hint-faulted twice within a window (TPP checks whether the faulting
//!   page is on the active LRU), filtering single-touch cold pages slightly
//!   better than AutoNUMA;
//! * demotion picks from the inactive LRU tail (approximated here by oldest
//!   last-fault time, like the AutoNUMA model, but triggered proactively).

use tiering_mem::{PageId, Tier, TierConfig, TieredMemory};

use crate::chain::DemotionChain;
use crate::policy::{PolicyCtx, TieringPolicy};

const SCAN_PAGE_NS: u64 = 10;
const FAULT_SERVICE_NS: u64 = 250;

/// Configuration of [`TppPolicy`].
#[derive(Debug, Clone)]
pub struct TppConfig {
    /// Pages unmapped per scan window.
    pub scan_window_pages: u64,
    /// Interval between scan windows.
    pub scan_interval_ns: u64,
    /// Second fault must arrive within this window of the first to count as
    /// "active" (promotion filter).
    pub active_window_ns: u64,
    /// Proactive free-headroom target for the fast tier (TPP keeps
    /// `demote_wmark` free even without promotion pressure).
    pub demote_wmark: f64,
    /// Pressure trigger.
    pub promo_wmark: f64,
    /// Max pages demoted per reclaim call.
    pub max_demote_per_call: u64,
}

impl Default for TppConfig {
    fn default() -> Self {
        Self {
            scan_window_pages: 1_024,
            scan_interval_ns: 10_000_000,    // 10 ms
            active_window_ns: 1_500_000_000, // ~2 full scan sweeps of a typical footprint
            demote_wmark: 0.08,
            promo_wmark: 0.03,
            max_demote_per_call: 4_096,
        }
    }
}

/// The TPP policy.
#[derive(Debug)]
pub struct TppPolicy {
    config: TppConfig,
    unmapped_at: Vec<u64>,
    last_fault: Vec<u64>,
    scan_cursor: u64,
    next_scan_ns: u64,
    demote_cursor: u64,
    chain: DemotionChain,
}

impl TppPolicy {
    /// Builds TPP for the given address space.
    pub fn new(mut config: TppConfig, tier_cfg: &TierConfig) -> Self {
        let n = tier_cfg.address_space_pages as usize;
        // Keep the full-sweep period roughly footprint-independent (~640 ms)
        // so the two-fault window spans a constant number of sweeps.
        config.scan_window_pages = config.scan_window_pages.max(n as u64 / 64);
        Self {
            config,
            unmapped_at: vec![0; n],
            last_fault: vec![0; n],
            scan_cursor: 0,
            next_scan_ns: 0,
            demote_cursor: 0,
            chain: DemotionChain::new(),
        }
    }

    fn scan_window(&mut self, now_ns: u64, ctx: &mut PolicyCtx) {
        let n = self.unmapped_at.len() as u64;
        if n == 0 {
            return;
        }
        let window = self.config.scan_window_pages.min(n);
        for _ in 0..window {
            self.unmapped_at[self.scan_cursor as usize] = now_ns.max(1);
            self.scan_cursor = (self.scan_cursor + 1) % n;
        }
        ctx.tiering_work_ns += window * SCAN_PAGE_NS;
    }

    fn reclaim(&mut self, now_ns: u64, mem: &mut TieredMemory, ctx: &mut PolicyCtx) {
        let n = mem.address_space_pages();
        if n == 0 {
            return;
        }
        let stale_cutoff = now_ns.saturating_sub(2 * self.config.scan_interval_ns);
        for pass in 0..2 {
            let mut scanned = 0u64;
            while mem.fast_free_below(self.config.demote_wmark)
                && scanned < self.config.max_demote_per_call.min(n)
            {
                let page = PageId(self.demote_cursor);
                self.demote_cursor = (self.demote_cursor + 1) % n;
                scanned += 1;
                ctx.tiering_work_ns += SCAN_PAGE_NS;
                if mem.tier_of(page) != Some(Tier::Fast) {
                    continue;
                }
                if pass == 1 || self.last_fault[page.0 as usize] <= stale_cutoff {
                    let _ = mem.demote(page);
                }
            }
            if !mem.fast_free_below(self.config.demote_wmark) {
                break;
            }
        }
    }
}

impl TieringPolicy for TppPolicy {
    fn name(&self) -> &'static str {
        "TPP"
    }

    fn preferred_alloc_tier(&self) -> Tier {
        Tier::Fast // top-tier-first allocation
    }

    fn wants_access_hook(&self) -> bool {
        true
    }

    fn on_access(
        &mut self,
        page: PageId,
        now_ns: u64,
        mem: &mut TieredMemory,
        ctx: &mut PolicyCtx,
    ) -> u64 {
        let idx = page.0 as usize;
        let unmapped = self.unmapped_at[idx];
        if unmapped == 0 {
            return 0;
        }
        self.unmapped_at[idx] = 0;
        let prev_fault = self.last_fault[idx];
        self.last_fault[idx] = now_ns.max(1);
        // Two-touch filter: promote only when the previous fault was recent
        // (the page is on the active list).
        if mem.tier_of(page) == Some(Tier::Slow)
            && prev_fault > 0
            && now_ns.saturating_sub(prev_fault) < self.config.active_window_ns
        {
            if mem.fast_free() == 0 {
                self.reclaim(now_ns, mem, ctx);
            }
            let _ = mem.promote(page);
        }
        FAULT_SERVICE_NS
    }

    fn on_access_batch(
        &mut self,
        pages: &[PageId],
        now_ns: u64,
        mem: &mut TieredMemory,
        ctx: &mut PolicyCtx,
    ) -> u64 {
        // Fused fault loop: in steady state almost every page is mapped
        // (`unmapped_at == 0`), so the batch path filters the burst down to
        // the rare faulting entries with one pass over the timestamp array
        // before paying the full per-fault path.
        let mut total = 0;
        for &page in pages {
            if self.unmapped_at[page.0 as usize] == 0 {
                continue;
            }
            total += self.on_access(page, now_ns, mem, ctx);
        }
        total
    }

    fn on_tick(&mut self, now_ns: u64, mem: &mut TieredMemory, ctx: &mut PolicyCtx) {
        if now_ns >= self.next_scan_ns {
            self.scan_window(now_ns, ctx);
            self.next_scan_ns = now_ns + self.config.scan_interval_ns;
        }
        // Proactive reclaim keeps headroom even before pressure (TPP's
        // signature behaviour).
        if mem.fast_free_below(self.config.demote_wmark) {
            self.reclaim(now_ns, mem, ctx);
        }
        // Cascade the same headroom target down any middle rungs (no-op on
        // the 2-tier testbed).
        self.chain.cascade(
            mem,
            self.config.demote_wmark,
            self.config.max_demote_per_call,
            ctx,
        );
    }

    fn metadata_bytes(&self) -> usize {
        self.unmapped_at.len() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiering_mem::{PageSize, TierRatio};

    fn setup() -> (TppPolicy, TieredMemory) {
        let cfg = TierConfig::for_footprint(512, TierRatio::OneTo8, PageSize::Base4K);
        (
            TppPolicy::new(TppConfig::default(), &cfg),
            TieredMemory::new(cfg),
        )
    }

    #[test]
    fn single_fault_does_not_promote() {
        let (mut p, mut mem) = setup();
        let mut ctx = PolicyCtx::new();
        mem.ensure_mapped(PageId(1), Tier::Slow);
        p.on_tick(0, &mut mem, &mut ctx);
        p.on_access(PageId(1), 100, &mut mem, &mut ctx);
        assert_eq!(
            mem.tier_of(PageId(1)),
            Some(Tier::Slow),
            "TPP's two-touch filter rejects single faults"
        );
    }

    #[test]
    fn two_recent_faults_promote() {
        let (mut p, mut mem) = setup();
        let mut ctx = PolicyCtx::new();
        mem.ensure_mapped(PageId(1), Tier::Slow);
        p.on_tick(0, &mut mem, &mut ctx);
        p.on_access(PageId(1), 100, &mut mem, &mut ctx);
        // Second scan re-arms the hint fault; second access within the
        // active window promotes.
        p.on_tick(20_000_000, &mut mem, &mut ctx);
        p.on_access(PageId(1), 20_000_100, &mut mem, &mut ctx);
        // (both faults fall inside the 1.5 s active window)
        assert_eq!(mem.tier_of(PageId(1)), Some(Tier::Fast));
    }

    #[test]
    fn widely_spaced_faults_do_not_promote() {
        let (mut p, mut mem) = setup();
        let mut ctx = PolicyCtx::new();
        mem.ensure_mapped(PageId(1), Tier::Slow);
        p.on_tick(0, &mut mem, &mut ctx);
        p.on_access(PageId(1), 100, &mut mem, &mut ctx);
        let far = 10_000_000_000; // 10 s later, beyond the active window
        p.on_tick(far, &mut mem, &mut ctx);
        p.on_access(PageId(1), far + 100, &mut mem, &mut ctx);
        assert_eq!(mem.tier_of(PageId(1)), Some(Tier::Slow));
    }

    #[test]
    fn proactive_reclaim_keeps_headroom() {
        let (mut p, mut mem) = setup();
        let mut ctx = PolicyCtx::new();
        let cap = mem.config().fast_capacity_pages;
        for i in 0..cap {
            mem.ensure_mapped(PageId(i), Tier::Fast);
        }
        assert_eq!(mem.fast_free(), 0);
        p.on_tick(0, &mut mem, &mut ctx);
        assert!(
            mem.fast_free_frac() >= 0.08,
            "TPP reclaims proactively to its headroom target"
        );
    }

    #[test]
    fn allocates_fast_first() {
        let (p, _) = setup();
        assert_eq!(p.preferred_alloc_tier(), Tier::Fast);
    }
}
