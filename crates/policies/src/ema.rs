//! Exponential-moving-average hotness scoring.
//!
//! Frequency-based tiering systems age their counters with an EMA of decay
//! factor 2: every cooling period the score is halved, and accesses in the
//! current period add 1 each (paper §2.3.2, footnote: "decay factor 2 is
//! typically used since it can be implemented using bit shift"). This small
//! standalone scorer reproduces the paper's Figure 3(a) lag analysis and
//! documents the dynamics the CBF trackers implement in aggregate.

/// An EMA score for a single tracked entity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EmaScore {
    score: u64,
}

impl EmaScore {
    /// A zero score.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `accesses` new accesses.
    pub fn record(&mut self, accesses: u64) {
        self.score += accesses;
    }

    /// Applies one cooling event (halves the score).
    pub fn cool(&mut self) {
        self.score /= 2;
    }

    /// Current score.
    pub fn score(&self) -> u64 {
        self.score
    }
}

/// Simulates the Figure 3(a) experiment: a page receiving
/// `rate_per_minute` accesses per minute for `active_minutes`, then silent,
/// with cooling every `cooling_minutes`; returns the per-minute EMA score
/// series over `total_minutes`.
///
/// The paper's instance (50 accesses/min for 10 min, cooling every 2 min)
/// shows the score staying above 10 until minute ~19 — a 9-minute lag after
/// the page went cold.
pub fn ema_lag_series(
    rate_per_minute: u64,
    active_minutes: u64,
    cooling_minutes: u64,
    total_minutes: u64,
) -> Vec<u64> {
    let mut ema = EmaScore::new();
    let mut series = Vec::with_capacity(total_minutes as usize);
    for minute in 0..total_minutes {
        if minute < active_minutes {
            ema.record(rate_per_minute);
        }
        if cooling_minutes > 0 && (minute + 1) % cooling_minutes == 0 {
            ema.cool();
        }
        series.push(ema.score());
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_cool() {
        let mut e = EmaScore::new();
        e.record(10);
        assert_eq!(e.score(), 10);
        e.cool();
        assert_eq!(e.score(), 5);
        e.record(3);
        assert_eq!(e.score(), 8);
    }

    #[test]
    fn paper_figure_3a_lag() {
        // 50 acc/min for 10 min, cooling every 2 min, watch 25 min.
        let series = ema_lag_series(50, 10, 2, 25);
        // While active the score builds up but stays bounded by cooling.
        assert!(series[9] >= 50, "active score {}", series[9]);
        // After going cold at minute 10, the score only halves every 2 min:
        // it lags. It must still be above 10 at minute 14...
        assert!(series[14] > 10, "score at 15 min: {}", series[14]);
        // ...and only drop below 10 somewhere before minute 20 (paper: 19).
        let drop = series.iter().position(|&s| s < 10).unwrap();
        assert!(
            (15..=20).contains(&drop),
            "score dropped below 10 at minute {drop}, paper says ~19"
        );
    }

    #[test]
    fn lower_cooling_period_adapts_faster() {
        let slow = ema_lag_series(50, 10, 4, 30);
        let fast = ema_lag_series(50, 10, 1, 30);
        let drop_at = |s: &[u64]| s.iter().position(|&v| v < 10).unwrap_or(s.len());
        assert!(
            drop_at(&fast) < drop_at(&slow),
            "fast cooling should converge sooner ({} vs {})",
            drop_at(&fast),
            drop_at(&slow)
        );
    }

    #[test]
    fn steady_state_score_is_rate_times_period_bound() {
        // Under constant rate r and cooling every c minutes, the steady
        // score just after cooling tends to r*c (geometric series limit).
        let series = ema_lag_series(50, 100, 2, 100);
        let peak = *series.iter().max().unwrap();
        assert!(peak <= 2 * 50 * 2, "peak {peak} should be bounded by 2*r*c");
        assert!(
            peak >= 50,
            "peak {peak} should at least reach one period's mass"
        );
    }
}
