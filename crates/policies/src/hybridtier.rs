//! HybridTier: adaptive, lightweight tiering via dual CBF trackers.
//!
//! The paper's system (§3–§4). Two probabilistic trackers per page:
//!
//! * **frequency** — long-term hotness: a counting Bloom filter cooled on a
//!   *high* period, capturing the minutes-to-hours access history;
//! * **momentum** — short-term intensity: a 128×-smaller CBF cooled on a
//!   *low* period, capturing access bursts within seconds.
//!
//! Migration follows the paper's Table 1 ([`MigrationDecision::decide`]):
//! promote on high frequency **or** high momentum; demote on low frequency
//! **and** low momentum; give historically-hot-but-currently-cold pages a
//! second chance. Promotions are batched (100 000 samples per syscall at
//! paper scale); demotion is a watermark-driven linear scan of the address
//! space, as the userspace runtime does via `/proc/PID/pagemap` (§4.3).

use hybridtier_cbf::{AccessCounter, BlockedCbf, CbfParams, CounterWidth, StandardCbf};
use tiering_mem::{PageId, PageSize, Tier, TierConfig, TieredMemory};
use tiering_trace::Sample;

use crate::chain::DemotionChain;
use crate::flat_table::FlatPageMap;
use crate::histogram::HotnessHistogram;
use crate::policy::{DemandCurve, PolicyCtx, TieringPolicy};

/// Simulated base addresses for metadata regions (cache-miss attribution).
const FREQ_BASE: u64 = 0x7100_0000_0000;
const MOM_BASE: u64 = 0x7200_0000_0000;
const HIST_BASE: u64 = 0x7300_0000_0000;
const PAGEMAP_BASE: u64 = 0x7500_0000_0000;

/// Cost constants for tiering-thread work (charged via `PolicyCtx`).
const SYSCALL_NS: u64 = 1_500;
const SCAN_PAGE_NS: u64 = 5;

/// Which CBF layout the trackers use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackerLayout {
    /// Cache-line-blocked CBF (HybridTier's default; one line per op).
    Blocked,
    /// Standard CBF (the Figure 14 "HybridTier-CBF" ablation; up to `k`
    /// lines per op).
    Standard,
}

/// The four cells of the paper's Table 1 policy matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationDecision {
    /// Move the page to the fast tier.
    Promote,
    /// Leave the page where it is.
    NoAction,
    /// Mark for second-chance revisit (fast-tier, historically hot,
    /// momentum-cold).
    SecondChance,
    /// Move the page to the slow tier.
    Demote,
}

impl MigrationDecision {
    /// Evaluates Table 1 for a page with the given signals.
    ///
    /// | frequency | momentum | slow-tier page | fast-tier page |
    /// |---|---|---|---|
    /// | high | high | promote | no action |
    /// | high | low  | promote | 2nd chance |
    /// | low  | high | promote | no action |
    /// | low  | low  | no action | demote |
    pub fn decide(freq_high: bool, momentum_high: bool, in_fast_tier: bool) -> Self {
        if in_fast_tier {
            match (freq_high, momentum_high) {
                (true, true) | (false, true) => MigrationDecision::NoAction,
                (true, false) => MigrationDecision::SecondChance,
                (false, false) => MigrationDecision::Demote,
            }
        } else if freq_high || momentum_high {
            MigrationDecision::Promote
        } else {
            MigrationDecision::NoAction
        }
    }
}

/// Configuration of [`HybridTierPolicy`].
#[derive(Debug, Clone)]
pub struct HybridTierConfig {
    /// Number of CBF hash functions (paper: 4).
    pub k: u32,
    /// CBF tracking-error target (paper: 0.001).
    pub error_rate: f64,
    /// Tracker layout (paper default: blocked).
    pub layout: TrackerLayout,
    /// Explicit frequency-CBF budget in bytes; overrides formula sizing
    /// (used by the Table 5 accuracy sweep).
    pub cbf_budget_bytes: Option<usize>,
    /// Whether the momentum tracker participates (Figure 15 ablation).
    pub momentum_enabled: bool,
    /// Momentum hotness threshold (paper: 3, set empirically; Figure 17).
    pub momentum_threshold: u32,
    /// Momentum CBF is `1/momentum_divisor` the size of the frequency CBF
    /// (paper: 128).
    pub momentum_divisor: usize,
    /// Cooling period of the frequency tracker, in samples (high).
    pub freq_cool_samples: u64,
    /// Cooling period of the momentum tracker, in samples (low).
    pub momentum_cool_samples: u64,
    /// Samples per promotion batch (paper: 100 000 per syscall).
    pub batch_samples: u64,
    /// Demotion starts when free fast-tier fraction drops below this
    /// (PROMO_WMARK, §4.3).
    pub promo_wmark: f64,
    /// Demotion stops once free fast-tier fraction reaches this
    /// (DEMOTE_WMARK, §4.3).
    pub demote_wmark: f64,
    /// Whether second-chance demotion is enabled.
    pub second_chance_enabled: bool,
    /// Second-chance revisit delay (paper: 1 minute).
    pub second_chance_revisit_ns: u64,
    /// Lower bound on the auto-derived frequency threshold.
    pub min_freq_threshold: u32,
    /// Cap on pages inspected per demotion-scan invocation.
    pub max_scan_per_call: u64,
}

impl HybridTierConfig {
    /// The paper's full-scale parameters.
    pub fn paper_defaults(tier_cfg: &TierConfig) -> Self {
        let _ = tier_cfg;
        Self {
            k: 4,
            error_rate: 0.001,
            layout: TrackerLayout::Blocked,
            cbf_budget_bytes: None,
            momentum_enabled: true,
            momentum_threshold: 3,
            momentum_divisor: 128,
            freq_cool_samples: 2_000_000,
            momentum_cool_samples: 31_250,
            batch_samples: 100_000,
            promo_wmark: 0.02,
            demote_wmark: 0.06,
            second_chance_enabled: true,
            second_chance_revisit_ns: 60_000_000_000,
            min_freq_threshold: 2,
            max_scan_per_call: 65_536,
        }
    }

    /// Parameters scaled to this repository's ~512×-smaller footprints: the
    /// sample-count periods shrink proportionally so cooling/batching happen
    /// at the same *per-page* rates as at paper scale.
    pub fn scaled(tier_cfg: &TierConfig) -> Self {
        Self {
            freq_cool_samples: 200_000,
            momentum_cool_samples: 12_000,
            batch_samples: 2_000,
            second_chance_revisit_ns: 100_000_000, // 100 ms (paper: 1 min)
            max_scan_per_call: 32_768,
            ..Self::paper_defaults(tier_cfg)
        }
    }

    /// Disables the momentum tracker (the "HybridTier-onlyFreqCBF" ablation
    /// of Figure 15).
    #[must_use]
    pub fn without_momentum(mut self) -> Self {
        self.momentum_enabled = false;
        self
    }

    /// Selects the tracker layout.
    #[must_use]
    pub fn with_layout(mut self, layout: TrackerLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Overrides the momentum threshold (Figure 17 sensitivity).
    #[must_use]
    pub fn with_momentum_threshold(mut self, t: u32) -> Self {
        self.momentum_threshold = t;
        self
    }

    /// Fixes the frequency-CBF size by byte budget (Table 5 sweep).
    #[must_use]
    pub fn with_cbf_budget(mut self, bytes: usize) -> Self {
        self.cbf_budget_bytes = Some(bytes);
        self
    }
}

fn build_tracker(params: CbfParams, layout: TrackerLayout) -> Box<dyn AccessCounter + Send + Sync> {
    match layout {
        TrackerLayout::Blocked => Box::new(BlockedCbf::new(params)),
        TrackerLayout::Standard => Box::new(StandardCbf::new(params)),
    }
}

/// The HybridTier userspace tiering runtime.
pub struct HybridTierPolicy {
    config: HybridTierConfig,
    freq: Box<dyn AccessCounter + Send + Sync>,
    momentum: Box<dyn AccessCounter + Send + Sync>,
    hist: HotnessHistogram,
    freq_threshold: u32,
    samples_seen: u64,
    samples_since_flush: u64,
    /// Samples until the next frequency cooling (countdown form of
    /// `samples_seen % freq_cool_samples == 0`, sparing the per-sample
    /// division).
    freq_cool_in: u64,
    /// Samples until the next momentum cooling.
    momentum_cool_in: u64,
    promo_queue: Vec<PageId>,
    /// Number of frequency-cooling events so far; lets the second-chance
    /// check distinguish "count decayed by cooling" from "page was
    /// accessed" when comparing against the saved estimate.
    cooling_epoch: u32,
    /// page → (frequency estimate at marking, marked-at time, epoch), in a
    /// flat open-addressed table: the demotion scan probes/updates it per
    /// fast-tier page, so marks live in two dense arrays instead of a
    /// `std::collections::HashMap`'s hashed heap buckets.
    second_chance: FlatPageMap<(u32, u64, u32)>,
    scan_cursor: u64,
    chain: DemotionChain,
}

impl std::fmt::Debug for HybridTierPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HybridTierPolicy")
            .field("freq_threshold", &self.freq_threshold)
            .field("samples_seen", &self.samples_seen)
            .field("promo_queued", &self.promo_queue.len())
            .field("second_chance", &self.second_chance.len())
            .finish()
    }
}

impl HybridTierPolicy {
    /// Builds the policy for the given tier configuration: the frequency
    /// CBF is sized for the fast-tier page count (paper §4.2, `n` = number
    /// of fast-tier pages) and the momentum CBF `momentum_divisor`× smaller.
    ///
    /// # Panics
    ///
    /// Panics if either cooling period is zero (the cadences are countdown
    /// driven; a zero period is meaningless — use a huge period to
    /// effectively disable cooling).
    pub fn new(config: HybridTierConfig, tier_cfg: &TierConfig) -> Self {
        assert!(
            config.freq_cool_samples > 0 && config.momentum_cool_samples > 0,
            "cooling periods must be positive"
        );
        let width = match tier_cfg.page_size {
            PageSize::Base4K => CounterWidth::W4,
            PageSize::Huge2M => CounterWidth::W16,
        };
        // Size the frequency CBF for the fast-tier page count (paper §4.2)
        // with a floor: at this repository's scaled-down footprints a filter
        // sized for a few hundred pages would saturate with collisions,
        // which at paper scale (millions of fast-tier pages) cannot happen.
        // The floors are negligible in bytes and only bind in small runs.
        let n_freq = (tier_cfg.fast_capacity_pages.max(1) as usize).max(16_384);
        let freq_params = match config.cbf_budget_bytes {
            Some(bytes) => CbfParams::for_budget_bytes(bytes, config.k, width),
            None => CbfParams::for_capacity(n_freq, config.k, config.error_rate, width),
        }
        .with_base_addr(FREQ_BASE);
        // Momentum tracker: `momentum_divisor`× smaller, same floor logic.
        // When the tracker is disabled every write and decision path is
        // gated off, so it stays empty and only its allocation remains
        // observable (via `metadata_bytes`) — size it minimally instead of
        // carrying a dead divisor-scaled filter per tenant, which at fleet
        // scale (10⁵ lean tenants) is gigabytes.
        let n_mom = (n_freq / config.momentum_divisor).max(16_384);
        let mom_params = if config.momentum_enabled {
            CbfParams::for_capacity(n_mom, config.k, config.error_rate, width)
        } else {
            CbfParams::for_budget_bytes(64, config.k, width)
        }
        .with_base_addr(MOM_BASE)
        .with_seed(0x4D4F_4D45_4E54_554D); // distinct seed for the momentum tracker
        let counter_cap = width.max_count();
        Self {
            freq: build_tracker(freq_params, config.layout),
            momentum: build_tracker(mom_params, config.layout),
            hist: HotnessHistogram::new(counter_cap.min(63)),
            freq_threshold: config.min_freq_threshold,
            samples_seen: 0,
            samples_since_flush: 0,
            freq_cool_in: config.freq_cool_samples,
            momentum_cool_in: config.momentum_cool_samples,
            promo_queue: Vec::new(),
            cooling_epoch: 0,
            second_chance: FlatPageMap::new(),
            scan_cursor: 0,
            chain: DemotionChain::new(),
            config,
        }
    }

    /// Current auto-derived frequency threshold.
    pub fn freq_threshold(&self) -> u32 {
        self.freq_threshold
    }

    /// Frequency estimate for a page (exposed for experiments).
    pub fn freq_estimate(&self, page: PageId) -> u32 {
        self.freq.estimate(page.0)
    }

    /// Momentum estimate for a page (exposed for experiments).
    pub fn momentum_estimate(&self, page: PageId) -> u32 {
        self.momentum.estimate(page.0)
    }

    /// Number of pages currently marked for second chance (diagnostics).
    pub fn second_chance_len(&self) -> usize {
        self.second_chance.len()
    }

    /// Estimated hot-set size: pages at or above the *minimum* hotness
    /// level (used by the global controller of paper §7 to apportion fast
    /// memory across tenants). The adaptive threshold is unsuitable here —
    /// it rises until the hot set fits the current quota, so measuring at
    /// it would always report "exactly my quota".
    pub fn hot_set_estimate(&self) -> u64 {
        self.hist.pages_at_or_above(self.config.min_freq_threshold)
    }

    /// The Algorithm-1 loop body: update both trackers, cool on schedule,
    /// queue promotion candidates, flush full batches. Shared (inlined) by
    /// the scalar `on_sample` hook and the batched `on_sample_batch` hook so
    /// the two paths cannot drift.
    #[inline]
    fn ingest_sample(&mut self, sample: Sample, mem: &mut TieredMemory, ctx: &mut PolicyCtx) {
        self.samples_seen += 1;
        self.samples_since_flush += 1;
        let key = sample.page.0;

        // Update both trackers (paper Figure 6, step 3). The fused
        // GET+INCREMENT visits the key's block once and reports the
        // pre-update estimate for the histogram transition; the pair
        // touches the same lines, reported once.
        let (old_f, new_f) = self.freq.increment_with_prev(key);
        self.hist.transition(old_f, new_f);
        self.freq.touched_lines(key, &mut ctx.metadata_lines);
        ctx.metadata_lines
            .push(HIST_BASE + u64::from(new_f.min(63)) / 8 * 64);
        let new_m = if self.config.momentum_enabled {
            let m = self.momentum.increment(key);
            self.momentum.touched_lines(key, &mut ctx.metadata_lines);
            m
        } else {
            0
        };

        // Cooling (EMA decay): high period for frequency, low for momentum
        // (countdowns, identical cadence to `samples_seen % period == 0`).
        self.freq_cool_in -= 1;
        if self.freq_cool_in == 0 {
            self.freq_cool_in = self.config.freq_cool_samples;
            self.freq.cool();
            self.hist.cool();
            self.cooling_epoch += 1;
        }
        if self.config.momentum_enabled {
            self.momentum_cool_in -= 1;
            if self.momentum_cool_in == 0 {
                self.momentum_cool_in = self.config.momentum_cool_samples;
                self.momentum.cool();
            }
        }

        // Promotion candidacy (Table 1, slow-tier column).
        if sample.tier == Tier::Slow {
            let decision = MigrationDecision::decide(
                self.is_freq_hot(new_f),
                self.is_momentum_hot(new_m),
                false,
            );
            if decision == MigrationDecision::Promote {
                self.promo_queue.push(sample.page);
            }
        }

        if self.samples_since_flush >= self.config.batch_samples {
            self.flush_promotions(sample.at_ns, mem, ctx);
        }
    }

    fn is_freq_hot(&self, f: u32) -> bool {
        f >= self.freq_threshold
    }

    fn is_momentum_hot(&self, m: u32) -> bool {
        self.config.momentum_enabled && m >= self.config.momentum_threshold
    }

    /// Flushes the promotion batch with one modeled syscall (paper §4.3).
    fn flush_promotions(&mut self, now_ns: u64, mem: &mut TieredMemory, ctx: &mut PolicyCtx) {
        self.samples_since_flush = 0;
        self.freq_threshold = self.hist.threshold_for(
            mem.config().fast_capacity_pages,
            self.config.min_freq_threshold,
        );
        if self.promo_queue.is_empty() {
            return;
        }
        ctx.tiering_work_ns += SYSCALL_NS;
        let queue = std::mem::take(&mut self.promo_queue);
        for page in queue {
            if mem.tier_of(page) != Some(Tier::Slow) {
                continue;
            }
            if mem.fast_free() == 0 {
                self.demote_scan(now_ns, mem, ctx);
                if mem.fast_free() == 0 {
                    continue; // nothing demotable right now; drop candidate
                }
            }
            let _ = mem.promote(page);
        }
    }

    /// Watermark-driven linear demotion scan (paper §4.3): walk the address
    /// space, applying Table 1 to fast-tier pages until the free fraction
    /// recovers to `DEMOTE_WMARK` or the scan budget is exhausted.
    fn demote_scan(&mut self, now_ns: u64, mem: &mut TieredMemory, ctx: &mut PolicyCtx) {
        let n = mem.address_space_pages();
        if n == 0 {
            return;
        }
        let mut scanned = 0u64;
        while mem.fast_free_below(self.config.demote_wmark)
            && scanned < self.config.max_scan_per_call.min(n)
        {
            let page = PageId(self.scan_cursor);
            self.scan_cursor = (self.scan_cursor + 1) % n;
            scanned += 1;
            ctx.tiering_work_ns += SCAN_PAGE_NS;
            // One pagemap line covers 8 pages (8-byte entries).
            if self.scan_cursor.is_multiple_of(8) {
                ctx.metadata_lines.push(PAGEMAP_BASE + self.scan_cursor);
            }
            if mem.tier_of(page) != Some(Tier::Fast) {
                continue;
            }
            let f = self.freq.estimate(page.0);
            let m = self.momentum.estimate(page.0);
            self.freq.touched_lines(page.0, &mut ctx.metadata_lines);
            if self.config.momentum_enabled {
                self.momentum.touched_lines(page.0, &mut ctx.metadata_lines);
            }
            match MigrationDecision::decide(self.is_freq_hot(f), self.is_momentum_hot(m), true) {
                MigrationDecision::Demote => {
                    self.second_chance.remove(page.0);
                    let _ = mem.demote(page);
                }
                MigrationDecision::SecondChance => {
                    if !self.config.second_chance_enabled {
                        // Ablation: without second chance, historically hot
                        // but momentum-cold pages demote immediately.
                        let _ = mem.demote(page);
                        continue;
                    }
                    match self.second_chance.get(page.0) {
                        None => {
                            self.second_chance
                                .insert(page.0, (f, now_ns, self.cooling_epoch));
                        }
                        Some((saved, marked_at, epoch)) => {
                            if now_ns.saturating_sub(marked_at)
                                >= self.config.second_chance_revisit_ns
                            {
                                // An un-accessed page's count can only have
                                // decayed by cooling since marking; anything
                                // above `saved >> coolings` means new
                                // accesses arrived.
                                let coolings = (self.cooling_epoch - epoch).min(31);
                                let expected = saved >> coolings;
                                if self.freq.estimate(page.0) <= expected {
                                    // Not accessed since marking: demote.
                                    self.second_chance.remove(page.0);
                                    let _ = mem.demote(page);
                                } else {
                                    // Still being accessed: re-mark.
                                    self.second_chance
                                        .insert(page.0, (f, now_ns, self.cooling_epoch));
                                }
                            }
                        }
                    }
                }
                MigrationDecision::NoAction | MigrationDecision::Promote => {}
            }
        }
    }
}

impl TieringPolicy for HybridTierPolicy {
    fn name(&self) -> &'static str {
        if !self.config.momentum_enabled {
            "HybridTier-onlyFreqCBF"
        } else if self.config.layout == TrackerLayout::Standard {
            "HybridTier-CBF"
        } else {
            "HybridTier"
        }
    }

    fn fast_demand_pages(&self, _mem: &TieredMemory) -> u64 {
        self.hot_set_estimate()
    }

    fn demand_curve(&self, mem: &TieredMemory) -> DemandCurve {
        // Suffix sums of the hotness histogram above the frequency
        // threshold: how much access mass each marginal fast page captures.
        let points = self.hist.marginal_curve(self.config.min_freq_threshold, 8);
        if points.is_empty() {
            return DemandCurve::point(self.fast_demand_pages(mem));
        }
        DemandCurve::from_points(points)
    }

    fn on_sample(&mut self, sample: Sample, mem: &mut TieredMemory, ctx: &mut PolicyCtx) {
        self.ingest_sample(sample, mem, ctx);
    }

    fn on_sample_batch(&mut self, samples: &[Sample], mem: &mut TieredMemory, ctx: &mut PolicyCtx) {
        // One virtual call per op instead of per sample; the shared inlined
        // ingest keeps batch and scalar paths state-identical (including
        // promo-queue capacity, which metadata_bytes reports).
        for &sample in samples {
            self.ingest_sample(sample, mem, ctx);
        }
    }

    fn on_tick(&mut self, now_ns: u64, mem: &mut TieredMemory, ctx: &mut PolicyCtx) {
        // Time-based flush so trailing candidates are not stranded.
        if !self.promo_queue.is_empty() {
            self.flush_promotions(now_ns, mem, ctx);
        }
        if mem.fast_free_below(self.config.promo_wmark) {
            self.demote_scan(now_ns, mem, ctx);
        }
        // Cascade watermark pressure down any middle rungs (no-op on the
        // 2-tier testbed).
        self.chain.cascade(
            mem,
            self.config.demote_wmark,
            self.config.max_scan_per_call,
            ctx,
        );
    }

    fn metadata_bytes(&self) -> usize {
        // Second-chance marks are charged at their live payload (24 B per
        // entry: 8 B key + 16 B record), the figure this policy has always
        // reported and the golden suite snapshots; the flat table's
        // allocated capacity is visible via `debug_state`.
        self.freq.metadata_bytes()
            + self.momentum.metadata_bytes()
            + self.hist.metadata_bytes()
            + self.second_chance.resident_bytes()
            + self.promo_queue.capacity() * 8
    }

    fn debug_state(&self) -> String {
        format!(
            "thr={} 2nd={}/{}B queue={} epoch={}",
            self.freq_threshold,
            self.second_chance.len(),
            self.second_chance.allocated_bytes(),
            self.promo_queue.len(),
            self.cooling_epoch
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiering_mem::TierRatio;

    fn setup(ratio: TierRatio) -> (HybridTierPolicy, TieredMemory) {
        let cfg = TierConfig::for_footprint(4_096, ratio, PageSize::Base4K);
        let mut ht_cfg = HybridTierConfig::scaled(&cfg);
        ht_cfg.batch_samples = 16; // small batches for unit tests
        ht_cfg.freq_cool_samples = 1_000_000;
        ht_cfg.momentum_cool_samples = 1_000_000;
        let policy = HybridTierPolicy::new(ht_cfg, &cfg);
        (policy, TieredMemory::new(cfg))
    }

    fn sample(page: u64, tier: Tier, at_ns: u64) -> Sample {
        Sample {
            page: PageId(page),
            addr: page << 12,
            tier,
            at_ns,
            is_write: false,
        }
    }

    #[test]
    fn table1_decision_matrix() {
        use MigrationDecision::*;
        // Slow-tier column.
        assert_eq!(MigrationDecision::decide(true, true, false), Promote);
        assert_eq!(MigrationDecision::decide(true, false, false), Promote);
        assert_eq!(MigrationDecision::decide(false, true, false), Promote);
        assert_eq!(MigrationDecision::decide(false, false, false), NoAction);
        // Fast-tier column.
        assert_eq!(MigrationDecision::decide(true, true, true), NoAction);
        assert_eq!(MigrationDecision::decide(true, false, true), SecondChance);
        assert_eq!(MigrationDecision::decide(false, true, true), NoAction);
        assert_eq!(MigrationDecision::decide(false, false, true), Demote);
    }

    #[test]
    fn momentum_promotes_new_hot_page_quickly() {
        let (mut p, mut mem) = setup(TierRatio::OneTo16);
        let mut ctx = PolicyCtx::new();
        mem.ensure_mapped(PageId(7), Tier::Slow);
        // Burst of accesses to a brand-new page: momentum (threshold 3)
        // should trigger promotion on the next batch flush even though
        // frequency history is shallow.
        for i in 0..16 {
            p.on_sample(sample(7, Tier::Slow, i), &mut mem, &mut ctx);
        }
        assert_eq!(mem.tier_of(PageId(7)), Some(Tier::Fast));
    }

    #[test]
    fn freq_only_ablation_does_not_use_momentum() {
        let cfg = TierConfig::for_footprint(4_096, TierRatio::OneTo16, PageSize::Base4K);
        let mut ht_cfg = HybridTierConfig::scaled(&cfg).without_momentum();
        ht_cfg.batch_samples = 4;
        ht_cfg.min_freq_threshold = 10; // high bar frequency can't reach fast
        let mut p = HybridTierPolicy::new(ht_cfg, &cfg);
        let mut mem = TieredMemory::new(cfg);
        let mut ctx = PolicyCtx::new();
        mem.ensure_mapped(PageId(3), Tier::Slow);
        for i in 0..8 {
            p.on_sample(sample(3, Tier::Slow, i), &mut mem, &mut ctx);
        }
        assert_eq!(
            mem.tier_of(PageId(3)),
            Some(Tier::Slow),
            "without momentum, a short burst must not promote below the freq threshold"
        );
        assert_eq!(p.name(), "HybridTier-onlyFreqCBF");
    }

    #[test]
    fn demotion_scan_evicts_cold_pages_under_pressure() {
        let (mut p, mut mem) = setup(TierRatio::OneTo16);
        let mut ctx = PolicyCtx::new();
        let fast_cap = mem.config().fast_capacity_pages;
        // Fill the fast tier with never-sampled (cold) pages.
        for i in 0..fast_cap {
            mem.ensure_mapped(PageId(i), Tier::Fast);
        }
        assert_eq!(mem.fast_free(), 0);
        p.on_tick(0, &mut mem, &mut ctx);
        assert!(
            mem.fast_free_frac() >= 0.06,
            "scan should demote cold pages to DEMOTE_WMARK, free frac {}",
            mem.fast_free_frac()
        );
        assert!(mem.stats().demotions > 0);
    }

    #[test]
    fn hot_fast_pages_survive_demotion_scan() {
        let (mut p, mut mem) = setup(TierRatio::OneTo16);
        let mut ctx = PolicyCtx::new();
        let fast_cap = mem.config().fast_capacity_pages;
        for i in 0..fast_cap {
            mem.ensure_mapped(PageId(i), Tier::Fast);
        }
        // Make page 0 intensely hot (both trackers).
        for i in 0..50 {
            p.on_sample(sample(0, Tier::Fast, i), &mut mem, &mut ctx);
        }
        p.on_tick(100, &mut mem, &mut ctx);
        assert_eq!(
            mem.tier_of(PageId(0)),
            Some(Tier::Fast),
            "momentum-hot page must not be demoted"
        );
    }

    #[test]
    fn second_chance_defers_then_demotes_stale_pages() {
        let cfg = TierConfig::for_footprint(256, TierRatio::OneTo4, PageSize::Base4K);
        let mut ht_cfg = HybridTierConfig::scaled(&cfg);
        ht_cfg.batch_samples = 1_000_000; // no auto flush
        ht_cfg.momentum_cool_samples = 4; // momentum cools fast
        ht_cfg.freq_cool_samples = 1_000_000;
        ht_cfg.second_chance_revisit_ns = 100;
        ht_cfg.min_freq_threshold = 2;
        // Keep the scan always active and bounded to one wrap, so the
        // revisit dynamics are deterministic.
        ht_cfg.promo_wmark = 1.0;
        ht_cfg.demote_wmark = 1.0;
        ht_cfg.max_scan_per_call = 256;
        let mut p = HybridTierPolicy::new(ht_cfg, &cfg);
        let mut mem = TieredMemory::new(cfg);
        let mut ctx = PolicyCtx::new();
        let fast_cap = mem.config().fast_capacity_pages;
        for i in 0..fast_cap {
            mem.ensure_mapped(PageId(i), Tier::Fast);
        }
        // Page 0 historically hot: many samples...
        for i in 0..16 {
            p.on_sample(sample(0, Tier::Fast, i), &mut mem, &mut ctx);
        }
        assert!(p.freq_estimate(PageId(0)) >= 2);
        // ...then it goes quiet while other pages keep the sampler busy, so
        // momentum cooling (every 4 samples) erodes its burst score to 0.
        for i in 0..16 {
            p.on_sample(sample(1, Tier::Fast, 100 + i), &mut mem, &mut ctx);
        }
        assert_eq!(p.momentum_estimate(PageId(0)), 0, "momentum cooled to 0");
        // First scan: page 0 is freq-hot/momentum-cold → marked, not demoted.
        p.on_tick(1_000, &mut mem, &mut ctx);
        assert_eq!(mem.tier_of(PageId(0)), Some(Tier::Fast));
        assert!(!p.second_chance.is_empty());
        // Second scan past the revisit window with no further accesses:
        // demoted.
        p.on_tick(10_000, &mut mem, &mut ctx);
        assert_eq!(
            mem.tier_of(PageId(0)),
            Some(Tier::Slow),
            "stale second-chance page should be demoted on revisit"
        );
    }

    #[test]
    fn batch_flush_cadence() {
        let (mut p, mut mem) = setup(TierRatio::OneTo16);
        let mut ctx = PolicyCtx::new();
        for pg in 0..100u64 {
            mem.ensure_mapped(PageId(pg), Tier::Slow);
        }
        // 15 samples (batch = 16): candidates queued but not flushed.
        for i in 0..15 {
            p.on_sample(sample(i % 5, Tier::Slow, i), &mut mem, &mut ctx);
        }
        assert_eq!(mem.stats().promotions, 0, "no flush before the batch fills");
        p.on_sample(sample(0, Tier::Slow, 15), &mut mem, &mut ctx);
        assert!(mem.stats().promotions > 0, "batch flush promotes");
    }

    #[test]
    #[should_panic(expected = "cooling periods must be positive")]
    fn zero_cooling_period_rejected() {
        let cfg = TierConfig::for_footprint(256, TierRatio::OneTo4, PageSize::Base4K);
        let mut ht_cfg = HybridTierConfig::scaled(&cfg);
        ht_cfg.freq_cool_samples = 0;
        let _ = HybridTierPolicy::new(ht_cfg, &cfg);
    }

    #[test]
    fn metadata_is_far_smaller_than_16b_per_page() {
        let cfg = TierConfig::for_footprint(100_000, TierRatio::OneTo16, PageSize::Base4K);
        let p = HybridTierPolicy::new(HybridTierConfig::scaled(&cfg), &cfg);
        let memtis_equivalent = 100_000 * 16;
        assert!(
            p.metadata_bytes() * 2 < memtis_equivalent,
            "HybridTier {}B vs Memtis-style {}B",
            p.metadata_bytes(),
            memtis_equivalent
        );
    }

    #[test]
    fn blocked_layout_touches_fewer_lines_than_standard() {
        let cfg = TierConfig::for_footprint(50_000, TierRatio::OneTo8, PageSize::Base4K);
        let mut blocked = HybridTierPolicy::new(HybridTierConfig::scaled(&cfg), &cfg);
        let mut standard = HybridTierPolicy::new(
            HybridTierConfig::scaled(&cfg).with_layout(TrackerLayout::Standard),
            &cfg,
        );
        let mut mem_b = TieredMemory::new(cfg);
        let mut mem_s = TieredMemory::new(cfg);
        let (mut cb, mut cs) = (PolicyCtx::new(), PolicyCtx::new());
        for pg in 0..200u64 {
            mem_b.ensure_mapped(PageId(pg), Tier::Slow);
            mem_s.ensure_mapped(PageId(pg), Tier::Slow);
        }
        for i in 0..200u64 {
            blocked.on_sample(sample(i % 200, Tier::Slow, i), &mut mem_b, &mut cb);
            standard.on_sample(sample(i % 200, Tier::Slow, i), &mut mem_s, &mut cs);
        }
        assert!(
            cb.metadata_lines.len() < cs.metadata_lines.len(),
            "blocked {} lines vs standard {}",
            cb.metadata_lines.len(),
            cs.metadata_lines.len()
        );
        assert_eq!(standard.name(), "HybridTier-CBF");
    }

    #[test]
    fn threshold_adapts_to_distribution() {
        let (mut p, mut mem) = setup(TierRatio::OneTo16);
        let mut ctx = PolicyCtx::new();
        for pg in 0..1_000u64 {
            mem.ensure_mapped(PageId(pg), Tier::Slow);
        }
        // Make far more pages "hot at level >= 2" than fast capacity (256):
        // threshold must rise above the minimum.
        for round in 0..6 {
            for pg in 0..1_000u64 {
                p.on_sample(
                    sample(pg, Tier::Slow, round * 1_000 + pg),
                    &mut mem,
                    &mut ctx,
                );
            }
        }
        assert!(
            p.freq_threshold() > 2,
            "threshold {} should exceed the minimum when the hot set overflows",
            p.freq_threshold()
        );
    }
}
