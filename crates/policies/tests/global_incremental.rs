//! Fleet-scale equivalence suite for [`ControllerMode::Incremental`]: the
//! heap-backed delta path must be **bit-identical** to the historical
//! full-scan arithmetic for every objective, at every step of random churn
//! scripts, at 10³ and 10⁴ tenants — and must do sub-linear *work*
//! (tree-node visits, not wall-clock) when only `k ≪ n` demands change.
//!
//! The oracle is the unmodified full-scan controller itself, so any drift
//! in the incremental planner (largest-remainder bookkeeping, max-min
//! water filling, SLO phase selection, min-one fixup prediction) shows up
//! as a quota mismatch, not a statistical anomaly.

use proptest::prelude::*;
use tiering_policies::{ControllerMode, GlobalController, ObjectiveKind};

/// SplitMix64 — expands one script seed into per-step demand updates.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fleet(n: usize, kind: ObjectiveKind, mode: ControllerMode) -> GlobalController {
    let mut g = GlobalController::new(16 * n as u64, 0.01)
        .with_objective_kind(kind)
        .with_mode(mode);
    for i in 0..n {
        g.add_tenant(&format!("t{i}"), 256);
    }
    g
}

/// Drives paired controllers through `rounds` rounds of `k` random demand
/// changes plus occasional churn, asserting exact quota agreement after
/// every event. Returns the incremental controller for further checks.
fn run_script(
    n: usize,
    kind: ObjectiveKind,
    seed: u64,
    rounds: u64,
    k: usize,
    churn: bool,
) -> GlobalController {
    let mut full = fleet(n, kind, ControllerMode::FullScan);
    let mut inc = fleet(n, kind, ControllerMode::Incremental);
    let mut state = seed;
    let mut slots = n;
    let mut live: Vec<usize> = (0..n).collect();
    for round in 0..rounds {
        if churn {
            match mix(&mut state) % 8 {
                0 if live.len() > n / 2 => {
                    let at = (mix(&mut state) % live.len() as u64) as usize;
                    let victim = live.swap_remove(at);
                    full.retire_tenant(victim);
                    inc.retire_tenant(victim);
                }
                1 => {
                    let name = format!("n{round}");
                    let a = full.admit_tenant(&name, 256);
                    let b = inc.admit_tenant(&name, 256);
                    assert_eq!(a, b, "slot indices diverged");
                    live.push(a);
                    slots += 1;
                }
                _ => {}
            }
        }
        for _ in 0..k {
            let slot = live[(mix(&mut state) % live.len() as u64) as usize];
            let demand = match mix(&mut state) % 8 {
                0 => 0,
                1 => u64::MAX,
                v => mix(&mut state) % (100 << v),
            };
            full.update_demand(slot, demand);
            inc.update_demand(slot, demand);
        }
        full.rebalance_dirty(round);
        inc.rebalance_dirty(round);
        assert_eq!(
            full.quotas(),
            inc.quotas(),
            "{kind:?} n={n} seed={seed:#x} round {round}: quotas diverged"
        );
        assert_eq!(full.floor_pages(), inc.floor_pages());
    }
    assert_eq!(inc.num_tenants(), slots);
    inc
}

/// 10³ tenants, all three objectives, randomized scripts with churn: the
/// incremental path is bit-identical to the full-scan oracle.
#[test]
fn thousand_tenant_scripts_match_the_oracle() {
    for kind in ObjectiveKind::ALL {
        for seed in [0xA5F0_5EED_u64, 0x00DD_BA11, 0xFEED_F00D] {
            run_script(1_000, kind, seed ^ kind as u64, 30, 8, true);
        }
    }
}

/// 10⁴ tenants: same bit-identity, fewer rounds (the full-scan oracle is
/// the expensive half of this test by design).
#[test]
fn ten_thousand_tenant_scripts_match_the_oracle() {
    for kind in ObjectiveKind::ALL {
        run_script(10_000, kind, 0xD15C_0B01 ^ kind as u64, 8, 16, true);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random budgets, floors, fleet sizes, and scripts — the equivalence
    /// is not an artifact of the hand-picked constants above.
    #[test]
    fn randomized_fleets_match_the_oracle(
        n in 3usize..200,
        budget_per in 2u64..64,
        floor_pct in 0u64..=50,
        seed in any::<u64>(),
        k in 1usize..12,
    ) {
        for kind in ObjectiveKind::ALL {
            let budget = budget_per * n as u64;
            let mk = |mode| {
                let mut g = GlobalController::new(budget, floor_pct as f64 / 100.0)
                    .with_objective_kind(kind)
                    .with_mode(mode);
                for i in 0..n {
                    g.add_tenant(&format!("t{i}"), 256);
                }
                g
            };
            let mut full = mk(ControllerMode::FullScan);
            let mut inc = mk(ControllerMode::Incremental);
            let mut state = seed;
            for round in 0..12u64 {
                for _ in 0..k {
                    let slot = (mix(&mut state) % n as u64) as usize;
                    let d = mix(&mut state) % (1u64 << (mix(&mut state) % 45));
                    full.update_demand(slot, d);
                    inc.update_demand(slot, d);
                }
                full.rebalance_dirty(round);
                inc.rebalance_dirty(round);
                prop_assert_eq!(
                    full.quotas(),
                    inc.quotas(),
                    "{:?} n={} round {}", kind, n, round
                );
            }
        }
    }
}

/// A fleet in the regime where the lazy path legitimately engages:
/// `floor_frac` 0.1 on a 16-pages-per-tenant budget yields a one-page
/// floor, which makes the min-one fixup provably inert no matter how
/// small a tenant's proportional share rounds down to. (With a zero
/// floor, one demand-1 tenant whose share truncates to 0 forces the
/// full-scan fallback on every round — correct, but O(n), which is
/// exactly what the work-meter tests must not measure.)
fn floored_fleet(n: usize, kind: ObjectiveKind) -> GlobalController {
    let mut g = GlobalController::new(16 * n as u64, 0.1)
        .with_objective_kind(kind)
        .with_mode(ControllerMode::Incremental);
    for i in 0..n {
        g.add_tenant(&format!("t{i}"), 256);
    }
    g
}

/// The work meter: a dirty-`k` rebalance at 10⁴ tenants must cost far
/// less than a full scan. Counted in tree-node visits + plan-walk steps +
/// full-scan slots (`apportion_ops`), not wall-clock, so the assertion
/// cannot flake on a loaded CI host. The demand palette stays at 256
/// distinct values — well under the planner's class cap — mirroring real
/// fleets where demands are bucketed sampler readings, not raw counters.
#[test]
fn sparse_rebalances_do_sublinear_work() {
    let n = 10_000usize;
    for kind in ObjectiveKind::ALL {
        let mut inc = floored_fleet(n, kind);
        inc.rebalance_dirty(0); // settle the idle fleet
        let settled = inc.apportion_ops();
        let rounds = 64u64;
        let mut state = 0x5EED ^ kind as u64;
        for round in 0..rounds {
            for _ in 0..8 {
                let slot = (mix(&mut state) % n as u64) as usize;
                inc.update_demand(slot, 1 + mix(&mut state) % 256);
            }
            inc.rebalance_dirty(round + 1);
        }
        let per_round = (inc.apportion_ops() - settled) / rounds;
        // A full scan costs ≥ n = 10_000 ops per round. 8 dirty slots at
        // O(log n) per treap op plus the ≤ 257-class plan walk should land
        // in the hundreds; assert an order of magnitude under the scan.
        assert!(
            per_round < n as u64 / 10,
            "{kind:?}: {per_round} ops/round is not sub-linear (n = {n})"
        );
    }
}

/// Work scales with the number of *changes*, not the fleet: the per-round
/// ops at 10⁴ tenants stay within a small factor of the per-round ops at
/// 10³ tenants for the same k (O(k log n) ⇒ ratio ≈ log ratio ≈ 4/3).
#[test]
fn work_tracks_dirty_count_not_fleet_size() {
    let per_round = |n: usize| {
        let mut inc = floored_fleet(n, ObjectiveKind::Proportional);
        inc.rebalance_dirty(0);
        let settled = inc.apportion_ops();
        let rounds = 32u64;
        let mut state = 0xBEEF;
        for round in 0..rounds {
            for _ in 0..8 {
                let slot = (mix(&mut state) % n as u64) as usize;
                inc.update_demand(slot, 1 + mix(&mut state) % 256);
            }
            inc.rebalance_dirty(round + 1);
        }
        (inc.apportion_ops() - settled) / rounds
    };
    let small = per_round(1_000);
    let large = per_round(10_000);
    assert!(
        large < small * 4,
        "10× the tenants must not cost ~10× the work: {small} → {large} ops/round"
    );
}

/// A 10⁵-tenant fleet completes a rebalance-heavy script. Kept to one
/// objective and few rounds so the debug-profile suite stays fast; the
/// bench harness covers the timed version.
#[test]
fn hundred_thousand_tenants_smoke() {
    let n = 100_000usize;
    let mut inc = fleet(n, ObjectiveKind::MaxMin, ControllerMode::Incremental);
    let mut state = 0xCAFE;
    for round in 0..4u64 {
        for _ in 0..16 {
            let slot = (mix(&mut state) % n as u64) as usize;
            inc.update_demand(slot, mix(&mut state) % 100_000);
        }
        inc.rebalance_dirty(round);
    }
    let quotas = inc.quotas();
    assert_eq!(quotas.len(), n);
    assert_eq!(quotas.iter().sum::<u64>(), 16 * n as u64);
    // Spot-check against the oracle once at the final state.
    let mut full = fleet(n, ObjectiveKind::MaxMin, ControllerMode::FullScan);
    let mut state = 0xCAFE;
    for round in 0..4u64 {
        for _ in 0..16 {
            let slot = (mix(&mut state) % n as u64) as usize;
            full.update_demand(slot, mix(&mut state) % 100_000);
        }
        full.rebalance_dirty(round);
    }
    assert_eq!(quotas, full.quotas());
}
