//! Cross-policy convergence after an in-flight fast-tier shrink.
//!
//! The global controller (paper §7) re-partitions the physical fast tier
//! between tenants at runtime by calling `set_fast_capacity` — including
//! *below* a tenant's current fast-tier occupancy. Every policy must then
//! drain the excess through its own demotion machinery (watermark scans for
//! the kernel-style policies, replacement for the cache-style ones) until
//! residency fits the new quota. These tests pin that contract for all six
//! compared policies plus NeoMem, on the 2-tier testbed and on a 3-tier
//! ladder.
//!
//! The post-shrink stream shifts its hot set to the other half of the
//! address space: the pages holding the old quota really are cold, so a
//! policy that fails here is sitting on dead residency, not protecting a
//! live working set. Memtis runs with a cooling period scaled to the test's
//! stream length (its default is sized for full-scale 2M-sample runs);
//! frequency-based demotion cannot trigger at all before the first cooling
//! pass, which would make the test a statement about constants, not
//! behavior.

use tiering_mem::{PageId, PageSize, TierConfig, TierRatio, TierTopology, TieredMemory};
use tiering_policies::{
    build_policy, MemtisConfig, MemtisPolicy, PolicyCtx, PolicyKind, TieringPolicy,
};
use tiering_trace::Sample;

/// Deterministic LCG (Numerical Recipes constants).
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Builds the policy under test. Everything uses the crate defaults except
/// Memtis, whose cooling period is rescaled from its full-scale default
/// (2M samples at paper scale) to the length of this test's streams.
fn make_policy(kind: PolicyKind, cfg: &TierConfig) -> Box<dyn TieringPolicy> {
    match kind {
        PolicyKind::Memtis => Box::new(MemtisPolicy::new(
            MemtisConfig {
                cool_samples: 4_000,
                ..Default::default()
            },
            cfg,
        )),
        _ => build_policy(kind, cfg),
    }
}

/// Drives `events` skewed accesses through the full policy surface
/// (ensure_mapped, access hook, sample, periodic tick), starting the clock
/// at `start_ns`. Accesses stay inside `lo..hi` and are skewed toward `lo`,
/// so two phases over disjoint ranges have strictly disjoint footprints —
/// phase-one pages receive *zero* accesses in phase two. Returns the
/// advanced clock.
#[allow(clippy::too_many_arguments)]
fn drive(
    policy: &mut dyn TieringPolicy,
    mem: &mut TieredMemory,
    ctx: &mut PolicyCtx,
    events: u64,
    seed: u64,
    lo: u64,
    hi: u64,
    start_ns: u64,
) -> u64 {
    let span = hi - lo;
    let mut state = seed | 1;
    let mut now = start_ns;
    for i in 0..events {
        // min of two draws skews the stream toward low offsets, giving
        // every policy a stable hot set to promote.
        let off = (lcg(&mut state) % span).min(lcg(&mut state) % span);
        let page = PageId(lo + off);
        now += 10_000;
        let tier = mem.ensure_mapped(page, policy.preferred_alloc_tier());
        if policy.wants_access_hook() {
            policy.on_access(page, now, mem, ctx);
        }
        policy.on_sample(
            Sample {
                page,
                addr: page.0 << 12,
                tier,
                at_ns: now,
                is_write: i % 4 == 0,
            },
            mem,
            ctx,
        );
        if (i + 1) % 16 == 0 {
            policy.on_tick(now, mem, ctx);
        }
    }
    now
}

const KINDS: [PolicyKind; 7] = [
    PolicyKind::Tpp,
    PolicyKind::AutoNuma,
    PolicyKind::Memtis,
    PolicyKind::Arc,
    PolicyKind::TwoQ,
    PolicyKind::HybridTier,
    PolicyKind::NeoMem,
];

/// Runs the shrink scenario on `mem`: warm up on one hot set, halve the
/// fast tier below occupancy, drive a second phase whose hot set lives in
/// the other half of the address space, and require residency to converge
/// under the new capacity with page accounting intact.
fn assert_shrink_converges(kind: PolicyKind, mut mem: TieredMemory, label: &str) {
    let cfg = mem.config();
    let mut policy = make_policy(kind, &cfg);
    let mut ctx = PolicyCtx::new();
    let domain = mem.address_space_pages();
    let now = drive(
        policy.as_mut(),
        &mut mem,
        &mut ctx,
        30_000,
        0x5eed,
        0,
        domain,
        0,
    );

    let new_cap = cfg.fast_capacity_pages / 2;
    assert!(
        mem.fast_used() > new_cap,
        "{label}/{kind:?}: warm-up must overfill the shrink target \
         (used {} vs new cap {new_cap}) or the test is vacuous",
        mem.fast_used()
    );
    mem.set_fast_capacity(new_cap);
    assert_eq!(mem.fast_free(), 0, "over-occupied tier reports zero free");

    drive(
        policy.as_mut(),
        &mut mem,
        &mut ctx,
        60_000,
        0xbeef,
        domain / 2,
        domain,
        now,
    );

    assert!(
        mem.fast_used() <= new_cap,
        "{label}/{kind:?}: residency did not converge under the shrunk \
         quota: used {} vs cap {new_cap}",
        mem.fast_used()
    );
    // The drained pages landed somewhere: accounting is conserved.
    let mapped = mem.iter_mapped().count() as u64;
    assert_eq!(
        mapped,
        mem.fast_used() + mem.slow_used(),
        "{label}/{kind:?}: page accounting broken after shrink"
    );
    assert!(
        mem.stats().demotions > 0,
        "{label}/{kind:?}: shrink must demote"
    );
}

#[test]
fn two_tier_shrink_below_occupancy_converges_for_every_policy() {
    for kind in KINDS {
        let cfg = TierConfig::for_footprint(512, TierRatio::OneTo8, PageSize::Base4K);
        assert_shrink_converges(kind, TieredMemory::new(cfg), "two-tier");
    }
}

#[test]
fn three_tier_shrink_below_occupancy_converges_for_every_policy() {
    for kind in KINDS {
        let topo = TierTopology::three_tier_dram_cxl_nvme(512, PageSize::Base4K);
        assert_shrink_converges(kind, TieredMemory::with_topology(topo), "three-tier");
    }
}
