//! Property-based tests over random sample streams: the invariants every
//! tiering policy must uphold regardless of input.

use proptest::prelude::*;
use tiering_mem::{PageId, PageSize, TierConfig, TierRatio, TieredMemory};
use tiering_policies::{build_policy, PolicyCtx, PolicyKind};
use tiering_trace::Sample;

fn sample_stream() -> impl Strategy<Value = Vec<(u64, bool)>> {
    // (page in a small space, is_write) pairs; heavy repetition arises
    // naturally from the small domain.
    prop::collection::vec((0u64..256, any::<bool>()), 1..600)
}

fn policies() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::HybridTier),
        Just(PolicyKind::HybridTierFreqOnly),
        Just(PolicyKind::HybridTierUnblocked),
        Just(PolicyKind::Memtis),
        Just(PolicyKind::Arc),
        Just(PolicyKind::TwoQ),
    ]
}

fn run_stream(
    kind: PolicyKind,
    stream: &[(u64, bool)],
    tick_every: usize,
) -> (TieredMemory, PolicyCtx) {
    let cfg = TierConfig::for_footprint(256, TierRatio::OneTo8, PageSize::Base4K);
    let mut mem = TieredMemory::new(cfg);
    let mut policy = build_policy(kind, &cfg);
    let mut ctx = PolicyCtx::new();
    for (i, &(page, is_write)) in stream.iter().enumerate() {
        let tier = mem.ensure_mapped(PageId(page), policy.preferred_alloc_tier());
        let now = i as u64 * 10_000;
        if policy.wants_access_hook() {
            policy.on_access(PageId(page), now, &mut mem, &mut ctx);
        }
        policy.on_sample(
            Sample {
                page: PageId(page),
                addr: page << 12,
                tier,
                at_ns: now,
                is_write,
            },
            &mut mem,
            &mut ctx,
        );
        if (i + 1) % tick_every == 0 {
            policy.on_tick(now, &mut mem, &mut ctx);
        }
    }
    (mem, ctx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tier capacities are never exceeded, and page accounting is conserved,
    /// no matter what the policy does.
    #[test]
    fn capacity_invariants(kind in policies(), stream in sample_stream(), tick in 1usize..64) {
        let (mem, _) = run_stream(kind, &stream, tick);
        prop_assert!(mem.fast_used() <= mem.config().fast_capacity_pages);
        prop_assert!(mem.slow_used() <= mem.config().slow_capacity_pages);
        let mapped = mem.iter_mapped().count() as u64;
        prop_assert_eq!(mapped, mem.fast_used() + mem.slow_used());
        // Every page in the stream ended up mapped somewhere.
        for &(page, _) in &stream {
            prop_assert!(mem.tier_of(PageId(page)).is_some());
        }
    }

    /// Policies are deterministic: identical streams produce identical
    /// placements and migration counts.
    #[test]
    fn policy_determinism(kind in policies(), stream in sample_stream()) {
        let (a, _) = run_stream(kind, &stream, 16);
        let (b, _) = run_stream(kind, &stream, 16);
        prop_assert_eq!(a.stats(), b.stats());
        for &(page, _) in &stream {
            prop_assert_eq!(a.tier_of(PageId(page)), b.tier_of(PageId(page)));
        }
    }

    /// Migration counters are consistent with final placement: pages can
    /// only be fast if allocated fast or promoted, and the net flow adds up.
    #[test]
    fn migration_flow_conservation(kind in policies(), stream in sample_stream()) {
        let (mem, _) = run_stream(kind, &stream, 16);
        let s = mem.stats();
        let net_fast =
            s.allocated_fast as i64 + s.promotions as i64 - s.demotions as i64;
        prop_assert_eq!(net_fast, mem.fast_used() as i64, "fast-tier flow mismatch: {:?}", s);
        let net_slow =
            s.allocated_slow as i64 - s.promotions as i64 + s.demotions as i64;
        prop_assert_eq!(net_slow, mem.slow_used() as i64, "slow-tier flow mismatch: {:?}", s);
    }

    /// Metadata cache-line reports are well-formed: 64-byte aligned-ish
    /// addresses in the policies' reserved metadata regions, never in the
    /// application's address range.
    #[test]
    fn metadata_lines_outside_app_space(kind in policies(), stream in sample_stream()) {
        let cfg = TierConfig::for_footprint(256, TierRatio::OneTo8, PageSize::Base4K);
        let mut mem = TieredMemory::new(cfg);
        let mut policy = build_policy(kind, &cfg);
        let mut ctx = PolicyCtx::new();
        let app_top = 256u64 << 12;
        for (i, &(page, is_write)) in stream.iter().enumerate() {
            let tier = mem.ensure_mapped(PageId(page), policy.preferred_alloc_tier());
            policy.on_sample(
                Sample { page: PageId(page), addr: page << 12, tier, at_ns: i as u64, is_write },
                &mut mem,
                &mut ctx,
            );
            for &line in &ctx.metadata_lines {
                prop_assert!(line >= app_top, "metadata line {line:#x} aliases app memory");
            }
            ctx.drain();
        }
    }

    /// `metadata_bytes` is stable in the footprint (no unbounded growth
    /// from processing samples).
    #[test]
    fn metadata_bytes_bounded(kind in policies(), stream in sample_stream()) {
        let cfg = TierConfig::for_footprint(256, TierRatio::OneTo8, PageSize::Base4K);
        let mut mem = TieredMemory::new(cfg);
        let mut policy = build_policy(kind, &cfg);
        let before = policy.metadata_bytes();
        let mut ctx = PolicyCtx::new();
        for (i, &(page, is_write)) in stream.iter().enumerate() {
            let tier = mem.ensure_mapped(PageId(page), policy.preferred_alloc_tier());
            policy.on_sample(
                Sample { page: PageId(page), addr: page << 12, tier, at_ns: i as u64, is_write },
                &mut mem,
                &mut ctx,
            );
            ctx.drain();
        }
        let after = policy.metadata_bytes();
        // Allow bookkeeping growth (second-chance marks, queues) bounded by
        // a few dozen bytes per address-space page.
        prop_assert!(
            after <= before + 256 * 64,
            "metadata grew unboundedly: {before} -> {after}"
        );
    }
}
