//! Property tests for [`GlobalController::rebalance`]: the §7 quota
//! arithmetic must hold for *any* demand vector, budget, floor — **and
//! objective**. Every [`QuotaObjective`] (proportional share, max-min
//! fairness, SLO-utility) is held to the exact same contract the
//! multi-tenant engine and its determinism tests build on: exact
//! assignment, floors, min-one, determinism, demand monotonicity, and
//! demand-ordered quotas. A cross-objective invariant pins that the
//! *total* assignment is objective-independent (same demands + same
//! budget ⇒ quota sums identical), so swapping objectives can never leak
//! or overcommit fast memory.

use proptest::prelude::*;
use tiering_policies::{ControllerMode, GlobalController, ObjectiveKind};

/// Budget, floor percent, and a 1–8 tenant demand vector (demands span
/// idle to far-beyond-footprint).
fn inputs() -> impl Strategy<Value = (u64, u64, Vec<u64>)> {
    (
        64u64..2_000_000,
        0u64..=50,
        prop::collection::vec(0u64..5_000_000, 1..8),
    )
}

fn controller(
    budget: u64,
    floor_pct: u64,
    tenants: usize,
    kind: ObjectiveKind,
) -> GlobalController {
    let mut g =
        GlobalController::new(budget, floor_pct as f64 / 100.0).with_objective(kind.build());
    for i in 0..tenants {
        g.add_tenant(&format!("t{i}"), 1 << 20);
    }
    g
}

proptest! {
    // 1024 cases × 3 objectives per property: the max-min water-filling
    // and SLO phase transitions have regime-crossing corner cases (dust
    // reassignment, satisfied→unsatisfied flips) that sparse sampling
    // could miss; the whole suite still runs in well under a second.
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// Quotas never overcommit the physical fast tier — and in fact assign
    /// it exactly (every objective closes its own rounding gap) — under
    /// every objective.
    #[test]
    fn quotas_sum_to_the_budget(input in inputs()) {
        let (budget, floor_pct, demands) = input;
        for kind in ObjectiveKind::ALL {
            let mut g = controller(budget, floor_pct, demands.len(), kind);
            let event = g.rebalance(0, &demands);
            let assigned: u64 = event.quotas.iter().sum();
            prop_assert!(
                assigned <= budget,
                "{kind:?} overcommitted: {} > {}", assigned, budget
            );
            prop_assert_eq!(assigned, budget, "{:?} did not fully assign", kind);
        }
    }

    /// Every tenant keeps at least its floor share, demand or not — an idle
    /// tenant can always warm back up — and at least one page, so every
    /// recorded quota is an enforceable fast capacity. Holds for every
    /// objective (the controller enforces it around the apportioning).
    #[test]
    fn every_tenant_keeps_the_floor(input in inputs()) {
        let (budget, floor_pct, demands) = input;
        for kind in ObjectiveKind::ALL {
            let mut g = controller(budget, floor_pct, demands.len(), kind);
            let floor = g.floor_pages();
            let event = g.rebalance(0, &demands);
            for (i, &q) in event.quotas.iter().enumerate() {
                prop_assert!(
                    q >= floor.max(1),
                    "{kind:?}: tenant {} below floor: {} < {} (demands {:?})",
                    i, q, floor.max(1), event.demands
                );
            }
            prop_assert_eq!(event.floor_pages, floor, "{:?} event floor", kind);
        }
    }

    /// Equal inputs produce identical events: every objective is exact
    /// integer math with no hidden state, so sweeps can re-derive quota
    /// trajectories bit-for-bit.
    #[test]
    fn rebalance_is_deterministic(input in inputs()) {
        let (budget, floor_pct, demands) = input;
        for kind in ObjectiveKind::ALL {
            let run = || {
                let mut g = controller(budget, floor_pct, demands.len(), kind);
                g.rebalance(7, &demands)
            };
            prop_assert_eq!(run(), run());
        }
    }

    /// Raising one tenant's demand while all others hold still never lowers
    /// that tenant's quota — a heating tenant cannot be punished for
    /// heating — under every objective.
    #[test]
    fn monotone_demand_never_decreases_the_hot_quota(
        input in inputs(),
        hot_idx in 0usize..8,
        bump in 1u64..4_000_000,
    ) {
        let (budget, floor_pct, demands) = input;
        let hot = hot_idx % demands.len();
        let mut hotter = demands.clone();
        hotter[hot] = hotter[hot].saturating_add(bump);
        for kind in ObjectiveKind::ALL {
            let before = controller(budget, floor_pct, demands.len(), kind)
                .rebalance(0, &demands);
            let after = controller(budget, floor_pct, demands.len(), kind)
                .rebalance(0, &hotter);
            prop_assert!(
                after.quotas[hot] >= before.quotas[hot],
                "{kind:?}: hot tenant {} lost quota on rising demand: {} -> {} \
                 (demands {:?} -> {:?})",
                hot, before.quotas[hot], after.quotas[hot], before.demands, after.demands
            );
        }
    }

    /// Quota ordering follows demand ordering: strictly hungrier tenants
    /// never end up with strictly less fast memory, under every objective.
    #[test]
    fn quota_ordering_follows_demand_ordering(input in inputs()) {
        let (budget, floor_pct, demands) = input;
        for kind in ObjectiveKind::ALL {
            let mut g = controller(budget, floor_pct, demands.len(), kind);
            let event = g.rebalance(0, &demands);
            for i in 0..demands.len() {
                for j in 0..demands.len() {
                    if event.demands[i] > event.demands[j] {
                        prop_assert!(
                            event.quotas[i] >= event.quotas[j],
                            "{kind:?}: demand {} > {} but quota {} < {}",
                            event.demands[i], event.demands[j],
                            event.quotas[i], event.quotas[j]
                        );
                    }
                }
            }
        }
    }

    /// The wide-range strategy above almost never samples demands within
    /// ±1 of each other, but that is exactly where tie-break bugs live
    /// (e.g. SLO requirements `ceil(d/2)` tie for d=4 vs d=3 while the
    /// demands differ). Re-pin ordering and monotonicity on a dense small
    /// domain where ties and near-ties dominate the sample.
    #[test]
    fn ordering_and_monotonicity_hold_on_tie_dense_small_demands(
        budget in 2u64..200,
        floor_pct in 0u64..=50,
        demands in prop::collection::vec(0u64..10, 2..6),
        hot_idx in 0usize..6,
    ) {
        let hot = hot_idx % demands.len();
        let mut hotter = demands.clone();
        hotter[hot] += 1;
        for kind in ObjectiveKind::ALL {
            let budget = budget.max(demands.len() as u64 + 1);
            let event = controller(budget, floor_pct, demands.len(), kind)
                .rebalance(0, &demands);
            for i in 0..demands.len() {
                for j in 0..demands.len() {
                    if event.demands[i] > event.demands[j] {
                        prop_assert!(
                            event.quotas[i] >= event.quotas[j],
                            "{kind:?}: small-domain ordering inverted: demands {:?} quotas {:?}",
                            event.demands, event.quotas
                        );
                    }
                }
            }
            let after = controller(budget, floor_pct, demands.len(), kind)
                .rebalance(0, &hotter);
            prop_assert!(
                after.quotas[hot] >= event.quotas[hot],
                "{kind:?}: small-domain monotonicity broken: {:?} -> {:?} (hot {})",
                event.quotas, after.quotas, hot
            );
        }
    }

    /// Cross-objective invariant: objectives disagree about *who* gets the
    /// pages, never about *how many* pages exist — same demands + same
    /// budget ⇒ quota sums identical (and equal to the budget) across all
    /// objectives, with the same floor and the same normalized demands
    /// recorded.
    #[test]
    fn objectives_assign_identical_totals(input in inputs()) {
        let (budget, floor_pct, demands) = input;
        let events: Vec<_> = ObjectiveKind::ALL
            .into_iter()
            .map(|kind| {
                let mut g = controller(budget, floor_pct, demands.len(), kind);
                g.rebalance(0, &demands)
            })
            .collect();
        let reference: u64 = events[0].quotas.iter().sum();
        prop_assert_eq!(reference, budget);
        for e in &events[1..] {
            prop_assert_eq!(
                e.quotas.iter().sum::<u64>(),
                reference,
                "objective {} assigned a different total", &e.objective
            );
            prop_assert_eq!(&e.demands, &events[0].demands, "normalized demands differ");
            prop_assert_eq!(e.floor_pages, events[0].floor_pages, "floors differ");
        }
    }

    /// Churn-aware conservation: admissions and retirements preserve the
    /// live-quota sum exactly, for every objective, at any point in a
    /// rebalance/churn interleaving.
    #[test]
    fn churn_preserves_the_budget_under_every_objective(
        input in inputs(),
        retire_idx in 0usize..8,
    ) {
        let (budget, floor_pct, demands) = input;
        for kind in ObjectiveKind::ALL {
            let mut g = controller(budget.max(demands.len() as u64 + 2), floor_pct,
                                   demands.len(), kind);
            let budget = g.fast_budget_pages();
            g.rebalance(0, &demands);
            let newcomer = g.admit_tenant("late", 1 << 20);
            prop_assert_eq!(
                g.quotas().iter().sum::<u64>(), budget,
                "{:?}: admit leaked", kind
            );
            prop_assert!(g.quota(newcomer) >= 1, "min-one on admission");
            let victim = retire_idx % demands.len();
            g.retire_tenant(victim);
            prop_assert_eq!(
                g.quotas().iter().sum::<u64>(), budget,
                "{:?}: retire leaked", kind
            );
            prop_assert_eq!(g.quota(victim), 0, "retired slot keeps pages");
            // A post-churn rebalance still assigns exactly the budget over
            // the new composition.
            let mut post = demands.clone();
            post.push(123);
            post[victim] = 0;
            let e = g.rebalance(1, &post);
            prop_assert_eq!(e.assigned(), budget, "{:?}: post-churn leak", kind);
            prop_assert_eq!(e.quotas[victim], 0);
        }
    }

    /// [`ControllerMode::Incremental`] is bit-identical to the full-scan
    /// path on arbitrary inputs: every contract above therefore transfers
    /// to the incremental controller by equality (the fleet-scale churn
    /// scripts live in `global_incremental.rs`).
    #[test]
    fn incremental_mode_is_bit_identical(input in inputs(), second in inputs()) {
        let (budget, floor_pct, demands) = input;
        let (_, _, demands2) = second;
        for kind in ObjectiveKind::ALL {
            let mut full = controller(budget, floor_pct, demands.len(), kind);
            let mut inc = GlobalController::new(budget, floor_pct as f64 / 100.0)
                .with_objective_kind(kind)
                .with_mode(ControllerMode::Incremental);
            for i in 0..demands.len() {
                inc.add_tenant(&format!("t{i}"), 1 << 20);
            }
            full.rebalance(0, &demands);
            inc.rebalance(0, &demands);
            prop_assert_eq!(full.quotas(), inc.quotas(), "{:?} first rebalance", kind);
            // A second, partially-overlapping demand vector exercises the
            // dirty-slot delta path rather than a from-scratch plan.
            let mut next = demands.clone();
            for (slot, &d) in demands2.iter().enumerate() {
                if slot < next.len() && slot % 2 == 0 {
                    next[slot] = d;
                }
            }
            full.rebalance(1, &next);
            inc.rebalance(1, &next);
            prop_assert_eq!(full.quotas(), inc.quotas(), "{:?} delta rebalance", kind);
        }
    }
}
