//! Property tests for [`GlobalController::rebalance`]: the §7 quota
//! arithmetic must hold for *any* demand vector, budget, and floor — these
//! invariants are what the multi-tenant engine and its determinism tests
//! build on.

use proptest::prelude::*;
use tiering_policies::GlobalController;

/// Budget, floor percent, and a 1–8 tenant demand vector (demands span
/// idle to far-beyond-footprint).
fn inputs() -> impl Strategy<Value = (u64, u64, Vec<u64>)> {
    (
        64u64..2_000_000,
        0u64..=50,
        prop::collection::vec(0u64..5_000_000, 1..8),
    )
}

fn controller(budget: u64, floor_pct: u64, tenants: usize) -> GlobalController {
    let mut g = GlobalController::new(budget, floor_pct as f64 / 100.0);
    for i in 0..tenants {
        g.add_tenant(&format!("t{i}"), 1 << 20);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Quotas never overcommit the physical fast tier — and in fact assign
    /// it exactly (the remainder assignment closes the rounding gap).
    #[test]
    fn quotas_sum_to_the_budget(input in inputs()) {
        let (budget, floor_pct, demands) = input;
        let mut g = controller(budget, floor_pct, demands.len());
        let event = g.rebalance(0, &demands);
        let assigned: u64 = event.quotas.iter().sum();
        prop_assert!(assigned <= budget, "overcommitted: {} > {}", assigned, budget);
        prop_assert_eq!(assigned, budget, "budget not fully assigned");
    }

    /// Every tenant keeps at least its floor share, demand or not — an idle
    /// tenant can always warm back up — and at least one page, so every
    /// recorded quota is an enforceable fast capacity.
    #[test]
    fn every_tenant_keeps_the_floor(input in inputs()) {
        let (budget, floor_pct, demands) = input;
        let mut g = controller(budget, floor_pct, demands.len());
        let floor = g.floor_pages();
        let event = g.rebalance(0, &demands);
        for (i, &q) in event.quotas.iter().enumerate() {
            prop_assert!(
                q >= floor.max(1),
                "tenant {} below floor: {} < {} (demands {:?})",
                i, q, floor.max(1), event.demands
            );
        }
    }

    /// Equal inputs produce identical events: the arithmetic is exact
    /// integer math with no hidden state, so sweeps can re-derive quota
    /// trajectories bit-for-bit.
    #[test]
    fn rebalance_is_deterministic(input in inputs()) {
        let (budget, floor_pct, demands) = input;
        let run = || {
            let mut g = controller(budget, floor_pct, demands.len());
            g.rebalance(7, &demands)
        };
        prop_assert_eq!(run(), run());
    }

    /// Raising one tenant's demand while all others hold still never lowers
    /// that tenant's quota — a heating tenant cannot be punished for
    /// heating.
    #[test]
    fn monotone_demand_never_decreases_the_hot_quota(
        input in inputs(),
        hot_idx in 0usize..8,
        bump in 1u64..4_000_000,
    ) {
        let (budget, floor_pct, demands) = input;
        let hot = hot_idx % demands.len();
        let before = controller(budget, floor_pct, demands.len())
            .rebalance(0, &demands);
        let mut hotter = demands.clone();
        hotter[hot] = hotter[hot].saturating_add(bump);
        let after = controller(budget, floor_pct, demands.len())
            .rebalance(0, &hotter);
        prop_assert!(
            after.quotas[hot] >= before.quotas[hot],
            "hot tenant {} lost quota on rising demand: {} -> {} (demands {:?} -> {:?})",
            hot, before.quotas[hot], after.quotas[hot], before.demands, after.demands
        );
    }

    /// Quota ordering follows demand ordering: strictly hungrier tenants
    /// never end up with strictly less fast memory.
    #[test]
    fn quota_ordering_follows_demand_ordering(input in inputs()) {
        let (budget, floor_pct, demands) = input;
        let mut g = controller(budget, floor_pct, demands.len());
        let event = g.rebalance(0, &demands);
        for i in 0..demands.len() {
            for j in 0..demands.len() {
                if event.demands[i] > event.demands[j] {
                    prop_assert!(
                        event.quotas[i] >= event.quotas[j],
                        "demand {} > {} but quota {} < {}",
                        event.demands[i], event.demands[j],
                        event.quotas[i], event.quotas[j]
                    );
                }
            }
        }
    }
}
