//! Randomized model test for [`GlobalController`] churn bookkeeping, in
//! the style of the `FlatPageMap` vs `HashMap` model test: a brute-force
//! reference controller tracks what *must* be true of the slot table —
//! liveness, names, and above all that **all live tenants' quotas re-sum
//! exactly to the budget after every event** (admit, retire, rebalance)
//! — while long random event sequences drive the real controller under
//! every objective. The reference is deliberately dumb (it re-derives
//! everything from scratch each step), so a bookkeeping bug in the real
//! controller's incremental updates cannot hide in a matching bug here.

use proptest::prelude::*;
use tiering_policies::{ControllerMode, GlobalController, ObjectiveKind};

/// The brute-force reference: just the slot table, re-checked wholesale.
#[derive(Debug)]
struct ReferenceController {
    budget: u64,
    floor_frac: f64,
    /// One entry per registration slot: (name, live).
    slots: Vec<(String, bool)>,
}

impl ReferenceController {
    fn new(budget: u64, floor_frac: f64) -> Self {
        Self {
            budget,
            floor_frac,
            slots: Vec::new(),
        }
    }

    fn num_live(&self) -> usize {
        self.slots.iter().filter(|(_, live)| *live).count()
    }

    /// Re-derives every invariant from scratch against the real
    /// controller's observable state. `after_rebalance` additionally
    /// enforces the floor (between churn events a quota may legitimately
    /// sit below the floor of the *new* fleet size until the next
    /// rebalance, but min-one always holds).
    fn check(&self, real: &GlobalController, after_rebalance: bool, what: &str) {
        assert_eq!(real.num_tenants(), self.slots.len(), "{what}: slot count");
        assert_eq!(real.num_live(), self.num_live(), "{what}: live count");
        let quotas = real.quotas();
        let mut live_sum = 0u64;
        for (i, (name, live)) in self.slots.iter().enumerate() {
            assert_eq!(real.tenant_name(i), name, "{what}: slot {i} name");
            assert_eq!(real.is_live(i), *live, "{what}: slot {i} liveness");
            if *live {
                assert!(quotas[i] >= 1, "{what}: live slot {i} below min-one");
                live_sum += quotas[i];
            } else {
                assert_eq!(quotas[i], 0, "{what}: dead slot {i} holds pages");
            }
        }
        if self.num_live() > 0 {
            assert_eq!(
                live_sum, self.budget,
                "{what}: live quotas do not re-sum to the budget"
            );
        } else {
            assert_eq!(live_sum, 0, "{what}: parked budget leaked");
        }
        if after_rebalance && self.num_live() > 0 {
            let floor = (self.budget as f64 * self.floor_frac / self.num_live() as f64) as u64;
            assert_eq!(real.floor_pages(), floor, "{what}: floor");
            for (i, (_, live)) in self.slots.iter().enumerate() {
                if *live {
                    assert!(
                        quotas[i] >= floor.max(1),
                        "{what}: slot {i} below floor after rebalance"
                    );
                }
            }
        }
    }
}

/// SplitMix64 — derives per-step pseudo-random demands from the step
/// seed so the op list stays compact.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One scripted event: the discriminant picks admit/retire/rebalance, the
/// payload seeds the details.
fn ops() -> impl Strategy<Value = Vec<(u8, u64)>> {
    prop::collection::vec((0u8..=2, 0u64..u64::MAX), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Long random admit/retire/rebalance interleavings, replayed against
    /// the reference for every objective: the budget is conserved after
    /// **every** event, dead slots never hold pages, live slots never drop
    /// below min-one, and the floor holds at every rebalance.
    #[test]
    fn controller_matches_reference_under_churn(
        budget in 64u64..100_000,
        floor_pct in 0u64..=50,
        script in ops(),
    ) {
        for kind in ObjectiveKind::ALL {
          // Both controller modes obey the same slot-table invariants; the
          // incremental mode additionally exercises the lazy-plan fold on
          // every churn event (materialize-then-mutate).
          for mode in [ControllerMode::FullScan, ControllerMode::Incremental] {
            let floor_frac = floor_pct as f64 / 100.0;
            let mut real = GlobalController::new(budget, floor_frac)
                .with_objective_kind(kind)
                .with_mode(mode);
            let mut model = ReferenceController::new(budget, floor_frac);

            // Seed fleet: two initial tenants (the common case).
            for name in ["a", "b"] {
                real.add_tenant(name, 1 << 16);
                model.slots.push((name.to_string(), true));
            }
            model.check(&real, false, "after seed");

            let mut at = 0u64;
            for (step, &(op, payload)) in script.iter().enumerate() {
                let what = format!("{kind:?} step {step}");
                match op {
                    // Admit, when the min-one guarantee allows another
                    // live tenant.
                    0 => {
                        if (model.num_live() as u64) < budget {
                            let name = format!("t{step}");
                            let idx = real.admit_tenant(&name, 1 << 16);
                            prop_assert_eq!(idx, model.slots.len(), "slot indices are stable");
                            model.slots.push((name, true));
                            model.check(&real, false, &format!("{what}: admit"));
                        }
                    }
                    // Retire a pseudo-random live slot, when one exists.
                    1 => {
                        let live: Vec<usize> = model
                            .slots
                            .iter()
                            .enumerate()
                            .filter(|(_, (_, l))| *l)
                            .map(|(i, _)| i)
                            .collect();
                        if !live.is_empty() {
                            let victim = live[(mix(payload) % live.len() as u64) as usize];
                            real.retire_tenant(victim);
                            model.slots[victim].1 = false;
                            model.check(&real, false, &format!("{what}: retire {victim}"));
                        }
                    }
                    // Rebalance with pseudo-random demands, when anyone is
                    // live to decide over.
                    _ => {
                        if model.num_live() > 0 {
                            let demands: Vec<u64> = (0..model.slots.len() as u64)
                                .map(|i| mix(payload ^ i) % 4_000_000)
                                .collect();
                            at += 1;
                            let event = real.rebalance(at, &demands);
                            if mode == ControllerMode::FullScan {
                                prop_assert_eq!(
                                    event.live,
                                    model.slots.iter().map(|(_, l)| *l).collect::<Vec<_>>(),
                                    "event live mask"
                                );
                            } else {
                                prop_assert!(event.live.is_empty(), "compact event");
                            }
                            model.check(&real, true, &format!("{what}: rebalance"));
                        }
                    }
                }
            }

            // Drain: retire everyone, conserving at each step, then verify
            // the budget parks and a re-admission reclaims all of it.
            let live: Vec<usize> = model
                .slots
                .iter()
                .enumerate()
                .filter(|(_, (_, l))| *l)
                .map(|(i, _)| i)
                .collect();
            for victim in live {
                real.retire_tenant(victim);
                model.slots[victim].1 = false;
                model.check(&real, false, &format!("{kind:?} drain {victim}"));
            }
            let last = real.admit_tenant("last", 1 << 16);
            model.slots.push(("last".to_string(), true));
            model.check(&real, false, &format!("{kind:?} re-admit"));
            prop_assert_eq!(real.quota(last), budget, "sole tenant takes the parked budget");
          }
        }
    }
}
