//! Virtual address-space layout for workload data structures.

/// A contiguous region of the workload's virtual address space assigned to
/// one logical data structure (an array, a slab, a tree level…).
///
/// Workloads lay out their structures with [`LayoutBuilder`] bump
/// allocation so that every emitted [`Access`](tiering_trace::Access) carries
/// a realistic address: structures occupy disjoint page ranges, sequential
/// elements share pages, and the footprint is the exact sum of the regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    base: u64,
    bytes: u64,
}

impl Region {
    /// Creates a region (normally done through [`LayoutBuilder`]).
    pub fn new(base: u64, bytes: u64) -> Self {
        Self { base, bytes }
    }

    /// First byte address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Address of byte `offset` within the region.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `offset` is out of range.
    #[inline]
    pub fn addr(&self, offset: u64) -> u64 {
        debug_assert!(
            offset < self.bytes,
            "offset {offset} beyond region {}",
            self.bytes
        );
        self.base + offset
    }

    /// Address of element `idx` in an array of `elem_bytes`-sized elements.
    #[inline]
    pub fn elem(&self, idx: u64, elem_bytes: u64) -> u64 {
        self.addr(idx * elem_bytes)
    }

    /// One-past-the-end address.
    pub fn end(&self) -> u64 {
        self.base + self.bytes
    }
}

/// Bump allocator for laying out [`Region`]s page-aligned in a workload's
/// address space.
#[derive(Debug, Clone, Default)]
pub struct LayoutBuilder {
    next: u64,
}

impl LayoutBuilder {
    /// Starts a fresh layout at address 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves `bytes` (rounded up to a 4 KiB boundary so distinct
    /// structures never share a page).
    pub fn alloc(&mut self, bytes: u64) -> Region {
        let base = self.next;
        let size = bytes.max(1).div_ceil(4096) * 4096;
        self.next += size;
        Region::new(base, size)
    }

    /// Total bytes laid out so far (the workload footprint).
    pub fn total_bytes(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_page_aligned() {
        let mut l = LayoutBuilder::new();
        let a = l.alloc(100);
        let b = l.alloc(5000);
        let c = l.alloc(4096);
        assert_eq!(a.base() % 4096, 0);
        assert_eq!(b.base() % 4096, 0);
        assert!(a.end() <= b.base());
        assert!(b.end() <= c.base());
        assert_eq!(l.total_bytes(), 4096 + 8192 + 4096);
    }

    #[test]
    fn element_addressing() {
        let mut l = LayoutBuilder::new();
        let _pad = l.alloc(4096);
        let arr = l.alloc(1024 * 8);
        assert_eq!(arr.elem(0, 8), arr.base());
        assert_eq!(arr.elem(10, 8), arr.base() + 80);
    }

    #[test]
    #[should_panic(expected = "beyond region")]
    fn out_of_range_offset_panics_in_debug() {
        let r = Region::new(0, 4096);
        let _ = r.addr(4096);
    }
}
