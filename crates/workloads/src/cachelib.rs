//! CacheLib-style in-memory cache workloads (CDN and social-graph).
//!
//! CacheLib is Meta's caching engine (paper Table 2); its benchmark
//! distributions are characterized by a Zipf object popularity, a
//! per-workload object-size mixture, and rapidly shifting hotness (paper
//! §2.2). Each GET touches the cache index plus every page of the object;
//! SETs additionally write the object.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use tiering_trace::{fill_batch_via_next_op, Access, AccessBatch, Op, Workload};

use crate::layout::{LayoutBuilder, Region};
use crate::zipf::ShiftableZipf;

/// A scheduled hotness-distribution change (paper Figure 4: "we adjust the
/// access distribution at the 1800-second mark such that 2/3 of previously
/// hot data are no longer hot").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftEvent {
    /// Simulated time at which the shift occurs.
    pub at_ns: u64,
    /// Fraction of hot ranks reassigned to cold items.
    pub fraction: f64,
}

/// Configuration of a CacheLib-style workload.
#[derive(Debug, Clone)]
pub struct CacheLibConfig {
    /// Number of cached objects.
    pub objects: usize,
    /// Zipf exponent of object popularity.
    pub theta: f64,
    /// Size of a "small" object in bytes.
    pub small_size: u64,
    /// Size of a "large" object in bytes.
    pub large_size: u64,
    /// Fraction of objects that are large.
    pub large_frac: f64,
    /// Fraction of operations that are SETs (writes).
    pub set_fraction: f64,
    /// Scheduled distribution shifts.
    pub shifts: Vec<ShiftEvent>,
    /// Continuous churn: every `churn_interval_ops` operations, reassign
    /// `churn_fraction` of hot ranks (models production TTL expiry; §2.2).
    ///
    /// Keyed on the *operation count*, not simulated time, so every policy
    /// compared on this workload sees the identical access sequence —
    /// time-keyed churn would let slow policies experience a different
    /// (possibly cheaper) object mix, corrupting throughput comparisons.
    /// One-off [`ShiftEvent`]s remain time-keyed for adaptation studies.
    pub churn_interval_ops: Option<u64>,
    /// Fraction of hot ranks reassigned per churn event.
    pub churn_fraction: f64,
    /// Operations to run (`u64::MAX` = until the engine stops).
    pub ops: u64,
    /// RNG seed.
    pub seed: u64,
    /// Report name.
    pub name: &'static str,
}

impl CacheLibConfig {
    /// The content-delivery-network workload: fewer, larger objects (Table 2
    /// footprint 267 GB, scaled here ~512×).
    pub fn cdn() -> Self {
        Self {
            objects: 14_000,
            theta: 0.99,
            small_size: 4 << 10,
            large_size: 128 << 10,
            large_frac: 0.10,
            set_fraction: 0.05,
            shifts: Vec::new(),
            churn_interval_ops: Some(50_000), // ~100 ms at 0.5 Mop/s (paper: minutes)
            churn_fraction: 0.02,
            ops: u64::MAX,
            seed: 0xCD17,
            name: "cachelib-cdn",
        }
    }

    /// The social-graph workload: many small objects with the largest hot
    /// set of the suite (paper Figure 16: "Social-graph has the largest
    /// fraction of pages with access count >= 15").
    pub fn social_graph() -> Self {
        Self {
            objects: 220_000,
            theta: 0.90,
            small_size: 256,
            large_size: 4 << 10,
            large_frac: 0.05,
            set_fraction: 0.10,
            shifts: Vec::new(),
            churn_interval_ops: Some(50_000),
            churn_fraction: 0.015,
            ops: u64::MAX,
            seed: 0x50C1,
            name: "cachelib-social",
        }
    }

    /// Adds the Figure 4 adaptation shift: at `at_ns`, 2/3 of hot data turn
    /// cold.
    #[must_use]
    pub fn with_shift(mut self, at_ns: u64, fraction: f64) -> Self {
        self.shifts.push(ShiftEvent { at_ns, fraction });
        self.shifts.sort_by_key(|s| s.at_ns);
        self
    }

    /// Disables continuous churn (for steady-state experiments such as the
    /// Table 5 accuracy study).
    #[must_use]
    pub fn without_churn(mut self) -> Self {
        self.churn_interval_ops = None;
        self
    }

    /// Makes every object `bytes` large.
    ///
    /// Used by the adaptation experiments (Figure 4, Table 3): at paper
    /// scale the hot set spans ~millions of objects so its size mix
    /// self-averages, but at this scale a hotness shift would otherwise
    /// also shift the hot size mix — a confound unrelated to tiering.
    #[must_use]
    pub fn with_uniform_size(mut self, bytes: u64) -> Self {
        self.small_size = bytes;
        self.large_size = bytes;
        self.large_frac = 0.0;
        self
    }

    /// Caps the number of operations.
    #[must_use]
    pub fn with_ops(mut self, ops: u64) -> Self {
        self.ops = ops;
        self
    }

    /// Overrides the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One object's heap placement: byte offset and size packed in a single
/// 16-byte-stride record, so the per-op lookup touches one cache line
/// instead of two parallel arrays.
#[derive(Debug, Clone, Copy)]
struct ObjectSlot {
    offset: u64,
    size: u32,
}

/// The size-mixture draw and slab layout for one config. Immutable after
/// construction and fully determined by `(objects, small_size, large_size,
/// large_frac, seed)`, so sweep scenarios share one build process-wide —
/// same pattern as the Zipf CDF memo in [`crate::zipf`]. The cached slots
/// are the very values a fresh build would produce, so sharing is invisible
/// to results.
#[derive(Debug)]
struct ObjectTable {
    slots: Vec<ObjectSlot>,
    /// Total heap bytes (`Σ size`), i.e. the slab-heap allocation.
    heap_bytes: u64,
}

impl ObjectTable {
    fn build(config: &CacheLibConfig) -> Self {
        let mut size_rng = SmallRng::seed_from_u64(config.seed ^ 0x5153);
        let mut slots = Vec::with_capacity(config.objects);
        let mut cursor = 0u64;
        for _ in 0..config.objects {
            let size = if size_rng.gen::<f64>() < config.large_frac {
                config.large_size
            } else {
                config.small_size
            } as u32;
            slots.push(ObjectSlot {
                offset: cursor,
                size,
            });
            cursor += size as u64;
        }
        Self {
            slots,
            heap_bytes: cursor,
        }
    }

    fn shared(config: &CacheLibConfig) -> Arc<Self> {
        type Key = (usize, u64, u64, u64, u64);
        static CACHE: OnceLock<Mutex<HashMap<Key, Arc<ObjectTable>>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let key = (
            config.objects,
            config.small_size,
            config.large_size,
            config.large_frac.to_bits(),
            config.seed,
        );
        if let Some(t) = cache.lock().expect("object table cache poisoned").get(&key) {
            return Arc::clone(t);
        }
        // Build outside the lock (racing builds are identical; last insert
        // wins).
        let table = Arc::new(Self::build(config));
        cache
            .lock()
            .expect("object table cache poisoned")
            .entry(key)
            .or_insert(table)
            .clone()
    }
}

/// The CacheLib workload generator.
#[derive(Debug)]
pub struct CacheLibWorkload {
    config: CacheLibConfig,
    zipf: ShiftableZipf,
    rng: SmallRng,
    /// Dedicated RNG for rank shifts, so shift timing never perturbs the
    /// op-sampling stream.
    shift_rng: SmallRng,
    index: Region,
    heap: Region,
    /// Heap placement of each object (shared across same-config instances).
    table: Arc<ObjectTable>,
    footprint: u64,
    ops_done: u64,
    next_shift: usize,
    next_churn_op: u64,
}

impl CacheLibWorkload {
    /// Builds the workload: draws object sizes, lays out the slab heap and
    /// the index, and initializes popularity.
    pub fn new(config: CacheLibConfig) -> Self {
        let table = ObjectTable::shared(&config);
        let mut layout = LayoutBuilder::new();
        // Index: 16 B/object hash-table entries, like CacheLib's item table.
        let index = layout.alloc(config.objects as u64 * 16);
        let heap = layout.alloc(table.heap_bytes);
        let footprint = layout.total_bytes();
        Self {
            zipf: ShiftableZipf::shuffled_from_seed(
                config.objects,
                config.theta,
                config.seed ^ 0x9E37_79B9,
            ),
            rng: SmallRng::seed_from_u64(config.seed),
            shift_rng: SmallRng::seed_from_u64(config.seed ^ 0xC0FF_EE00),
            index,
            heap,
            table,
            footprint,
            ops_done: 0,
            next_shift: 0,
            next_churn_op: config.churn_interval_ops.unwrap_or(u64::MAX),
            config,
        }
    }

    fn maybe_shift(&mut self, now_ns: u64) {
        while let Some(ev) = self.config.shifts.get(self.next_shift) {
            if now_ns < ev.at_ns {
                break;
            }
            let f = ev.fraction;
            self.zipf.shift(f, &mut self.shift_rng);
            self.next_shift += 1;
        }
        if self.ops_done >= self.next_churn_op {
            let f = self.config.churn_fraction;
            self.zipf.shift(f, &mut self.shift_rng);
            self.next_churn_op += self.config.churn_interval_ops.expect("churn enabled");
        }
    }

    /// The heap region (object storage), exposed for experiments that probe
    /// page hotness directly.
    pub fn heap_region(&self) -> Region {
        self.heap
    }
}

impl Workload for CacheLibWorkload {
    fn next_op(&mut self, now_ns: u64, out: &mut Vec<Access>) -> Option<Op> {
        if self.ops_done >= self.config.ops {
            return None;
        }
        self.ops_done += 1;
        self.maybe_shift(now_ns);

        let obj = self.zipf.sample(&mut self.rng) as usize;
        let is_set = self.rng.gen::<f64>() < self.config.set_fraction;

        // Index lookup: one bucket entry.
        out.push(Access::read(self.index.elem(obj as u64, 16)));

        // Object body: one access per 4 KiB page the object spans.
        let slot = self.table.slots[obj];
        let start = slot.offset;
        let size = slot.size as u64;
        let mut off = start;
        let end = start + size;
        while off < end {
            let a = self.heap.addr(off);
            out.push(if is_set {
                Access::write(a)
            } else {
                Access::read(a)
            });
            off = (off / 4096 + 1) * 4096; // next page boundary
        }

        // Compute cost grows mildly with object size (checksum/copy).
        let cpu = 200 + size / 64;
        Some(if is_set {
            Op::write(cpu)
        } else {
            Op::read(cpu)
        })
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn name(&self) -> &str {
        self.config.name
    }

    fn batchable_now(&self) -> bool {
        // Shift events are the only clock-driven behaviour; background churn
        // triggers on the op counter, which advances identically whether ops
        // are pulled one at a time or in batches.
        self.next_shift >= self.config.shifts.len()
    }

    fn fill_batch(&mut self, now_ns: u64, max_ops: usize, batch: &mut AccessBatch) -> usize {
        // Zero-copy SoA fill: accesses go straight into the batch columns
        // (no staging `Vec<Access>` round trip). Only valid while batchable
        // — with a clock-driven shift still pending, fall back to the
        // generic per-op path so the trigger sees fresh time every op.
        // `maybe_shift` still runs per op for the op-counter-driven churn.
        if !self.batchable_now() {
            return fill_batch_via_next_op(self, now_ns, max_ops, batch);
        }
        let n = max_ops.min((self.config.ops - self.ops_done) as usize);
        for _ in 0..n {
            self.ops_done += 1;
            self.maybe_shift(now_ns);

            let obj = self.zipf.sample(&mut self.rng) as usize;
            let is_set = self.rng.gen::<f64>() < self.config.set_fraction;

            let start = batch.open_op();
            batch.push_access(Access::read(self.index.elem(obj as u64, 16)));
            let slot = self.table.slots[obj];
            let first = slot.offset;
            let size = slot.size as u64;
            let mut off = first;
            let end = first + size;
            while off < end {
                let a = self.heap.addr(off);
                batch.push_access(if is_set {
                    Access::write(a)
                } else {
                    Access::read(a)
                });
                off = (off / 4096 + 1) * 4096; // next page boundary
            }
            let cpu = 200 + size / 64;
            batch.commit_open_op(
                if is_set {
                    Op::write(cpu)
                } else {
                    Op::read(cpu)
                },
                start,
            );
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiering_mem::PageSize;

    fn small_cdn(ops: u64) -> CacheLibWorkload {
        let mut cfg = CacheLibConfig::cdn().with_ops(ops);
        cfg.objects = 2_000;
        CacheLibWorkload::new(cfg)
    }

    #[test]
    fn footprint_covers_all_objects() {
        let w = small_cdn(10);
        // 2000 objects, ~10% at 128 KiB + 90% at 4 KiB, plus index.
        let expect_min = 2_000 * 4096;
        assert!(w.footprint_bytes() > expect_min as u64);
        // Every object lies inside the heap region.
        let slot = w.table.slots[1999];
        let last = slot.offset + slot.size as u64;
        assert!(last <= w.heap.bytes());
    }

    #[test]
    fn get_touches_index_and_every_object_page() {
        let mut w = small_cdn(1000);
        let mut buf = Vec::new();
        for _ in 0..1000 {
            buf.clear();
            let op = w.next_op(0, &mut buf).unwrap();
            // First access is always the index.
            assert!(buf[0].addr < w.index.end());
            // Remaining accesses walk the object pages in order.
            let body = &buf[1..];
            assert!(!body.is_empty());
            for pair in body.windows(2) {
                assert!(pair[0].addr < pair[1].addr);
                assert!(pair[1].page(PageSize::Base4K).0 - pair[0].page(PageSize::Base4K).0 == 1);
            }
            let _ = op;
        }
    }

    #[test]
    fn large_objects_span_many_pages() {
        let mut w = small_cdn(5_000);
        let mut buf = Vec::new();
        let mut max_body = 0;
        for _ in 0..5_000 {
            buf.clear();
            w.next_op(0, &mut buf);
            max_body = max_body.max(buf.len() - 1);
        }
        assert_eq!(max_body, 32, "128 KiB objects span 32 pages");
    }

    #[test]
    fn sets_write_reads_read() {
        let mut cfg = CacheLibConfig::cdn().with_ops(2_000);
        cfg.objects = 500;
        cfg.set_fraction = 1.0;
        let mut w = CacheLibWorkload::new(cfg);
        let mut buf = Vec::new();
        buf.clear();
        let op = w.next_op(0, &mut buf).unwrap();
        assert_eq!(op.kind, tiering_trace::OpKind::Write);
        assert!(buf[1..].iter().all(|a| a.is_write));
    }

    #[test]
    fn shift_event_fires_once_at_time() {
        let mut cfg = CacheLibConfig::cdn().with_ops(u64::MAX).without_churn();
        cfg.objects = 1_000;
        let mut w = CacheLibWorkload::new(cfg.with_shift(1_000, 1.0));
        let before = w.zipf.item_at_rank(0);
        let mut buf = Vec::new();
        w.next_op(0, &mut buf); // before shift
        assert_eq!(w.zipf.item_at_rank(0), before);
        buf.clear();
        w.next_op(2_000, &mut buf); // after shift time
        assert_ne!(w.zipf.item_at_rank(0), before);
        assert_eq!(w.next_shift, 1);
    }

    #[test]
    fn churn_reassigns_over_time() {
        let mut cfg = CacheLibConfig::social_graph().with_ops(u64::MAX);
        cfg.objects = 5_000;
        cfg.churn_interval_ops = Some(5);
        cfg.churn_fraction = 0.5;
        let mut w = CacheLibWorkload::new(cfg);
        let before: Vec<u32> = (0..50).map(|r| w.zipf.item_at_rank(r)).collect();
        let mut buf = Vec::new();
        for t in 0..20u64 {
            buf.clear();
            w.next_op(t * 1_000, &mut buf);
        }
        let changed = (0..50)
            .filter(|&r| w.zipf.item_at_rank(r) != before[r])
            .count();
        assert!(changed > 10, "churn should move hot ranks, moved {changed}");
    }

    #[test]
    fn social_graph_has_more_objects_than_cdn() {
        assert!(CacheLibConfig::social_graph().objects > CacheLibConfig::cdn().objects);
    }

    #[test]
    fn deterministic_by_seed() {
        let mut a = small_cdn(500);
        let mut b = small_cdn(500);
        let (mut ba, mut bb) = (Vec::new(), Vec::new());
        for _ in 0..500 {
            ba.clear();
            bb.clear();
            a.next_op(0, &mut ba);
            b.next_op(0, &mut bb);
            assert_eq!(ba, bb);
        }
    }
}
