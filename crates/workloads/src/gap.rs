//! GAP benchmark suite workloads: real graph kernels over generated graphs.
//!
//! The paper evaluates BFS, Connected Components, and PageRank over two
//! 2-billion-node graphs: a Kronecker (RMAT) graph and a uniform-random
//! graph, "the worst case in terms of locality" (paper §5.3). This module
//! generates both graph families (scaled down), stores them in CSR form laid
//! out in the simulated address space, and runs the *actual* kernels —
//! traversal order, convergence, and therefore page-access patterns are
//! real, not statistical sketches.
//!
//! The distinguishing behaviours the paper relies on emerge naturally:
//! * BFS is "single-source": each trial picks a new source, so the early
//!   frontier (and its pages) differ per trial — a shifting hot set.
//! * CC and PR are "whole-graph": every iteration touches the graph the same
//!   way — a stable hot set dominated by high-degree vertices' edge pages.
//! * The uniform-random graph flattens the degree distribution, shrinking
//!   the reusable hot set.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use tiering_trace::{Access, Op, Workload};

use crate::layout::{LayoutBuilder, Region};

/// Which graph family to generate (paper §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphKind {
    /// Kronecker/RMAT graph (skewed power-law degrees, like real social
    /// networks).
    Kronecker,
    /// Uniform-random (Erdős–Rényi-style) graph: every vertex equally likely
    /// to neighbour every other — the locality worst case.
    UniformRandom,
}

impl GraphKind {
    /// Short suffix used in workload names ("K" / "U", as in the paper's
    /// figure labels BFS-K, BFS-U, …).
    pub fn suffix(self) -> &'static str {
        match self {
            GraphKind::Kronecker => "K",
            GraphKind::UniformRandom => "U",
        }
    }
}

/// A directed graph in CSR form, laid out in the simulated address space.
#[derive(Debug, Clone)]
pub struct Graph {
    num_nodes: u32,
    offsets: Vec<u64>,
    edges: Vec<u32>,
    kind: GraphKind,
    offsets_region: Region,
    edges_region: Region,
    layout: LayoutBuilder,
}

/// RMAT quadrant probabilities used by GAP (A=0.57, B=0.19, C=0.19).
const RMAT_A: f64 = 0.57;
const RMAT_B: f64 = 0.19;
const RMAT_C: f64 = 0.19;

impl Graph {
    /// Generates a Kronecker (RMAT) graph with `2^scale` nodes and
    /// `edge_factor * 2^scale` directed edges, with vertex ids randomly
    /// permuted (as GAP does) so graph locality is not an artifact of the
    /// generator.
    pub fn kronecker(scale: u32, edge_factor: u32, seed: u64) -> Self {
        let n = 1u32 << scale;
        let m = (edge_factor as u64 * n as u64) as usize;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pairs = Vec::with_capacity(m);
        for _ in 0..m {
            let (mut u, mut v) = (0u32, 0u32);
            for _ in 0..scale {
                u <<= 1;
                v <<= 1;
                let r: f64 = rng.gen();
                if r < RMAT_A {
                    // quadrant (0,0)
                } else if r < RMAT_A + RMAT_B {
                    v |= 1;
                } else if r < RMAT_A + RMAT_B + RMAT_C {
                    u |= 1;
                } else {
                    u |= 1;
                    v |= 1;
                }
            }
            pairs.push((u, v));
        }
        // Permute vertex ids.
        let mut perm: Vec<u32> = (0..n).collect();
        for i in (1..n as usize).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        for (u, v) in &mut pairs {
            *u = perm[*u as usize];
            *v = perm[*v as usize];
        }
        Self::from_edge_list(n, &pairs, GraphKind::Kronecker)
    }

    /// Generates a uniform-random graph with `2^scale` nodes and
    /// `edge_factor * 2^scale` directed edges.
    pub fn uniform(scale: u32, edge_factor: u32, seed: u64) -> Self {
        let n = 1u32 << scale;
        let m = (edge_factor as u64 * n as u64) as usize;
        let mut rng = SmallRng::seed_from_u64(seed);
        let pairs: Vec<(u32, u32)> = (0..m)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect();
        Self::from_edge_list(n, &pairs, GraphKind::UniformRandom)
    }

    /// Builds CSR from an edge list via counting sort.
    fn from_edge_list(n: u32, pairs: &[(u32, u32)], kind: GraphKind) -> Self {
        let mut degree = vec![0u64; n as usize + 1];
        for &(u, _) in pairs {
            degree[u as usize + 1] += 1;
        }
        let mut offsets = degree;
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut edges = vec![0u32; pairs.len()];
        let mut cursor = offsets.clone();
        for &(u, v) in pairs {
            edges[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
        }
        let mut layout = LayoutBuilder::new();
        let offsets_region = layout.alloc((n as u64 + 1) * 8);
        let edges_region = layout.alloc(pairs.len() as u64 * 4);
        Self {
            num_nodes: n,
            offsets,
            edges,
            kind,
            offsets_region,
            edges_region,
            layout,
        }
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> u64 {
        self.edges.len() as u64
    }

    /// Graph family.
    pub fn kind(&self) -> GraphKind {
        self.kind
    }

    /// Out-degree of `u`.
    pub fn degree(&self, u: u32) -> u64 {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// Out-neighbours of `u`.
    pub fn neighbors(&self, u: u32) -> &[u32] {
        let s = self.offsets[u as usize] as usize;
        let e = self.offsets[u as usize + 1] as usize;
        &self.edges[s..e]
    }

    /// Emits the accesses a kernel performs to read `u`'s adjacency: the
    /// offsets entry plus one access per 64-byte line of the edge slice.
    fn emit_adjacency(&self, u: u32, out: &mut Vec<Access>) {
        out.push(Access::read(self.offsets_region.elem(u as u64, 8)));
        let s = self.offsets[u as usize];
        let e = self.offsets[u as usize + 1];
        let mut byte = s * 4;
        let end = e * 4;
        while byte < end {
            out.push(Access::read(self.edges_region.addr(byte)));
            byte = (byte / 64 + 1) * 64;
        }
    }

    /// Clones the layout builder so kernels can append their own regions
    /// after the graph's.
    fn layout(&self) -> LayoutBuilder {
        self.layout.clone()
    }

    /// Bytes occupied by the CSR structure alone.
    pub fn csr_bytes(&self) -> u64 {
        self.layout.total_bytes()
    }
}

/// Breadth-first search: repeated single-source traversals from random
/// sources (GAP runs several trials; the hot set follows the frontier).
#[derive(Debug)]
pub struct BfsWorkload {
    graph: Graph,
    parent: Vec<u32>,
    parent_region: Region,
    queue: VecDeque<u32>,
    trials_remaining: u32,
    rng: SmallRng,
    /// Pages of the parent array left to clear before the next trial.
    reset_cursor: Option<u64>,
    footprint: u64,
    name: String,
}

const NO_PARENT: u32 = u32::MAX;

impl BfsWorkload {
    /// BFS over `graph` with `trials` random-source traversals.
    pub fn new(graph: Graph, trials: u32, seed: u64) -> Self {
        let mut layout = graph.layout();
        let parent_region = layout.alloc(graph.num_nodes() as u64 * 4);
        let name = format!("bfs-{}", graph.kind().suffix());
        Self {
            parent: vec![NO_PARENT; graph.num_nodes() as usize],
            parent_region,
            queue: VecDeque::new(),
            trials_remaining: trials,
            rng: SmallRng::seed_from_u64(seed),
            reset_cursor: Some(0),
            footprint: layout.total_bytes(),
            graph,
            name,
        }
    }
}

impl Workload for BfsWorkload {
    fn next_op(&mut self, _now_ns: u64, out: &mut Vec<Access>) -> Option<Op> {
        // Phase 1: clearing the parent array page by page before a trial.
        if let Some(page) = self.reset_cursor {
            let bytes = self.parent_region.bytes();
            let off = page * 4096;
            if off < bytes {
                out.push(Access::write(self.parent_region.addr(off)));
                self.reset_cursor = Some(page + 1);
                return Some(Op::compute(200));
            }
            // Reset done: start the trial.
            self.reset_cursor = None;
            self.parent.fill(NO_PARENT);
            // GAP picks sources with outgoing edges (a zero-degree source
            // makes the trial trivial); bound the retries so a pathological
            // edgeless graph still terminates.
            let mut source = self.rng.gen_range(0..self.graph.num_nodes());
            for _ in 0..64 {
                if self.graph.degree(source) > 0 {
                    break;
                }
                source = self.rng.gen_range(0..self.graph.num_nodes());
            }
            self.parent[source as usize] = source;
            self.queue.push_back(source);
        }

        // Phase 2: one vertex relaxation per op.
        let u = match self.queue.pop_front() {
            Some(u) => u,
            None => {
                // Trial finished.
                if self.trials_remaining <= 1 {
                    return None;
                }
                self.trials_remaining -= 1;
                self.reset_cursor = Some(0);
                return self.next_op(_now_ns, out);
            }
        };
        self.graph.emit_adjacency(u, out);
        // Borrow-friendly local walk over the neighbour slice.
        let (s, e) = (
            self.graph.offsets[u as usize] as usize,
            self.graph.offsets[u as usize + 1] as usize,
        );
        for i in s..e {
            let v = self.graph.edges[i];
            out.push(Access::read(self.parent_region.elem(v as u64, 4)));
            if self.parent[v as usize] == NO_PARENT {
                self.parent[v as usize] = u;
                out.push(Access::write(self.parent_region.elem(v as u64, 4)));
                self.queue.push_back(v);
            }
        }
        Some(Op::compute(30 + (e - s) as u64 * 2))
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn batchable_now(&self) -> bool {
        true // never consults simulated time
    }
}

/// Connected components via synchronous label propagation
/// (Shiloach–Vishkin-style hooking without shortcutting): every iteration
/// sweeps all vertices — a whole-graph kernel with a stable hot set.
#[derive(Debug)]
pub struct CcWorkload {
    graph: Graph,
    comp: Vec<u32>,
    comp_region: Region,
    cursor: u32,
    iter: u32,
    max_iters: u32,
    changed: bool,
    footprint: u64,
    name: String,
}

impl CcWorkload {
    /// CC over `graph`, capped at `max_iters` label-propagation sweeps.
    pub fn new(graph: Graph, max_iters: u32) -> Self {
        let mut layout = graph.layout();
        let comp_region = layout.alloc(graph.num_nodes() as u64 * 4);
        let name = format!("cc-{}", graph.kind().suffix());
        Self {
            comp: (0..graph.num_nodes()).collect(),
            comp_region,
            cursor: 0,
            iter: 0,
            max_iters,
            changed: false,
            footprint: layout.total_bytes(),
            graph,
            name,
        }
    }

    /// Number of distinct component labels at the current state.
    pub fn num_components(&self) -> usize {
        let mut labels: Vec<u32> = self.comp.clone();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }
}

impl Workload for CcWorkload {
    fn next_op(&mut self, _now_ns: u64, out: &mut Vec<Access>) -> Option<Op> {
        if self.iter >= self.max_iters {
            return None;
        }
        let u = self.cursor;
        self.graph.emit_adjacency(u, out);
        out.push(Access::read(self.comp_region.elem(u as u64, 4)));
        let mut min = self.comp[u as usize];
        let (s, e) = (
            self.graph.offsets[u as usize] as usize,
            self.graph.offsets[u as usize + 1] as usize,
        );
        for i in s..e {
            let v = self.graph.edges[i];
            out.push(Access::read(self.comp_region.elem(v as u64, 4)));
            min = min.min(self.comp[v as usize]);
        }
        if min < self.comp[u as usize] {
            self.comp[u as usize] = min;
            self.changed = true;
            out.push(Access::write(self.comp_region.elem(u as u64, 4)));
        }

        self.cursor += 1;
        if self.cursor == self.graph.num_nodes() {
            self.cursor = 0;
            self.iter += 1;
            if !self.changed {
                self.iter = self.max_iters; // converged
            }
            self.changed = false;
        }
        Some(Op::compute(30 + (e - s) as u64 * 2))
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn batchable_now(&self) -> bool {
        true // never consults simulated time
    }
}

/// PageRank (push variant): per vertex, scatter `pr[u]/deg(u)` to all
/// out-neighbours' accumulators. Whole-graph, iteration-stable hot set.
#[derive(Debug)]
pub struct PrWorkload {
    graph: Graph,
    pr_region: Region,
    next_region: Region,
    cursor: u32,
    iter: u32,
    iters: u32,
    /// Page index of the end-of-iteration normalize/swap scan, if active.
    scan_cursor: Option<u64>,
    footprint: u64,
    name: String,
}

impl PrWorkload {
    /// PageRank over `graph` for exactly `iters` iterations (GAP runs PR for
    /// a fixed iteration count by default).
    pub fn new(graph: Graph, iters: u32) -> Self {
        let mut layout = graph.layout();
        let pr_region = layout.alloc(graph.num_nodes() as u64 * 4);
        let next_region = layout.alloc(graph.num_nodes() as u64 * 4);
        let name = format!("pr-{}", graph.kind().suffix());
        Self {
            pr_region,
            next_region,
            cursor: 0,
            iter: 0,
            iters,
            scan_cursor: None,
            footprint: layout.total_bytes(),
            graph,
            name,
        }
    }
}

impl Workload for PrWorkload {
    fn next_op(&mut self, _now_ns: u64, out: &mut Vec<Access>) -> Option<Op> {
        if self.iter >= self.iters {
            return None;
        }
        // End-of-iteration pass: normalize `next` into `pr`, one page per op.
        if let Some(page) = self.scan_cursor {
            let off = page * 4096;
            if off < self.pr_region.bytes() {
                out.push(Access::read(self.next_region.addr(off)));
                out.push(Access::write(self.pr_region.addr(off)));
                self.scan_cursor = Some(page + 1);
                return Some(Op::compute(300));
            }
            self.scan_cursor = None;
            self.iter += 1;
            if self.iter >= self.iters {
                return None;
            }
        }

        let u = self.cursor;
        self.graph.emit_adjacency(u, out);
        out.push(Access::read(self.pr_region.elem(u as u64, 4)));
        let (s, e) = (
            self.graph.offsets[u as usize] as usize,
            self.graph.offsets[u as usize + 1] as usize,
        );
        for i in s..e {
            let v = self.graph.edges[i];
            out.push(Access::write(self.next_region.elem(v as u64, 4)));
        }

        self.cursor += 1;
        if self.cursor == self.graph.num_nodes() {
            self.cursor = 0;
            self.scan_cursor = Some(0);
        }
        Some(Op::compute(30 + (e - s) as u64 * 2))
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn batchable_now(&self) -> bool {
        true // never consults simulated time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiering_mem::PageSize;

    fn tiny_kron() -> Graph {
        Graph::kronecker(8, 8, 1)
    }

    #[test]
    fn kronecker_shape() {
        let g = tiny_kron();
        assert_eq!(g.num_nodes(), 256);
        assert_eq!(g.num_edges(), 2048);
        let total_degree: u64 = (0..256).map(|u| g.degree(u)).sum();
        assert_eq!(total_degree, 2048);
    }

    #[test]
    fn kronecker_is_skewed_uniform_is_not() {
        let k = Graph::kronecker(12, 16, 7);
        let u = Graph::uniform(12, 16, 7);
        let max_deg = |g: &Graph| (0..g.num_nodes()).map(|v| g.degree(v)).max().unwrap();
        // RMAT hubs should dwarf the uniform graph's max degree.
        assert!(
            max_deg(&k) > 4 * max_deg(&u),
            "kron {} vs uniform {}",
            max_deg(&k),
            max_deg(&u)
        );
    }

    #[test]
    fn csr_neighbors_consistent() {
        let g = tiny_kron();
        for u in 0..g.num_nodes() {
            assert_eq!(g.neighbors(u).len() as u64, g.degree(u));
            for &v in g.neighbors(u) {
                assert!(v < g.num_nodes());
            }
        }
    }

    #[test]
    fn graph_deterministic() {
        let a = Graph::kronecker(8, 8, 5);
        let b = Graph::kronecker(8, 8, 5);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.offsets, b.offsets);
    }

    #[test]
    fn bfs_visits_reachable_component() {
        let g = tiny_kron();
        let mut bfs = BfsWorkload::new(g, 1, 3);
        let mut buf = Vec::new();
        while bfs.next_op(0, &mut buf).is_some() {
            buf.clear();
        }
        let visited = bfs.parent.iter().filter(|&&p| p != NO_PARENT).count();
        assert!(visited > 1, "BFS should reach beyond the source");
    }

    #[test]
    fn bfs_multi_trial_runs_to_completion() {
        let g = tiny_kron();
        let mut bfs = BfsWorkload::new(g, 3, 3);
        let mut buf = Vec::new();
        let mut ops = 0u64;
        while bfs.next_op(0, &mut buf).is_some() {
            buf.clear();
            ops += 1;
            assert!(ops < 1_000_000, "BFS failed to terminate");
        }
        assert!(ops > 256, "three trials should process many vertices");
    }

    #[test]
    fn cc_converges_and_labels_components() {
        // A graph of two disjoint 2-cliques has exactly... build manually.
        let pairs = vec![(0u32, 1u32), (1, 0), (2, 3), (3, 2)];
        let g = Graph::from_edge_list(4, &pairs, GraphKind::UniformRandom);
        let mut cc = CcWorkload::new(g, 20);
        let mut buf = Vec::new();
        while cc.next_op(0, &mut buf).is_some() {
            buf.clear();
        }
        assert_eq!(cc.num_components(), 2);
        assert_eq!(cc.comp[0], cc.comp[1]);
        assert_eq!(cc.comp[2], cc.comp[3]);
        assert_ne!(cc.comp[0], cc.comp[2]);
    }

    #[test]
    fn pr_runs_fixed_iterations() {
        let g = tiny_kron();
        let n = g.num_nodes() as u64;
        let mut pr = PrWorkload::new(g, 2);
        let mut buf = Vec::new();
        let mut vertex_ops = 0u64;
        while pr.next_op(0, &mut buf).is_some() {
            buf.clear();
            vertex_ops += 1;
        }
        // 2 iterations × n vertices plus 2 normalize scans.
        assert!(vertex_ops >= 2 * n);
    }

    #[test]
    fn adjacency_accesses_hit_csr_regions() {
        let g = tiny_kron();
        let mut buf = Vec::new();
        g.emit_adjacency(5, &mut buf);
        assert!(!buf.is_empty());
        assert!(buf[0].addr >= g.offsets_region.base() && buf[0].addr < g.offsets_region.end());
        for a in &buf[1..] {
            assert!(a.addr >= g.edges_region.base() && a.addr < g.edges_region.end());
        }
        // Edge-line accesses deduplicate to one per cache line.
        let lines: Vec<u64> = buf[1..].iter().map(|a| a.addr / 64).collect();
        let mut dedup = lines.clone();
        dedup.dedup();
        assert_eq!(lines, dedup);
    }

    #[test]
    fn footprints_cover_kernel_arrays() {
        let g = tiny_kron();
        let csr = g.csr_bytes();
        let bfs = BfsWorkload::new(g, 1, 0);
        assert!(bfs.footprint_bytes() > csr);
        let pages = bfs.footprint_pages(PageSize::Base4K);
        assert_eq!(pages, bfs.footprint_bytes().div_ceil(4096));
    }
}
