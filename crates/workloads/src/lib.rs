//! Generative models of the twelve workloads in the HybridTier evaluation
//! (paper Table 2).
//!
//! The paper evaluates on production-scale workloads (150–335 GB footprints).
//! This crate reproduces each one as a *generator* with the same
//! distributional structure at ~512× smaller footprint, so the simulator can
//! replay them in seconds while preserving what tiering systems actually
//! react to: skew, hot-set size, and hotness churn.
//!
//! | Paper workload | Type here |
//! |---|---|
//! | CacheLib CDN | [`CacheLibWorkload`] with [`CacheLibConfig::cdn`] |
//! | CacheLib Social-graph | [`CacheLibWorkload`] with [`CacheLibConfig::social_graph`] |
//! | GAP BFS / CC / PR (Kronecker + uniform) | [`BfsWorkload`], [`CcWorkload`], [`PrWorkload`] over [`Graph`] |
//! | SPEC 603.bwaves | [`BwavesWorkload`] |
//! | SPEC 654.roms | [`RomsWorkload`] |
//! | Silo (YCSB-C) | [`SiloWorkload`] |
//! | XGBoost (Criteo) | [`XgboostWorkload`] |
//!
//! Plus synthetic building blocks ([`ZipfPageWorkload`], [`PulseWorkload`],
//! [`SequentialScanWorkload`]) used by the motivation figures and unit tests,
//! and two composition layers: [`PhasedWorkload`] (generators switching at
//! op thresholds, for diurnal long-horizon scenarios) and
//! [`TraceReplayWorkload`] + [`record_workload`] (capture any generator to
//! an on-disk trace and replay it chunk-streamed through the batch
//! pipeline — format in `docs/TRACE_FORMAT.md`).
//!
//! All generators are deterministic given their seed.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cachelib;
mod gap;
mod layout;
mod phased;
mod replay;
mod silo;
mod spec;
mod suite;
mod synthetic;
mod xgboost;
mod zipf;

pub use cachelib::{CacheLibConfig, CacheLibWorkload, ShiftEvent};
pub use gap::{BfsWorkload, CcWorkload, Graph, GraphKind, PrWorkload};
pub use layout::{LayoutBuilder, Region};
pub use phased::PhasedWorkload;
pub use replay::{record_workload, TraceReplayWorkload};
pub use silo::{SiloConfig, SiloWorkload};
pub use spec::{BwavesWorkload, RomsWorkload};
pub use suite::{build_workload, visit_workload, WorkloadId, WorkloadVisitor};
pub use synthetic::{PulseWorkload, SequentialScanWorkload, ZipfPageWorkload};
pub use xgboost::{XgboostConfig, XgboostWorkload};
pub use zipf::{ShiftableZipf, ZipfDistribution};
