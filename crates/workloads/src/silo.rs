//! Silo (in-memory database) under YCSB-C.
//!
//! Silo is an in-memory OLTP engine (paper Table 2); YCSB-C is the
//! read-only workload: point lookups with Zipf-distributed keys whose
//! popularity *never changes*. The paper notes this static distribution
//! favours Memtis's frequency histogram (§6.1) — a property this model
//! reproduces by never re-ranking keys.
//!
//! Each lookup walks a B+-tree: root → inner → leaf, then reads the record.
//! Inner nodes are few and intensely hot; records follow the key Zipf.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use tiering_trace::{Access, AccessBatch, Op, Workload};

use crate::layout::{LayoutBuilder, Region};
use crate::zipf::ShiftableZipf;

/// Configuration for the Silo/YCSB-C workload.
#[derive(Debug, Clone)]
pub struct SiloConfig {
    /// Number of records in the table.
    pub records: usize,
    /// Bytes per record.
    pub record_bytes: u64,
    /// B+-tree fanout (keys per inner node).
    pub fanout: usize,
    /// Zipf exponent of key popularity (YCSB default 0.99).
    pub theta: f64,
    /// Operations to run.
    pub ops: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SiloConfig {
    fn default() -> Self {
        Self {
            records: 220_000,
            record_bytes: 512,
            fanout: 64,
            theta: 0.99,
            ops: u64::MAX,
            seed: 0x51F0,
        }
    }
}

/// The Silo/YCSB-C workload generator.
#[derive(Debug)]
pub struct SiloWorkload {
    config: SiloConfig,
    zipf: ShiftableZipf,
    rng: SmallRng,
    /// Inner levels, root first; each level is an array of 4 KiB nodes.
    levels: Vec<(Region, usize)>,
    records: Region,
    footprint: u64,
    ops_done: u64,
}

impl SiloWorkload {
    /// Builds the tree layout for the configured record count.
    pub fn new(config: SiloConfig) -> Self {
        let mut layout = LayoutBuilder::new();
        // Compute inner levels top-down: the leaf "level" is the record
        // array itself; each inner node covers `fanout` children.
        let mut node_counts = Vec::new();
        let mut nodes = config.records.div_ceil(config.fanout);
        while nodes > 1 {
            node_counts.push(nodes);
            nodes = nodes.div_ceil(config.fanout);
        }
        node_counts.push(1); // root
        node_counts.reverse(); // root first
        let levels: Vec<(Region, usize)> = node_counts
            .iter()
            .map(|&c| (layout.alloc(c as u64 * 4096), c))
            .collect();
        let records = layout.alloc(config.records as u64 * config.record_bytes);
        Self {
            zipf: ShiftableZipf::shuffled_from_seed(
                config.records,
                config.theta,
                config.seed ^ 0x9E37_79B9,
            ),
            rng: SmallRng::seed_from_u64(config.seed),
            levels,
            records,
            footprint: layout.total_bytes(),
            ops_done: 0,
            config,
        }
    }

    /// Number of B+-tree inner levels (including the root).
    pub fn tree_depth(&self) -> usize {
        self.levels.len()
    }
}

impl Workload for SiloWorkload {
    fn next_op(&mut self, _now_ns: u64, out: &mut Vec<Access>) -> Option<Op> {
        if self.ops_done >= self.config.ops {
            return None;
        }
        self.ops_done += 1;
        let key = self.zipf.sample(&mut self.rng) as usize;

        // Walk root → leaf: at each level, the node whose key range covers
        // `key` (keys partition evenly across a level's nodes).
        for (region, count) in &self.levels {
            let node = key * count / self.config.records;
            out.push(Access::read(region.elem(node as u64, 4096)));
        }
        // Record read (single line; 512 B records start line-aligned).
        out.push(Access::read(
            self.records.elem(key as u64, self.config.record_bytes),
        ));
        Some(Op::read(150))
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn name(&self) -> &str {
        "silo-ycsbc"
    }

    fn batchable_now(&self) -> bool {
        true // never consults simulated time
    }

    fn fill_batch(&mut self, _now_ns: u64, max_ops: usize, batch: &mut AccessBatch) -> usize {
        // Zero-copy SoA fill: the tree-walk accesses go straight into the
        // batch columns, with the op metadata and record geometry hoisted
        // out of the loop. Byte-identical to `next_op` pulls (pinned by the
        // suite-wide fill-equivalence test).
        let n = max_ops.min((self.config.ops - self.ops_done) as usize);
        self.ops_done += n as u64;
        let op = Op::read(150);
        for _ in 0..n {
            let key = self.zipf.sample(&mut self.rng) as usize;
            let start = batch.open_op();
            for (region, count) in &self.levels {
                let node = key * count / self.config.records;
                batch.push_access(Access::read(region.elem(node as u64, 4096)));
            }
            batch.push_access(Access::read(
                self.records.elem(key as u64, self.config.record_bytes),
            ));
            batch.commit_open_op(op, start);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiering_mem::PageSize;

    fn small() -> SiloWorkload {
        SiloWorkload::new(SiloConfig {
            records: 10_000,
            ops: 1_000,
            ..SiloConfig::default()
        })
    }

    #[test]
    fn tree_depth_matches_fanout() {
        let w = small();
        // 10_000 records / 64 = 157 leaves-level nodes; /64 = 3; /64 = 1.
        assert_eq!(w.tree_depth(), 3);
    }

    #[test]
    fn each_op_walks_depth_plus_record() {
        let mut w = small();
        let mut buf = Vec::new();
        let op = w.next_op(0, &mut buf).unwrap();
        assert_eq!(op.kind, tiering_trace::OpKind::Read);
        assert_eq!(buf.len(), w.tree_depth() + 1);
    }

    #[test]
    fn inner_levels_are_small_and_hot() {
        let mut w = small();
        let inner_end = w.levels.last().unwrap().0.end();
        let mut inner = 0u64;
        let mut total = 0u64;
        let mut buf = Vec::new();
        for _ in 0..1_000 {
            buf.clear();
            if w.next_op(0, &mut buf).is_none() {
                break;
            }
            for a in &buf {
                total += 1;
                if a.addr < inner_end {
                    inner += 1;
                }
            }
        }
        // Depth/(depth+1) of accesses land in the inner-node regions.
        assert!(inner * 4 >= total * 2, "inner {inner} of {total}");
    }

    #[test]
    fn record_popularity_is_skewed_and_static() {
        let mut w = small();
        let rec_base = w.records.base();
        let mut counts = std::collections::HashMap::new();
        let mut buf = Vec::new();
        for _ in 0..1_000 {
            buf.clear();
            if w.next_op(0, &mut buf).is_none() {
                break;
            }
            let rec = buf.last().unwrap();
            assert!(rec.addr >= rec_base);
            *counts.entry(rec.page(PageSize::Base4K)).or_insert(0u32) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        assert!(max > 20, "record pages should be skewed, max {max}");
    }

    #[test]
    fn footprint_dominated_by_records() {
        let w = small();
        let record_bytes = 10_000 * 512;
        assert!(w.footprint_bytes() >= record_bytes);
        assert!(w.footprint_bytes() < record_bytes * 2);
    }
}
