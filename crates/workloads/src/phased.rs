//! Phase-shift composition: a [`Workload`] that switches between underlying
//! generators at operation thresholds.
//!
//! Long-horizon tiering scenarios are diurnal — a cache serves interactive
//! traffic by day and batch scans by night, and policy rankings shift with
//! the phase (the CXL characterization study in PAPERS.md measures exactly
//! this under time-varying traces). [`PhasedWorkload`] models it by
//! chaining generators: each phase runs its workload for a fixed op budget
//! (or until the inner generator ends early), then hands off to the next.
//!
//! Phase boundaries are keyed on the *op counter*, not the clock, so a
//! phased workload is batchable whenever its current phase is — batching
//! never smears ops across a phase boundary because
//! [`fill_batch`](Workload::fill_batch) caps each request at the ops left
//! in the phase.

use tiering_trace::{Access, AccessBatch, Op, Workload};

struct Phase {
    /// Op budget for this phase (the generator may end earlier).
    ops: u64,
    workload: Box<dyn Workload>,
}

impl std::fmt::Debug for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Phase")
            .field("ops", &self.ops)
            .field("workload", &self.workload.name())
            .finish()
    }
}

/// A sequence of workload phases executed back to back, switching at op
/// thresholds. Built with [`PhasedWorkload::new`] + [`phase`](Self::phase).
#[derive(Debug, Default)]
pub struct PhasedWorkload {
    phases: Vec<Phase>,
    current: usize,
    done_in_phase: u64,
    /// `"phased(a>b>c)"` — rebuilt as phases are added.
    name: String,
}

impl PhasedWorkload {
    /// An empty composition (yields no ops until phases are added).
    pub fn new() -> Self {
        Self {
            phases: Vec::new(),
            current: 0,
            done_in_phase: 0,
            name: "phased()".to_string(),
        }
    }

    /// Appends a phase: run `workload` for at most `ops` operations, then
    /// switch to the next phase.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is zero — a zero-length phase would be
    /// indistinguishable from no phase at all.
    #[must_use]
    pub fn phase(mut self, ops: u64, workload: Box<dyn Workload>) -> Self {
        assert!(ops > 0, "a phase must run at least one op");
        self.phases.push(Phase { ops, workload });
        self.name = format!(
            "phased({})",
            self.phases
                .iter()
                .map(|p| p.workload.name())
                .collect::<Vec<_>>()
                .join(">")
        );
        self
    }

    /// Index of the phase that will serve the next op (assuming no early
    /// exhaustion), or `None` when all phases are spent.
    fn serving_phase(&self) -> Option<usize> {
        let mut idx = self.current;
        if idx < self.phases.len() && self.done_in_phase >= self.phases[idx].ops {
            idx += 1;
        }
        (idx < self.phases.len()).then_some(idx)
    }

    /// Moves `current` onto the serving phase, resetting the per-phase
    /// counter when crossing a threshold. Returns `false` when spent.
    fn settle(&mut self) -> bool {
        while self.current < self.phases.len()
            && self.done_in_phase >= self.phases[self.current].ops
        {
            self.current += 1;
            self.done_in_phase = 0;
        }
        self.current < self.phases.len()
    }

    /// Abandons the current phase (its generator ended before the op
    /// budget) and moves to the next.
    fn skip_exhausted_phase(&mut self) {
        self.current += 1;
        self.done_in_phase = 0;
    }
}

impl Workload for PhasedWorkload {
    fn next_op(&mut self, now_ns: u64, out: &mut Vec<Access>) -> Option<Op> {
        let entry_len = out.len();
        while self.settle() {
            let phase = &mut self.phases[self.current];
            match phase.workload.next_op(now_ns, out) {
                Some(op) => {
                    self.done_in_phase += 1;
                    return Some(op);
                }
                None => {
                    // Generator ended early; drop anything it staged and
                    // hand off to the next phase.
                    out.truncate(entry_len);
                    self.skip_exhausted_phase();
                }
            }
        }
        None
    }

    /// The largest phase footprint: phases share the address space
    /// sequentially, so peak residency is the biggest phase, not the sum.
    fn footprint_bytes(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| p.workload.footprint_bytes())
            .max()
            .unwrap_or(0)
    }

    fn name(&self) -> &str {
        &self.name
    }

    /// Batchable exactly when the phase about to serve is: thresholds are
    /// op-keyed (never clock-keyed), and `fill_batch` stops at the phase
    /// boundary, so batching cannot smear across phases.
    fn batchable_now(&self) -> bool {
        match self.serving_phase() {
            Some(idx) => self.phases[idx].workload.batchable_now(),
            None => true, // spent: fill_batch returns 0 regardless
        }
    }

    fn fill_batch(&mut self, now_ns: u64, max_ops: usize, batch: &mut AccessBatch) -> usize {
        let mut filled = 0;
        while filled < max_ops && self.settle() {
            let budget = self.phases[self.current].ops - self.done_in_phase;
            let room = (max_ops - filled).min(usize::try_from(budget).unwrap_or(usize::MAX));
            let n = self.phases[self.current]
                .workload
                .fill_batch(now_ns, room, batch);
            self.done_in_phase += n as u64;
            filled += n;
            if n < room {
                // Generator ended before its op budget.
                self.skip_exhausted_phase();
            }
        }
        filled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SequentialScanWorkload, ZipfPageWorkload};
    use tiering_trace::fill_batch_via_next_op;

    fn diurnal() -> PhasedWorkload {
        PhasedWorkload::new()
            .phase(150, Box::new(ZipfPageWorkload::new(256, 1.1, 100_000, 1)))
            .phase(100, Box::new(SequentialScanWorkload::new(512, 1_000, 1)))
            .phase(150, Box::new(ZipfPageWorkload::new(256, 0.7, 100_000, 2)))
    }

    #[test]
    fn switches_phases_at_thresholds() {
        let mut w = diurnal();
        assert_eq!(w.name(), "phased(zipf-256p-t1.1>seq-scan>zipf-256p-t0.7)");
        let mut out = Vec::new();
        let mut count = 0u64;
        while w.next_op(0, &mut out).is_some() {
            out.clear();
            count += 1;
        }
        assert_eq!(count, 400, "150 + 100 + 150 ops across the three phases");
    }

    #[test]
    fn early_exhaustion_advances_to_next_phase() {
        // Middle generator holds only 20 ops against a 1000-op budget.
        let mut w = PhasedWorkload::new()
            .phase(50, Box::new(ZipfPageWorkload::new(64, 1.0, 100_000, 3)))
            .phase(1_000, Box::new(ZipfPageWorkload::new(64, 1.0, 20, 4)))
            .phase(30, Box::new(ZipfPageWorkload::new(64, 1.0, 100_000, 5)));
        let mut out = Vec::new();
        let mut count = 0u64;
        while w.next_op(0, &mut out).is_some() {
            out.clear();
            count += 1;
        }
        assert_eq!(count, 50 + 20 + 30);
    }

    #[test]
    fn fill_batch_equals_next_op_across_boundaries() {
        let mut via_next = diurnal();
        let mut via_fill = diurnal();
        // Batch size 61 never divides the 150/100/150 thresholds, so every
        // boundary lands mid-batch.
        for round in 0..10 {
            let mut a = AccessBatch::with_capacity(61, 61);
            let mut b = AccessBatch::with_capacity(61, 61);
            let na = fill_batch_via_next_op(&mut via_next, 0, 61, &mut a);
            let nb = via_fill.fill_batch(0, 61, &mut b);
            assert_eq!(na, nb, "round {round}");
            assert_eq!(a.len(), b.len());
            for i in 0..a.len() {
                assert_eq!(a.op_bounds(i), b.op_bounds(i), "round {round} op {i}");
            }
            for i in 0..a.total_accesses() {
                assert_eq!(a.access(i), b.access(i), "round {round} access {i}");
            }
        }
    }

    #[test]
    fn footprint_is_the_largest_phase() {
        let w = PhasedWorkload::new()
            .phase(10, Box::new(ZipfPageWorkload::new(100, 1.0, 10, 1)))
            .phase(10, Box::new(ZipfPageWorkload::new(400, 1.0, 10, 2)));
        assert_eq!(
            w.footprint_bytes(),
            ZipfPageWorkload::new(400, 1.0, 10, 2).footprint_bytes()
        );
    }

    #[test]
    fn empty_composition_yields_nothing() {
        let mut w = PhasedWorkload::new();
        assert_eq!(w.next_op(0, &mut Vec::new()), None);
        assert!(w.batchable_now());
        assert_eq!(w.footprint_bytes(), 0);
    }
}
