//! Zipfian popularity with re-rankable (shiftable) item assignment.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use rand::{Rng, SeedableRng};

/// Bounds on the quantile-index fan-out accelerating
/// [`ZipfDistribution::sample_rank`]: `u`'s top bits select a precomputed
/// rank range, and the binary search runs only inside it. Pure search
/// pruning — the returned rank is identical to a whole-table
/// `partition_point` for *any* fan-out, so the count is a tuning knob.
///
/// The fan-out scales with the table ([`quantile_buckets`]) to keep the
/// residual search within ~2 CDF entries — one or two cache lines — even
/// for tables that outgrow the LLC: the 220k-item social-graph CDF is
/// 1.7 MiB, and at the old fixed 4096-bucket fan-out every draw walked a
/// ~54-entry (seven-line) cold subrange, which dominated that workload's
/// generation cost. The index itself stays ≤ 256 KiB per memoized table.
const MIN_QUANTILE_BUCKETS: usize = 4096;
const MAX_QUANTILE_BUCKETS: usize = 65_536;

/// Quantile-index fan-out for an `n`-entry CDF: the next power of two
/// above `n/2` (≈2 entries per bucket), clamped to the module bounds.
fn quantile_buckets(n: usize) -> usize {
    (n / 2)
        .next_power_of_two()
        .clamp(MIN_QUANTILE_BUCKETS, MAX_QUANTILE_BUCKETS)
}

/// Memo-cache type: one entry per distinct `(n, θ-bits)` / `(n, seed)`.
type MemoCache<T> = OnceLock<Mutex<HashMap<(usize, u64), Arc<T>>>>;

/// The CDF (plus its quantile index) for one `(n, θ)`, shared across every
/// distribution instance with those parameters.
#[derive(Debug)]
struct ZipfTable {
    cdf: Vec<f64>,
    /// Quantile-index fan-out for this table ([`quantile_buckets`]).
    buckets: usize,
    /// `bucket_start[j]` = `partition_point` of `j / buckets` over `cdf`
    /// (one extra trailing entry pinning the end of the last bucket).
    bucket_start: Vec<u32>,
}

impl ZipfTable {
    fn build(n: usize, theta: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point residue keeping the last entry < 1.
        *cdf.last_mut().expect("n > 0") = 1.0;
        let buckets = quantile_buckets(n);
        let bucket_start = (0..=buckets)
            .map(|j| {
                let u = j as f64 / buckets as f64;
                cdf.partition_point(|&c| c < u) as u32
            })
            .collect();
        Self {
            cdf,
            buckets,
            bucket_start,
        }
    }
}

/// Process-wide table cache: sweeps build the same `(n, θ)` distribution
/// once per scenario (dozens of times per bench run); the 220k-entry CDF of
/// the Silo table alone costs milliseconds of `powf` per build. Sharing the
/// table is invisible to results — the cached values are the very f64s a
/// fresh build would produce.
fn table_for(n: usize, theta: f64) -> Arc<ZipfTable> {
    static CACHE: MemoCache<ZipfTable> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = (n, theta.to_bits());
    if let Some(t) = cache.lock().expect("zipf cache poisoned").get(&key) {
        return Arc::clone(t);
    }
    // Build outside the lock (several runner threads may race; last insert
    // wins and all builds are identical).
    let table = Arc::new(ZipfTable::build(n, theta));
    cache
        .lock()
        .expect("zipf cache poisoned")
        .entry(key)
        .or_insert(table)
        .clone()
}

/// A Zipf(θ) distribution over ranks `0..n` (rank 0 most popular),
/// `P(rank r) ∝ 1 / (r + 1)^θ`.
///
/// Sampling uses a precomputed CDF table and binary search — `O(log n)` per
/// draw, exact, and deterministic given the caller's RNG. Production
/// in-memory caches follow this shape with high skew (paper §2.2: "~80% of
/// accesses to Meta's object storage cache focus on the top 10% most popular
/// items").
///
/// The CDF is immutable and memoized process-wide by `(n, θ)` — see
/// `table_for` in this module — so repeated scenario builds in a sweep pay the `powf`
/// pass once, and a size-scaled quantile index (see `quantile_buckets`)
/// narrows each draw's binary search. Neither changes any sampled rank.
#[derive(Debug, Clone)]
pub struct ZipfDistribution {
    table: Arc<ZipfTable>,
}

impl ZipfDistribution {
    /// Builds the distribution for `n` items with exponent `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta < 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!(theta >= 0.0, "theta must be non-negative");
        Self {
            table: table_for(n, theta),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.table.cdf.len()
    }

    /// Whether the distribution is over zero items (never true; kept for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.table.cdf.is_empty()
    }

    /// Draws a rank in `0..n`.
    #[inline]
    pub fn sample_rank<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.rank_for(rng.gen())
    }

    /// The rank whose CDF interval contains `u` — the quantile-indexed
    /// equivalent of `cdf.partition_point(|c| c < u)` over the whole table.
    ///
    /// `u`'s top bits select a precomputed bucket `[lo, hi]`; monotonicity
    /// of the partition point in `u` pins the full-table answer inside it
    /// (including the answer-equals-hi case, which the subrange search
    /// returns as the subslice length), so only that range is searched.
    #[inline]
    fn rank_for(&self, u: f64) -> usize {
        let cdf = &self.table.cdf;
        let buckets = self.table.buckets;
        let j = ((u * buckets as f64) as usize).min(buckets - 1);
        let lo = self.table.bucket_start[j] as usize;
        let hi = self.table.bucket_start[j + 1] as usize;
        let p = lo + cdf[lo..hi].partition_point(|&c| c < u);
        p.min(cdf.len() - 1)
    }

    /// Probability mass of the top `k` ranks.
    pub fn head_mass(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            self.table.cdf[(k - 1).min(self.table.cdf.len() - 1)]
        }
    }

    /// Smallest number of top ranks whose combined mass reaches `mass`.
    pub fn ranks_for_mass(&self, mass: f64) -> usize {
        self.table.cdf.partition_point(|&c| c < mass) + 1
    }
}

/// A Zipf distribution over *items* through a mutable rank→item permutation,
/// supporting hotness-distribution shifts.
///
/// This models the churn production caches report (paper §2.2: "50% of
/// popular objects are no longer popular after just 10 minutes"): a
/// [`shift`](ShiftableZipf::shift) re-assigns a fraction of the hot ranks to
/// previously cold items, so the *distribution shape* is unchanged but the
/// identity of the hot set moves — exactly the CacheLib experiment of paper
/// Figure 4, where at 1800 s "2/3 of previously hot data are no longer hot".
#[derive(Debug, Clone)]
pub struct ShiftableZipf {
    dist: ZipfDistribution,
    /// `item_of[rank]` = item id currently occupying that popularity rank.
    ///
    /// Shared (copy-on-write) so seed-memoized shuffles cost one `Arc`
    /// clone per workload build; the first [`shift`](Self::shift) detaches
    /// a private copy.
    item_of: Arc<Vec<u32>>,
}

impl ShiftableZipf {
    /// Creates the distribution with the identity rank→item assignment.
    ///
    /// Prefer [`shuffled_from_seed`](ShiftableZipf::shuffled_from_seed) for
    /// workload generation: with the identity assignment, item id
    /// correlates with popularity, so first-touch page placement
    /// accidentally captures the hot set.
    pub fn new(n: usize, theta: f64) -> Self {
        Self {
            dist: ZipfDistribution::new(n, theta),
            item_of: Arc::new((0..n as u32).collect()),
        }
    }

    /// Randomizes the rank→item assignment so hot items are scattered across
    /// the id (and therefore address) space, as in real caches.
    #[must_use]
    pub fn shuffled<R: Rng + ?Sized>(mut self, rng: &mut R) -> Self {
        let item_of = Arc::make_mut(&mut self.item_of);
        for i in (1..item_of.len()).rev() {
            let j = rng.gen_range(0..=i);
            item_of.swap(i, j);
        }
        self
    }

    /// [`shuffled`](Self::shuffled) driven by a fresh
    /// `SmallRng::seed_from_u64(seed)`, with the resulting permutation
    /// memoized process-wide by `(n, seed)`.
    ///
    /// Sweeps rebuild identically-seeded workloads once per (policy ×
    /// ratio) scenario; the 220k-element Fisher–Yates pass of the Silo
    /// table costs milliseconds per build, so reusing the permutation is a
    /// large fraction of scenario setup. The cached vector is bit-identical
    /// to what the uncached path produces (pinned by a unit test), and it
    /// is shared copy-on-write — shifts never leak between instances.
    #[must_use]
    pub fn shuffled_from_seed(n: usize, theta: f64, seed: u64) -> Self {
        static CACHE: MemoCache<Vec<u32>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let key = (n, seed);
        let cached = cache
            .lock()
            .expect("perm cache poisoned")
            .get(&key)
            .cloned();
        let item_of = match cached {
            Some(p) => p,
            None => {
                let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
                let shuffled = Self::new(n, theta).shuffled(&mut rng);
                cache
                    .lock()
                    .expect("perm cache poisoned")
                    .entry(key)
                    .or_insert(shuffled.item_of)
                    .clone()
            }
        };
        Self {
            dist: ZipfDistribution::new(n, theta),
            item_of,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.item_of.len()
    }

    /// Whether there are zero items (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.item_of.is_empty()
    }

    /// Draws an item id.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        self.item_of[self.dist.sample_rank(rng)]
    }

    /// Item currently at `rank`.
    pub fn item_at_rank(&self, rank: usize) -> u32 {
        self.item_of[rank]
    }

    /// The underlying rank distribution.
    pub fn distribution(&self) -> &ZipfDistribution {
        &self.dist
    }

    /// Re-assigns `fraction` of the hot ranks (the top ranks carrying 80% of
    /// the probability mass) to uniformly chosen items from the cold tail.
    ///
    /// Returns the number of ranks reassigned.
    pub fn shift<R: Rng + ?Sized>(&mut self, fraction: f64, rng: &mut R) -> usize {
        let n = self.item_of.len();
        if n < 2 {
            return 0;
        }
        let head = self.dist.ranks_for_mass(0.8).min(n - 1).max(1);
        let item_of = Arc::make_mut(&mut self.item_of);
        let mut moved = 0;
        for rank in 0..head {
            if rng.gen::<f64>() < fraction {
                // Swap with a random cold rank: the old hot item becomes
                // cold and a cold item inherits the hot rank.
                let cold = rng.gen_range(head..n);
                item_of.swap(rank, cold);
                moved += 1;
            }
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// The quantile-indexed rank lookup must agree with a plain
    /// `partition_point` over the full CDF for every `u`, including bucket
    /// boundaries — the invariant that keeps the index a pure accelerator
    /// at every fan-out the size scaling produces (the chosen `n`s cover
    /// the clamp floor, the scaling region, and the clamp ceiling).
    #[test]
    fn quantile_index_matches_full_partition_point() {
        for &(n, theta) in &[
            (1usize, 0.99),
            (3, 2.5),
            (50, 0.0),
            (1000, 0.99),
            (9973, 1.2),
            (30_000, 0.9),
            (220_000, 0.9),
        ] {
            let d = ZipfDistribution::new(n, theta);
            let cdf = &d.table.cdf;
            let buckets = d.table.buckets;
            let check = |u: f64| {
                let want = cdf.partition_point(|&c| c < u).min(n - 1);
                assert_eq!(d.rank_for(u), want, "n={n} theta={theta} u={u}");
            };
            for i in 0..=(4 * buckets) {
                check(i as f64 / (4 * buckets) as f64);
            }
            // Values straddling every CDF entry.
            for &c in cdf.iter().take(n.min(500)) {
                check(c);
                check((c - 1e-12).max(0.0));
                check((c + 1e-12).min(1.0));
            }
        }
    }

    /// The fan-out scaling: ~2 entries per bucket, clamped.
    #[test]
    fn quantile_bucket_scaling() {
        assert_eq!(quantile_buckets(1), MIN_QUANTILE_BUCKETS);
        assert_eq!(quantile_buckets(8_192), MIN_QUANTILE_BUCKETS);
        assert_eq!(quantile_buckets(30_000), 16_384);
        assert_eq!(quantile_buckets(220_000), MAX_QUANTILE_BUCKETS);
        assert_eq!(quantile_buckets(10_000_000), MAX_QUANTILE_BUCKETS);
    }

    /// The seed-memoized shuffle is bit-identical to driving `shuffled`
    /// with a fresh `SmallRng` of the same seed, and instances share the
    /// permutation until one shifts (copy-on-write).
    #[test]
    fn shuffled_from_seed_matches_fresh_rng_and_is_cow() {
        let n = 5_000;
        let mut rng = SmallRng::seed_from_u64(0xBEEF);
        let plain = ShiftableZipf::new(n, 0.99).shuffled(&mut rng);
        let cached_a = ShiftableZipf::shuffled_from_seed(n, 0.99, 0xBEEF);
        let cached_b = ShiftableZipf::shuffled_from_seed(n, 0.99, 0xBEEF);
        for rank in 0..n {
            assert_eq!(plain.item_at_rank(rank), cached_a.item_at_rank(rank));
        }
        assert!(Arc::ptr_eq(&cached_a.item_of, &cached_b.item_of));
        // A shift detaches a private copy; the cached permutation and the
        // sibling instance are untouched.
        let mut shifted = cached_a.clone();
        let mut shift_rng = SmallRng::seed_from_u64(1);
        assert!(shifted.shift(0.9, &mut shift_rng) > 0);
        assert!(!Arc::ptr_eq(&shifted.item_of, &cached_b.item_of));
        let fresh = ShiftableZipf::shuffled_from_seed(n, 0.99, 0xBEEF);
        for rank in 0..n {
            assert_eq!(fresh.item_at_rank(rank), cached_b.item_at_rank(rank));
        }
    }

    /// Two distributions with the same parameters share one memoized table.
    #[test]
    fn tables_are_memoized() {
        let a = ZipfDistribution::new(777, 0.55);
        let b = ZipfDistribution::new(777, 0.55);
        assert!(Arc::ptr_eq(&a.table, &b.table));
        let c = ZipfDistribution::new(777, 0.56);
        assert!(!Arc::ptr_eq(&a.table, &c.table));
    }

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let z = ZipfDistribution::new(1000, 0.99);
        let mut prev = 0.0;
        for r in 0..1000 {
            let c = z.head_mass(r + 1);
            assert!(c >= prev);
            prev = c;
        }
        assert!((z.head_mass(1000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn high_skew_concentrates_mass() {
        // θ=0.99 over 100k items: top 10% should carry well over half the
        // mass (the Meta observation is ~80%).
        let z = ZipfDistribution::new(100_000, 0.99);
        let head = z.head_mass(10_000);
        assert!(head > 0.7, "top-10% mass {head}");
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = ZipfDistribution::new(10, 0.0);
        for k in 1..=10 {
            assert!((z.head_mass(k) - k as f64 / 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sampling_matches_distribution() {
        let z = ZipfDistribution::new(100, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = vec![0u32; 100];
        let draws = 200_000;
        for _ in 0..draws {
            counts[z.sample_rank(&mut rng)] += 1;
        }
        // Rank 0 should see ~ mass(0) fraction of draws.
        let expect0 = z.head_mass(1);
        let got0 = counts[0] as f64 / draws as f64;
        assert!(
            (got0 - expect0).abs() < 0.01,
            "got {got0}, expect {expect0}"
        );
        // Monotone-ish: rank 0 >> rank 50.
        assert!(counts[0] > counts[50] * 10);
    }

    #[test]
    fn ranks_for_mass_inverts_head_mass() {
        let z = ZipfDistribution::new(1000, 0.9);
        let k = z.ranks_for_mass(0.5);
        assert!(z.head_mass(k) >= 0.5);
        assert!(z.head_mass(k.saturating_sub(1)) < 0.5 || k == 1);
    }

    #[test]
    fn shift_moves_requested_fraction_of_hot_ranks() {
        let mut z = ShiftableZipf::new(10_000, 0.99);
        let before: Vec<u32> = (0..100).map(|r| z.item_at_rank(r)).collect();
        let mut rng = SmallRng::seed_from_u64(3);
        let moved = z.shift(2.0 / 3.0, &mut rng);
        assert!(moved > 0);
        let changed = (0..100).filter(|&r| z.item_at_rank(r) != before[r]).count();
        // Roughly 2/3 of the inspected head ranks changed identity.
        assert!(changed > 40, "only {changed}/100 head ranks changed");
    }

    #[test]
    fn shift_preserves_permutation() {
        let mut z = ShiftableZipf::new(1000, 0.99);
        let mut rng = SmallRng::seed_from_u64(4);
        z.shift(0.5, &mut rng);
        let mut items: Vec<u32> = (0..1000).map(|r| z.item_at_rank(r)).collect();
        items.sort_unstable();
        let expect: Vec<u32> = (0..1000).collect();
        assert_eq!(items, expect, "shift must remain a permutation");
    }

    #[test]
    fn shift_zero_fraction_is_noop() {
        let mut z = ShiftableZipf::new(100, 0.99);
        let before: Vec<u32> = (0..100).map(|r| z.item_at_rank(r)).collect();
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(z.shift(0.0, &mut rng), 0);
        let after: Vec<u32> = (0..100).map(|r| z.item_at_rank(r)).collect();
        assert_eq!(before, after);
    }
}
