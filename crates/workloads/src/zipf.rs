//! Zipfian popularity with re-rankable (shiftable) item assignment.

use rand::Rng;

/// A Zipf(θ) distribution over ranks `0..n` (rank 0 most popular),
/// `P(rank r) ∝ 1 / (r + 1)^θ`.
///
/// Sampling uses a precomputed CDF table and binary search — `O(log n)` per
/// draw, exact, and deterministic given the caller's RNG. Production
/// in-memory caches follow this shape with high skew (paper §2.2: "~80% of
/// accesses to Meta's object storage cache focus on the top 10% most popular
/// items").
#[derive(Debug, Clone)]
pub struct ZipfDistribution {
    cdf: Vec<f64>,
}

impl ZipfDistribution {
    /// Builds the distribution for `n` items with exponent `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta < 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!(theta >= 0.0, "theta must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point residue keeping the last entry < 1.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Self { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is over zero items (never true; kept for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n`.
    #[inline]
    pub fn sample_rank<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of the top `k` ranks.
    pub fn head_mass(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            self.cdf[(k - 1).min(self.cdf.len() - 1)]
        }
    }

    /// Smallest number of top ranks whose combined mass reaches `mass`.
    pub fn ranks_for_mass(&self, mass: f64) -> usize {
        self.cdf.partition_point(|&c| c < mass) + 1
    }
}

/// A Zipf distribution over *items* through a mutable rank→item permutation,
/// supporting hotness-distribution shifts.
///
/// This models the churn production caches report (paper §2.2: "50% of
/// popular objects are no longer popular after just 10 minutes"): a
/// [`shift`](ShiftableZipf::shift) re-assigns a fraction of the hot ranks to
/// previously cold items, so the *distribution shape* is unchanged but the
/// identity of the hot set moves — exactly the CacheLib experiment of paper
/// Figure 4, where at 1800 s "2/3 of previously hot data are no longer hot".
#[derive(Debug, Clone)]
pub struct ShiftableZipf {
    dist: ZipfDistribution,
    /// `item_of[rank]` = item id currently occupying that popularity rank.
    item_of: Vec<u32>,
}

impl ShiftableZipf {
    /// Creates the distribution with the identity rank→item assignment.
    ///
    /// Prefer [`shuffled`](ShiftableZipf::shuffled) for workload generation:
    /// with the identity assignment, item id correlates with popularity, so
    /// first-touch page placement accidentally captures the hot set.
    pub fn new(n: usize, theta: f64) -> Self {
        Self {
            dist: ZipfDistribution::new(n, theta),
            item_of: (0..n as u32).collect(),
        }
    }

    /// Randomizes the rank→item assignment so hot items are scattered across
    /// the id (and therefore address) space, as in real caches.
    #[must_use]
    pub fn shuffled<R: Rng + ?Sized>(mut self, rng: &mut R) -> Self {
        for i in (1..self.item_of.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.item_of.swap(i, j);
        }
        self
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.item_of.len()
    }

    /// Whether there are zero items (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.item_of.is_empty()
    }

    /// Draws an item id.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        self.item_of[self.dist.sample_rank(rng)]
    }

    /// Item currently at `rank`.
    pub fn item_at_rank(&self, rank: usize) -> u32 {
        self.item_of[rank]
    }

    /// The underlying rank distribution.
    pub fn distribution(&self) -> &ZipfDistribution {
        &self.dist
    }

    /// Re-assigns `fraction` of the hot ranks (the top ranks carrying 80% of
    /// the probability mass) to uniformly chosen items from the cold tail.
    ///
    /// Returns the number of ranks reassigned.
    pub fn shift<R: Rng + ?Sized>(&mut self, fraction: f64, rng: &mut R) -> usize {
        let n = self.item_of.len();
        if n < 2 {
            return 0;
        }
        let head = self.dist.ranks_for_mass(0.8).min(n - 1).max(1);
        let mut moved = 0;
        for rank in 0..head {
            if rng.gen::<f64>() < fraction {
                // Swap with a random cold rank: the old hot item becomes
                // cold and a cold item inherits the hot rank.
                let cold = rng.gen_range(head..n);
                self.item_of.swap(rank, cold);
                moved += 1;
            }
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let z = ZipfDistribution::new(1000, 0.99);
        let mut prev = 0.0;
        for r in 0..1000 {
            let c = z.head_mass(r + 1);
            assert!(c >= prev);
            prev = c;
        }
        assert!((z.head_mass(1000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn high_skew_concentrates_mass() {
        // θ=0.99 over 100k items: top 10% should carry well over half the
        // mass (the Meta observation is ~80%).
        let z = ZipfDistribution::new(100_000, 0.99);
        let head = z.head_mass(10_000);
        assert!(head > 0.7, "top-10% mass {head}");
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = ZipfDistribution::new(10, 0.0);
        for k in 1..=10 {
            assert!((z.head_mass(k) - k as f64 / 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sampling_matches_distribution() {
        let z = ZipfDistribution::new(100, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = vec![0u32; 100];
        let draws = 200_000;
        for _ in 0..draws {
            counts[z.sample_rank(&mut rng)] += 1;
        }
        // Rank 0 should see ~ mass(0) fraction of draws.
        let expect0 = z.head_mass(1);
        let got0 = counts[0] as f64 / draws as f64;
        assert!(
            (got0 - expect0).abs() < 0.01,
            "got {got0}, expect {expect0}"
        );
        // Monotone-ish: rank 0 >> rank 50.
        assert!(counts[0] > counts[50] * 10);
    }

    #[test]
    fn ranks_for_mass_inverts_head_mass() {
        let z = ZipfDistribution::new(1000, 0.9);
        let k = z.ranks_for_mass(0.5);
        assert!(z.head_mass(k) >= 0.5);
        assert!(z.head_mass(k.saturating_sub(1)) < 0.5 || k == 1);
    }

    #[test]
    fn shift_moves_requested_fraction_of_hot_ranks() {
        let mut z = ShiftableZipf::new(10_000, 0.99);
        let before: Vec<u32> = (0..100).map(|r| z.item_at_rank(r)).collect();
        let mut rng = SmallRng::seed_from_u64(3);
        let moved = z.shift(2.0 / 3.0, &mut rng);
        assert!(moved > 0);
        let changed = (0..100).filter(|&r| z.item_at_rank(r) != before[r]).count();
        // Roughly 2/3 of the inspected head ranks changed identity.
        assert!(changed > 40, "only {changed}/100 head ranks changed");
    }

    #[test]
    fn shift_preserves_permutation() {
        let mut z = ShiftableZipf::new(1000, 0.99);
        let mut rng = SmallRng::seed_from_u64(4);
        z.shift(0.5, &mut rng);
        let mut items: Vec<u32> = (0..1000).map(|r| z.item_at_rank(r)).collect();
        items.sort_unstable();
        let expect: Vec<u32> = (0..1000).collect();
        assert_eq!(items, expect, "shift must remain a permutation");
    }

    #[test]
    fn shift_zero_fraction_is_noop() {
        let mut z = ShiftableZipf::new(100, 0.99);
        let before: Vec<u32> = (0..100).map(|r| z.item_at_rank(r)).collect();
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(z.shift(0.0, &mut rng), 0);
        let after: Vec<u32> = (0..100).map(|r| z.item_at_rank(r)).collect();
        assert_eq!(before, after);
    }
}
