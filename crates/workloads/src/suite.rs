//! The full evaluation suite: one identifier per paper workload, with the
//! default scaled parameters used by the benchmark harness.

use tiering_trace::Workload;

use crate::cachelib::{CacheLibConfig, CacheLibWorkload};
use crate::gap::{BfsWorkload, CcWorkload, Graph, GraphKind, PrWorkload};
use crate::silo::{SiloConfig, SiloWorkload};
use crate::spec::{BwavesWorkload, RomsWorkload};
use crate::xgboost::{XgboostConfig, XgboostWorkload};

/// The twelve workloads of paper Table 2 / Figure 16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadId {
    /// CacheLib content-delivery-network workload.
    CdnCacheLib,
    /// CacheLib social-graph workload.
    SocialCacheLib,
    /// GAP breadth-first search on the Kronecker graph.
    BfsKron,
    /// GAP breadth-first search on the uniform-random graph.
    BfsUniform,
    /// GAP connected components on the Kronecker graph.
    CcKron,
    /// GAP connected components on the uniform-random graph.
    CcUniform,
    /// GAP PageRank on the Kronecker graph.
    PrKron,
    /// GAP PageRank on the uniform-random graph.
    PrUniform,
    /// SPEC CPU 2017 603.bwaves proxy.
    Bwaves,
    /// SPEC CPU 2017 654.roms proxy.
    Roms,
    /// Silo under YCSB-C.
    Silo,
    /// XGBoost training on Criteo-like data.
    Xgboost,
}

impl WorkloadId {
    /// All workloads, in the paper's figure order.
    pub const ALL: [WorkloadId; 12] = [
        WorkloadId::CdnCacheLib,
        WorkloadId::SocialCacheLib,
        WorkloadId::BfsKron,
        WorkloadId::BfsUniform,
        WorkloadId::CcKron,
        WorkloadId::CcUniform,
        WorkloadId::PrKron,
        WorkloadId::PrUniform,
        WorkloadId::Bwaves,
        WorkloadId::Roms,
        WorkloadId::Silo,
        WorkloadId::Xgboost,
    ];

    /// Short label matching the paper's figure axes.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadId::CdnCacheLib => "CDN",
            WorkloadId::SocialCacheLib => "social",
            WorkloadId::BfsKron => "BFS-K",
            WorkloadId::BfsUniform => "BFS-U",
            WorkloadId::CcKron => "CC-K",
            WorkloadId::CcUniform => "CC-U",
            WorkloadId::PrKron => "PR-K",
            WorkloadId::PrUniform => "PR-U",
            WorkloadId::Bwaves => "bwave",
            WorkloadId::Roms => "roms",
            WorkloadId::Silo => "silo",
            WorkloadId::Xgboost => "XGBoost",
        }
    }

    /// Whether the workload is request-driven (latency/throughput metrics)
    /// as opposed to batch (runtime metric).
    pub fn is_request_driven(self) -> bool {
        matches!(
            self,
            WorkloadId::CdnCacheLib | WorkloadId::SocialCacheLib | WorkloadId::Silo
        )
    }
}

/// Graph generation parameters shared by the GAP workloads
/// (2^17 nodes × 16 edges/node — the paper's 2³¹ × 4, scaled ~16 000×).
const GAP_SCALE: u32 = 17;
const GAP_EDGE_FACTOR: u32 = 16;

fn gap_graph(kind: GraphKind, seed: u64) -> Graph {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    // Generation (RMAT/uniform sampling, vertex permutation, CSR sort)
    // dominates GAP suite construction and is deterministic in
    // `(kind, seed)` at the fixed suite scale, so build each graph once
    // process-wide and hand out clones — a plain memcpy of the CSR arrays,
    // bit-identical to a fresh build.
    static CACHE: OnceLock<Mutex<HashMap<(GraphKind, u64), Graph>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(g) = cache
        .lock()
        .expect("gap graph cache poisoned")
        .get(&(kind, seed))
    {
        return g.clone();
    }
    // Build outside the lock (racing builds are identical; last insert
    // wins).
    let g = match kind {
        GraphKind::Kronecker => Graph::kronecker(GAP_SCALE, GAP_EDGE_FACTOR, seed),
        GraphKind::UniformRandom => Graph::uniform(GAP_SCALE, GAP_EDGE_FACTOR, seed),
    };
    cache
        .lock()
        .expect("gap graph cache poisoned")
        .entry((kind, seed))
        .or_insert(g)
        .clone()
}

/// Receiver for [`visit_workload`]: `visit` is called with the *concretely
/// typed* generator for a [`WorkloadId`], so a caller generic over
/// [`Workload`] is monomorphized for it. The engine's typed pipeline uses
/// this to inline `fill_batch` into the pull stage instead of making a
/// virtual call per batch; [`build_workload`] is the type-erasing special
/// case, so both paths construct byte-identical generators.
pub trait WorkloadVisitor {
    /// The visit result.
    type Out;
    /// Called with the built generator (same construction as
    /// [`build_workload`]).
    fn visit<W: Workload + 'static>(self, workload: W) -> Self::Out;
}

/// Builds the workload for `id` with the suite's default scaled parameters
/// and passes it, concretely typed, to `visitor` — the dispatch-once
/// counterpart of [`build_workload`].
pub fn visit_workload<V: WorkloadVisitor>(id: WorkloadId, seed: u64, visitor: V) -> V::Out {
    match id {
        WorkloadId::CdnCacheLib => {
            visitor.visit(CacheLibWorkload::new(CacheLibConfig::cdn().with_seed(seed)))
        }
        WorkloadId::SocialCacheLib => visitor.visit(CacheLibWorkload::new(
            CacheLibConfig::social_graph().with_seed(seed),
        )),
        WorkloadId::BfsKron => visitor.visit(BfsWorkload::new(
            gap_graph(GraphKind::Kronecker, seed),
            4,
            seed ^ 1,
        )),
        WorkloadId::BfsUniform => visitor.visit(BfsWorkload::new(
            gap_graph(GraphKind::UniformRandom, seed),
            4,
            seed ^ 1,
        )),
        WorkloadId::CcKron => {
            visitor.visit(CcWorkload::new(gap_graph(GraphKind::Kronecker, seed), 6))
        }
        WorkloadId::CcUniform => visitor.visit(CcWorkload::new(
            gap_graph(GraphKind::UniformRandom, seed),
            6,
        )),
        WorkloadId::PrKron => {
            visitor.visit(PrWorkload::new(gap_graph(GraphKind::Kronecker, seed), 6))
        }
        WorkloadId::PrUniform => visitor.visit(PrWorkload::new(
            gap_graph(GraphKind::UniformRandom, seed),
            6,
        )),
        WorkloadId::Bwaves => visitor.visit(BwavesWorkload::new(96 << 20, 6)),
        WorkloadId::Roms => visitor.visit(RomsWorkload::new(1 << 20, 48, 4)),
        WorkloadId::Silo => visitor.visit(SiloWorkload::new(SiloConfig {
            seed,
            ..SiloConfig::default()
        })),
        WorkloadId::Xgboost => visitor.visit(XgboostWorkload::new(XgboostConfig {
            seed,
            ..XgboostConfig::default()
        })),
    }
}

/// Builds a workload with the suite's default scaled parameters.
///
/// Every generator is deterministic in `seed`, so policy comparisons can run
/// each policy against an identical access stream.
pub fn build_workload(id: WorkloadId, seed: u64) -> Box<dyn Workload> {
    struct BoxIt;
    impl WorkloadVisitor for BoxIt {
        type Out = Box<dyn Workload>;
        fn visit<W: Workload + 'static>(self, workload: W) -> Self::Out {
            Box::new(workload)
        }
    }
    visit_workload(id, seed, BoxIt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiering_mem::PageSize;

    #[test]
    fn all_twelve_build_and_emit() {
        for id in WorkloadId::ALL {
            let mut w = build_workload(id, 42);
            assert!(!w.name().is_empty());
            assert!(w.footprint_bytes() > 0, "{id:?} empty footprint");
            let mut buf = Vec::new();
            let op = w.next_op(0, &mut buf);
            assert!(op.is_some(), "{id:?} emitted nothing");
            assert!(!buf.is_empty(), "{id:?} op without accesses");
            for a in &buf {
                assert!(
                    a.addr < w.footprint_bytes(),
                    "{id:?} access beyond footprint"
                );
            }
        }
    }

    /// Every specialized `fill_batch` override must emit exactly the
    /// operation stream that successive `next_op` calls would — same ops,
    /// same accesses, same order — across batch-size boundaries.
    #[test]
    fn fill_batch_equals_next_op_for_all_workloads() {
        use tiering_trace::AccessBatch;
        for id in WorkloadId::ALL {
            let mut batched = build_workload(id, 97);
            let mut scalar = build_workload(id, 97);
            let mut batch = AccessBatch::new();
            let mut scalar_buf = Vec::new();
            'stream: for round in 0..40 {
                batch.clear();
                let n = batched.fill_batch(0, 61, &mut batch);
                for i in 0..n {
                    let (op, s, e) = batch.op_bounds(i);
                    scalar_buf.clear();
                    let want_op = scalar.next_op(0, &mut scalar_buf);
                    assert_eq!(want_op, Some(op), "{id:?} round {round} op {i}: op meta");
                    assert_eq!(
                        scalar_buf.len(),
                        e - s,
                        "{id:?} round {round} op {i}: access count"
                    );
                    for (j, want) in scalar_buf.iter().enumerate() {
                        assert_eq!(
                            batch.access(s + j),
                            *want,
                            "{id:?} round {round} op {i} access {j}"
                        );
                    }
                }
                if n == 0 {
                    assert!(
                        scalar.next_op(0, &mut scalar_buf).is_none(),
                        "{id:?}: batch path exhausted early"
                    );
                    break 'stream;
                }
            }
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = WorkloadId::ALL.iter().map(|w| w.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 12);
    }

    #[test]
    fn request_driven_classification() {
        assert!(WorkloadId::CdnCacheLib.is_request_driven());
        assert!(!WorkloadId::PrKron.is_request_driven());
    }

    #[test]
    fn footprints_are_scaled_but_nontrivial() {
        for id in [
            WorkloadId::CdnCacheLib,
            WorkloadId::Bwaves,
            WorkloadId::Xgboost,
        ] {
            let w = build_workload(id, 1);
            let pages = w.footprint_pages(PageSize::Base4K);
            assert!(
                pages > 10_000,
                "{id:?} only {pages} pages — too small for tiering to matter"
            );
            assert!(
                pages < 300_000,
                "{id:?} {pages} pages — too big to simulate"
            );
        }
    }
}
