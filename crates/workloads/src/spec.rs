//! SPEC CPU 2017 proxies: 603.bwaves and 654.roms.
//!
//! The paper scales both benchmarks to 150 GB resident sets (Table 2);
//! neither is open source, so these are access-pattern proxies built from
//! the benchmarks' published structure:
//!
//! * **bwaves** — a block-tridiagonal Navier-Stokes solver: repeated
//!   streaming sweeps over a handful of large state arrays with a small,
//!   intensely reused coefficient block. Low page-level skew: most pages are
//!   touched once per sweep, which is why no tiering system gains much here
//!   (paper §6.1: HybridTier beats the second best by only 3% on SPEC).
//! * **roms** — a regional ocean model: 3-D stencil sweeps with plane-wise
//!   reuse (each k-plane is touched while processing planes k−1..k+1).

use tiering_trace::{Access, Op, Workload};

use crate::layout::{LayoutBuilder, Region};

/// Proxy for SPEC CPU 2017 603.bwaves.
#[derive(Debug)]
pub struct BwavesWorkload {
    state: Region,
    rhs: Region,
    coeff: Region,
    sweeps_remaining: u32,
    cursor: u64,
    footprint: u64,
}

impl BwavesWorkload {
    /// A solver over `grid_bytes` of state, swept `sweeps` times.
    ///
    /// Default experiments use ~96 MiB of state (the paper's 150 GB scaled
    /// ~1600×, keeping the state:coefficient ratio).
    pub fn new(grid_bytes: u64, sweeps: u32) -> Self {
        let mut layout = LayoutBuilder::new();
        let state = layout.alloc(grid_bytes);
        let rhs = layout.alloc(grid_bytes / 4);
        let coeff = layout.alloc(256 << 10); // hot coefficient block
        Self {
            state,
            rhs,
            coeff,
            sweeps_remaining: sweeps,
            cursor: 0,
            footprint: layout.total_bytes(),
        }
    }
}

impl Workload for BwavesWorkload {
    fn next_op(&mut self, _now_ns: u64, out: &mut Vec<Access>) -> Option<Op> {
        if self.sweeps_remaining == 0 {
            return None;
        }
        // One op = one 4 KiB block of the sweep: stream the state page,
        // the matching RHS page, and bang on the coefficient block.
        out.push(Access::read(self.state.addr(self.cursor)));
        out.push(Access::write(self.state.addr(self.cursor)));
        let rhs_off = self.cursor / 4;
        out.push(Access::read(self.rhs.addr(rhs_off & !4095)));
        let coeff_off = (self.cursor / 4096 * 64) % self.coeff.bytes();
        out.push(Access::read(self.coeff.addr(coeff_off)));

        self.cursor += 4096;
        if self.cursor >= self.state.bytes() {
            self.cursor = 0;
            self.sweeps_remaining -= 1;
        }
        Some(Op::compute(900))
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn name(&self) -> &str {
        "spec-bwaves"
    }

    fn batchable_now(&self) -> bool {
        true // never consults simulated time
    }
}

/// Proxy for SPEC CPU 2017 654.roms (3-D stencil ocean model).
#[derive(Debug)]
pub struct RomsWorkload {
    /// Four state fields (u, v, w, rho), each `plane_bytes * nz`.
    fields: [Region; 4],
    plane_bytes: u64,
    nz: u64,
    /// (timestep, k-plane, byte within plane) progress.
    steps_remaining: u32,
    k: u64,
    cursor: u64,
    footprint: u64,
}

impl RomsWorkload {
    /// An `nz`-plane grid with `plane_bytes` per field plane, stepped
    /// `steps` times.
    ///
    /// # Panics
    ///
    /// Panics if `nz < 3` (the stencil needs k−1 and k+1 planes).
    pub fn new(plane_bytes: u64, nz: u64, steps: u32) -> Self {
        assert!(nz >= 3, "stencil needs at least 3 planes");
        let mut layout = LayoutBuilder::new();
        let fields = [
            layout.alloc(plane_bytes * nz),
            layout.alloc(plane_bytes * nz),
            layout.alloc(plane_bytes * nz),
            layout.alloc(plane_bytes * nz),
        ];
        Self {
            fields,
            plane_bytes,
            nz,
            steps_remaining: steps,
            k: 1,
            cursor: 0,
            footprint: layout.total_bytes(),
        }
    }
}

impl Workload for RomsWorkload {
    fn next_op(&mut self, _now_ns: u64, out: &mut Vec<Access>) -> Option<Op> {
        if self.steps_remaining == 0 {
            return None;
        }
        // One op = one 4 KiB tile of the current k-plane across all fields,
        // reading the k−1/k/k+1 planes (vertical stencil) and writing k.
        for field in &self.fields {
            let base_k = self.k * self.plane_bytes + self.cursor;
            out.push(Access::read(field.addr(base_k - self.plane_bytes)));
            out.push(Access::read(field.addr(base_k)));
            out.push(Access::read(field.addr(base_k + self.plane_bytes)));
            out.push(Access::write(field.addr(base_k)));
        }
        self.cursor += 4096;
        if self.cursor >= self.plane_bytes {
            self.cursor = 0;
            self.k += 1;
            if self.k >= self.nz - 1 {
                self.k = 1;
                self.steps_remaining -= 1;
            }
        }
        Some(Op::compute(1_200))
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn name(&self) -> &str {
        "spec-roms"
    }

    fn batchable_now(&self) -> bool {
        true // never consults simulated time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiering_mem::PageSize;

    #[test]
    fn bwaves_sweeps_whole_state() {
        let mut w = BwavesWorkload::new(64 * 4096, 2);
        let mut pages = std::collections::HashSet::new();
        let mut buf = Vec::new();
        let mut ops = 0;
        while w.next_op(0, &mut buf).is_some() {
            for a in &buf {
                pages.insert(a.page(PageSize::Base4K));
            }
            buf.clear();
            ops += 1;
        }
        assert_eq!(ops, 128, "2 sweeps x 64 state pages");
        // All 64 state pages visited.
        let state_pages = (0..64u64)
            .filter(|p| pages.contains(&tiering_mem::PageId(*p)))
            .count();
        assert_eq!(state_pages, 64);
    }

    #[test]
    fn bwaves_coefficient_block_is_hot() {
        let mut w = BwavesWorkload::new(256 * 4096, 4);
        let coeff_base = w.coeff.base();
        let coeff_end = w.coeff.end();
        let mut coeff_hits = 0u64;
        let mut total = 0u64;
        let mut buf = Vec::new();
        while w.next_op(0, &mut buf).is_some() {
            for a in &buf {
                total += 1;
                if a.addr >= coeff_base && a.addr < coeff_end {
                    coeff_hits += 1;
                }
            }
            buf.clear();
        }
        // Coefficient region is tiny but sees 1/4 of all accesses.
        assert!(coeff_hits * 3 > total / 2, "coeff {coeff_hits} of {total}");
    }

    #[test]
    fn roms_stencil_reads_adjacent_planes() {
        let mut w = RomsWorkload::new(4096, 4, 1);
        let mut buf = Vec::new();
        w.next_op(0, &mut buf).unwrap();
        // 4 fields × (3 reads + 1 write).
        assert_eq!(buf.len(), 16);
        let writes = buf.iter().filter(|a| a.is_write).count();
        assert_eq!(writes, 4);
    }

    #[test]
    fn roms_terminates() {
        let mut w = RomsWorkload::new(2 * 4096, 5, 3);
        let mut buf = Vec::new();
        let mut ops = 0;
        while w.next_op(0, &mut buf).is_some() {
            buf.clear();
            ops += 1;
            assert!(ops < 10_000);
        }
        // 3 steps × 3 interior planes × 2 tiles per plane.
        assert_eq!(ops, 18);
    }

    #[test]
    #[should_panic(expected = "at least 3 planes")]
    fn roms_rejects_thin_grid() {
        let _ = RomsWorkload::new(4096, 2, 1);
    }
}
